"""Tests for signature mapping and trajectory construction."""

import numpy as np
import pytest

from repro.errors import TrajectoryError
from repro.faults import GOLDEN_LABEL
from repro.trajectory import (
    FaultTrajectory,
    SignatureMapper,
    TrajectorySet,
)


class TestMapperValidation:
    def test_needs_frequencies(self):
        with pytest.raises(TrajectoryError):
            SignatureMapper(())

    def test_duplicate_frequencies_rejected(self):
        with pytest.raises(TrajectoryError, match="duplicate"):
            SignatureMapper((100.0, 100.0))

    def test_nonpositive_rejected(self):
        with pytest.raises(TrajectoryError):
            SignatureMapper((0.0, 100.0))

    def test_bad_scale(self):
        with pytest.raises(TrajectoryError, match="scale"):
            SignatureMapper((1.0, 2.0), scale="bel")

    def test_dimension(self):
        assert SignatureMapper((1.0, 2.0, 3.0)).dimension == 3

    def test_with_freqs_keeps_options(self):
        mapper = SignatureMapper((1.0, 2.0), scale="linear",
                                 relative_to_golden=False)
        other = mapper.with_freqs((5.0, 6.0))
        assert other.scale == "linear"
        assert not other.relative_to_golden
        assert other.test_freqs_hz == (5.0, 6.0)


class TestSignatures:
    def test_golden_signature_is_origin_when_relative(self,
                                                      biquad_surface):
        mapper = SignatureMapper((500.0, 1500.0))
        assert np.allclose(mapper.golden_signature(biquad_surface), 0.0)

    def test_golden_signature_absolute(self, biquad_surface):
        mapper = SignatureMapper((500.0, 1500.0),
                                 relative_to_golden=False)
        golden = mapper.golden_signature(biquad_surface)
        expected = biquad_surface.golden_db(np.array([500.0, 1500.0]))
        assert np.allclose(golden, expected)

    def test_signature_requires_golden_when_relative(self,
                                                     biquad_dictionary):
        mapper = SignatureMapper((500.0, 1500.0))
        entry = biquad_dictionary.entries[0]
        with pytest.raises(TrajectoryError, match="golden"):
            mapper.signature(entry.response)

    def test_matrix_matches_per_entry_path(self, biquad_dictionary,
                                           biquad_surface):
        """The batched surface path and the per-response dictionary path
        must agree (up to surface interpolation error)."""
        mapper = SignatureMapper((500.0, 1500.0))
        from_dict = mapper.signature_matrix(biquad_dictionary)
        from_surface = mapper.signature_matrix(biquad_surface)
        assert from_dict.shape == from_surface.shape == (56, 2)
        assert np.allclose(from_dict, from_surface, atol=0.02)

    def test_linear_scale_consistency(self, biquad_dictionary):
        mapper_db = SignatureMapper((500.0, 1500.0),
                                    relative_to_golden=False)
        mapper_lin = SignatureMapper((500.0, 1500.0), scale="linear",
                                     relative_to_golden=False)
        entry = biquad_dictionary.entries[0]
        sig_db = mapper_db.signature(entry.response)
        sig_lin = mapper_lin.signature(entry.response)
        assert np.allclose(sig_lin, 10.0 ** (sig_db / 20.0))

    def test_matrix_linear_relative(self, biquad_surface):
        mapper = SignatureMapper((500.0, 1500.0), scale="linear")
        matrix = mapper.signature_matrix(biquad_surface)
        absolute = SignatureMapper(
            (500.0, 1500.0), scale="linear",
            relative_to_golden=False).signature_matrix(biquad_surface)
        golden = 10.0 ** (biquad_surface.golden_db(
            np.array([500.0, 1500.0])) / 20.0)
        assert np.allclose(matrix, absolute - golden[None, :])

    def test_signature_matrix_rejects_other_types(self):
        mapper = SignatureMapper((1.0, 2.0))
        with pytest.raises(TrajectoryError):
            mapper.signature_matrix("not a source")


class TestFaultTrajectory:
    def make(self, deviations=(-0.2, -0.1, 0.0, 0.1, 0.2)):
        points = np.column_stack([np.asarray(deviations),
                                  2.0 * np.asarray(deviations)])
        return FaultTrajectory("R1", tuple(deviations), points)

    def test_basic_properties(self):
        trajectory = self.make()
        assert trajectory.dimension == 2
        assert trajectory.num_segments == 4
        assert trajectory.origin_index == 2

    def test_segments(self):
        starts, ends = self.make().segments()
        assert starts.shape == (4, 2)
        assert np.allclose(ends[:-1], starts[1:])

    def test_point_for(self):
        trajectory = self.make()
        assert np.allclose(trajectory.point_for(0.1), [0.1, 0.2])
        with pytest.raises(TrajectoryError):
            trajectory.point_for(0.15)

    def test_interpolate_deviation(self):
        trajectory = self.make()
        # Segment 2 spans deviations [0, 0.1].
        assert trajectory.interpolate_deviation(2, 0.5) == pytest.approx(
            0.05)
        assert trajectory.interpolate_deviation(0, 0.0) == pytest.approx(
            -0.2)

    def test_interpolate_bad_segment(self):
        with pytest.raises(TrajectoryError):
            self.make().interpolate_deviation(99, 0.5)

    def test_vertex_is_origin(self):
        mask = self.make().vertex_is_origin()
        assert mask.tolist() == [False, False, True, False, False]

    def test_must_include_golden(self):
        with pytest.raises(TrajectoryError, match="golden"):
            FaultTrajectory("R1", (0.1, 0.2),
                            np.array([[1.0, 1.0], [2.0, 2.0]]))

    def test_must_be_sorted(self):
        with pytest.raises(TrajectoryError, match="increasing"):
            FaultTrajectory("R1", (0.1, 0.0, -0.1), np.zeros((3, 2)))

    def test_shape_mismatch(self):
        with pytest.raises(TrajectoryError):
            FaultTrajectory("R1", (-0.1, 0.0, 0.1), np.zeros((2, 2)))


class TestTrajectorySet:
    def test_from_surface(self, biquad_trajectories):
        assert len(biquad_trajectories) == 7
        assert biquad_trajectories.dimension == 2
        for trajectory in biquad_trajectories:
            # 8 dictionary deviations + inserted golden point.
            assert len(trajectory.deviations) == 9
            assert trajectory.deviations[4] == 0.0
            assert np.allclose(trajectory.points[4], 0.0)

    def test_origin_insertion_order(self, biquad_trajectories):
        trajectory = biquad_trajectories["R3"]
        assert trajectory.deviations == (-0.4, -0.3, -0.2, -0.1, 0.0,
                                         0.1, 0.2, 0.3, 0.4)

    def test_getitem_missing(self, biquad_trajectories):
        with pytest.raises(TrajectoryError):
            biquad_trajectories["R99"]

    def test_component_subset(self, biquad_surface):
        mapper = SignatureMapper((500.0, 1500.0))
        subset = TrajectorySet.from_source(biquad_surface, mapper,
                                           components=("R1", "C1"))
        assert subset.components == ("R1", "C1")

    def test_component_subset_missing(self, biquad_surface):
        mapper = SignatureMapper((500.0, 1500.0))
        with pytest.raises(TrajectoryError):
            TrajectorySet.from_source(biquad_surface, mapper,
                                      components=("R99",))

    def test_from_dictionary_close_to_surface(self, biquad_dictionary,
                                              biquad_surface):
        mapper = SignatureMapper((500.0, 1500.0))
        exact = TrajectorySet.from_source(biquad_dictionary, mapper)
        fast = TrajectorySet.from_source(biquad_surface, mapper)
        for component in exact.components:
            assert np.allclose(exact[component].points,
                               fast[component].points, atol=0.02)

    def test_all_segments_owners(self, biquad_trajectories):
        starts, ends, owners = biquad_trajectories.all_segments()
        assert starts.shape == ends.shape == (7 * 8, 2)
        assert owners.shape == (56,)
        # 8 segments per trajectory, contiguous owner blocks.
        assert owners.tolist() == sum(([i] * 8 for i in range(7)), [])

    def test_mapper_dimension_must_match(self, biquad_trajectories):
        mapper3 = SignatureMapper((1.0, 2.0, 3.0))
        with pytest.raises(TrajectoryError):
            TrajectorySet(mapper3, biquad_trajectories.trajectories)

    def test_duplicate_components_rejected(self, biquad_trajectories):
        mapper = biquad_trajectories.mapper
        duplicated = (biquad_trajectories.trajectories[0],) * 2
        with pytest.raises(TrajectoryError, match="duplicate"):
            TrajectorySet(mapper, duplicated)

    def test_empty_rejected(self, biquad_trajectories):
        with pytest.raises(TrajectoryError):
            TrajectorySet(biquad_trajectories.mapper, ())
