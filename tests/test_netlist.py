"""Tests for the Circuit netlist container."""

import pytest

from repro.circuits import Circuit, Resistor
from repro.errors import CircuitError


def build_divider():
    ckt = Circuit("divider")
    ckt.add_voltage_source("VIN", "in", "0", dc=1.0, ac=1.0)
    ckt.add_resistor("R1", "in", "out", "10k")
    ckt.add_resistor("R2", "out", "0", "10k")
    return ckt


class TestConstruction:
    def test_len_iter_contains(self):
        ckt = build_divider()
        assert len(ckt) == 3
        assert "R1" in ckt
        assert "R9" not in ckt
        assert [c.name for c in ckt] == ["VIN", "R1", "R2"]

    def test_getitem(self):
        ckt = build_divider()
        assert ckt["R1"].value == pytest.approx(10e3)

    def test_getitem_missing(self):
        with pytest.raises(CircuitError, match="no component named"):
            build_divider()["R9"]

    def test_duplicate_name_rejected(self):
        ckt = build_divider()
        with pytest.raises(CircuitError, match="duplicate"):
            ckt.add_resistor("R1", "a", "b", 1.0)

    def test_engineering_values_parsed(self):
        ckt = Circuit("t")
        ckt.add_capacitor("C1", "a", "0", "15.9n")
        assert ckt["C1"].value == pytest.approx(15.9e-9)

    def test_empty_name_rejected(self):
        with pytest.raises(CircuitError):
            Circuit("")

    def test_nodes_in_first_appearance_order(self):
        ckt = build_divider()
        assert ckt.nodes == ("in", "0", "out")

    def test_repr(self):
        assert "divider" in repr(build_divider())


class TestQueries:
    def test_passive_names(self):
        ckt = build_divider()
        assert ckt.passive_names == ("R1", "R2")

    def test_source_names(self):
        assert build_divider().source_names == ("VIN",)

    def test_ac_source_name(self):
        assert build_divider().ac_source_name() == "VIN"

    def test_ac_source_none_raises(self):
        ckt = Circuit("t")
        ckt.add_voltage_source("V1", "a", "0", dc=1.0)  # no AC
        ckt.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(CircuitError, match="no source has an AC"):
            ckt.ac_source_name()

    def test_ac_source_multiple_raises(self):
        ckt = build_divider()
        ckt.add_voltage_source("V2", "out", "0", ac=1.0)
        with pytest.raises(CircuitError, match="multiple AC sources"):
            ckt.ac_source_name()

    def test_components_of_type(self):
        ckt = build_divider()
        assert len(ckt.components_of_type(Resistor)) == 2


class TestValidation:
    def test_valid_circuit_passes(self):
        build_divider().validate()

    def test_empty_circuit_rejected(self):
        with pytest.raises(CircuitError, match="no components"):
            Circuit("t").validate()

    def test_missing_ground_rejected(self):
        ckt = Circuit("t")
        ckt.add_resistor("R1", "a", "b", 1.0)
        with pytest.raises(CircuitError, match="ground"):
            ckt.validate()

    def test_floating_island_rejected(self):
        ckt = build_divider()
        ckt.add_resistor("RX", "float1", "float2", 1.0)
        with pytest.raises(CircuitError, match="floating"):
            ckt.validate()

    def test_ccvs_missing_control_rejected(self):
        ckt = build_divider()
        ckt.add_ccvs("H1", "out2", "0", "VMISSING", 1.0)
        ckt.add_resistor("RL", "out2", "0", 1.0)
        with pytest.raises(CircuitError, match="missing"):
            ckt.validate()

    def test_ccvs_control_must_be_vsource(self):
        ckt = build_divider()
        ckt.add_cccs("F1", "out", "0", "R1", 1.0)
        with pytest.raises(CircuitError, match="voltage source"):
            ckt.validate()


class TestMutation:
    def test_clone_is_independent(self):
        ckt = build_divider()
        copy = ckt.clone("copy")
        assert copy.name == "copy"
        assert len(copy) == len(ckt)
        copy.add_resistor("R3", "out", "0", 1.0)
        assert "R3" not in ckt

    def test_with_value(self):
        ckt = build_divider()
        faulty = ckt.with_value("R1", 12e3)
        assert faulty["R1"].value == pytest.approx(12e3)
        assert ckt["R1"].value == pytest.approx(10e3)

    def test_with_value_preserves_order(self):
        ckt = build_divider()
        faulty = ckt.with_value("R1", 12e3)
        assert faulty.component_names == ckt.component_names

    def test_with_value_non_twoterminal_rejected(self):
        ckt = build_divider()
        ckt.add_ideal_opamp("OA1", "out", "buf", "buf")
        with pytest.raises(CircuitError, match="no scalar value"):
            ckt.with_value("OA1", 5.0)

    def test_scaled_value(self):
        ckt = build_divider()
        faulty = ckt.scaled_value("R2", 1.25)
        assert faulty["R2"].value == pytest.approx(12.5e3)

    def test_with_component_unknown_rejected(self):
        ckt = build_divider()
        with pytest.raises(CircuitError, match="unknown component"):
            ckt.with_component(Resistor("RZ", "a", "b", 1.0))

    def test_summary_mentions_all(self):
        text = build_divider().summary()
        for name in ("VIN", "R1", "R2"):
            assert name in text


class TestCanonicalForm:
    def test_canonical_form_is_deterministic(self):
        assert build_divider().canonical_form() == \
            build_divider().canonical_form()
        assert build_divider().content_hash() == \
            build_divider().content_hash()

    def test_canonical_form_lists_every_component(self):
        text = build_divider().canonical_form()
        for name in ("VIN", "R1", "R2"):
            assert f"name={name}" in text

    def test_hash_tracks_values_and_topology(self):
        base = build_divider().content_hash()
        assert build_divider().with_value("R1", 11e3).content_hash() \
            != base
        renodal = build_divider()
        renodal.add_resistor("R3", "out", "0", 1e3)
        assert renodal.content_hash() != base

    def test_clone_hashes_equal(self):
        ckt = build_divider()
        assert ckt.clone().content_hash() == ckt.content_hash()

    def test_opamp_macro_params_hashed_sorted(self):
        from repro.circuits.library import tow_thomas_biquad
        a = tow_thomas_biquad(ideal_opamps=False)
        b = tow_thomas_biquad(ideal_opamps=False)
        assert a.circuit.content_hash() == b.circuit.content_hash()
