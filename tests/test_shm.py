"""Shared-memory pool layer: lifecycle, fallback, leaks, bitwise GA.

The load-bearing contracts:

* :class:`SharedArray` pickles by handle, attaches zero-copy, and has
  a deterministic owner-unlinks / attacher-closes lifecycle -- a full
  run (including a simulated worker crash) leaves ``/dev/shm`` exactly
  as it found it;
* without working shared memory (``REPRO_DISABLE_SHM=1``) every entry
  point degrades to the thread/by-value fallback instead of breaking;
* a process-pool GA search is bitwise-identical to the serial search
  on every tested registry circuit -- same test vector, same fitness,
  same per-generation history.
"""

from __future__ import annotations

import glob
import os
import pickle
from concurrent.futures.process import (BrokenProcessPool,
                                        ProcessPoolExecutor)
from pathlib import Path

import numpy as np
import pytest

from repro import (FaultTrajectoryATPG, PipelineConfig, ResponseSurface,
                   parametric_universe)
from repro.circuits.library import get_benchmark
from repro.errors import ReproError
from repro.faults import FaultDictionary
from repro.ga import FrequencySpace, GAConfig, GeneticAlgorithm
from repro.runtime import shm
from repro.runtime.shm import (SharedArray, SharedSurface,
                               resolve_executor, shm_available)
from repro.units import log_frequency_grid

QUICK = PipelineConfig(dictionary_points=32, deviations=(-0.2, 0.2),
                       ga=GAConfig(population_size=12, generations=3))

GA_CIRCUITS = ("rc_lowpass", "sallen_key_lowpass", "tow_thomas_biquad")

needs_shm = pytest.mark.skipif(not shm_available(),
                               reason="no working shared memory here")


def _segments() -> set:
    """Live POSIX shared-memory segment names (psm_* on Linux)."""
    return {Path(p).name for p in glob.glob("/dev/shm/psm_*")}


def _crash_worker() -> None:
    """Module-level so a process pool can pickle it."""
    os._exit(13)


@pytest.fixture(scope="module")
def ga_setup():
    """Per-circuit staged GA inputs (dictionary simulated once)."""
    cache = {}

    def build(name):
        if name not in cache:
            info = get_benchmark(name)
            atpg = FaultTrajectoryATPG(info, QUICK)
            _, dictionary = atpg.build_dictionary()
            surface = ResponseSurface(dictionary)
            space = FrequencySpace(info.f_min_hz, info.f_max_hz,
                                   QUICK.num_frequencies)
            cache[name] = (atpg, surface, space)
        return cache[name]

    return build


def _run_ga(ga_setup, name, n_workers, executor):
    """One GA search with a fresh fitness (cold score cache)."""
    atpg, surface, space = ga_setup(name)
    fitness = atpg.make_fitness(surface)
    ga = GeneticAlgorithm(space, fitness, QUICK.ga,
                          n_workers=n_workers, executor=executor)
    return ga.run(seed=7)


class TestSharedArray:
    @needs_shm
    def test_pickle_by_handle_round_trip(self):
        source = np.arange(12, dtype=float).reshape(3, 4)
        with SharedArray.create(source) as shared:
            assert shared.is_shared
            assert shared.name is not None
            payload = pickle.dumps(shared)
            # By handle: orders of magnitude smaller than the data
            # would be for big arrays; here just "no array bytes".
            assert shared.name.encode() in payload
            attached = pickle.loads(payload)
            try:
                assert attached.is_shared
                assert np.array_equal(attached.array, source)
                # Both views map the same bytes, not copies.
                assert attached.name == shared.name
                with pytest.raises(ValueError):
                    attached.array[0, 0] = 99.0   # readonly view
            finally:
                attached.close()

    @needs_shm
    def test_zeros_is_writable_and_visible(self):
        with SharedArray.zeros((4, 2)) as out:
            assert out.is_shared
            out.array[1, :] = 5.0
            attached = pickle.loads(pickle.dumps(out))
            try:
                assert np.array_equal(attached.array, out.array)
            finally:
                attached.close()

    @needs_shm
    def test_unlink_is_idempotent_and_kills_access(self):
        shared = SharedArray.create(np.ones(3))
        name = shared.name
        shared.unlink()
        shared.unlink()                      # idempotent
        assert name not in _segments()
        with pytest.raises(ReproError):
            _ = shared.array
        with pytest.raises(ReproError):
            pickle.dumps(shared)

    @needs_shm
    def test_context_manager_unlinks_segment(self):
        before = _segments()
        with SharedArray.create(np.ones(8)) as shared:
            assert shared.name in _segments()
        assert _segments() - before == set()

    def test_fallback_by_value(self, monkeypatch):
        monkeypatch.setenv(shm.DISABLE_ENV, "1")
        assert not shm_available()
        source = np.arange(6, dtype=float)
        shared = SharedArray.create(source)
        assert not shared.is_shared
        assert shared.name is None
        clone = pickle.loads(pickle.dumps(shared))
        assert not clone.is_shared
        assert np.array_equal(clone.array, source)
        shared.unlink()                      # no-op, must not raise


class TestResolveExecutor:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ReproError):
            resolve_executor("gpu")

    def test_thread_passes_through(self):
        assert resolve_executor("thread") == "thread"

    @needs_shm
    def test_process_kept_when_shm_works(self):
        assert resolve_executor("process") == "process"

    def test_process_degrades_without_shm(self, monkeypatch):
        monkeypatch.setenv(shm.DISABLE_ENV, "1")
        assert resolve_executor("process") == "thread"


class TestSharedSurface:
    @pytest.fixture(scope="class")
    def surface(self):
        info = get_benchmark("rc_lowpass")
        universe = parametric_universe(info.circuit,
                                       components=info.faultable,
                                       deviations=(-0.2, 0.2))
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 16)
        dictionary = FaultDictionary.build(
            universe, info.output_node, grid,
            input_source=info.input_source)
        return ResponseSurface(dictionary)

    @needs_shm
    def test_publish_is_bitwise_and_a_response_surface(self, surface):
        freqs = np.geomspace(20.0, 2e4, 5)
        with SharedSurface.publish(surface) as shared:
            assert isinstance(shared, ResponseSurface)
            assert shared.is_shared
            assert shared.labels == surface.labels
            assert np.array_equal(shared.sample_db(freqs),
                                  surface.sample_db(freqs))
            clone = pickle.loads(pickle.dumps(shared))
            assert np.array_equal(clone.sample_db(freqs),
                                  surface.sample_db(freqs))
            clone.close()

    @needs_shm
    def test_unlink_leaves_no_residue(self, surface):
        before = _segments()
        shared = SharedSurface.publish(surface)
        assert len(_segments() - before) == 2   # log_f + matrix
        shared.unlink()
        shared.unlink()                          # idempotent
        assert _segments() - before == set()


class TestPoolLeaks:
    @needs_shm
    def test_ga_process_pool_leaves_no_segments(self, ga_setup):
        before = _segments()
        _run_ga(ga_setup, "rc_lowpass", n_workers=2, executor="process")
        assert _segments() - before == set()

    @needs_shm
    def test_worker_crash_leaves_no_segments(self, ga_setup):
        """A dying worker must not orphan the published surface: only
        the owner unlinks, and it does so even on the error path."""
        _, surface, _ = ga_setup("rc_lowpass")
        before = _segments()
        shared = SharedSurface.publish(surface)
        try:
            with ProcessPoolExecutor(max_workers=1) as pool:
                with pytest.raises(BrokenProcessPool):
                    pool.submit(_crash_worker).result()
        finally:
            shared.unlink()
        assert _segments() - before == set()


class TestGAProcessPool:
    @needs_shm
    @pytest.mark.parametrize("circuit", GA_CIRCUITS)
    def test_process_pool_bitwise_equals_serial(self, ga_setup, circuit):
        serial = _run_ga(ga_setup, circuit, 1, "thread")
        pooled = _run_ga(ga_setup, circuit, 2, "process")
        assert pooled.best_freqs_hz == serial.best_freqs_hz
        assert pooled.best_fitness == serial.best_fitness
        assert pooled.history == serial.history
        assert pooled.generations_run == serial.generations_run

    def test_thread_pool_bitwise_equals_serial(self, ga_setup):
        serial = _run_ga(ga_setup, "rc_lowpass", 1, "thread")
        pooled = _run_ga(ga_setup, "rc_lowpass", 3, "thread")
        assert pooled.best_freqs_hz == serial.best_freqs_hz
        assert pooled.history == serial.history

    def test_process_request_falls_back_without_shm(self, ga_setup,
                                                    monkeypatch):
        serial = _run_ga(ga_setup, "rc_lowpass", 1, "thread")
        monkeypatch.setenv(shm.DISABLE_ENV, "1")
        before = _segments()
        pooled = _run_ga(ga_setup, "rc_lowpass", 2, "process")
        assert _segments() - before == set()
        assert pooled.best_freqs_hz == serial.best_freqs_hz
        assert pooled.history == serial.history

    def test_invalid_executor_rejected(self, ga_setup):
        atpg, surface, space = ga_setup("rc_lowpass")
        fitness = atpg.make_fitness(surface)
        from repro.errors import GAError
        with pytest.raises(GAError):
            GeneticAlgorithm(space, fitness, QUICK.ga,
                             n_workers=2, executor="gpu")


class TestPoolTelemetry:
    def test_families_registered_and_rendered(self):
        shm.record_pool_tasks("test-kind", 2)
        shm.observe_worker_start("test-kind", 0.01)
        shm.observe_worker_shutdown("test-kind", 0.02)
        from repro.runtime.telemetry import REGISTRY
        text = REGISTRY.render()
        assert "repro_pool_tasks_total" in text
        assert "repro_pool_shm_segments" in text
        assert "repro_pool_worker_start_seconds" in text
        assert "repro_pool_worker_shutdown_seconds" in text
