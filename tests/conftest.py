"""Shared fixtures.

Expensive artefacts (the biquad fault dictionary, a quick pipeline run)
are session-scoped: they are deterministic pure functions of the seed, so
sharing them across tests only trades isolation we do not need for a
large speed-up.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    FaultTrajectoryATPG,
    PipelineConfig,
    ResponseSurface,
    SignatureMapper,
    TrajectorySet,
    parametric_universe,
    rc_lowpass,
    tow_thomas_biquad,
)
from repro.faults import FaultDictionary
from repro.ga import GAConfig
from repro.units import log_frequency_grid


@pytest.fixture(scope="session")
def biquad_info():
    """The paper's CUT with op-amp macromodels (the realistic variant)."""
    return tow_thomas_biquad(ideal_opamps=False)


@pytest.fixture(scope="session")
def biquad_ideal_info():
    """The CUT with ideal op-amps (exhibits exact ambiguity groups)."""
    return tow_thomas_biquad(ideal_opamps=True)


@pytest.fixture(scope="session")
def biquad_universe(biquad_info):
    return parametric_universe(biquad_info.circuit,
                               components=biquad_info.faultable)


@pytest.fixture(scope="session")
def biquad_dictionary(biquad_info, biquad_universe):
    grid = log_frequency_grid(biquad_info.f_min_hz, biquad_info.f_max_hz,
                              301)
    return FaultDictionary.build(biquad_universe, biquad_info.output_node,
                                 grid)


@pytest.fixture(scope="session")
def biquad_surface(biquad_dictionary):
    return ResponseSurface(biquad_dictionary)


@pytest.fixture(scope="session")
def biquad_trajectories(biquad_surface):
    mapper = SignatureMapper((500.0, 1500.0))
    return TrajectorySet.from_source(biquad_surface, mapper)


@pytest.fixture(scope="session")
def quick_pipeline_result(biquad_info):
    """One quick end-to-end ATPG run shared by the integration tests."""
    return FaultTrajectoryATPG(biquad_info,
                               PipelineConfig.quick()).run(seed=11)


@pytest.fixture(scope="session")
def rc_info():
    return rc_lowpass(f0_hz=1e3)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


# ----------------------------------------------------------------------
# Serving-layer scaffolding shared by the serving/cluster suites
# ----------------------------------------------------------------------
#: One quick config for every serving-layer suite -- a drift in these
#: knobs must hit all of them together.
QUICK_SERVING = PipelineConfig(
    dictionary_points=32, deviations=(-0.2, 0.2),
    ga=GAConfig(population_size=8, generations=2))

#: The >= 3 library circuits the serving equivalence properties range
#: over.
SERVING_CIRCUITS = ("rc_lowpass", "voltage_divider",
                    "sallen_key_lowpass")


#: Plausible measured dB rows (golden magnitudes +- a few dB) -- the
#: one implementation shared with the serving benchmarks.
from repro.runtime.testing import noisy_golden_rows as measured_rows


@pytest.fixture(scope="session")
def warm_service():
    """One warmed multi-circuit service shared by the serving suites.

    Engines are deterministic pure functions of (config, seed), and
    the diagnosers are read-only after warm-up, so sharing trades no
    isolation for a large speed-up.
    """
    from repro import DiagnosisService
    service = DiagnosisService(config=QUICK_SERVING, max_engines=8,
                               seed=3)
    for name in SERVING_CIRCUITS:
        service.warm(name)
    return service
