"""Regenerate ``tests/data/legacy_store`` -- the byte-compat fixture.

The committed tree under ``legacy_store/`` is a real artifact-store
root written by the original (pre-``StorageBackend``) on-disk layout:
``<root>/<kind>/<key[:2]>/<key>/``. The byte-compatibility test in
``tests/test_backends.py`` replays the same fixed-seed pipeline run
against this tree through :class:`LocalDirBackend` and requires every
artifact to load (all four cache hits) with bitwise-identical results
-- so any change to the layout, the content keys or the artifact
serialisation formats that would orphan existing production store
roots fails loudly.

Regenerate only after an *intentional* storage-format change::

    PYTHONPATH=src python tests/data/make_legacy_store.py

then review the diff like any other code change.
"""

from __future__ import annotations

import shutil
from pathlib import Path

from repro import (ArtifactStore, FaultTrajectoryATPG, PipelineConfig,
                   voltage_divider)
from repro.ga import GAConfig

LEGACY_ROOT = Path(__file__).resolve().parent / "legacy_store"

SEED = 7
CONFIG = PipelineConfig(dictionary_points=16, deviations=(-0.2, 0.2),
                        ga=GAConfig(population_size=8, generations=2))


def circuit_info():
    return voltage_divider()


def main() -> int:
    shutil.rmtree(LEGACY_ROOT, ignore_errors=True)
    store = ArtifactStore(LEGACY_ROOT)
    result = FaultTrajectoryATPG(circuit_info(), CONFIG).run(seed=SEED,
                                                             store=store)
    slots = sorted(p.relative_to(LEGACY_ROOT)
                   for p in LEGACY_ROOT.rglob("*") if p.is_dir()
                   and len(p.name) == 64)
    print(f"wrote {len(slots)} artifacts under {LEGACY_ROOT}:")
    for slot in slots:
        print(f"  {slot}")
    print(f"test vector: {sorted(result.test_vector_hz)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
