"""Tests for the trajectory classifier and the paper's diagnosis rule."""

import numpy as np
import pytest

from repro.diagnosis import TrajectoryClassifier
from repro.errors import DiagnosisError
from repro.sim import ACAnalysis
from repro.trajectory import (
    FaultTrajectory,
    SignatureMapper,
    TrajectorySet,
)


def axis_trajectory(component, direction,
                    deviations=(-0.2, -0.1, 0.0, 0.1, 0.2)):
    direction = np.asarray(direction, dtype=float)
    points = np.outer(np.asarray(deviations), direction)
    return FaultTrajectory(component, tuple(deviations), points)


@pytest.fixture()
def xy_classifier():
    """Component X along +x/-x, component Y along +y/-y."""
    mapper = SignatureMapper((100.0, 1000.0))
    trajectories = TrajectorySet(mapper, (
        axis_trajectory("X", [1.0, 0.0]),
        axis_trajectory("Y", [0.0, 1.0]),
    ))
    return TrajectoryClassifier(trajectories)


class TestClassifyPoint:
    def test_on_trajectory_exact(self, xy_classifier):
        diagnosis = xy_classifier.classify_point(np.array([0.15, 0.0]))
        assert diagnosis.component == "X"
        assert diagnosis.estimated_deviation == pytest.approx(0.15)
        assert diagnosis.distance == pytest.approx(0.0, abs=1e-12)

    def test_near_trajectory_perpendicular(self, xy_classifier):
        diagnosis = xy_classifier.classify_point(np.array([0.15, 0.02]))
        assert diagnosis.component == "X"
        assert diagnosis.perpendicular
        assert diagnosis.distance == pytest.approx(0.02)
        assert diagnosis.estimated_deviation == pytest.approx(0.15)

    def test_negative_deviation_side(self, xy_classifier):
        diagnosis = xy_classifier.classify_point(np.array([0.0, -0.12]))
        assert diagnosis.component == "Y"
        assert diagnosis.estimated_deviation == pytest.approx(-0.12)

    def test_beyond_trajectory_end_uses_endpoint(self, xy_classifier):
        # x = 0.5 lies beyond X's last point (0.2): deviation clamps to
        # the +20% end of the trajectory.
        diagnosis = xy_classifier.classify_point(np.array([0.5, 0.0]))
        assert diagnosis.component == "X"
        assert diagnosis.estimated_deviation == pytest.approx(0.2)

    def test_ranking_contains_all_components(self, xy_classifier):
        # The point sits exactly on X's vertex (t = 1 boundary, so no
        # interior foot on X) while Y offers a perpendicular: Y wins,
        # and the ranking is over the same candidate distances -- the
        # masked-out component ranks at inf rather than outranking the
        # winner with a distance the paper's rule already rejected.
        diagnosis = xy_classifier.classify_point(np.array([0.1, 0.05]))
        assert diagnosis.component == "Y"
        assert [c for c, _ in diagnosis.ranking] == ["Y", "X"]
        assert diagnosis.ranking[1][1] == float("inf")
        assert diagnosis.margin == float("inf")
        assert not diagnosis.ambiguous

    def test_margin_positive_for_clear_case(self, xy_classifier):
        diagnosis = xy_classifier.classify_point(np.array([0.15, 0.01]))
        assert diagnosis.margin > 0.0
        assert not diagnosis.ambiguous

    def test_diagonal_point_is_ambiguous(self, xy_classifier):
        # Off-vertex so both trajectories offer interior feet and the
        # runner-up distance is genuinely comparable.
        diagnosis = xy_classifier.classify_point(
            np.array([0.13, 0.130001]))
        assert diagnosis.ambiguous

    def test_dimension_mismatch(self, xy_classifier):
        with pytest.raises(DiagnosisError):
            xy_classifier.classify_point(np.array([1.0, 2.0, 3.0]))

    def test_summary_text(self, xy_classifier):
        diagnosis = xy_classifier.classify_point(np.array([0.15, 0.02]))
        text = diagnosis.summary()
        assert "X" in text and "perpendicular" in text


class TestPerpendicularPreference:
    """The paper's rule: prefer segments where a perpendicular foot
    exists, even over a closer endpoint of another trajectory."""

    def test_prefers_interior_foot_over_closer_endpoint(self):
        """A's perpendicular distance (0.05) loses to C's endpoint
        distance (0.014) on raw proximity, but the paper's rule prefers
        the segment where the perpendicular exists -- so A wins."""
        mapper = SignatureMapper((100.0, 1000.0))
        a = axis_trajectory("A", [1.0, 0.0])
        c = axis_trajectory("C", [0.7, 0.3])  # ends at (0.14, 0.06)
        classifier = TrajectoryClassifier(TrajectorySet(mapper, (a, c)))
        query = np.array([0.15, 0.05])
        # Sanity: C's endpoint is closer than A's perpendicular foot.
        endpoint_distance = np.linalg.norm(query - np.array([0.14, 0.06]))
        assert endpoint_distance < 0.05
        diagnosis = classifier.classify_point(query)
        assert diagnosis.component == "A"
        assert diagnosis.perpendicular
        assert diagnosis.distance == pytest.approx(0.05)

    def test_endpoint_fallback_when_no_perpendicular(self):
        mapper = SignatureMapper((100.0, 1000.0))
        a = axis_trajectory("A", [1.0, 0.0])
        classifier = TrajectoryClassifier(
            TrajectorySet(mapper, (a,)))
        # Beyond the end and off-axis: no interior foot anywhere on the
        # single horizontal trajectory (feet clamp to the endpoint).
        diagnosis = classifier.classify_point(np.array([0.9, 0.3]))
        assert not diagnosis.perpendicular
        assert diagnosis.component == "A"


class TestClassifyResponse:
    def test_requires_golden_for_relative_mapper(self,
                                                 biquad_trajectories):
        classifier = TrajectoryClassifier(biquad_trajectories)
        from repro.sim import FrequencyResponse
        fake = FrequencyResponse(np.array([500.0, 1500.0]),
                                 np.array([1.0, 1.0], dtype=complex))
        with pytest.raises(DiagnosisError, match="golden"):
            classifier.classify_response(fake)

    def test_end_to_end_response_diagnosis(self, biquad_info,
                                           biquad_dictionary):
        mapper = SignatureMapper((500.0, 1500.0))
        freqs = np.array([500.0, 1500.0])
        from repro.faults import parametric_universe, FaultDictionary
        universe = parametric_universe(biquad_info.circuit,
                                       components=biquad_info.faultable)
        exact = FaultDictionary.build(universe, biquad_info.output_node,
                                      freqs)
        trajectories = TrajectorySet.from_source(exact, mapper)
        classifier = TrajectoryClassifier(trajectories,
                                          golden=exact.golden)
        faulty = biquad_info.circuit.scaled_value("C1", 0.75)  # C1 -25%
        response = ACAnalysis(faulty).transfer(biquad_info.output_node,
                                               freqs)
        diagnosis = classifier.classify_response(response)
        assert diagnosis.component == "C1"
        assert diagnosis.estimated_deviation == pytest.approx(-0.25,
                                                              abs=0.03)


class TestFaultFree:
    def test_origin_is_fault_free(self, xy_classifier):
        assert xy_classifier.is_fault_free(np.array([0.001, 0.001]),
                                           threshold=0.01)
        assert not xy_classifier.is_fault_free(np.array([0.1, 0.1]),
                                               threshold=0.01)

    def test_requires_relative_mapper(self):
        mapper = SignatureMapper((100.0, 1000.0),
                                 relative_to_golden=False)
        trajectories = TrajectorySet(mapper, (
            axis_trajectory("X", [1.0, 0.0]),))
        classifier = TrajectoryClassifier(trajectories)
        with pytest.raises(DiagnosisError):
            classifier.is_fault_free(np.array([0.0, 0.0]), 0.01)


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro import FaultTrajectoryATPG, PipelineConfig  # noqa: E402
from repro.circuits.library import get_benchmark  # noqa: E402
from repro.ga import GAConfig  # noqa: E402

#: Circuits spanning the library's shapes: single pole, a perfect
#: R1/R2 ambiguity group (coincident trajectories -- the historic
#: negative-margin trigger), a 2nd-order active filter, the paper CUT.
MARGIN_CIRCUITS = ("rc_lowpass", "voltage_divider",
                   "sallen_key_lowpass", "tow_thomas_biquad")


@pytest.fixture(scope="module")
def library_results():
    """Quick ATPG run per margin-property circuit, built once."""
    config = PipelineConfig(dictionary_points=32,
                            deviations=(-0.2, 0.2),
                            ga=GAConfig(population_size=8,
                                        generations=2))
    return {name: FaultTrajectoryATPG(get_benchmark(name),
                                      config).run(seed=7)
            for name in MARGIN_CIRCUITS}


class TestMarginProperty:
    """margin >= 0 must hold for *any* signature point.

    The regression this guards: ``_margin`` used to rank on unmasked
    distances while the winner came from masked ones, so a point whose
    nearest unmasked segment belonged to the winning component produced
    a negative margin. Coincident trajectories (voltage_divider) pin
    the margin at exactly zero.
    """

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_margin_non_negative_across_library(self, library_results,
                                                data):
        name = data.draw(st.sampled_from(MARGIN_CIRCUITS))
        result = library_results[name]
        classifier = result.classifier
        dim = result.trajectories.dimension
        coords = data.draw(st.lists(
            st.floats(min_value=-5.0, max_value=5.0,
                      allow_nan=False),
            min_size=dim, max_size=dim))
        point = np.array(coords)

        scalar = classifier.classify_point(point)
        assert scalar.margin >= 0.0
        masked = dict(scalar.ranking)
        assert scalar.distance == min(masked.values())

        batched = result.batch_diagnoser().classify_points(
            point[None, :])[0]
        assert batched.margin >= 0.0
        assert batched.component == scalar.component
        assert batched.margin == pytest.approx(scalar.margin,
                                               rel=1e-9, abs=1e-12)
