"""Corpus spec round-trip, end-to-end runs, resume, CLI, --check."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core import PipelineConfig
from repro.corpus import CorpusSpec, FamilySpec, check_report, run_corpus
from repro.corpus.cli import main as corpus_main
from repro.diagnosis import PosteriorConfig
from repro.errors import CorpusError
from repro.ga import GAConfig


def mini_spec(name="mini") -> CorpusSpec:
    """Three tiny circuits: fast enough for the unit tier."""
    return CorpusSpec(
        name=name,
        families=(FamilySpec("rc_ladder", count=2, size=3, max_targets=3),
                  FamilySpec("random_topology", count=1, size=3,
                             max_targets=3)),
        pipeline=PipelineConfig(
            dictionary_points=48,
            ga=GAConfig.quick(seeded_generations=2, population_size=12)),
        posterior=PosteriorConfig(n_samples=4, samples_per_block=4))


# ----------------------------------------------------------------------
# Spec validation + JSON round-trip
# ----------------------------------------------------------------------
def test_family_spec_rejects_unknown_family():
    with pytest.raises(CorpusError, match="unknown circuit family"):
        FamilySpec("no_such_family")


@pytest.mark.parametrize("kwargs", [
    {"count": 0}, {"size": 0}, {"max_targets": 0}])
def test_family_spec_rejects_bad_numbers(kwargs):
    with pytest.raises(CorpusError):
        FamilySpec("rc_ladder", **kwargs)


def test_corpus_spec_rejects_empty_matrix():
    with pytest.raises(CorpusError, match="no families"):
        CorpusSpec(name="x", families=())


def test_corpus_spec_rejects_unsafe_name():
    with pytest.raises(CorpusError, match="file-name-safe"):
        CorpusSpec(name="../evil",
                   families=(FamilySpec("rc_ladder"),))


@pytest.mark.parametrize("spec", [
    mini_spec(), CorpusSpec.quick(), CorpusSpec.baseline()])
def test_spec_round_trips_through_json(spec):
    wire = json.loads(json.dumps(spec.to_json_dict()))
    assert CorpusSpec.from_json_dict(wire) == spec


def test_baseline_is_at_least_100_circuits():
    assert CorpusSpec.baseline().total_circuits >= 100
    assert CorpusSpec.quick().total_circuits >= 15


def test_circuit_enumeration_order():
    spec = mini_spec()
    triples = list(spec.circuits())
    assert [index for index, _, _ in triples] == [0, 1, 2]
    assert [(fam.family, seed) for _, fam, seed in triples] == [
        ("rc_ladder", 0), ("rc_ladder", 1), ("random_topology", 0)]


# ----------------------------------------------------------------------
# End-to-end run
# ----------------------------------------------------------------------
def test_run_corpus_end_to_end():
    spec = mini_spec()
    report = run_corpus(spec)
    results = report["results"]
    assert results["completed"] == spec.total_circuits
    assert results["failures"] == []
    assert set(results["per_family"]) == {"rc_ladder", "random_topology"}
    for record in results["circuits"]:
        assert 0.0 <= record["accuracy"] <= 1.0
        assert 0.0 <= record["posterior"]["accuracy"] <= 1.0
        assert record["content_hash"]
        assert len(record["test_vector_hz"]) == 2
    check_report(report, "mini report")


def test_run_corpus_results_deterministic():
    first = run_corpus(mini_spec())
    second = run_corpus(mini_spec())
    assert json.dumps(first["results"], sort_keys=True) == \
        json.dumps(second["results"], sort_keys=True)


def test_run_corpus_resume_idempotent(tmp_path):
    spec = mini_spec()
    store = tmp_path / "store"
    first = run_corpus(spec, store=store)
    second = run_corpus(spec, store=store)
    assert json.dumps(first["results"], sort_keys=True) == \
        json.dumps(second["results"], sort_keys=True)
    assert first["timings"]["from_cache"] == 0
    assert second["timings"]["from_cache"] == spec.total_circuits


def test_resume_key_tracks_settings(tmp_path):
    """A settings change invalidates cached records (no stale reuse)."""
    store = tmp_path / "store"
    spec = mini_spec()
    run_corpus(spec, store=store)
    changed = dataclasses.replace(
        spec, held_out_deviations=(-0.22, 0.22))
    report = run_corpus(changed, store=store)
    assert report["timings"]["from_cache"] == 0


# ----------------------------------------------------------------------
# --check validation
# ----------------------------------------------------------------------
def test_check_report_catches_tampering():
    report = run_corpus(mini_spec())
    report["results"]["circuits"][0]["accuracy"] = 1.5
    with pytest.raises(SystemExit, match="invalid accuracy"):
        check_report(report, "tampered")


def test_check_report_catches_count_mismatch():
    report = run_corpus(mini_spec())
    report["results"]["circuits"].pop()
    with pytest.raises(SystemExit):
        check_report(report, "short")


def test_check_report_requires_environment():
    report = run_corpus(mini_spec())
    del report["environment"]
    with pytest.raises(SystemExit, match="environment"):
        check_report(report, "no-env")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_runs_spec_file_and_checks(tmp_path, capsys):
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps(mini_spec("cli").to_json_dict()))
    out_dir = tmp_path / "out"
    code = corpus_main(["--spec", str(spec_file), "--out", str(out_dir),
                        "--store", str(tmp_path / "store"),
                        "--check", "--quiet"])
    assert code == 0
    artifact = out_dir / "CORPUS_cli.json"
    report = json.loads(artifact.read_text())
    assert report["artifact"] == "CORPUS_cli"
    assert report["results"]["completed"] == 3
    assert "check passed" in capsys.readouterr().out


def test_cli_engine_override(tmp_path):
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps(mini_spec("eng").to_json_dict()))
    code = corpus_main(["--spec", str(spec_file), "--out", str(tmp_path),
                        "--engine", "factored:cond_limit=1e8", "--quiet"])
    assert code == 0
    report = json.loads((tmp_path / "CORPUS_eng.json").read_text())
    assert report["spec"]["pipeline"]["engine"] == {
        "kind": "factored", "cond_limit": 1e8}


def test_cli_rejects_bad_engine(tmp_path):
    with pytest.raises(SystemExit):
        corpus_main(["--engine", "magic", "--out", str(tmp_path)])
