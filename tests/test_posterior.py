"""Probabilistic diagnosis tier: posterior sanity + determinism.

The load-bearing property is the zero-tolerance limit: with
``tolerance=0`` every Monte-Carlo world collapses onto the nominal
trajectories, and the posterior argmax must reproduce the hard
classifier's decision -- same masked candidate distances, same stable
tie-breaking -- on every registry circuit. Everything after the build
is deterministic NumPy, so repeated builds must agree bitwise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import FaultTrajectoryATPG, PipelineConfig
from repro.circuits.library import BENCHMARK_CIRCUITS, get_benchmark
from repro.diagnosis import (FAULT_FREE_LABEL, PosteriorConfig,
                             PosteriorDiagnoser)
from repro.errors import DiagnosisError, ReproError
from repro.parallelism import ParallelismConfig
from repro.ga import GAConfig
from repro.runtime import codec
from repro.sim import ACAnalysis

QUICK = PipelineConfig(dictionary_points=32, deviations=(-0.2, 0.2),
                       ga=GAConfig(population_size=8, generations=2))

#: Fault deviations never used to build trajectories or sample worlds.
HELD_OUT = (-0.25, -0.1, 0.1, 0.25)

ALL_CIRCUITS = tuple(sorted(BENCHMARK_CIRCUITS))


@pytest.fixture(scope="module")
def atpg_cache():
    """One quick ATPG run per circuit, shared across this module."""
    cache = {}

    def run(name):
        if name not in cache:
            cache[name] = FaultTrajectoryATPG(
                get_benchmark(name), QUICK).run(seed=11)
        return cache[name]

    return run


def _measured_rows(result, cases):
    """dB rows at the (sorted) test vector for (component, deviation)
    fault cases, plus the matching hard-classifier components."""
    info = result.info
    freqs = np.array(sorted(result.test_vector_hz))
    rows = [ACAnalysis(info.circuit.scaled_value(component,
                                                 1.0 + deviation))
            .transfer(info.output_node, freqs).magnitude_db_at(freqs)
            for component, deviation in cases]
    return np.array(rows)


class TestZeroToleranceLimit:
    @pytest.mark.parametrize("circuit_name", ALL_CIRCUITS)
    def test_argmax_matches_hard_classifier(self, atpg_cache,
                                            circuit_name):
        """tolerance -> 0: the posterior winner, tie-breaking and
        deviation estimate all reproduce the hard classifier on
        held-out fault responses, for every registry circuit."""
        result = atpg_cache(circuit_name)
        posterior = PosteriorDiagnoser.from_atpg(
            result, PosteriorConfig(n_samples=2, tolerance=0.0,
                                    seed=11))
        diagnoser = result.batch_diagnoser()
        cases = [(component, deviation)
                 for component in result.info.faultable
                 for deviation in HELD_OUT]
        rows = _measured_rows(result, cases)
        points = diagnoser.signatures(rows)
        hard = diagnoser.classify_points(points)
        soft = posterior.diagnose_points(points)
        for case, hard_one, soft_one in zip(cases, hard, soft):
            assert soft_one.component == hard_one.component, case
            assert soft_one.expected_deviation == pytest.approx(
                hard_one.estimated_deviation, rel=1e-9, abs=1e-12)

    def test_golden_response_wins_fault_free(self, atpg_cache):
        result = atpg_cache("rc_lowpass")
        posterior = PosteriorDiagnoser.from_atpg(
            result, PosteriorConfig(n_samples=2, tolerance=0.0,
                                    seed=11))
        origin = np.zeros((1, posterior.dimension))
        diagnosis = posterior.diagnose_points(origin)[0]
        assert diagnosis.component == FAULT_FREE_LABEL
        assert diagnosis.probability >= 1.0 / len(
            posterior.component_labels)


class TestPosteriorSanity:
    @pytest.fixture(scope="class")
    def sampled(self, atpg_cache):
        result = atpg_cache("sallen_key_lowpass")
        return result, PosteriorDiagnoser.from_atpg(
            result, PosteriorConfig(n_samples=16, tolerance=0.05,
                                    seed=11))

    def test_probabilities_normalised(self, sampled):
        result, posterior = sampled
        cases = [(component, deviation)
                 for component in result.info.faultable
                 for deviation in HELD_OUT]
        rows = _measured_rows(result, cases)
        for diagnosis in posterior.diagnose_db(rows):
            probs = [p for _, p in diagnosis.probabilities]
            assert sum(probs) == pytest.approx(1.0, abs=1e-12)
            assert all(p >= 0.0 for p in probs)
            assert sorted(probs, reverse=True) == probs
            labels = {name for name, _ in diagnosis.probabilities}
            assert labels == set(posterior.component_labels)
            assert 0.0 <= diagnosis.entropy_bits <= np.log2(
                len(posterior.component_labels)) + 1e-12

    def test_test_ranking_covers_candidates(self, sampled):
        result, posterior = sampled
        rows = _measured_rows(result, [(result.info.faultable[0], 0.1)])
        diagnosis = posterior.diagnose_db(rows)[0]
        gains = [gain for _, gain in diagnosis.test_ranking]
        assert len(diagnosis.test_ranking) == posterior._cand_freqs.size
        assert all(np.isfinite(gain) and gain >= 0.0 for gain in gains)
        assert sorted(gains, reverse=True) == gains

    def test_bitwise_reproducible_build(self, sampled, atpg_cache):
        """Same config + seed -> bitwise-identical posteriors and test
        rankings, including over the wire."""
        result, posterior = sampled
        rebuilt = PosteriorDiagnoser.from_atpg(
            result, PosteriorConfig(n_samples=16, tolerance=0.05,
                                    seed=11))
        cases = [(component, deviation)
                 for component in result.info.faultable[:2]
                 for deviation in HELD_OUT]
        rows = _measured_rows(result, cases)
        first = posterior.diagnose_db(rows)
        second = rebuilt.diagnose_db(rows)
        assert first == second
        assert codec.encode_posterior_response(first) == \
            codec.encode_posterior_response(second)

    def test_batch_equals_single_row_calls(self, sampled):
        result, posterior = sampled
        cases = [(component, 0.25)
                 for component in result.info.faultable]
        rows = _measured_rows(result, cases)
        batched = posterior.diagnose_db(rows)
        single = [posterior.diagnose_db(rows[index:index + 1])[0]
                  for index in range(rows.shape[0])]
        assert batched == single


class TestPosteriorConfig:
    @pytest.mark.parametrize("kwargs", [
        {"n_samples": 0},
        {"tolerance": -0.1},
        {"tolerance": 1.0},
        {"distribution": "cauchy"},
        {"noise_db": -1.0},
        {"n_candidates": 0},
        {"samples_per_block": 0},
        {"parallelism": {"n_workers": -1}},
        {"parallelism": {"executor": "bogus"}},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ReproError):
            PosteriorConfig(**kwargs)

    def test_wire_round_trip(self, atpg_cache):
        result = atpg_cache("rc_lowpass")
        posterior = PosteriorDiagnoser.from_atpg(
            result, PosteriorConfig(n_samples=4, seed=11))
        rows = _measured_rows(result, [("R1", 0.25), ("C1", -0.25)])
        diagnoses = posterior.diagnose_db(rows)
        decoded = codec.decode_posterior_response(
            codec.encode_posterior_response(diagnoses))
        assert decoded == diagnoses
        many = codec.decode_posterior_response_many(
            codec.encode_posterior_response_many([diagnoses, []]))
        assert many == [diagnoses, []]


class TestPooledBuild:
    """Worker-pool builds must be bitwise-identical to serial ones."""

    def _diagnoses(self, result, config):
        posterior = PosteriorDiagnoser.from_atpg(result, config)
        rows = _measured_rows(result, [("R1", 0.25), ("C1", -0.25),
                                       ("R1", -0.1)])
        return posterior.diagnose_db(rows)

    @pytest.mark.parametrize("executor", ["process", "thread"])
    def test_pooled_equals_serial(self, atpg_cache, executor):
        result = atpg_cache("sallen_key_lowpass")
        base = dict(n_samples=24, samples_per_block=4, seed=11)
        serial = self._diagnoses(result, PosteriorConfig(**base))
        pooled = self._diagnoses(
            result, PosteriorConfig(
                parallelism=ParallelismConfig(n_workers=3,
                                              executor=executor),
                **base))
        assert pooled == serial
        assert codec.encode_posterior_response(pooled) == \
            codec.encode_posterior_response(serial)

    def test_pooled_per_seed_reproducible(self, atpg_cache):
        """Two pooled builds with one seed agree bitwise; a different
        seed actually changes the sampled worlds."""
        result = atpg_cache("rc_lowpass")
        config = PosteriorConfig(
            n_samples=24, samples_per_block=4, seed=11,
            parallelism=ParallelismConfig(n_workers=2,
                                          executor="process"))
        first = self._diagnoses(result, config)
        again = self._diagnoses(result, config)
        assert first == again
        import dataclasses
        other = self._diagnoses(
            result, dataclasses.replace(config, seed=12))
        assert other != first

    def test_pooled_without_shm_falls_back(self, atpg_cache,
                                           monkeypatch):
        from repro.runtime import shm
        result = atpg_cache("rc_lowpass")
        base = dict(n_samples=24, samples_per_block=4, seed=11)
        serial = self._diagnoses(result, PosteriorConfig(**base))
        monkeypatch.setenv(shm.DISABLE_ENV, "1")
        pooled = self._diagnoses(
            result, PosteriorConfig(
                parallelism=ParallelismConfig(n_workers=2,
                                              executor="process"),
                **base))
        assert pooled == serial
