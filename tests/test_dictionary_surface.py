"""Tests for the fault dictionary and the interpolating response surface."""

import numpy as np
import pytest

from repro.errors import DictionaryError
from repro.faults import (
    FaultDictionary,
    GOLDEN_LABEL,
    ParametricFault,
    ResponseSurface,
    parametric_universe,
)
from repro.sim import ACAnalysis
from repro.units import log_frequency_grid


class TestDictionaryBuild:
    def test_entry_count_and_order(self, biquad_dictionary,
                                   biquad_universe):
        assert len(biquad_dictionary) == len(biquad_universe)
        assert biquad_dictionary.labels == biquad_universe.labels

    def test_components(self, biquad_dictionary):
        assert biquad_dictionary.components == ("R1", "R2", "R3", "R4",
                                                "R5", "C1", "C2")

    def test_entry_lookup(self, biquad_dictionary):
        entry = biquad_dictionary.entry("R3+20%")
        assert isinstance(entry.fault, ParametricFault)
        assert entry.fault.component == "R3"
        assert entry.fault.deviation == pytest.approx(0.2)

    def test_missing_entry(self, biquad_dictionary):
        with pytest.raises(DictionaryError):
            biquad_dictionary.entry("R3+99%")

    def test_contains(self, biquad_dictionary):
        assert "R3+20%" in biquad_dictionary
        assert "nope" not in biquad_dictionary

    def test_entries_for_component(self, biquad_dictionary):
        entries = biquad_dictionary.entries_for("C1")
        assert len(entries) == 8
        assert all(e.fault.component == "C1" for e in entries)

    def test_entries_for_unknown(self, biquad_dictionary):
        with pytest.raises(DictionaryError):
            biquad_dictionary.entries_for("C9")

    def test_response_matrix_shape(self, biquad_dictionary):
        matrix = biquad_dictionary.response_matrix_db()
        assert matrix.shape == (57, len(biquad_dictionary.freqs_hz))

    def test_golden_row_first(self, biquad_dictionary, biquad_info):
        matrix = biquad_dictionary.response_matrix_db()
        golden = ACAnalysis(biquad_info.circuit).transfer(
            biquad_info.output_node, biquad_dictionary.freqs_hz)
        assert np.allclose(matrix[0], golden.magnitude_db, atol=1e-12)

    def test_faulty_responses_differ_from_golden(self, biquad_dictionary):
        matrix = biquad_dictionary.response_matrix_db()
        for row in matrix[1:]:
            assert np.max(np.abs(row - matrix[0])) > 0.05


class TestDictionaryPersistence:
    def test_roundtrip(self, biquad_dictionary, tmp_path):
        stem = tmp_path / "dict"
        biquad_dictionary.save(stem)
        loaded = FaultDictionary.load(stem)
        assert loaded.labels == biquad_dictionary.labels
        assert loaded.circuit_name == biquad_dictionary.circuit_name
        assert loaded.output_node == biquad_dictionary.output_node
        assert np.allclose(loaded.freqs_hz, biquad_dictionary.freqs_hz)
        assert np.allclose(loaded.golden.values,
                           biquad_dictionary.golden.values)
        entry = loaded.entry("C2-40%")
        assert entry.fault.deviation == pytest.approx(-0.4)

    def test_load_missing_files(self, tmp_path):
        with pytest.raises(DictionaryError, match="missing"):
            FaultDictionary.load(tmp_path / "nothing")

    def test_golden_label_preserved(self, biquad_dictionary, tmp_path):
        stem = tmp_path / "dict"
        biquad_dictionary.save(stem)
        loaded = FaultDictionary.load(stem)
        assert loaded.golden.label == GOLDEN_LABEL


class TestResponseSurface:
    def test_labels(self, biquad_surface, biquad_dictionary):
        assert biquad_surface.labels[0] == GOLDEN_LABEL
        assert biquad_surface.labels[1:] == biquad_dictionary.labels

    def test_exact_at_grid_points(self, biquad_surface,
                                  biquad_dictionary):
        grid = biquad_dictionary.freqs_hz
        sample = biquad_surface.sample_db(grid[[3, 17, 120]])
        matrix = biquad_dictionary.response_matrix_db()
        assert np.allclose(sample, matrix[:, [3, 17, 120]], atol=1e-12)

    def test_interpolation_error_bounded(self, biquad_surface,
                                         biquad_info, rng):
        """Surface error vs exact MNA stays below 0.02 dB everywhere."""
        queries = 10.0 ** rng.uniform(
            np.log10(biquad_info.f_min_hz),
            np.log10(biquad_info.f_max_hz), size=25)
        queries = np.sort(queries)
        exact = ACAnalysis(biquad_info.circuit).transfer(
            biquad_info.output_node, queries)
        approx = biquad_surface.golden_db(queries)
        assert np.max(np.abs(exact.magnitude_db - approx)) < 0.02

    def test_clamps_out_of_band(self, biquad_surface):
        low = biquad_surface.sample_db([biquad_surface.f_min_hz / 100.0])
        at_edge = biquad_surface.sample_db([biquad_surface.f_min_hz])
        assert np.allclose(low, at_edge)

    def test_signatures_relative(self, biquad_surface):
        freqs = [500.0, 1500.0]
        signatures = biquad_surface.signatures(freqs)
        assert signatures.shape == (56, 2)
        absolute = biquad_surface.signatures(freqs,
                                             relative_to_golden=False)
        golden = biquad_surface.golden_db(np.array(freqs))
        assert np.allclose(signatures, absolute - golden[None, :])

    def test_rejects_bad_queries(self, biquad_surface):
        with pytest.raises(DictionaryError):
            biquad_surface.sample_db([])
        with pytest.raises(DictionaryError):
            biquad_surface.sample_db([-10.0])

    def test_row_subset(self, biquad_surface):
        rows = np.array([0, 5])
        out = biquad_surface.sample_db([1000.0], rows=rows)
        full = biquad_surface.sample_db([1000.0])
        assert np.allclose(out, full[rows])


class TestSmallUniverseDictionary:
    def test_build_with_input_source(self, rc_info):
        universe = parametric_universe(rc_info.circuit,
                                       deviations=(-0.2, 0.2))
        grid = log_frequency_grid(10.0, 1e5, 51)
        dictionary = FaultDictionary.build(universe, rc_info.output_node,
                                           grid,
                                           input_source="VIN")
        assert len(dictionary) == 4

    def test_grid_mismatch_rejected(self, rc_info):
        universe = parametric_universe(rc_info.circuit,
                                       deviations=(-0.2, 0.2))
        grid = log_frequency_grid(10.0, 1e5, 51)
        dictionary = FaultDictionary.build(universe, rc_info.output_node,
                                           grid)
        other_grid = log_frequency_grid(10.0, 1e5, 11)
        from repro.faults.dictionary import DictionaryEntry
        from repro.sim import FrequencyResponse
        bad = DictionaryEntry(
            ParametricFault("R1", 0.33),
            FrequencyResponse(other_grid,
                              np.ones(11, dtype=complex)))
        with pytest.raises(DictionaryError, match="different grid"):
            FaultDictionary(dictionary.circuit_name,
                            dictionary.output_node, grid,
                            dictionary.golden,
                            list(dictionary.entries) + [bad])
