"""Tests for the benchmark circuit library: every circuit must match its
textbook characteristics when simulated."""

import math

import numpy as np
import pytest

from repro.circuits import (
    BENCHMARK_CIRCUITS,
    get_benchmark,
    khn_state_variable,
    lc_ladder_lowpass5,
    mfb_bandpass,
    rc_ladder,
    rc_lowpass,
    sallen_key_lowpass,
    tow_thomas_biquad,
    twin_t_notch,
    voltage_divider,
)
from repro.errors import CircuitError
from repro.sim import ACAnalysis
from repro.units import log_frequency_grid


def response_of(info, points=401):
    grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, points)
    return ACAnalysis(info.circuit).transfer(info.output_node, grid,
                                             info.input_source)


class TestRegistry:
    def test_all_benchmarks_build_and_validate(self):
        for name in BENCHMARK_CIRCUITS:
            info = get_benchmark(name)
            info.circuit.validate()
            assert info.faultable, name

    def test_all_benchmarks_simulate(self):
        for name in BENCHMARK_CIRCUITS:
            info = get_benchmark(name)
            response = response_of(info, points=41)
            assert np.all(np.isfinite(response.magnitude_db)), name

    def test_unknown_name(self):
        with pytest.raises(CircuitError, match="unknown benchmark"):
            get_benchmark("nonexistent")

    def test_kwargs_forwarded(self):
        info = get_benchmark("rc_lowpass", f0_hz=2e3)
        assert info.f0_hz == 2e3


class TestTowThomas:
    """The paper's CUT: H(s) = (1/(R1 R4 C1 C2)) /
    (s^2 + s/(R2 C1) + 1/(R3 R4 C1 C2))."""

    def test_seven_faultable_passives(self):
        info = tow_thomas_biquad()
        assert len(info.faultable) == 7
        assert set(info.faultable) == {"R1", "R2", "R3", "R4", "R5",
                                       "C1", "C2"}

    def test_dc_gain_is_r3_over_r1(self):
        info = tow_thomas_biquad(gain=2.5)
        response = response_of(info)
        assert response.dc_gain_db() == pytest.approx(
            20.0 * math.log10(2.5), abs=1e-2)

    def test_magnitude_at_f0_equals_q(self):
        # |H(j w0)| = Q * dc_gain for this biquad.
        for q in (0.8, 1.0, 3.0):
            info = tow_thomas_biquad(q=q)
            response = response_of(info)
            assert response.magnitude_db_at(info.f0_hz) == pytest.approx(
                20.0 * math.log10(q), abs=0.02)

    def test_rolloff_40db_per_decade(self):
        info = tow_thomas_biquad()
        response = response_of(info)
        drop = response.magnitude_db_at(1e4) - response.magnitude_db_at(1e5)
        assert drop == pytest.approx(40.0, abs=0.5)

    def test_normalized_design(self):
        info = tow_thomas_biquad(normalized=True)
        assert info.circuit["R1"].value == pytest.approx(1.0)
        assert info.circuit["C1"].value == pytest.approx(1.0)
        # w0 = 1 rad/s -> f0 = 1/(2 pi).
        assert info.f0_hz == pytest.approx(1.0 / (2.0 * math.pi))

    def test_macro_variant_close_to_ideal_in_band(self):
        ideal = response_of(tow_thomas_biquad(ideal_opamps=True))
        macro = response_of(tow_thomas_biquad(ideal_opamps=False))
        # At and below f0 the uA741-class macro tracks the ideal filter.
        for f in (10.0, 100.0, 1000.0):
            assert macro.magnitude_db_at(f) == pytest.approx(
                ideal.magnitude_db_at(f), abs=0.1)

    def test_invalid_parameters(self):
        with pytest.raises(CircuitError):
            tow_thomas_biquad(q=-1.0)
        with pytest.raises(CircuitError):
            tow_thomas_biquad(gain=0.0)


class TestSallenKey:
    def test_butterworth_cutoff(self):
        info = sallen_key_lowpass(f0_hz=1e3)  # default q = 1/sqrt(2)
        response = response_of(info)
        assert response.cutoff_3db() == pytest.approx(1000.0, rel=5e-3)

    def test_unity_dc_gain(self):
        response = response_of(sallen_key_lowpass())
        assert response.dc_gain_db() == pytest.approx(0.0, abs=1e-3)

    def test_q_controls_peaking(self):
        low_q = response_of(sallen_key_lowpass(q=0.5))
        high_q = response_of(sallen_key_lowpass(q=3.0))
        assert high_q.peak()[1] > 5.0
        assert low_q.peak()[1] == pytest.approx(0.0, abs=0.1)


class TestKHN:
    def test_lp_dc_gain_unity(self):
        response = response_of(khn_state_variable())
        assert response.dc_gain_db() == pytest.approx(0.0, abs=0.01)

    def test_bandpass_output_peaks_at_f0(self):
        info = khn_state_variable(q=5.0)
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 801)
        bp = ACAnalysis(info.circuit).transfer(
            info.extra_outputs["bandpass"], grid)
        f_peak, _ = bp.peak()
        assert f_peak == pytest.approx(info.f0_hz, rel=0.02)

    def test_highpass_asymptote(self):
        info = khn_state_variable()
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 201)
        hp = ACAnalysis(info.circuit).transfer(
            info.extra_outputs["highpass"], grid)
        # |Hhp| -> 1 well above f0.
        assert hp.magnitude_db_at(info.f0_hz * 300.0) == pytest.approx(
            0.0, abs=0.1)

    def test_low_q_rejected(self):
        with pytest.raises(CircuitError):
            khn_state_variable(q=0.2)


class TestMFB:
    def test_centre_frequency_and_gain(self):
        info = mfb_bandpass(f0_hz=1e3, q=2.0, gain=1.0)
        response = response_of(info, points=801)
        f_peak, peak_db = response.peak()
        assert f_peak == pytest.approx(1000.0, rel=0.02)
        assert peak_db == pytest.approx(0.0, abs=0.05)

    def test_bandwidth_sets_q(self):
        q = 4.0
        info = mfb_bandpass(f0_hz=1e3, q=q, gain=1.0)
        response = response_of(info, points=1601)
        peak_f, peak_db = response.peak()
        mags = response.magnitude_db
        above = response.freqs_hz[mags >= peak_db - 3.0103]
        bandwidth = above.max() - above.min()
        assert peak_f / bandwidth == pytest.approx(q, rel=0.1)

    def test_gain_q_constraint(self):
        with pytest.raises(CircuitError, match="2\\*q\\^2"):
            mfb_bandpass(q=0.5, gain=1.0)


class TestTwinT:
    def test_notch_frequency(self):
        info = twin_t_notch(f0_hz=1e3)
        response = response_of(info, points=1601)
        f_notch, depth_db = response.notch()
        assert f_notch == pytest.approx(1000.0, rel=0.02)
        assert depth_db < -60.0

    def test_passband_flat_far_from_notch(self):
        info = twin_t_notch(f0_hz=1e3)
        response = response_of(info)
        assert response.magnitude_db_at(10.0) == pytest.approx(0.0,
                                                               abs=0.2)
        assert response.magnitude_db_at(1e5) == pytest.approx(0.0,
                                                              abs=0.2)

    def test_unbuffered_variant(self):
        info = twin_t_notch(buffered=False)
        response = response_of(info, points=401)
        _, depth_db = response.notch()
        assert depth_db < -40.0


class TestLadders:
    def test_lc_butterworth_passband_and_cutoff(self):
        info = lc_ladder_lowpass5(f0_hz=1e4)
        response = response_of(info)
        assert response.dc_gain_db() == pytest.approx(-6.0206, abs=0.01)
        assert response.cutoff_3db() == pytest.approx(1e4, rel=0.02)

    def test_lc_steep_rolloff(self):
        info = lc_ladder_lowpass5(f0_hz=1e4)
        response = response_of(info)
        drop = (response.magnitude_db_at(2e4) -
                response.magnitude_db_at(4e4))
        # 5th order: ~30 dB per octave.
        assert drop == pytest.approx(30.0, abs=3.0)

    def test_rc_ladder_sections(self):
        info = rc_ladder(sections=7)
        assert len(info.circuit.passive_names) == 14
        assert info.output_node == "n7"

    def test_rc_ladder_needs_sections(self):
        with pytest.raises(CircuitError):
            rc_ladder(sections=0)


class TestSimple:
    def test_divider_ratio(self):
        info = voltage_divider(ratio=0.25)
        response = response_of(info, points=11)
        assert np.allclose(response.magnitude, 0.25, rtol=1e-12)

    def test_divider_bad_ratio(self):
        with pytest.raises(CircuitError):
            voltage_divider(ratio=1.5)

    def test_rc_lowpass_cutoff(self):
        response = response_of(rc_lowpass(f0_hz=5e3))
        assert response.cutoff_3db() == pytest.approx(5e3, rel=1e-3)

    def test_circuit_info_validates_fields(self):
        from repro.circuits import CircuitInfo
        info = rc_lowpass()
        with pytest.raises(CircuitError):
            CircuitInfo(info.circuit, "NOPE", "out", ("R1",), 1e3, 1.0,
                        1e6)
        with pytest.raises(CircuitError):
            CircuitInfo(info.circuit, "VIN", "zz", ("R1",), 1e3, 1.0, 1e6)
        with pytest.raises(CircuitError):
            CircuitInfo(info.circuit, "VIN", "out", ("R9",), 1e3, 1.0,
                        1e6)
