"""Telemetry spine: exposition conformance, tracing, profiling bridge.

The exposition tests pin Prometheus text format 0.0.4 details that
real scrapers depend on -- label escaping, cumulative ``le`` buckets
ending at ``+Inf``, ``# HELP``/``# TYPE`` comment lines -- and prove
the module's own parser round-trips its renderer (the same parser the
cluster front and the CI smoke job use as a validator).
"""

from __future__ import annotations

import asyncio
import math

import pytest

from repro import profiling
from repro.runtime import telemetry
from repro.runtime.telemetry import (DEFAULT_SECONDS_BUCKETS,
                                     MetricsRegistry,
                                     ProfilingCollector, Tracer,
                                     parse_exposition,
                                     render_families,
                                     render_registries)


# ----------------------------------------------------------------------
# Exposition format conformance
# ----------------------------------------------------------------------
class TestExposition:
    def test_counter_help_type_and_value_lines(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "Jobs processed.")
        counter.inc()
        counter.inc(2)
        text = registry.render()
        assert "# HELP jobs_total Jobs processed.\n" in text
        assert "# TYPE jobs_total counter\n" in text
        assert "jobs_total 3\n" in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "Hits.", ("path",))
        counter.labels('a"b\\c\nd').inc()
        text = registry.render()
        assert 'hits_total{path="a\\"b\\\\c\\nd"} 1' in text
        # The escaped form must survive a parse round-trip verbatim.
        families = parse_exposition(text)
        ((_, labels, value),) = families["hits_total"]["samples"]
        assert labels == {"path": 'a"b\\c\nd'}
        assert value == 1

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency_seconds", "Latency.", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        text = registry.render()
        assert 'latency_seconds_bucket{le="0.1"} 1\n' in text
        assert 'latency_seconds_bucket{le="1"} 3\n' in text
        assert 'latency_seconds_bucket{le="10"} 4\n' in text
        assert 'latency_seconds_bucket{le="+Inf"} 5\n' in text
        assert "latency_seconds_count 5\n" in text
        assert "latency_seconds_sum 56.05" in text

    def test_histogram_observation_on_bucket_boundary(self):
        # Prometheus buckets are upper-inclusive: le="1" counts 1.0.
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "H.", buckets=(1.0, 2.0))
        histogram.observe(1.0)
        assert 'h_bucket{le="1"} 1\n' in registry.render()

    def test_parse_back_round_trip(self):
        registry = MetricsRegistry()
        counter = registry.counter("reqs_total", "Requests.",
                                   ("code", "path"))
        counter.labels("200", "/v1/diagnose").inc(7)
        counter.labels("404", "/v1/ghost").inc()
        registry.gauge("depth", "Queue depth.").set(3)
        histogram = registry.histogram("lat_seconds", "Latency.",
                                       buckets=(0.5, 1.0))
        histogram.observe(0.2)
        text = registry.render()

        families = parse_exposition(text)
        assert families["reqs_total"]["type"] == "counter"
        assert families["reqs_total"]["help"] == "Requests."
        samples = {tuple(sorted(labels.items())): value
                   for _, labels, value
                   in families["reqs_total"]["samples"]}
        assert samples[(("code", "200"),
                        ("path", "/v1/diagnose"))] == 7
        assert families["depth"]["samples"] == [("depth", {}, 3.0)]
        # Histogram child samples group under the family name.
        names = {name for name, _, _
                 in families["lat_seconds"]["samples"]}
        assert names == {"lat_seconds_bucket", "lat_seconds_sum",
                         "lat_seconds_count"}
        # And the re-renderer emits text the parser accepts again.
        assert parse_exposition(render_families(families)).keys() == \
            families.keys()

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_exposition("# TYPE x sideways\nx 1\n")
        with pytest.raises(ValueError):
            parse_exposition('x{a="unterminated} 1\n')
        with pytest.raises(ValueError):
            parse_exposition("x notanumber\n")

    def test_registry_is_idempotent_but_typed(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", "X.")
        assert registry.counter("x_total", "X.") is counter
        with pytest.raises(ValueError):
            registry.gauge("x_total", "X.")
        with pytest.raises(ValueError):
            registry.counter("x_total", "X.", ("label",))

    def test_invalid_names_and_negative_counters(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name", "Bad.")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "Ok.", ("bad-label",))
        counter = registry.counter("ok_total", "Ok.")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_callback_evaluates_at_render(self):
        registry = MetricsRegistry()
        state = {"value": 1.0}
        registry.gauge("disk_bytes", "Disk.").set_function(
            lambda: state["value"])
        assert "disk_bytes 1\n" in registry.render()
        state["value"] = 2.0
        assert "disk_bytes 2\n" in registry.render()
        # A failing callback renders NaN instead of breaking a scrape.
        registry.gauge("disk_bytes", "Disk.").set_function(
            lambda: 1 / 0)
        rendered = registry.render()
        assert "disk_bytes NaN" in rendered

    def test_render_registries_concatenates(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("a_total", "A.").inc()
        second.counter("b_total", "B.").inc()
        families = parse_exposition(render_registries(first, second))
        assert {"a_total", "b_total"} <= families.keys()

    def test_nan_and_inf_render(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "G.")
        gauge.set(math.inf)
        assert "g +Inf\n" in registry.render()
        gauge.set(-math.inf)
        assert "g -Inf\n" in registry.render()


# ----------------------------------------------------------------------
# Trace spans + request ids
# ----------------------------------------------------------------------
class TestTracer:
    def test_spans_nest_and_record_duration(self):
        tracer = Tracer(capacity=8)
        with tracer.span("outer", kind="request") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.children == [inner]
        assert inner.duration_s is not None
        assert inner.duration_s <= outer.duration_s
        (tree,) = tracer.recent()
        assert tree["name"] == "outer"
        assert tree["attrs"] == {"kind": "request"}
        assert tree["children"][0]["name"] == "inner"
        assert tree["children"][0]["duration_ms"] >= 0.0

    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        names = [span["name"] for span in tracer.recent()]
        assert names == ["s2", "s3", "s4"]

    def test_concurrent_tasks_get_separate_trees(self):
        tracer = Tracer(capacity=8)

        async def worker(name):
            with tracer.span(name):
                await asyncio.sleep(0)
                with tracer.span(f"{name}.child"):
                    await asyncio.sleep(0)

        async def run():
            await asyncio.gather(worker("a"), worker("b"))

        asyncio.run(run())
        roots = {span["name"]: span for span in tracer.recent()}
        assert set(roots) == {"a", "b"}
        assert [c["name"] for c in roots["a"]["children"]] == \
            ["a.child"]
        assert [c["name"] for c in roots["b"]["children"]] == \
            ["b.child"]

    def test_request_id_validation(self):
        good = telemetry.ensure_request_id("req-1.A_2")
        assert good == "req-1.A_2"
        assert telemetry.current_request_id() == good
        # Injection attempts and garbage get replaced, not echoed.
        bad = telemetry.ensure_request_id("evil\r\nSet-Cookie: x")
        assert bad != "evil\r\nSet-Cookie: x"
        assert telemetry._REQUEST_ID_RE.match(bad)
        assert telemetry._REQUEST_ID_RE.match(telemetry.new_request_id())
        telemetry.set_request_id(None)
        assert telemetry.current_request_id() is None


# ----------------------------------------------------------------------
# Profiling bridge
# ----------------------------------------------------------------------
class TestProfilingBridge:
    def test_events_land_as_metric_families(self):
        registry = MetricsRegistry()
        with ProfilingCollector(registry):
            profiling.profile_event("engine.solve", 0.25,
                                    engine="batched", variants=32,
                                    freqs=100, chunks=4)
            profiling.profile_event("engine.stamp", 0.01,
                                    engine="batched")
            profiling.profile_event("pipeline.dictionary", 1.5,
                                    circuit="rc_lowpass")
            profiling.profile_event("ga.generation", 0.02,
                                    generation=0, population=30)
            profiling.profile_event("surface.sample", 0.001,
                                    rows=40, freqs=4)
        families = parse_exposition(registry.render())
        assert families["repro_engine_solve_seconds"]["type"] == \
            "histogram"
        solved = {tuple(labels.items()): value for _, labels, value
                  in families["repro_engine_variants_solved_total"]
                  ["samples"]}
        assert solved[(("engine", "batched"),)] == 32
        stages = {labels["stage"] for _, labels, _
                  in families["repro_pipeline_stage_seconds"]["samples"]
                  if "stage" in labels}
        assert "dictionary" in stages
        assert families["repro_ga_generations_total"]["samples"] \
            [0][2] == 1
        assert families["repro_surface_rows_total"]["samples"] \
            [0][2] == 40

    def test_lowrank_events_land_as_metric_families(self):
        """The factored engine's event vocabulary maps onto the
        ``repro_engine_lowrank_*`` families, exposition-conformant."""
        registry = MetricsRegistry()
        with ProfilingCollector(registry):
            profiling.profile_event("engine.factor", 0.02,
                                    engine="factored", mode="dense",
                                    freqs=401, rhs_columns=5)
            profiling.profile_event("engine.factor", 0.01,
                                    engine="factored", mode="sparse",
                                    freqs=401, rhs_columns=5)
            profiling.profile_event("engine.lowrank", 0.005,
                                    engine="factored", updates=36,
                                    fallbacks=3,
                                    fallback_conditioning=2,
                                    fallback_rank=1,
                                    fallback_nonfinite=0)
        families = parse_exposition(registry.render())
        assert families["repro_engine_lowrank_updates_total"] \
            ["samples"][0][2] == 36
        fallbacks = {labels["reason"]: value for _, labels, value in
                     families["repro_engine_lowrank_fallbacks_total"]
                     ["samples"]}
        assert fallbacks == {"conditioning": 2, "rank": 1}
        assert families["repro_engine_lowrank_factor_seconds"] \
            ["type"] == "histogram"
        modes = {labels["mode"] for _, labels, _ in
                 families["repro_engine_lowrank_factor_seconds"]
                 ["samples"] if "mode" in labels}
        assert modes == {"dense", "sparse"}
        counts = [value for name, _, value in
                  families["repro_engine_lowrank_update_seconds"]
                  ["samples"] if name.endswith("_count")]
        assert sum(counts) == 1

    def test_factored_engine_feeds_lowrank_metrics_end_to_end(self):
        """A real FactoredMnaEngine solve under the collector books
        updates, a dense-mode factorisation and a factored solve."""
        import numpy as np
        from repro import FactoredMnaEngine, rc_lowpass
        from repro.sim import VariantSpec
        info = rc_lowpass()
        registry = MetricsRegistry()
        engine = FactoredMnaEngine(info.circuit)
        r1 = info.circuit["R1"]
        variants = (VariantSpec(name="nominal"),
                    VariantSpec((r1.with_value(r1.value * 1.2),),
                                name="R1:+20%"))
        with ProfilingCollector(registry):
            engine.transfer_block(info.output_node,
                                  np.array([100.0, 1000.0]), variants,
                                  info.input_source)
        families = parse_exposition(registry.render())
        assert families["repro_engine_lowrank_updates_total"] \
            ["samples"][0][2] == 1
        modes = {labels.get("mode") for _, labels, _ in
                 families["repro_engine_lowrank_factor_seconds"]
                 ["samples"]}
        assert "dense" in modes
        engines = {labels["engine"] for _, labels, _ in
                   families["repro_engine_solve_seconds"]["samples"]
                   if "engine" in labels}
        assert "factored" in engines

    def test_uninstall_detaches_the_sink(self):
        registry = MetricsRegistry()
        collector = ProfilingCollector(registry)
        collector.install()
        collector.uninstall()
        profiling.profile_event("engine.stamp", 1.0, engine="scalar")
        families = parse_exposition(registry.render())
        counts = [value for name, _, value
                  in families["repro_engine_stamp_seconds"]["samples"]
                  if name.endswith("_count")]
        assert sum(counts) == 0

    def test_sink_errors_never_reach_the_hot_path(self):
        def broken(stage, seconds, meta):
            raise RuntimeError("boom")

        profiling.add_profile_sink(broken)
        try:
            profiling.profile_event("engine.stamp", 0.0,
                                    engine="scalar")
        finally:
            profiling.remove_profile_sink(broken)

    def test_default_instrumentation_is_installed(self):
        # Importing repro.runtime.telemetry wires engine/pipeline
        # events into the process registry exactly once.
        collector = telemetry.install_default_instrumentation()
        assert collector is telemetry.install_default_instrumentation()
        assert profiling.enabled()

    def test_profiled_context_manager_emits_once(self):
        events = []
        sink = profiling.add_profile_sink(
            lambda stage, seconds, meta: events.append(
                (stage, seconds, meta)))
        try:
            with profiling.profiled("pipeline.exact", circuit="rc"):
                pass
        finally:
            profiling.remove_profile_sink(sink)
        ((stage, seconds, meta),) = events
        assert stage == "pipeline.exact"
        assert seconds >= 0.0
        assert meta == {"circuit": "rc"}
