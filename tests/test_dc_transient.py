"""Tests for DC operating point and transient analysis."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.errors import SimulationError, SingularCircuitError
from repro.sim import (
    DCAnalysis,
    MultitoneWaveform,
    PulseWaveform,
    SineWaveform,
    StepWaveform,
    TransientAnalysis,
)


def rc_circuit(r=1000.0, c=1e-6, vdc=1.0):
    ckt = Circuit("rc")
    ckt.add_voltage_source("V1", "in", "0", dc=vdc, ac=1.0)
    ckt.add_resistor("R1", "in", "out", r)
    ckt.add_capacitor("C1", "out", "0", c)
    return ckt


class TestDC:
    def test_divider_operating_point(self):
        ckt = Circuit("div")
        ckt.add_voltage_source("V1", "in", "0", dc=12.0)
        ckt.add_resistor("R1", "in", "out", 8000.0)
        ckt.add_resistor("R2", "out", "0", 4000.0)
        op = DCAnalysis(ckt).operating_point()
        assert op.voltage("out") == pytest.approx(4.0)
        assert op.voltage("0") == 0.0
        assert op.current("V1") == pytest.approx(-1e-3)

    def test_capacitor_is_dc_open(self):
        op = DCAnalysis(rc_circuit()).operating_point()
        # No DC current through C -> no drop across R.
        assert op.voltage("out") == pytest.approx(1.0)

    def test_summary_text(self):
        op = DCAnalysis(rc_circuit()).operating_point()
        text = op.summary()
        assert "V(out)" in text and "I(V1)" in text

    def test_singular_hint(self):
        ckt = Circuit("bad")
        ckt.add_voltage_source("V1", "in", "0", dc=1.0)
        ckt.add_capacitor("C1", "in", "mid", 1e-9)
        ckt.add_capacitor("C2", "mid", "0", 1e-9)
        with pytest.raises(SingularCircuitError, match="gmin"):
            DCAnalysis(ckt).operating_point()


class TestWaveforms:
    def test_step(self):
        w = StepWaveform(initial=0.0, final=5.0, t_delay=1e-3)
        assert w.value(0.0) == 0.0
        assert w.value(2e-3) == 5.0
        out = w.values(np.array([0.0, 0.5e-3, 1.5e-3]))
        assert list(out) == [0.0, 0.0, 5.0]

    def test_sine(self):
        w = SineWaveform(amplitude=2.0, freq_hz=1000.0)
        quarter = 1.0 / 4000.0
        assert w.value(quarter) == pytest.approx(2.0)
        assert w.values(np.array([0.0]))[0] == pytest.approx(0.0)

    def test_multitone_sums(self):
        w = MultitoneWaveform((1000.0, 3000.0), amplitudes=(1.0, 0.5))
        t = 1.0 / 12000.0
        expected = np.sin(2 * np.pi * 1000 * t) + \
            0.5 * np.sin(2 * np.pi * 3000 * t)
        assert w.value(t) == pytest.approx(expected)

    def test_multitone_length_mismatch(self):
        w = MultitoneWaveform((1.0, 2.0), amplitudes=(1.0,))
        with pytest.raises(SimulationError):
            w.value(0.0)

    def test_pulse_phases(self):
        w = PulseWaveform(v1=0.0, v2=1.0, t_delay=0.0, t_rise=1e-6,
                          t_fall=1e-6, t_width=1e-3, period=2e-3)
        assert w.value(0.5e-6) == pytest.approx(0.5)   # mid-rise
        assert w.value(0.5e-3) == 1.0                   # plateau
        assert w.value(1.5e-3) == 0.0                   # off
        assert w.value(2.5e-3) == 1.0                   # next period


class TestTransient:
    def test_rc_step_matches_analytic(self):
        tau = 1e-3  # R=1k, C=1u
        circuit = rc_circuit(vdc=0.0)
        analysis = TransientAnalysis(circuit)
        result = analysis.run(
            t_stop=5 * tau, dt=tau / 200.0,
            waveforms={"V1": StepWaveform(0.0, 1.0, 0.0)},
            initial="zero")
        expected = 1.0 - np.exp(-result.times / tau)
        assert np.allclose(result.voltage("out"), expected, atol=2e-3)

    def test_rc_sine_steady_state_matches_ac(self):
        circuit = rc_circuit()
        f0 = 1.0 / (2 * np.pi * 1e-3)  # pole frequency
        analysis = TransientAnalysis(circuit)
        result = analysis.run(
            t_stop=20.0 / f0, dt=1.0 / (f0 * 400.0),
            waveforms={"V1": SineWaveform(amplitude=1.0, freq_hz=f0)})
        # Steady-state peak amplitude should be 1/sqrt(2).
        steady = result.voltage("out")[result.times > 10.0 / f0]
        assert steady.max() == pytest.approx(1.0 / np.sqrt(2.0), rel=2e-2)

    def test_dc_initial_condition(self):
        circuit = rc_circuit(vdc=1.0)
        result = TransientAnalysis(circuit).run(t_stop=1e-3, dt=1e-5)
        # Already at equilibrium: output stays at 1 V.
        assert np.allclose(result.voltage("out"), 1.0, atol=1e-9)

    def test_final_value_and_settling(self):
        tau = 1e-3
        circuit = rc_circuit(vdc=0.0)
        result = TransientAnalysis(circuit).run(
            t_stop=10 * tau, dt=tau / 100.0,
            waveforms={"V1": StepWaveform(0.0, 1.0, 0.0)},
            initial="zero")
        assert result.final_value("out") == pytest.approx(1.0, abs=1e-4)
        settle = result.settling_time("out", tolerance=0.02)
        # ln(1/0.02) ~ 3.9 time constants.
        assert settle == pytest.approx(3.9 * tau, rel=0.15)

    def test_unknown_node_raises(self):
        result = TransientAnalysis(rc_circuit()).run(t_stop=1e-4, dt=1e-6)
        with pytest.raises(SimulationError, match="no transient data"):
            result.voltage("zz")

    def test_bad_time_step_rejected(self):
        with pytest.raises(SimulationError):
            TransientAnalysis(rc_circuit()).run(t_stop=1e-3, dt=0.0)

    def test_waveform_on_missing_source_rejected(self):
        analysis = TransientAnalysis(rc_circuit())
        with pytest.raises(SimulationError, match="non-source"):
            analysis.run(t_stop=1e-4, dt=1e-6,
                         waveforms={"R1": StepWaveform()})

    def test_bad_initial_mode(self):
        with pytest.raises(SimulationError, match="initial"):
            TransientAnalysis(rc_circuit()).run(t_stop=1e-4, dt=1e-6,
                                                initial="warm")

    def test_opamp_circuit_transient(self, biquad_info):
        """The biquad settles to DC gain 1 after an input step."""
        analysis = TransientAnalysis(biquad_info.circuit)
        result = analysis.run(
            t_stop=12e-3, dt=2e-6,
            waveforms={"VIN": StepWaveform(0.0, 1.0, 0.0)},
            initial="zero")
        assert result.final_value("lp") == pytest.approx(1.0, abs=0.02)
