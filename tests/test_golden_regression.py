"""Golden-file regression: fixed-seed diagnosis outputs stay put.

Aggregate metrics can hide compensating drift (one circuit improves,
another regresses). These tests replay the exact fixed-seed pipeline
runs recorded under ``tests/golden/`` and compare *per-case*: the
GA-selected test vector, every predicted component, every estimated
deviation/distance/margin. Any structural change in diagnosis behaviour
fails with the precise circuit/component/deviation that moved.

Intentional changes: regenerate with
``PYTHONPATH=src python tests/golden/update_golden.py`` and review the
diff.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

_spec = importlib.util.spec_from_file_location(
    "golden_updater", GOLDEN_DIR / "update_golden.py")
golden_updater = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(golden_updater)

#: Relative tolerance for float comparison, per engine. The golden
#: files are generated under the batched engine; JSON round-trips
#: floats exactly (repr form), so the batched tolerance only absorbs
#: last-ulp library noise. The factored engine is a different
#: floating-point computation (Sherman-Morrison-Woodbury low-rank
#: updates) bounded to ~1e-9 scaled on the parametric golden grid, so
#: it gets a correspondingly wider -- still tight -- band.
RTOL = {"batched": 1e-9, "factored": 1e-7}

#: Golden margins at or below this are *numerical ties*: two fault
#: trajectories (symmetric components -- R3/R5 in the Tow-Thomas,
#: L2/L4 in the LC ladder) sit at last-ulp-identical distance from the
#: measured point, and which one wins depends on rounding noise. The
#: batched engine reproduces the pinned winner bitwise; an engine with
#: a different floating-point path (factored) may break such a tie the
#: other way, which is accepted only below this threshold. Real
#: margins in the golden set are >= ~9e-7, five orders above it.
TIE_MARGIN = 1e-9


def _approx(value, rtol=RTOL["batched"]):
    return pytest.approx(value, rel=rtol, abs=1e-12)


def test_golden_files_cover_every_circuit():
    committed = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert committed == set(golden_updater.CIRCUITS), (
        "tests/golden/ out of sync with update_golden.CIRCUITS -- "
        "run tests/golden/update_golden.py and commit the result")


def test_golden_circuits_cover_the_whole_registry():
    from repro import BENCHMARK_CIRCUITS
    assert set(golden_updater.CIRCUITS) == set(BENCHMARK_CIRCUITS), (
        "a registry circuit has no golden pin -- add it to "
        "update_golden.CIRCUITS and regenerate")


@pytest.mark.parametrize("engine", sorted(RTOL))
@pytest.mark.parametrize("circuit_name", golden_updater.CIRCUITS)
def test_diagnosis_outputs_match_golden(circuit_name, engine):
    golden = json.loads(
        (GOLDEN_DIR / f"{circuit_name}.json").read_text())
    current = golden_updater.generate_golden(circuit_name,
                                             engine=engine)
    rtol = RTOL[engine]

    assert current["circuit"] == golden["circuit"]
    assert current["seed"] == golden["seed"]
    assert current["fault_deviations"] == golden["fault_deviations"]
    assert current["test_vector_hz"] == _approx(
        golden["test_vector_hz"], rtol), \
        f"{circuit_name}: GA-selected test vector drifted"

    assert len(current["cases"]) == len(golden["cases"])
    for case, expected in zip(current["cases"], golden["cases"]):
        label = (f"{circuit_name} fault "
                 f"{expected['injected_component']}"
                 f"{expected['injected_deviation']:+.0%}")
        assert case["injected_component"] == \
            expected["injected_component"]
        assert case["injected_deviation"] == \
            expected["injected_deviation"]
        if case["predicted_component"] != \
                expected["predicted_component"]:
            tied = expected["margin"] is not None and \
                expected["margin"] <= TIE_MARGIN
            assert engine != "batched" and tied, \
                f"{label}: predicted component changed"
            # A broken tie names the twin trajectory; its distance must
            # still equal the pinned one (that is what "tie" means).
            # The estimated deviation belongs to the other component,
            # so it is not comparable.
            assert case["distance"] == _approx(expected["distance"],
                                               rtol), \
                f"{label}: tied-flip distance drifted"
            continue
        assert case["perpendicular"] == expected["perpendicular"], \
            f"{label}: perpendicular flag changed"
        for field in ("estimated_deviation", "distance", "margin"):
            if expected[field] is None:
                assert case[field] is None, f"{label}: {field} changed"
            else:
                assert case[field] == _approx(expected[field], rtol), \
                    f"{label}: {field} drifted"
