"""Tests for sensitivity analysis and parameter sweeps."""

import numpy as np
import pytest

from repro.circuits import rc_lowpass, voltage_divider
from repro.errors import SimulationError
from repro.sim import (
    deviation_sweep,
    rank_frequencies,
    sensitivity_analysis,
    value_sweep,
)
from repro.units import log_frequency_grid


@pytest.fixture(scope="module")
def rc():
    return rc_lowpass(f0_hz=1e3)


@pytest.fixture(scope="module")
def rc_sensitivity(rc):
    grid = log_frequency_grid(10.0, 1e5, 81)
    return sensitivity_analysis(rc.circuit, rc.output_node, grid)


class TestSensitivity:
    def test_rc_r_and_c_sensitivities_equal(self, rc_sensitivity):
        """R and C enter H only through the product RC, so their
        log-sensitivities must be identical."""
        assert np.allclose(rc_sensitivity.component("R1"),
                           rc_sensitivity.component("C1"), atol=1e-6)

    def test_rc_analytic_value_at_pole(self, rc_sensitivity):
        """|H|dB = -10 log10(1 + (f/f0)^2) with f0 = 1/(2 pi R C):
        d|H|dB/dln R = -(20/ln10) * x/(1+x), x=(f/f0)^2 -> -4.34 at f0."""
        value = np.interp(np.log10(1000.0),
                          np.log10(rc_sensitivity.freqs_hz),
                          rc_sensitivity.component("R1"))
        expected = -(20.0 / np.log(10.0)) * 0.5
        assert value == pytest.approx(expected, rel=1e-3)

    def test_dc_sensitivity_is_zero(self, rc_sensitivity):
        assert rc_sensitivity.component("R1")[0] == pytest.approx(0.0,
                                                                  abs=1e-3)

    def test_most_sensitive_frequency_in_stopband(self, rc_sensitivity):
        """x/(1+x) is monotone: sensitivity magnitude saturates above
        f0, so the argmax sits in the upper part of the grid."""
        assert rc_sensitivity.most_sensitive_frequency("R1") > 2000.0

    def test_unknown_component_raises(self, rc_sensitivity):
        with pytest.raises(SimulationError):
            rc_sensitivity.component("R9")

    def test_matrix_shape(self, rc_sensitivity):
        matrix = rc_sensitivity.matrix(order=("R1", "C1"))
        assert matrix.shape == (2, 81)

    def test_explicit_components(self, rc):
        grid = log_frequency_grid(10.0, 1e4, 11)
        result = sensitivity_analysis(rc.circuit, rc.output_node, grid,
                                      components=("R1",))
        assert set(result.sensitivities) == {"R1"}

    def test_bad_rel_step(self, rc):
        with pytest.raises(SimulationError):
            sensitivity_analysis(rc.circuit, rc.output_node,
                                 np.array([100.0]), rel_step=0.9)


class TestRankFrequencies:
    def test_biquad_ranking(self, biquad_info):
        from repro.sim import sensitivity_analysis as sens
        grid = log_frequency_grid(biquad_info.f_min_hz,
                                  biquad_info.f_max_hz, 61)
        result = sens(biquad_info.circuit, biquad_info.output_node, grid,
                      components=biquad_info.faultable)
        picked = rank_frequencies(result, count=2, min_decade_gap=0.3)
        assert len(picked) == 2
        assert picked[0] < picked[1]
        assert abs(np.log10(picked[1] / picked[0])) >= 0.3

    def test_impossible_gap_raises(self, rc):
        grid = log_frequency_grid(100.0, 200.0, 11)  # 0.3 decades only
        result = sensitivity_analysis(rc.circuit, rc.output_node, grid)
        with pytest.raises(SimulationError, match="decades apart"):
            rank_frequencies(result, count=3, min_decade_gap=0.3)

    def test_count_validation(self, rc_sensitivity):
        with pytest.raises(SimulationError):
            rank_frequencies(rc_sensitivity, count=0)


class TestSweeps:
    def test_value_sweep_family(self, rc):
        grid = log_frequency_grid(10.0, 1e5, 41)
        result = value_sweep(rc.circuit, rc.output_node, "R1",
                             [5e3, 1e4, 2e4], grid)
        assert len(result) == 3
        # Larger R -> lower cutoff -> lower magnitude at fixed f > f0.
        mags = [resp.magnitude_db_at(5e3) for resp in result.responses]
        assert mags[0] > mags[1] > mags[2]

    def test_deviation_sweep_paper_grid(self, rc):
        grid = log_frequency_grid(10.0, 1e5, 41)
        deviations = [-0.4, -0.2, 0.2, 0.4]
        result = deviation_sweep(rc.circuit, rc.output_node, "C1",
                                 deviations, grid)
        assert result.parameter_values == tuple(deviations)
        nominal_c = rc.circuit["C1"].value
        # The swept responses used scaled capacitor values; check the
        # -40% case matches an explicit 0.6x simulation.
        from repro.sim import ACAnalysis
        explicit = ACAnalysis(
            rc.circuit.with_value("C1", 0.6 * nominal_c)).transfer(
                rc.output_node, grid)
        assert np.allclose(result.responses[0].magnitude_db,
                           explicit.magnitude_db, atol=1e-12)

    def test_response_at(self, rc):
        grid = log_frequency_grid(10.0, 1e4, 11)
        result = deviation_sweep(rc.circuit, rc.output_node, "R1",
                                 [-0.1, 0.1], grid)
        assert result.response_at(0.1) is result.responses[1]
        with pytest.raises(SimulationError):
            result.response_at(0.3)

    def test_spread_db_positive_above_cutoff(self, rc):
        grid = log_frequency_grid(10.0, 1e5, 41)
        result = deviation_sweep(rc.circuit, rc.output_node, "R1",
                                 [-0.4, 0.4], grid)
        spread = result.spread_db()
        # Above f0 the deviations clearly separate the curves ...
        assert spread[-1] > 2.0
        # ... and far below f0 they barely do (gain ~ R-independent).
        assert spread[0] < 0.01

    def test_empty_values_rejected(self, rc):
        with pytest.raises(SimulationError):
            value_sweep(rc.circuit, rc.output_node, "R1", [],
                        np.array([100.0]))

    def test_overdeviation_rejected(self, rc):
        with pytest.raises(SimulationError, match="non-positive"):
            deviation_sweep(rc.circuit, rc.output_node, "R1", [-1.5],
                            np.array([100.0]))
