"""Tests for the catastrophic-fault screen and the hybrid diagnoser."""

import numpy as np
import pytest

from repro import (
    SignatureMapper,
    TrajectoryClassifier,
    TrajectorySet,
    catastrophic_universe,
    parametric_universe,
)
from repro.diagnosis import CatastrophicScreen, HybridClassifier
from repro.errors import DiagnosisError
from repro.faults import CatastrophicFault, FaultDictionary, \
    ParametricFault
from repro.sim import ACAnalysis

FREQS = (500.0, 1500.0)


@pytest.fixture(scope="module")
def hybrid(biquad_info):
    grid = np.array(sorted(FREQS))
    mapper = SignatureMapper(FREQS)
    parametric = parametric_universe(biquad_info.circuit,
                                     components=biquad_info.faultable)
    pdict = FaultDictionary.build(parametric, biquad_info.output_node,
                                  grid)
    trajectories = TrajectorySet.from_source(pdict, mapper)
    classifier = TrajectoryClassifier(trajectories, golden=pdict.golden)
    hard = catastrophic_universe(biquad_info.circuit,
                                 components=biquad_info.faultable)
    cdict = FaultDictionary.build(hard, biquad_info.output_node, grid)
    screen = CatastrophicScreen(cdict, mapper)
    return HybridClassifier(screen, classifier)


def respond(info, fault, grid=np.array(sorted(FREQS))):
    return ACAnalysis(fault.apply(info.circuit)).transfer(
        info.output_node, grid)


class TestScreen:
    def test_requires_catastrophic_entries(self, biquad_dictionary):
        mapper = SignatureMapper(FREQS)
        with pytest.raises(DiagnosisError, match="catastrophic"):
            CatastrophicScreen(biquad_dictionary, mapper)

    def test_exact_match_distance_zero(self, hybrid, biquad_info):
        response = respond(biquad_info, CatastrophicFault("R1", "open"))
        point = hybrid.trajectory_classifier.trajectories.mapper \
            .signature(response, hybrid.trajectory_classifier.golden)
        verdict = hybrid.screen.classify_point(point)
        assert verdict.component == "R1"
        assert verdict.kind == "open"
        assert verdict.distance == pytest.approx(0.0, abs=1e-9)
        assert verdict.is_catastrophic

    def test_dimension_check(self, hybrid):
        with pytest.raises(DiagnosisError):
            hybrid.screen.classify_point(np.zeros(5))

    def test_summary_text(self, hybrid, biquad_info):
        response = respond(biquad_info, CatastrophicFault("C1", "open"))
        verdict = hybrid.classify_response(response)
        assert "catastrophic" in verdict.summary()
        assert "C1" in verdict.summary()


class TestHybrid:
    @pytest.mark.parametrize("component,kind", [
        ("R1", "open"), ("R1", "short"), ("R2", "open"),
        ("R2", "short"), ("C1", "open"), ("C1", "short"),
    ])
    def test_hard_faults_screened(self, hybrid, biquad_info, component,
                                  kind):
        response = respond(biquad_info,
                           CatastrophicFault(component, kind))
        verdict = hybrid.classify_response(response)
        assert verdict.is_catastrophic
        assert verdict.component == component
        assert verdict.kind == kind

    @pytest.mark.parametrize("component,deviation", [
        ("R1", 0.25), ("R2", -0.15), ("C1", 0.35),
    ])
    def test_parametric_faults_fall_through(self, hybrid, biquad_info,
                                            component, deviation):
        response = respond(biquad_info,
                           ParametricFault(component, deviation))
        verdict = hybrid.classify_response(response)
        assert not getattr(verdict, "is_catastrophic", False)
        assert verdict.component == component
        assert verdict.estimated_deviation == pytest.approx(deviation,
                                                            abs=0.03)

    def test_golden_is_parametric_verdict(self, hybrid):
        # The origin sits on every trajectory: not catastrophic.
        verdict = hybrid.classify_point(np.zeros(2))
        assert not getattr(verdict, "is_catastrophic", False)

    def test_bias_validation(self, hybrid):
        with pytest.raises(DiagnosisError):
            HybridClassifier(hybrid.screen,
                             hybrid.trajectory_classifier, bias=0.0)

    def test_large_bias_suppresses_screen(self, hybrid, biquad_info):
        """With an enormous bias the screen never wins on parametric
        faults (sanity of the comparison rule)."""
        conservative = HybridClassifier(hybrid.screen,
                                        hybrid.trajectory_classifier,
                                        bias=1e9)
        response = respond(biquad_info, ParametricFault("R2", 0.25))
        verdict = conservative.classify_response(response)
        assert not getattr(verdict, "is_catastrophic", False)

    def test_dimension_mismatch_rejected(self, hybrid, biquad_surface):
        mapper3 = SignatureMapper((100.0, 1000.0, 10000.0))
        trajectories = TrajectorySet.from_source(biquad_surface,
                                                 mapper3)
        classifier3 = TrajectoryClassifier(trajectories)
        with pytest.raises(DiagnosisError, match="dimension"):
            HybridClassifier(hybrid.screen, classifier3)
