"""Tests for the GA: encoding, operators, fitness, engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GAError
from repro.ga import (
    CombinedFitness,
    FrequencySpace,
    GAConfig,
    GeneticAlgorithm,
    MarginFitness,
    PaperFitness,
    blend_crossover,
    gaussian_mutation,
    get_crossover,
    get_selection,
    one_point_crossover,
    rank_select,
    reset_mutation,
    roulette_wheel_select,
    tournament_select,
    uniform_crossover,
)


@pytest.fixture(scope="module")
def space():
    return FrequencySpace(10.0, 1e6, 2)


class TestConfig:
    def test_paper_defaults(self):
        config = GAConfig.paper()
        assert config.population_size == 128
        assert config.generations == 15
        assert config.crossover_rate == 0.5
        assert config.mutation_rate == 0.4
        assert config.selection == "roulette"

    def test_quick_is_smaller(self):
        quick = GAConfig.quick()
        assert quick.population_size < 128
        assert quick.generations < 15

    def test_validation(self):
        with pytest.raises(GAError):
            GAConfig(population_size=1)
        with pytest.raises(GAError):
            GAConfig(generations=0)
        with pytest.raises(GAError):
            GAConfig(crossover_rate=1.5)
        with pytest.raises(GAError):
            GAConfig(selection="lottery")
        with pytest.raises(GAError):
            GAConfig(elitism=-1)
        with pytest.raises(GAError):
            GAConfig(elitism=128)
        with pytest.raises(GAError):
            GAConfig(mutation_sigma_decades=0.0)
        with pytest.raises(GAError):
            GAConfig(crossover="cut")
        with pytest.raises(GAError):
            GAConfig(tournament_size=1)
        with pytest.raises(GAError):
            GAConfig(early_stop_fitness=-1.0)


class TestEncoding:
    def test_bounds_validation(self):
        with pytest.raises(GAError):
            FrequencySpace(-1.0, 100.0)
        with pytest.raises(GAError):
            FrequencySpace(100.0, 10.0)
        with pytest.raises(GAError):
            FrequencySpace(1.0, 100.0, num_frequencies=0)

    def test_random_genome_in_bounds(self, space, rng):
        genome = space.random_genome(rng)
        low, high = space.log_bounds
        assert np.all((genome >= low) & (genome <= high))

    def test_random_population_shape(self, space, rng):
        population = space.random_population(rng, 20)
        assert population.shape == (20, 2)

    def test_decode_sorted(self, space):
        freqs = space.decode(np.array([5.0, 2.0]))
        assert freqs[0] < freqs[1]
        assert freqs == (pytest.approx(100.0), pytest.approx(1e5))

    def test_decode_nudges_duplicates(self, space):
        freqs = space.decode(np.array([3.0, 3.0]))
        assert freqs[0] != freqs[1]
        assert freqs[1] / freqs[0] > 1.0

    def test_decode_clips(self, space):
        freqs = space.decode(np.array([-10.0, 100.0]))
        assert freqs[0] >= space.f_min_hz
        assert freqs[1] <= space.f_max_hz * (1 + 1e-9)

    def test_encode_roundtrip(self, space):
        freqs = (123.0, 45678.0)
        assert space.decode(space.encode(freqs)) == (
            pytest.approx(123.0), pytest.approx(45678.0))

    def test_contains(self, space):
        assert space.contains((100.0, 1000.0))
        assert not space.contains((1.0, 1000.0))

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=2))
    @settings(max_examples=100)
    def test_decode_always_valid(self, genes):
        """Any real genome decodes to sorted, distinct, in-band
        frequencies."""
        space = FrequencySpace(10.0, 1e6, 2)
        freqs = space.decode(np.array(genes))
        assert len(freqs) == 2
        assert freqs[0] < freqs[1]
        assert freqs[0] >= space.f_min_hz * (1 - 1e-9)
        assert freqs[1] <= space.f_max_hz * (1 + 1e-9)


class TestSelection:
    def test_roulette_prefers_fit(self, rng):
        fitness = np.array([0.0, 0.0, 1.0, 0.0])
        picks = roulette_wheel_select(fitness, 200, rng)
        assert np.all(picks == 2)

    def test_roulette_proportional(self, rng):
        fitness = np.array([1.0, 3.0])
        picks = roulette_wheel_select(fitness, 4000, rng)
        fraction = np.mean(picks == 1)
        assert fraction == pytest.approx(0.75, abs=0.05)

    def test_roulette_all_zero_uniform(self, rng):
        fitness = np.zeros(4)
        picks = roulette_wheel_select(fitness, 4000, rng)
        counts = np.bincount(picks, minlength=4) / 4000.0
        assert np.all(np.abs(counts - 0.25) < 0.05)

    def test_roulette_rejects_negative(self, rng):
        with pytest.raises(GAError):
            roulette_wheel_select(np.array([-1.0, 1.0]), 5, rng)

    def test_roulette_rejects_empty(self, rng):
        with pytest.raises(GAError):
            roulette_wheel_select(np.array([]), 5, rng)

    def test_tournament_prefers_fit(self, rng):
        fitness = np.array([0.1, 0.9, 0.2, 0.5])
        picks = tournament_select(fitness, 500, rng, tournament_size=3)
        assert np.mean(picks == 1) > 0.5

    def test_rank_insensitive_to_scale(self, rng):
        small = np.array([1e-9, 2e-9, 3e-9])
        picks = rank_select(small, 3000, rng)
        counts = np.bincount(picks, minlength=3) / 3000.0
        # Linear ranks 1:2:3 -> probabilities 1/6, 2/6, 3/6.
        assert counts[2] == pytest.approx(0.5, abs=0.05)

    @given(st.integers(1, 50))
    @settings(max_examples=20)
    def test_selection_indices_in_range(self, count):
        rng = np.random.default_rng(0)
        fitness = np.abs(np.sin(np.arange(7.0))) + 0.01
        for name in ("roulette", "tournament", "rank"):
            picks = get_selection(name)(fitness, count, rng)
            assert picks.shape == (count,)
            assert np.all((picks >= 0) & (picks < 7))


class TestCrossoverMutation:
    def test_blend_within_extended_interval(self, rng):
        a = np.array([1.0, 2.0])
        b = np.array([3.0, 6.0])
        for _ in range(50):
            child = blend_crossover(a, b, rng, alpha=0.5)
            assert np.all(child >= np.array([0.0, 0.0]) - 1e-12)
            assert np.all(child <= np.array([4.0, 8.0]) + 1e-12)

    def test_one_point_mixes_parents(self, rng):
        a = np.array([1.0, 1.0, 1.0])
        b = np.array([2.0, 2.0, 2.0])
        child = one_point_crossover(a, b, rng)
        assert set(np.unique(child)) <= {1.0, 2.0}
        assert child[0] == 1.0  # head always from parent a

    def test_one_point_single_gene(self, rng):
        a = np.array([1.0])
        assert one_point_crossover(a, np.array([2.0]), rng)[0] == 1.0

    def test_uniform_genes_from_parents(self, rng):
        a = np.zeros(8)
        b = np.ones(8)
        child = uniform_crossover(a, b, rng)
        assert set(np.unique(child)) <= {0.0, 1.0}

    def test_gaussian_mutation_clips(self, space, rng):
        genome = np.array([1.0, 6.0])  # at the log bounds
        for _ in range(20):
            mutated = gaussian_mutation(genome, space, rng,
                                        sigma_decades=5.0)
            low, high = space.log_bounds
            assert np.all((mutated >= low) & (mutated <= high))

    def test_reset_mutation_in_bounds(self, space, rng):
        genome = np.array([3.0, 4.0])
        mutated = reset_mutation(genome, space, rng, per_gene_rate=1.0)
        low, high = space.log_bounds
        assert np.all((mutated >= low) & (mutated <= high))

    def test_registries(self):
        assert get_crossover("blend") is blend_crossover
        with pytest.raises(GAError):
            get_crossover("nope")
        with pytest.raises(GAError):
            get_selection("nope")


class TestFitness:
    def test_paper_fitness_range(self, biquad_surface):
        fitness = PaperFitness(biquad_surface)
        for freqs in ((100.0, 1000.0), (500.0, 50000.0)):
            value = fitness(freqs)
            assert 0.0 < value <= 1.0

    def test_paper_fitness_formula(self, biquad_surface):
        fitness = PaperFitness(biquad_surface)
        freqs = (1000.0, 3000.0)
        metrics = fitness.metrics_for(freqs)
        expected = 1.0 / (1.0 + metrics.intersections +
                          metrics.common_pathways)
        assert fitness(freqs) == pytest.approx(expected)

    def test_cache_hits(self, biquad_surface):
        fitness = PaperFitness(biquad_surface)
        fitness((100.0, 1000.0))
        evaluations = fitness.evaluations
        fitness((100.0, 1000.0))
        assert fitness.evaluations == evaluations
        fitness.cache_clear()
        fitness((100.0, 1000.0))
        assert fitness.evaluations == evaluations + 1

    def test_margin_fitness_bounded(self, biquad_surface):
        fitness = MarginFitness(biquad_surface, margin_scale=0.1)
        value = fitness((500.0, 5000.0))
        assert 0.0 <= value < 1.0

    def test_combined_dominates_paper_on_clean_config(self,
                                                      biquad_surface):
        paper = PaperFitness(biquad_surface)
        combined = CombinedFitness(biquad_surface)
        freqs = (500.0, 1500.0)
        if paper(freqs) == 1.0:
            assert combined(freqs) > 1.0

    def test_combined_margin_weight_validation(self, biquad_surface):
        with pytest.raises(GAError):
            CombinedFitness(biquad_surface, margin_weight=1.5)

    def test_overlap_weight_validation(self, biquad_surface):
        with pytest.raises(GAError):
            PaperFitness(biquad_surface, overlap_weight=-1.0)

    def test_component_subset(self, biquad_surface):
        fitness = PaperFitness(biquad_surface,
                               components=("R1", "R2", "C1"))
        trajectories = fitness.trajectories_for((500.0, 1500.0))
        assert trajectories.components == ("R1", "R2", "C1")


class TestEngine:
    def test_deterministic_with_seed(self, space, biquad_surface):
        fitness = PaperFitness(biquad_surface)
        config = GAConfig.quick(seeded_generations=3, population_size=12)
        result_a = GeneticAlgorithm(space, fitness, config).run(seed=5)
        fitness.cache_clear()
        result_b = GeneticAlgorithm(space, fitness, config).run(seed=5)
        assert result_a.best_freqs_hz == result_b.best_freqs_hz
        assert result_a.best_fitness == result_b.best_fitness

    def test_history_and_monotone_best(self, space, biquad_surface):
        fitness = PaperFitness(biquad_surface)
        config = GAConfig(population_size=16, generations=6, elitism=1)
        result = GeneticAlgorithm(space, fitness, config).run(seed=3)
        assert len(result.history) == 6
        best = result.best_fitness_curve()
        assert np.all(np.diff(best) >= -1e-12)  # elitism: non-decreasing
        assert result.best_fitness == pytest.approx(best.max())

    def test_early_stop(self, space, biquad_surface):
        fitness = PaperFitness(biquad_surface)
        config = GAConfig(population_size=32, generations=15,
                          early_stop_fitness=1.0)
        result = GeneticAlgorithm(space, fitness, config).run(seed=2)
        if result.best_fitness >= 1.0:
            assert result.generations_run <= 15

    def test_initial_population_seeding(self, space, biquad_surface):
        fitness = PaperFitness(biquad_surface)
        config = GAConfig(population_size=8, generations=1, elitism=1)
        seeded = np.array([space.encode((500.0, 1500.0))])
        result = GeneticAlgorithm(space, fitness, config).run(
            seed=0, initial_population=seeded)
        # With one generation and elitism the seeded vector survives if
        # it is the best; at minimum the run must complete.
        assert result.generations_run == 1

    def test_bad_initial_population_shape(self, space, biquad_surface):
        fitness = PaperFitness(biquad_surface)
        engine = GeneticAlgorithm(space, fitness, GAConfig.quick())
        with pytest.raises(GAError):
            engine.run(seed=0, initial_population=np.zeros((2, 5)))

    def test_bad_fitness_rejected(self, space):
        config = GAConfig(population_size=4, generations=1)
        engine = GeneticAlgorithm(space, lambda freqs: float("nan"),
                                  config)
        with pytest.raises(GAError):
            engine.run(seed=0)

    def test_summary_text(self, space, biquad_surface):
        fitness = PaperFitness(biquad_surface)
        config = GAConfig.quick(seeded_generations=2, population_size=8)
        result = GeneticAlgorithm(space, fitness, config).run(seed=1)
        text = result.summary()
        assert "best fitness" in text
        assert "generations" in text

    def test_converged_flag(self, space, biquad_surface):
        fitness = PaperFitness(biquad_surface)
        config = GAConfig(population_size=32, generations=8)
        result = GeneticAlgorithm(space, fitness, config).run(seed=4)
        assert result.converged == (result.best_fitness >= 1.0)
