"""Tests for circuit component dataclasses and their validation."""

import pytest

from repro.circuits import (
    CCCS,
    CCVS,
    Capacitor,
    CurrentSource,
    IdealOpAmp,
    Inductor,
    OpAmpMacro,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)
from repro.errors import ComponentError


class TestTwoTerminal:
    def test_resistor_basic(self):
        r = Resistor("R1", "a", "b", 1000.0)
        assert r.nodes == ("a", "b")
        assert r.value == 1000.0

    def test_with_value_returns_copy(self):
        r = Resistor("R1", "a", "b", 1000.0)
        r2 = r.with_value(2000.0)
        assert r2.value == 2000.0
        assert r.value == 1000.0
        assert r2.name == "R1"

    def test_renamed(self):
        r = Resistor("R1", "a", "b", 1000.0)
        assert r.renamed("RX").name == "RX"

    def test_negative_resistance_rejected(self):
        with pytest.raises(ComponentError):
            Resistor("R1", "a", "b", -10.0)

    def test_zero_capacitance_rejected(self):
        with pytest.raises(ComponentError):
            Capacitor("C1", "a", "b", 0.0)

    def test_nan_value_rejected(self):
        with pytest.raises(ComponentError):
            Inductor("L1", "a", "b", float("nan"))

    def test_infinite_value_rejected(self):
        with pytest.raises(ComponentError):
            Resistor("R1", "a", "b", float("inf"))

    def test_same_node_rejected(self):
        with pytest.raises(ComponentError):
            Resistor("R1", "a", "a", 100.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ComponentError):
            Resistor("", "a", "b", 100.0)

    def test_name_with_space_rejected(self):
        with pytest.raises(ComponentError):
            Resistor("R 1", "a", "b", 100.0)

    def test_empty_node_rejected(self):
        with pytest.raises(ComponentError):
            Resistor("R1", "", "b", 100.0)


class TestSources:
    def test_voltage_source_defaults(self):
        v = VoltageSource("V1", "in", "0", 5.0)
        assert v.value == 5.0
        assert v.ac_magnitude == 0.0
        assert v.ac_phase_deg == 0.0

    def test_voltage_source_ac(self):
        v = VoltageSource("V1", "in", "0", 0.0, 1.0, 90.0)
        assert v.ac_magnitude == 1.0
        assert v.ac_phase_deg == 90.0

    def test_source_allows_zero_and_negative_dc(self):
        assert VoltageSource("V1", "a", "0", 0.0).value == 0.0
        assert VoltageSource("V2", "a", "0", -5.0).value == -5.0

    def test_negative_ac_magnitude_rejected(self):
        with pytest.raises(ComponentError):
            VoltageSource("V1", "a", "0", 0.0, -1.0)

    def test_current_source(self):
        i = CurrentSource("I1", "a", "0", 1e-3, ac_magnitude=1e-3)
        assert i.value == 1e-3
        assert i.ac_magnitude == 1e-3


class TestControlledSources:
    def test_vcvs(self):
        e = VCVS("E1", "o", "0", "a", "b", 10.0)
        assert e.nodes == ("o", "0", "a", "b")
        assert e.gain == 10.0

    def test_vcvs_shorted_output_rejected(self):
        with pytest.raises(ComponentError):
            VCVS("E1", "o", "o", "a", "b", 10.0)

    def test_vccs(self):
        g = VCCS("G1", "o", "0", "a", "b", 1e-3)
        assert g.transconductance == 1e-3

    def test_ccvs_references_source_name(self):
        h = CCVS("H1", "o", "0", "VSENSE", 50.0)
        assert h.ctrl_source == "VSENSE"
        assert h.nodes == ("o", "0")

    def test_cccs(self):
        f = CCCS("F1", "o", "0", "VSENSE", 2.0)
        assert f.gain == 2.0


class TestOpAmps:
    def test_ideal_opamp_nodes(self):
        op = IdealOpAmp("OA1", "p", "n", "o")
        assert op.nodes == ("p", "n", "o")

    def test_ideal_opamp_equal_inputs_rejected(self):
        with pytest.raises(ComponentError):
            IdealOpAmp("OA1", "x", "x", "o")

    def test_macro_defaults(self):
        op = OpAmpMacro("OA1", "p", "n", "o")
        assert op.a0 == pytest.approx(2e5)
        assert op.pole_hz == pytest.approx(5.0)
        assert op.gbw_hz == pytest.approx(1e6)
        assert op.rin == pytest.approx(2e6)
        assert op.rout == pytest.approx(75.0)

    def test_macro_custom_params(self):
        op = OpAmpMacro("OA1", "p", "n", "o",
                        params={"a0": 1e5, "pole_hz": 10.0})
        assert op.a0 == 1e5
        assert op.gbw_hz == pytest.approx(1e6)
        # Unspecified params keep defaults.
        assert op.rout == pytest.approx(75.0)

    def test_macro_unknown_param_rejected(self):
        with pytest.raises(ComponentError):
            OpAmpMacro("OA1", "p", "n", "o", params={"slew": 1.0})

    def test_macro_nonpositive_param_rejected(self):
        with pytest.raises(ComponentError):
            OpAmpMacro("OA1", "p", "n", "o", params={"a0": -1.0})

    def test_with_param(self):
        op = OpAmpMacro("OA1", "p", "n", "o")
        faulty = op.with_param("a0", 1e5)
        assert faulty.a0 == 1e5
        assert op.a0 == pytest.approx(2e5)

    def test_with_param_unknown_rejected(self):
        op = OpAmpMacro("OA1", "p", "n", "o")
        with pytest.raises(ComponentError):
            op.with_param("nope", 1.0)
