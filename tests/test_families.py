"""Circuit-family generators: determinism, well-posedness, errors."""

from __future__ import annotations

import math
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.circuits import (
    CIRCUIT_FAMILIES,
    FAMILY_DEFAULT_SIZES,
    butterworth_g_values,
    generate,
    parse_netlist,
)
from repro.errors import FamilyError, NetlistParseError
from repro.sim import ACAnalysis

ALL_FAMILIES = sorted(CIRCUIT_FAMILIES)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_same_seed_same_circuit(family):
    first = generate(family, seed=7)
    second = generate(family, seed=7)
    assert first.circuit.content_hash() == second.circuit.content_hash()
    assert first.circuit.name == second.circuit.name
    assert first.faultable == second.faultable


@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_different_seeds_differ(family):
    hashes = {generate(family, seed=seed).circuit.content_hash()
              for seed in range(6)}
    assert len(hashes) > 1


def test_generators_deterministic_cross_process():
    """The per-seed content hash is identical in a fresh interpreter.

    Guards the corpus resume keys: a hash that drifted between
    processes would silently invalidate every cached record.
    """
    script = (
        "from repro.circuits import generate\n"
        "for family in ('rc_ladder', 'lc_ladder', 'biquad_chain', "
        "'random_topology'):\n"
        "    info = generate(family, seed=11)\n"
        "    print(family, info.circuit.content_hash())\n")
    src = str(Path(__file__).resolve().parent.parent / "src")
    out = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True,
        check=True, env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"})
    child = dict(line.split() for line in out.stdout.splitlines())
    for family in ALL_FAMILIES:
        assert child[family] == generate(family,
                                         seed=11).circuit.content_hash()


# ----------------------------------------------------------------------
# Family shapes
# ----------------------------------------------------------------------
def test_butterworth_g_values_order2():
    g1, g2 = butterworth_g_values(2)
    assert g1 == pytest.approx(math.sqrt(2.0), rel=1e-5)
    assert g2 == pytest.approx(math.sqrt(2.0), rel=1e-5)


def test_rc_ladder_structure():
    info = generate("rc_ladder", seed=3, size=4)
    assert len(info.faultable) == 8          # 4 R + 4 C
    assert info.output_node == "n4"
    assert info.circuit.name == "rc_ladder_n4_s3"


def test_lc_ladder_faults_only_reactive():
    info = generate("lc_ladder", seed=3, size=5)
    assert all(name[0] in "LC" for name in info.faultable)
    assert len(info.faultable) == 5          # order-N prototype


def test_random_topology_goes_through_parser():
    info = generate("random_topology", seed=5, size=4)
    # Spine resistors guarantee DC connectivity; names come from the
    # netlist text, so the parser really produced this circuit.
    assert "R1" in info.circuit
    assert info.circuit.name.startswith("random_topology_")


@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_generated_circuits_are_well_posed(family):
    info = generate(family, seed=1)
    freqs = np.array([info.f_min_hz, info.f0_hz, info.f_max_hz])
    response = ACAnalysis(info.circuit).transfer(
        info.output_node, freqs, input_source=info.input_source)
    assert np.all(np.isfinite(response.values))


# ----------------------------------------------------------------------
# Error paths
# ----------------------------------------------------------------------
def test_unknown_family_raises_with_context():
    with pytest.raises(FamilyError) as excinfo:
        generate("nonexistent", seed=0)
    assert excinfo.value.family == "nonexistent"
    assert excinfo.value.seed == 0
    assert "available" in str(excinfo.value)


@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_bad_size_raises_family_error(family):
    with pytest.raises(FamilyError) as excinfo:
        generate(family, seed=0, size=0)
    assert excinfo.value.family == family
    assert excinfo.value.seed == 0


def test_parser_reports_offending_card_line():
    """Bad element values surface as a parse error with the line."""
    text = "* bad\nVIN in 0 AC 1\nR1 in out 1k\nC1 out 0 -3n\n.end\n"
    with pytest.raises(NetlistParseError) as excinfo:
        parse_netlist(text)
    assert excinfo.value.line_number == 4
    assert "C1" in (excinfo.value.line or "")


def test_default_sizes_cover_every_family():
    assert set(FAMILY_DEFAULT_SIZES) == set(CIRCUIT_FAMILIES)


# ----------------------------------------------------------------------
# Property: any (family, seed, size) yields a solvable, deterministic
# circuit (hypothesis)
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(family=st.sampled_from(ALL_FAMILIES),
       seed=st.integers(min_value=0, max_value=10_000),
       size=st.integers(min_value=2, max_value=7))
def test_any_seed_yields_well_posed_mna(family, seed, size):
    info = generate(family, seed, size=size)
    again = generate(family, seed, size=size)
    assert info.circuit.content_hash() == again.circuit.content_hash()
    freqs = np.array([info.f_min_hz, info.f0_hz, info.f_max_hz])
    response = ACAnalysis(info.circuit).transfer(
        info.output_node, freqs, input_source=info.input_source)
    assert np.all(np.isfinite(response.values))
    assert info.faultable, "every generated circuit must be faultable"
