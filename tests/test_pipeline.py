"""End-to-end pipeline and integration tests."""

import dataclasses

import numpy as np
import pytest

from repro import (
    FaultTrajectoryATPG,
    PipelineConfig,
    mfb_bandpass,
    sallen_key_lowpass,
)
from repro.errors import ReproError
from repro.parallelism import ParallelismConfig
from repro.ga import GAConfig
from repro.sim import ACAnalysis


class TestPipelineConfig:
    def test_paper_defaults(self):
        config = PipelineConfig.paper()
        assert config.num_frequencies == 2
        assert config.fitness == "paper"
        assert config.ga.population_size == 128
        assert len(config.deviations) == 8

    def test_validation(self):
        with pytest.raises(ReproError):
            PipelineConfig(fitness="best")
        with pytest.raises(ReproError):
            PipelineConfig(dictionary_points=4)
        with pytest.raises(ReproError):
            PipelineConfig(num_frequencies=0)
        with pytest.raises(ReproError):
            PipelineConfig(deviations=())
        with pytest.raises(ReproError):
            PipelineConfig(ambiguity_threshold=-1.0)
        with pytest.raises(ReproError):
            PipelineConfig(parallelism=ParallelismConfig(ga_workers=-1))
        with pytest.raises(ReproError):
            PipelineConfig(
                parallelism=ParallelismConfig(ga_executor="gpu"))

    def test_ga_worker_knobs_round_trip(self):
        config = PipelineConfig(parallelism=ParallelismConfig(
            ga_workers=3, ga_executor="process"))
        restored = PipelineConfig.from_json_dict(config.to_json_dict())
        assert restored == config
        assert restored.ga_workers == 3
        assert restored.ga_executor == "process"

    def test_effective_ga_workers_inherits_n_workers(self):
        def with_workers(**kwargs):
            return PipelineConfig(parallelism=ParallelismConfig(**kwargs))
        assert with_workers(n_workers=4).effective_ga_workers == 4
        assert with_workers(n_workers=4,
                            ga_workers=2).effective_ga_workers == 2
        assert with_workers(ga_workers=0).effective_ga_workers == 0


class TestPipelineRun:
    def test_quick_run_artifacts(self, quick_pipeline_result,
                                 biquad_info):
        result = quick_pipeline_result
        assert len(result.universe) == 56
        assert len(result.dictionary) == 56
        assert len(result.test_vector_hz) == 2
        assert result.trajectories.components == biquad_info.faultable
        assert result.metrics.intersections >= 0
        assert result.elapsed_seconds > 0.0

    def test_test_vector_in_band(self, quick_pipeline_result,
                                 biquad_info):
        f1, f2 = quick_pipeline_result.test_vector_hz
        assert biquad_info.f_min_hz <= f1 < f2
        assert f2 <= biquad_info.f_max_hz * (1 + 1e-9)

    def test_report_mentions_key_facts(self, quick_pipeline_result):
        text = quick_pipeline_result.report()
        assert "tow_thomas_biquad" in text
        assert "test vector" in text
        assert "GA fitness" in text

    def test_deterministic(self, biquad_info):
        config = PipelineConfig.quick()
        a = FaultTrajectoryATPG(biquad_info, config).run(seed=11)
        b = FaultTrajectoryATPG(biquad_info, config).run(seed=11)
        assert a.test_vector_hz == b.test_vector_hz

    def test_diagnose_injected_faults(self, quick_pipeline_result,
                                      biquad_info):
        """Held-out faults on well-separated components diagnose
        correctly through the response path."""
        result = quick_pipeline_result
        freqs = np.array(sorted(result.test_vector_hz))
        for component, deviation in (("R1", 0.25), ("R2", -0.15),
                                     ("C1", 0.35)):
            faulty = biquad_info.circuit.scaled_value(
                component, 1.0 + deviation)
            response = ACAnalysis(faulty).transfer(
                biquad_info.output_node, freqs)
            diagnosis = result.diagnose_response(response)
            assert diagnosis.component == component, (component,
                                                      deviation)
            assert diagnosis.estimated_deviation == pytest.approx(
                deviation, abs=0.05)

    def test_clean_evaluation_perfect_at_group_level(
            self, quick_pipeline_result):
        evaluation = quick_pipeline_result.evaluate(
            deviations=(-0.25, 0.25))
        assert evaluation.group_accuracy == 1.0
        assert evaluation.accuracy >= 10.0 / 14.0

    def test_fault_free_point(self, quick_pipeline_result):
        assert quick_pipeline_result.classifier.is_fault_free(
            np.zeros(2), threshold=1e-6)

    def test_components_subset(self, biquad_info):
        config = PipelineConfig.quick()
        pipeline = FaultTrajectoryATPG(biquad_info, config,
                                       components=("R1", "R2", "C1"))
        result = pipeline.run(seed=3)
        assert result.trajectories.components == ("R1", "R2", "C1")
        assert len(result.universe) == 24


class TestFitnessVariants:
    @pytest.mark.parametrize("fitness", ["paper", "margin", "combined"])
    def test_all_fitness_kinds_run(self, biquad_info, fitness):
        config = dataclasses.replace(
            PipelineConfig.quick(), fitness=fitness,
            ga=GAConfig.quick(seeded_generations=2, population_size=8))
        result = FaultTrajectoryATPG(biquad_info, config).run(seed=5)
        assert result.ga_result.best_fitness >= 0.0


class TestCrossCircuit:
    def test_sallen_key_pipeline(self):
        info = sallen_key_lowpass()
        config = PipelineConfig.quick()
        result = FaultTrajectoryATPG(info, config).run(seed=2)
        assert result.trajectories.components == ("R1", "R2", "C1", "C2")
        evaluation = result.evaluate(deviations=(-0.25, 0.25))
        # The Sallen-Key has its own exact degeneracy (R1/R2 at unity
        # gain); group-level accuracy must still be perfect.
        assert evaluation.group_accuracy == 1.0

    def test_mfb_bandpass_pipeline(self):
        info = mfb_bandpass()
        config = PipelineConfig.quick()
        result = FaultTrajectoryATPG(info, config).run(seed=2)
        evaluation = result.evaluate(deviations=(0.25,))
        assert evaluation.group_accuracy == 1.0

    def test_three_frequency_pipeline(self, biquad_info):
        config = dataclasses.replace(
            PipelineConfig.quick(), num_frequencies=3,
            ga=GAConfig.quick(seeded_generations=2, population_size=8))
        result = FaultTrajectoryATPG(biquad_info, config).run(seed=4)
        assert len(result.test_vector_hz) == 3
        assert result.trajectories.dimension == 3
        evaluation = result.evaluate(deviations=(0.25,))
        assert evaluation.group_accuracy == 1.0
