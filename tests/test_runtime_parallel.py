"""Parallel dictionary builds: exact equality with the serial builder."""

import numpy as np
import pytest

from repro import parametric_universe, rc_lowpass, tow_thomas_biquad
from repro.errors import DictionaryError
from repro.faults import FaultDictionary
from repro.runtime import build_dictionary_parallel
from repro.units import log_frequency_grid


@pytest.fixture(scope="module")
def setup():
    info = tow_thomas_biquad(ideal_opamps=False)
    universe = parametric_universe(info.circuit,
                                   components=info.faultable,
                                   deviations=(-0.4, -0.2, 0.2, 0.4))
    grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 48)
    serial = FaultDictionary.build(universe, info.output_node, grid,
                                   input_source=info.input_source)
    return info, universe, grid, serial


def _assert_identical(parallel, serial):
    assert parallel.circuit_name == serial.circuit_name
    assert parallel.labels == serial.labels
    assert np.array_equal(parallel.freqs_hz, serial.freqs_hz)
    assert np.array_equal(parallel.golden.values, serial.golden.values)
    for built, reference in zip(parallel.entries, serial.entries):
        assert built.fault == reference.fault
        assert built.response.label == reference.response.label
        assert np.array_equal(built.response.values,
                              reference.response.values)


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_parallel_equals_serial(setup, executor):
    info, universe, grid, serial = setup
    parallel = build_dictionary_parallel(
        universe, info.output_node, grid,
        input_source=info.input_source, n_workers=3, executor=executor)
    _assert_identical(parallel, serial)


def test_chunk_size_does_not_change_result(setup):
    info, universe, grid, serial = setup
    for chunk_size in (1, 5, 100):
        parallel = build_dictionary_parallel(
            universe, info.output_node, grid,
            input_source=info.input_source, n_workers=2,
            executor="thread", chunk_size=chunk_size)
        _assert_identical(parallel, serial)


def test_single_worker_falls_back_to_serial(setup):
    info, universe, grid, serial = setup
    for n_workers in (0, 1):
        fallback = build_dictionary_parallel(
            universe, info.output_node, grid,
            input_source=info.input_source, n_workers=n_workers)
        _assert_identical(fallback, serial)


def test_invalid_executor_rejected(setup):
    info, universe, grid, _ = setup
    with pytest.raises(DictionaryError):
        build_dictionary_parallel(universe, info.output_node, grid,
                                  n_workers=2, executor="gpu")


def test_counts_as_a_simulation(setup):
    info, universe, grid, _ = setup
    before = FaultDictionary.simulations_run
    build_dictionary_parallel(universe, info.output_node, grid,
                              input_source=info.input_source,
                              n_workers=2, executor="thread")
    assert FaultDictionary.simulations_run == before + 1


def test_pipeline_config_threads_workers():
    """n_workers/executor flow from PipelineConfig into the build and
    reproduce the serial pipeline exactly."""
    from repro import FaultTrajectoryATPG, PipelineConfig
    from repro.ga import GAConfig

    info = rc_lowpass()
    ga = GAConfig(population_size=8, generations=2)
    serial_cfg = PipelineConfig(dictionary_points=32,
                                deviations=(-0.2, 0.2), ga=ga)
    from repro.parallelism import ParallelismConfig
    pooled_cfg = PipelineConfig(
        dictionary_points=32, deviations=(-0.2, 0.2), ga=ga,
        parallelism=ParallelismConfig(n_workers=2, executor="thread"))
    serial = FaultTrajectoryATPG(info, serial_cfg).run(seed=7)
    pooled = FaultTrajectoryATPG(info, pooled_cfg).run(seed=7)
    assert pooled.test_vector_hz == serial.test_vector_hz
    _assert_identical(pooled.dictionary, serial.dictionary)
