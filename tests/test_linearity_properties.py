"""Property-based checks of simulator physics (hypothesis).

These pin invariants that hold for *any* linear circuit this library can
express: superposition, source scaling, passivity of RC dividers, and
reciprocity-flavoured consistency between analyses. Violations here mean
MNA stamps are wrong in a way individual example circuits might miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit
from repro.sim import ACAnalysis, DCAnalysis, MnaSystem
from repro.units import TWO_PI

resistances = st.floats(min_value=10.0, max_value=1e6)
capacitances = st.floats(min_value=1e-12, max_value=1e-5)
frequencies = st.floats(min_value=1.0, max_value=1e6)
voltages = st.floats(min_value=-100.0, max_value=100.0)


def two_source_network(v1, v2, r1, r2, r3):
    ckt = Circuit("two_sources")
    ckt.add_voltage_source("V1", "a", "0", dc=v1)
    ckt.add_voltage_source("V2", "b", "0", dc=v2)
    ckt.add_resistor("R1", "a", "m", r1)
    ckt.add_resistor("R2", "b", "m", r2)
    ckt.add_resistor("R3", "m", "0", r3)
    return ckt


class TestSuperposition:
    @given(voltages, voltages, resistances, resistances, resistances)
    @settings(max_examples=40, deadline=None)
    def test_dc_superposition(self, v1, v2, r1, r2, r3):
        """V(m) with both sources = sum of single-source solutions."""
        both = DCAnalysis(two_source_network(v1, v2, r1, r2, r3)) \
            .operating_point().voltage("m")
        only1 = DCAnalysis(two_source_network(v1, 0.0, r1, r2, r3)) \
            .operating_point().voltage("m")
        only2 = DCAnalysis(two_source_network(0.0, v2, r1, r2, r3)) \
            .operating_point().voltage("m")
        assert both == pytest.approx(only1 + only2, rel=1e-9,
                                     abs=1e-12)

    @given(voltages, resistances, resistances, resistances)
    @settings(max_examples=40, deadline=None)
    def test_dc_source_scaling(self, v1, r1, r2, r3):
        """Doubling the only source doubles every node voltage."""
        base = DCAnalysis(two_source_network(v1, 0.0, r1, r2, r3)) \
            .operating_point().voltage("m")
        doubled = DCAnalysis(
            two_source_network(2.0 * v1, 0.0, r1, r2, r3)) \
            .operating_point().voltage("m")
        assert doubled == pytest.approx(2.0 * base, rel=1e-9,
                                        abs=1e-12)


class TestPassivity:
    @given(resistances, capacitances, frequencies)
    @settings(max_examples=60, deadline=None)
    def test_rc_divider_gain_at_most_unity(self, r, c, f):
        """A passive RC low-pass never amplifies."""
        ckt = Circuit("rc")
        ckt.add_voltage_source("VIN", "in", "0", ac=1.0)
        ckt.add_resistor("R1", "in", "out", r)
        ckt.add_capacitor("C1", "out", "0", c)
        value = MnaSystem(ckt).solve_at(1j * TWO_PI * f) \
            .node_voltage("out")
        assert abs(value) <= 1.0 + 1e-9

    @given(resistances, capacitances, frequencies)
    @settings(max_examples=60, deadline=None)
    def test_rc_phase_in_fourth_quadrant(self, r, c, f):
        """RC low-pass phase lies in (-90 deg, 0]."""
        ckt = Circuit("rc")
        ckt.add_voltage_source("VIN", "in", "0", ac=1.0)
        ckt.add_resistor("R1", "in", "out", r)
        ckt.add_capacitor("C1", "out", "0", c)
        value = MnaSystem(ckt).solve_at(1j * TWO_PI * f) \
            .node_voltage("out")
        phase = np.angle(value)
        assert -np.pi / 2.0 - 1e-9 <= phase <= 1e-9


class TestAnalysisConsistency:
    @given(resistances, resistances, voltages)
    @settings(max_examples=40, deadline=None)
    def test_ac_at_low_frequency_matches_dc_ratio(self, r1, r2, v):
        """For a resistive divider the AC transfer equals the DC ratio
        at any frequency."""
        ckt = Circuit("div")
        ckt.add_voltage_source("VIN", "in", "0", dc=v, ac=1.0)
        ckt.add_resistor("R1", "in", "out", r1)
        ckt.add_resistor("R2", "out", "0", r2)
        expected = r2 / (r1 + r2)
        transfer = ACAnalysis(ckt).transfer("out", np.array([123.0]))
        assert abs(transfer.values[0]) == pytest.approx(expected,
                                                        rel=1e-9)

    @given(resistances, capacitances)
    @settings(max_examples=40, deadline=None)
    def test_conjugate_symmetry(self, r, c):
        """H(-jw) = conj(H(jw)) for real networks."""
        ckt = Circuit("rc")
        ckt.add_voltage_source("VIN", "in", "0", ac=1.0)
        ckt.add_resistor("R1", "in", "out", r)
        ckt.add_capacitor("C1", "out", "0", c)
        system = MnaSystem(ckt)
        omega = TWO_PI * 997.0
        positive = system.solve_at(1j * omega).node_voltage("out")
        negative = system.solve_at(-1j * omega).node_voltage("out")
        assert negative == pytest.approx(np.conj(positive), rel=1e-12)

    @given(st.floats(min_value=0.5, max_value=5.0),
           st.floats(min_value=0.5, max_value=3.0))
    @settings(max_examples=20, deadline=None)
    def test_biquad_dc_gain_tracks_design(self, gain, q):
        """Library design equations: simulated DC gain == requested."""
        from repro.circuits import tow_thomas_biquad
        info = tow_thomas_biquad(gain=gain, q=q)
        transfer = ACAnalysis(info.circuit).transfer(
            info.output_node, np.array([info.f0_hz / 1000.0]))
        assert abs(transfer.values[0]) == pytest.approx(gain, rel=1e-3)
