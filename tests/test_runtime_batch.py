"""Batch diagnoser: strict equivalence with the scalar classifier."""

import numpy as np
import pytest

from repro import BENCHMARK_CIRCUITS, get_benchmark, parametric_universe
from repro.diagnosis import TrajectoryClassifier
from repro.errors import DiagnosisError
from repro.faults import FaultDictionary
from repro.runtime import BatchDiagnoser
from repro.sim import ACAnalysis
from repro.trajectory import SignatureMapper, TrajectorySet

DEVIATIONS = (-0.3, -0.1, 0.1, 0.3)


def _exact_setup(name):
    """Classifier + batch diagnoser simulated exactly at a 2-freq
    test vector for one benchmark circuit."""
    info = get_benchmark(name)
    universe = parametric_universe(info.circuit,
                                   components=info.faultable,
                                   deviations=DEVIATIONS)
    freqs = (float(np.sqrt(info.f_min_hz * info.f0_hz)),
             float(np.sqrt(info.f0_hz * info.f_max_hz)))
    mapper = SignatureMapper(freqs)
    exact = FaultDictionary.build(universe, info.output_node,
                                  np.array(sorted(freqs)),
                                  input_source=info.input_source)
    trajectories = TrajectorySet.from_source(exact, mapper)
    scalar = TrajectoryClassifier(trajectories, golden=exact.golden)
    batch = BatchDiagnoser(trajectories, golden=exact.golden)
    return info, scalar, batch


def _probe_points(trajectories, rng):
    """On-vertex, on-segment and random off-trajectory query points."""
    vertices = np.vstack([t.points for t in trajectories])
    midpoints = np.vstack([(t.points[:-1] + t.points[1:]) / 2.0
                           for t in trajectories])
    span = float(np.abs(vertices).max()) or 1.0
    randoms = rng.normal(scale=span, size=(40, vertices.shape[1]))
    nudged = vertices + rng.normal(scale=0.01 * span, size=vertices.shape)
    return np.vstack([vertices, midpoints, randoms, nudged])


@pytest.mark.parametrize("name", sorted(BENCHMARK_CIRCUITS))
def test_batch_equals_scalar_on_every_benchmark(name, rng):
    _, scalar, batch = _exact_setup(name)
    points = _probe_points(batch.trajectories, rng)
    diagnoses = batch.classify_points(points)
    assert len(diagnoses) == points.shape[0]
    for point, batched in zip(points, diagnoses):
        assert batched == scalar.classify_point(point)


def test_batch_equals_scalar_through_responses():
    info, scalar, batch = _exact_setup("tow_thomas_biquad")
    freqs = np.array(sorted(batch.trajectories.mapper.test_freqs_hz))
    responses = []
    for component, deviation in (("R1", 0.22), ("R2", -0.17),
                                 ("C1", 0.05), ("C2", -0.33)):
        faulty = info.circuit.scaled_value(component, 1.0 + deviation)
        responses.append(ACAnalysis(faulty).transfer(
            info.output_node, freqs, input_source=info.input_source))
    batched = batch.classify_responses(responses)
    assert batched == [scalar.classify_response(r) for r in responses]


def test_db_matrix_path_matches_response_path():
    _, scalar, batch = _exact_setup("sallen_key_lowpass")
    info = get_benchmark("sallen_key_lowpass")
    freqs = np.array(sorted(batch.trajectories.mapper.test_freqs_hz))
    responses = [ACAnalysis(info.circuit.scaled_value("R1", 1.3)).transfer(
        info.output_node, freqs, input_source=info.input_source)]
    matrix = np.vstack([r.magnitude_db_at(freqs) for r in responses])
    from_matrix = batch.classify_responses(matrix)
    # The matrix rows *are* exact grid samples, so the interpolated
    # response path and the raw matrix path see identical signatures.
    assert from_matrix == batch.classify_responses(responses)
    assert from_matrix[0].component == scalar.classify_response(
        responses[0]).component


def test_single_point_convenience_and_labels():
    _, scalar, batch = _exact_setup("rc_lowpass")
    point = np.array([0.4, -0.2])
    diagnoses = batch.classify_points(point)   # 1-D promotes to (1, D)
    assert len(diagnoses) == 1
    assert diagnoses[0] == scalar.classify_point(point)
    assert batch.components_for(point[None, :]) == \
        (diagnoses[0].component,)


def test_dimension_validation():
    _, _, batch = _exact_setup("rc_lowpass")
    with pytest.raises(DiagnosisError):
        batch.classify_points(np.zeros((3, 5)))
    with pytest.raises(DiagnosisError):
        batch.signatures_from_db(np.zeros((3, 5)))


def test_needs_golden_for_relative_mapping(biquad_trajectories):
    batch = BatchDiagnoser(biquad_trajectories, golden=None)
    with pytest.raises(DiagnosisError):
        batch.classify_responses(np.zeros((2, 2)))


def test_result_diagnose_many(quick_pipeline_result, biquad_info):
    """The pipeline's batch API agrees with its scalar API."""
    result = quick_pipeline_result
    freqs = np.array(sorted(result.test_vector_hz))
    responses = []
    for component, deviation in (("R1", 0.25), ("R2", -0.15),
                                 ("C1", 0.35)):
        faulty = biquad_info.circuit.scaled_value(component,
                                                  1.0 + deviation)
        responses.append(ACAnalysis(faulty).transfer(
            biquad_info.output_node, freqs))
    batched = result.diagnose_many(responses)
    assert batched == [result.diagnose_response(r) for r in responses]
    # Memoised diagnoser: both calls share the precomputed tensors.
    assert result.batch_diagnoser() is result.batch_diagnoser()
    points = np.vstack([d.point for d in batched])
    assert result.diagnose_points(points) == batched
