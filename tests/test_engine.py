"""Equivalence suite for the stamp-once/solve-many simulation engine.

The refactor contract is strict: `BatchedMnaEngine` must reproduce the
scalar path (one `MnaSystem` + `solve_frequencies` per faulty circuit)
*bitwise* -- the assertions below use exact equality, with a <= 1 ULP
helper only as documentation of the acceptance bound.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    BatchedMnaEngine,
    FactoredMnaEngine,
    PipelineConfig,
    ScalarMnaEngine,
    make_engine,
    parametric_universe,
    rc_lowpass,
    tow_thomas_biquad,
)
from repro.circuits.library import BENCHMARK_CIRCUITS
from repro.errors import ReproError, SimulationError
from repro.sim import lowrank
from repro.faults import FaultDictionary, catastrophic_universe
from repro.faults.universe import parametric_universe as build_universe
from repro.ga import GeneticAlgorithm
from repro.sim import ACAnalysis, VariantSpec
from repro.sim.engine import ResponseBlock
from repro.sim.sweep import deviation_sweep, value_sweep
from repro.units import log_frequency_grid

# A small but structurally diverse fault grid for the sweep tests.
_DEVIATIONS = (-0.4, -0.1, 0.1, 0.4)


def _ulp_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Largest component-wise ULP distance between two complex arrays."""
    worst = 0
    for part in (np.real, np.imag):
        x = np.asarray(part(a), dtype=np.float64)
        y = np.asarray(part(b), dtype=np.float64)
        same = x == y
        spacing = np.spacing(np.maximum(np.abs(x), np.abs(y)))
        ulps = np.where(same, 0.0, np.abs(x - y) / spacing)
        worst = max(worst, int(np.ceil(ulps.max())))
    return worst


def _scalar_reference(info, universe, grid):
    """The historical per-fault scalar path, verbatim."""
    responses = [ACAnalysis(info.circuit).transfer(
        info.output_node, grid, info.input_source)]
    for _, faulty in universe.faulty_circuits():
        responses.append(ACAnalysis(faulty).transfer(
            info.output_node, grid, info.input_source))
    return responses


class TestBatchedEquivalence:
    @pytest.mark.parametrize("name", sorted(BENCHMARK_CIRCUITS))
    def test_bitwise_equal_on_library(self, name):
        """Batched == per-frequency MnaSystem.solve_frequencies, every
        library circuit, every fault, every grid point."""
        info = BENCHMARK_CIRCUITS[name]()
        universe = build_universe(info.circuit,
                                  components=info.faultable,
                                  deviations=_DEVIATIONS)
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 31)

        engine = BatchedMnaEngine(info.circuit)
        variants = (VariantSpec(name=info.circuit.name),) + \
            universe.variants()
        block = engine.transfer_block(info.output_node, grid, variants,
                                      info.input_source)
        reference = _scalar_reference(info, universe, grid)
        assert len(block) == len(reference)
        for index, expected in enumerate(reference):
            got = block.values[index]
            assert _ulp_distance(got, expected.values) <= 1
            # In practice the equality is exact, not just <= 1 ULP.
            assert np.array_equal(got, expected.values), \
                f"{name} variant {index} differs from the scalar path"

    def test_macromodel_and_catastrophic_faults(self):
        """Delta-stamps cover op-amp macro parameters and open/short
        extremes, not just passive value deviations."""
        info = tow_thomas_biquad(ideal_opamps=False)
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 21)
        parametric = build_universe(info.circuit,
                                    components=info.faultable,
                                    deviations=(-0.3, 0.3),
                                    include_opamp_params=True)
        hard = catastrophic_universe(info.circuit,
                                     components=("R1", "C1"))
        for universe in (parametric, hard):
            engine = BatchedMnaEngine(info.circuit)
            block = engine.transfer_block(
                info.output_node, grid,
                (VariantSpec(name=info.circuit.name),) +
                universe.variants(),
                info.input_source)
            reference = _scalar_reference(info, universe, grid)
            for index, expected in enumerate(reference):
                assert np.array_equal(block.values[index],
                                      expected.values)

    def test_freq_chunked_path_bitwise(self, monkeypatch):
        """With a tiny stack budget the engine falls back to one variant
        at a time with chunked frequencies -- still bitwise-equal."""
        import repro.sim.engine as engine_module
        info = tow_thomas_biquad(ideal_opamps=False)
        universe = build_universe(info.circuit,
                                  components=("R1", "C1"),
                                  deviations=(-0.2, 0.2))
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 37)
        variants = (VariantSpec(name=info.circuit.name),) + \
            universe.variants()
        reference = BatchedMnaEngine(info.circuit).transfer_block(
            info.output_node, grid, variants, info.input_source)
        # Budget for ~8 matrices: forces variants_per_chunk == 1 and
        # several frequency chunks per variant.
        dim = BatchedMnaEngine(info.circuit).system.dim
        monkeypatch.setattr(engine_module, "_STACK_MEMORY_BUDGET",
                            8 * 16 * dim * dim)
        chunked = BatchedMnaEngine(info.circuit).transfer_block(
            info.output_node, grid, variants, info.input_source)
        assert np.array_equal(chunked.values, reference.values)

    def test_scalar_engine_matches_batched(self):
        info = rc_lowpass()
        universe = build_universe(info.circuit,
                                  deviations=_DEVIATIONS)
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 11)
        variants = (VariantSpec(name=info.circuit.name),) + \
            universe.variants()
        batched = BatchedMnaEngine(info.circuit).transfer_block(
            info.output_node, grid, variants, info.input_source)
        scalar = ScalarMnaEngine(info.circuit).transfer_block(
            info.output_node, grid, variants, info.input_source)
        assert np.array_equal(batched.values, scalar.values)
        assert batched.labels == scalar.labels

    def test_dictionary_build_engines_identical(self):
        info = tow_thomas_biquad(ideal_opamps=False)
        universe = build_universe(info.circuit,
                                  components=info.faultable,
                                  deviations=_DEVIATIONS)
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 24)
        batched = FaultDictionary.build(
            universe, info.output_node, grid,
            input_source=info.input_source,
            engine=make_engine(info.circuit, "batched"))
        scalar = FaultDictionary.build(
            universe, info.output_node, grid,
            input_source=info.input_source,
            engine=make_engine(info.circuit, "scalar"))
        assert batched.labels == scalar.labels
        assert np.array_equal(batched.golden.values, scalar.golden.values)
        for built, reference in zip(batched.entries, scalar.entries):
            assert np.array_equal(built.response.values,
                                  reference.response.values)
            assert built.response.label == reference.response.label

    def test_engine_reuse_across_grids(self):
        """One stamped engine serves both the dense and the exact grid."""
        info = rc_lowpass()
        universe = build_universe(info.circuit, deviations=_DEVIATIONS)
        engine = BatchedMnaEngine(info.circuit)
        dense = log_frequency_grid(info.f_min_hz, info.f_max_hz, 16)
        exact = np.array([500.0, 1500.0])
        for grid in (dense, exact):
            built = FaultDictionary.build(
                universe, info.output_node, grid,
                input_source=info.input_source, engine=engine)
            fresh = FaultDictionary.build(
                universe, info.output_node, grid,
                input_source=info.input_source)
            assert np.array_equal(built.golden.values,
                                  fresh.golden.values)

    def test_engine_circuit_mismatch_rejected(self):
        info = rc_lowpass()
        other = tow_thomas_biquad()
        universe = build_universe(info.circuit, deviations=(0.1,))
        from repro.errors import DictionaryError
        with pytest.raises(DictionaryError, match="engine was built"):
            FaultDictionary.build(
                universe, info.output_node, np.array([100.0, 200.0]),
                engine=BatchedMnaEngine(other.circuit))


class TestApplyOnlyFaultCompat:
    def test_apply_only_subclass_still_builds(self):
        """Fault subclasses implementing only apply() (the historical
        extension contract) still feed both engines."""
        from dataclasses import dataclass
        from repro.circuits.netlist import Circuit
        from repro.faults.models import Fault
        from repro.faults.universe import FaultUniverse

        @dataclass(frozen=True)
        class HalvedFault(Fault):
            @property
            def label(self):
                return f"{self.component}:halved"

            def apply(self, circuit: Circuit) -> Circuit:
                return circuit.scaled_value(
                    self.component, 0.5,
                    name=f"{circuit.name}#{self.label}")

        info = rc_lowpass()
        universe = FaultUniverse(info.circuit,
                                 (HalvedFault("R1"), HalvedFault("C1")))
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 9)
        batched = FaultDictionary.build(
            universe, info.output_node, grid,
            input_source=info.input_source)
        reference = _scalar_reference(info, universe, grid)
        assert np.array_equal(batched.golden.values, reference[0].values)
        for entry, expected in zip(batched.entries, reference[1:]):
            assert np.array_equal(entry.response.values, expected.values)

    def test_fault_with_neither_method_raises(self):
        from repro.faults.models import Fault
        info = rc_lowpass()
        with pytest.raises(NotImplementedError,
                           match="replacement_component"):
            Fault("R1").replacement_component(info.circuit)


class TestVariantSpecs:
    def test_unknown_replacement_rejected(self):
        info = rc_lowpass()
        engine = BatchedMnaEngine(info.circuit)
        foreign = tow_thomas_biquad().circuit["R3"]
        with pytest.raises(SimulationError, match="unknown"):
            engine.transfer_block(
                info.output_node, np.array([100.0]),
                [VariantSpec((foreign,))])

    def test_duplicate_replacement_rejected(self):
        info = rc_lowpass()
        r1 = info.circuit["R1"]
        with pytest.raises(SimulationError, match="twice"):
            VariantSpec((r1.with_value(1.0), r1.with_value(2.0)))

    def test_multi_component_variant(self):
        """Tolerance-style variants replace several components at once."""
        info = tow_thomas_biquad()
        grid = np.array([300.0, 900.0])
        r1 = info.circuit["R1"]
        c1 = info.circuit["C1"]
        spec = VariantSpec((r1.with_value(r1.value * 1.07),
                            c1.with_value(c1.value * 0.93)))
        block = BatchedMnaEngine(info.circuit).transfer_block(
            info.output_node, grid, [spec], info.input_source)
        perturbed = info.circuit.with_value("R1", r1.value * 1.07) \
            .with_value("C1", c1.value * 0.93)
        expected = ACAnalysis(perturbed).transfer(
            info.output_node, grid, info.input_source)
        assert np.array_equal(block.values[0], expected.values)


class TestResponseBlock:
    @pytest.fixture()
    def block(self):
        info = rc_lowpass()
        universe = build_universe(info.circuit, deviations=(-0.2, 0.2))
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 9)
        engine = BatchedMnaEngine(info.circuit)
        return engine.transfer_block(
            info.output_node, grid,
            (VariantSpec(name=info.circuit.name),) + universe.variants(),
            info.input_source)

    def test_len_and_iteration(self, block):
        assert len(block) == 5
        assert len(list(block)) == 5

    def test_response_by_label_and_index(self, block):
        by_index = block.response(1)
        by_label = block.response(block.labels[1])
        assert by_index is by_label  # lazily built once, cached

    def test_response_values_are_rows(self, block):
        for index in range(len(block)):
            assert np.array_equal(block.response(index).values,
                                  block.values[index])

    def test_unknown_label(self, block):
        with pytest.raises(SimulationError, match="no variant"):
            block.response("nope")

    def test_magnitude_db_shape(self, block):
        assert block.magnitude_db().shape == block.values.shape


class TestSweepEquivalence:
    def test_value_sweep_matches_scalar(self):
        info = rc_lowpass()
        grid = log_frequency_grid(10.0, 1e5, 21)
        values = [5e3, 1e4, 2e4]
        result = value_sweep(info.circuit, info.output_node, "R1",
                             values, grid)
        for value, response in zip(values, result.responses):
            expected = ACAnalysis(
                info.circuit.with_value("R1", value)).transfer(
                    info.output_node, grid)
            assert np.array_equal(response.values, expected.values)
        nominal = ACAnalysis(info.circuit).transfer(info.output_node,
                                                    grid)
        assert np.array_equal(result.nominal.values, nominal.values)


class TestSweepResultLookup:
    def test_zero_deviation_lookup(self):
        """An rtol-only comparison can never match a swept value of 0."""
        info = rc_lowpass()
        grid = log_frequency_grid(10.0, 1e4, 9)
        result = deviation_sweep(info.circuit, info.output_node, "R1",
                                 [-0.2, 0.0, 0.2], grid)
        assert result.response_at(0.0) is result.responses[1]

    def test_nano_scale_values_not_conflated(self):
        """numpy's default atol (1e-8) would match every point of a
        capacitance sweep; the scale-aware atol keeps them distinct."""
        info = rc_lowpass()
        grid = log_frequency_grid(10.0, 1e4, 9)
        c1 = info.circuit["C1"].value   # ~1.6e-8 F
        values = [0.8 * c1, c1, 1.2 * c1]
        result = value_sweep(info.circuit, info.output_node, "C1",
                             values, grid)
        for value, expected in zip(values, result.responses):
            assert result.response_at(value) is expected

    def test_missing_value_raises(self):
        info = rc_lowpass()
        grid = log_frequency_grid(10.0, 1e4, 9)
        result = deviation_sweep(info.circuit, info.output_node, "R1",
                                 [-0.1, 0.1], grid)
        with pytest.raises(SimulationError, match="no sweep point"):
            result.response_at(0.3)

    def test_near_match_within_tolerance(self):
        info = rc_lowpass()
        grid = log_frequency_grid(10.0, 1e4, 9)
        result = deviation_sweep(info.circuit, info.output_node, "R1",
                                 [-0.1, 0.1], grid)
        assert result.response_at(0.1 * (1.0 + 1e-12)) is \
            result.responses[1]


class TestDictionaryMatrixCache:
    def test_cached_and_read_only(self):
        info = rc_lowpass()
        universe = build_universe(info.circuit, deviations=(-0.2, 0.2))
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 16)
        dictionary = FaultDictionary.build(universe, info.output_node,
                                           grid)
        first = dictionary.response_matrix_db()
        second = dictionary.response_matrix_db()
        assert first is second
        assert not first.flags.writeable
        expected = np.vstack(
            [dictionary.golden.magnitude_db] +
            [entry.response.magnitude_db for entry in dictionary.entries])
        assert np.array_equal(first, expected)


class TestGADeterminism:
    @pytest.fixture(scope="class")
    def fitness_factory(self, request):
        from repro.faults import ResponseSurface
        from repro.ga import PaperFitness
        from repro.ga.encoding import FrequencySpace
        info = rc_lowpass()
        universe = build_universe(info.circuit, deviations=_DEVIATIONS)
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 64)
        dictionary = FaultDictionary.build(
            universe, info.output_node, grid,
            input_source=info.input_source)
        space = FrequencySpace(info.f_min_hz, info.f_max_hz, 2)

        def factory():
            return space, PaperFitness(ResponseSurface(dictionary))
        return factory

    def test_serial_vs_population_parallel(self, fitness_factory):
        """Same seed => same search trajectory, serial or parallel."""
        from repro.ga import GAConfig
        results = []
        for n_workers in (0, 3):
            space, fitness = fitness_factory()
            ga = GeneticAlgorithm(space, fitness,
                                  GAConfig.quick(seeded_generations=4,
                                                 population_size=16),
                                  n_workers=n_workers)
            results.append(ga.run(seed=7))
        serial, parallel = results
        assert serial.best_freqs_hz == parallel.best_freqs_hz
        assert serial.best_fitness == parallel.best_fitness
        assert serial.evaluations == parallel.evaluations
        assert [s.best_fitness for s in serial.history] == \
            [s.best_fitness for s in parallel.history]
        assert np.array_equal(serial.final_population,
                              parallel.final_population)

    def test_population_matches_per_individual_calls(self,
                                                     fitness_factory):
        space, fitness_a = fitness_factory()
        _, fitness_b = fitness_factory()
        rng = np.random.default_rng(3)
        population = space.random_population(rng, 12)
        decoded = [space.decode(genome) for genome in population]
        batch = fitness_a.score_population(decoded)
        single = np.array([fitness_b(freqs) for freqs in decoded])
        assert np.array_equal(batch, single)
        # Re-scoring hits the cache and stays stable.
        assert np.array_equal(fitness_a.score_population(decoded), batch)
        assert fitness_a.evaluations == fitness_b.evaluations


class TestPipelineEngineKnob:
    def test_invalid_engine_rejected(self):
        with pytest.raises(ReproError, match="kind must be one of"):
            PipelineConfig(engine="magic")

    def test_scalar_and_batched_pipelines_agree(self):
        from repro import FaultTrajectoryATPG
        info = rc_lowpass()
        results = {}
        for kind in ("batched", "scalar"):
            config = PipelineConfig.quick()
            config = PipelineConfig(
                dictionary_points=64, ga=config.ga, engine=kind)
            results[kind] = FaultTrajectoryATPG(info, config).run(seed=3)
        batched, scalar = results["batched"], results["scalar"]
        assert batched.test_vector_hz == scalar.test_vector_hz
        assert np.array_equal(batched.dictionary.golden.values,
                              scalar.dictionary.golden.values)
        evaluation_b = batched.evaluate(deviations=(-0.25, 0.25))
        evaluation_s = scalar.evaluate(deviations=(-0.25, 0.25))
        assert evaluation_b.accuracy == evaluation_s.accuracy


class TestEvaluateClassifierBatched:
    def test_batched_matches_per_point(self, quick_pipeline_result):
        """evaluate_classifier's (N, F) batch path reproduces the scalar
        per-point loop diagnosis-for-diagnosis."""
        from repro.diagnosis import evaluate_classifier, make_test_cases
        result = quick_pipeline_result
        cases = make_test_cases(result.info, result.mapper,
                                components=result.universe.components,
                                deviations=(-0.25, 0.25))
        batched = evaluate_classifier(result.classifier, cases,
                                      groups=result.groups)
        scalar_results = [
            (case, result.classifier.classify_point(case.point))
            for case in cases]
        assert len(batched.results) == len(scalar_results)
        for got, (case, expected) in zip(batched.results,
                                         scalar_results):
            assert got.diagnosis.component == expected.component
            assert got.diagnosis.estimated_deviation == \
                expected.estimated_deviation
            assert got.diagnosis.distance == expected.distance
            assert got.diagnosis.ranking == expected.ranking

    def test_case_generation_engine_matches_scalar_engine(self):
        """make_test_cases under the batched engine equals the scalar
        engine, including noise/tolerance randomisation."""
        from repro.diagnosis import make_test_cases
        from repro.trajectory import SignatureMapper
        info = tow_thomas_biquad(ideal_opamps=False)
        mapper = SignatureMapper((500.0, 1500.0))
        kwargs = dict(deviations=(-0.15, 0.15), noise_db=0.1,
                      tolerance=0.05, repeats=2, seed=42)
        batched = make_test_cases(info, mapper,
                                  engine=BatchedMnaEngine(info.circuit),
                                  **kwargs)
        scalar = make_test_cases(info, mapper,
                                 engine=ScalarMnaEngine(info.circuit),
                                 **kwargs)
        assert len(batched) == len(scalar)
        for got, expected in zip(batched, scalar):
            assert got.true_component == expected.true_component
            assert got.true_deviation == expected.true_deviation
            assert np.array_equal(got.point, expected.point)


def _assert_block_close(got, expected, *, rtol, context=""):
    """Scaled-error comparison for the factored engine's contract.

    The Sherman-Morrison-Woodbury correction is computed against the
    *nominal* solution, so its error is naturally bounded relative to
    the largest response in the block, not point-by-point -- the atol
    below anchors the comparison to that scale.
    """
    got = np.asarray(got)
    expected = np.asarray(expected)
    scale = float(np.max(np.abs(expected))) if expected.size else 0.0
    np.testing.assert_allclose(got, expected, rtol=rtol,
                               atol=rtol * max(scale, 1e-30),
                               err_msg=context)


class TestFactoredEquivalence:
    """FactoredMnaEngine vs the scalar reference: tight tolerance.

    Unlike batched<->scalar (bitwise), the low-rank path is a different
    floating-point computation; the contract is agreement within
    ~1e-9 scaled on parametric faults and ~1e-6 on catastrophic
    extremes (where the dense fallback handles the genuinely
    ill-conditioned updates).
    """

    @pytest.mark.parametrize("name", sorted(BENCHMARK_CIRCUITS))
    def test_tight_tolerance_on_library(self, name):
        info = BENCHMARK_CIRCUITS[name]()
        universe = build_universe(info.circuit,
                                  components=info.faultable,
                                  deviations=_DEVIATIONS)
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 31)
        engine = FactoredMnaEngine(info.circuit)
        variants = (VariantSpec(name=info.circuit.name),) + \
            universe.variants()
        block = engine.transfer_block(info.output_node, grid, variants,
                                      info.input_source)
        reference = _scalar_reference(info, universe, grid)
        assert len(block) == len(reference)
        for index, expected in enumerate(reference):
            _assert_block_close(
                block.values[index], expected.values, rtol=1e-9,
                context=f"{name} variant {index}")
        # Parametric deviations really exercise the low-rank path.
        assert engine.lowrank_updates > 0

    def test_macromodel_and_catastrophic_within_tolerance(self):
        """Op-amp macro parameters and open/short extremes stay within
        tolerance; the extremes route through the conditioning
        fallback rather than producing garbage."""
        info = tow_thomas_biquad(ideal_opamps=False)
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 21)
        parametric = build_universe(info.circuit,
                                    components=info.faultable,
                                    deviations=(-0.3, 0.3),
                                    include_opamp_params=True)
        hard = catastrophic_universe(info.circuit,
                                     components=("R1", "C1"))
        for universe, rtol in ((parametric, 1e-9), (hard, 1e-6)):
            engine = FactoredMnaEngine(info.circuit)
            block = engine.transfer_block(
                info.output_node, grid,
                (VariantSpec(name=info.circuit.name),) +
                universe.variants(),
                info.input_source)
            reference = _scalar_reference(info, universe, grid)
            for index, expected in enumerate(reference):
                _assert_block_close(block.values[index],
                                    expected.values, rtol=rtol,
                                    context=f"variant {index}")
            if universe is hard:
                assert engine.lowrank_fallbacks["conditioning"] > 0

    def test_conditioning_fallback_is_bitwise_dense(self):
        """A near-singular update (R1 scaled by 1e-12) is detected by
        the conditioning guard and recomputed on the dense path --
        the fallback rows equal BatchedMnaEngine exactly."""
        info = rc_lowpass()
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 15)
        r1 = info.circuit["R1"]
        variants = (VariantSpec(name="nominal"),
                    VariantSpec((r1.with_value(r1.value * 1e-12),),
                                name="R1:short"),
                    VariantSpec((r1.with_value(r1.value * 1.1),),
                                name="R1:+10%"))
        engine = FactoredMnaEngine(info.circuit)
        block = engine.transfer_block(info.output_node, grid, variants,
                                      info.input_source)
        assert engine.lowrank_fallbacks["conditioning"] == 1
        assert engine.lowrank_updates == 1
        dense = BatchedMnaEngine(info.circuit).transfer_block(
            info.output_node, grid, variants, info.input_source)
        assert np.array_equal(block.values[1], dense.values[1])
        _assert_block_close(block.values, dense.values, rtol=1e-9)

    def test_cond_limit_one_forces_dense_everywhere(self):
        """cond_limit=1.0 flags every update as ill-conditioned, so the
        whole block equals the batched engine bitwise -- the fallback
        is a true superset path, not an approximation."""
        info = tow_thomas_biquad()
        universe = build_universe(info.circuit,
                                  components=("R1", "C1"),
                                  deviations=(-0.2, 0.2))
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 11)
        variants = (VariantSpec(name=info.circuit.name),) + \
            universe.variants()
        engine = FactoredMnaEngine(info.circuit, cond_limit=1.0)
        block = engine.transfer_block(info.output_node, grid, variants,
                                      info.input_source)
        assert engine.lowrank_updates == 0
        assert engine.lowrank_fallbacks["conditioning"] == \
            len(variants) - 1
        dense = BatchedMnaEngine(info.circuit).transfer_block(
            info.output_node, grid, variants, info.input_source)
        assert np.array_equal(block.values, dense.values)
        assert block.labels == dense.labels

    def test_rank_overflow_falls_back(self):
        """Support wider than max_rank is decided upfront ('rank'
        reason) and still matches the dense path bitwise."""
        info = tow_thomas_biquad()
        grid = np.array([300.0, 900.0])
        r1 = info.circuit["R1"]
        c1 = info.circuit["C1"]
        spec = VariantSpec((r1.with_value(r1.value * 1.07),
                            c1.with_value(c1.value * 0.93)),
                           name="pair")
        engine = FactoredMnaEngine(info.circuit, max_rank=1)
        block = engine.transfer_block(info.output_node, grid, [spec],
                                      info.input_source)
        assert engine.lowrank_fallbacks["rank"] == 1
        dense = BatchedMnaEngine(info.circuit).transfer_block(
            info.output_node, grid, [spec], info.input_source)
        assert np.array_equal(block.values, dense.values)

    def test_stimulus_replacement_rides_the_lowrank_path(self):
        """Changing the input source's AC magnitude/phase is a pure
        RHS delta -- handled low-rank (no fallback), matching the
        batched engine."""
        info = rc_lowpass()
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 9)
        source = info.circuit[info.input_source]
        boosted = dataclasses.replace(
            source, ac_magnitude=source.ac_magnitude * 2.0,
            ac_phase_deg=30.0)
        variants = (VariantSpec(name="nominal"),
                    VariantSpec((boosted,), name="boosted"))
        engine = FactoredMnaEngine(info.circuit)
        block = engine.transfer_block(info.output_node, grid, variants,
                                      info.input_source)
        assert engine.lowrank_updates == 1
        assert sum(engine.lowrank_fallbacks.values()) == 0
        dense = BatchedMnaEngine(info.circuit).transfer_block(
            info.output_node, grid, variants, info.input_source)
        _assert_block_close(block.values, dense.values, rtol=1e-12)

    def test_freq_chunked_path_matches(self, monkeypatch):
        """A tiny stack budget forces several frequency chunks through
        the factored solver; results match the unchunked run."""
        import repro.sim.engine as engine_module
        info = tow_thomas_biquad(ideal_opamps=False)
        universe = build_universe(info.circuit,
                                  components=("R1", "C1"),
                                  deviations=(-0.2, 0.2))
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 37)
        variants = (VariantSpec(name=info.circuit.name),) + \
            universe.variants()
        reference = FactoredMnaEngine(info.circuit).transfer_block(
            info.output_node, grid, variants, info.input_source)
        dim = BatchedMnaEngine(info.circuit).system.dim
        monkeypatch.setattr(engine_module, "_STACK_MEMORY_BUDGET",
                            8 * 16 * dim * dim)
        chunked = FactoredMnaEngine(info.circuit).transfer_block(
            info.output_node, grid, variants, info.input_source)
        _assert_block_close(chunked.values, reference.values,
                            rtol=1e-12)

    def test_ground_output_short_circuits_to_zero(self):
        info = rc_lowpass()
        grid = np.array([100.0, 1000.0])
        block = FactoredMnaEngine(info.circuit).transfer_block(
            "0", grid, [VariantSpec(name="nominal")],
            info.input_source)
        assert np.array_equal(block.values,
                              np.zeros((1, 2), dtype=complex))

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_variants_match_batched(self, data):
        """Hypothesis: any random multi-component VariantSpec agrees
        with the batched engine within tolerance (or falls back to it
        exactly)."""
        info = tow_thomas_biquad()
        names = sorted(info.faultable)
        chosen = data.draw(st.lists(st.sampled_from(names),
                                    min_size=1, max_size=3,
                                    unique=True))
        replacements = []
        for name in chosen:
            log2_scale = data.draw(st.floats(min_value=-6.0,
                                             max_value=6.0,
                                             allow_nan=False))
            component = info.circuit[name]
            replacements.append(component.with_value(
                component.value * 2.0 ** log2_scale))
        spec = VariantSpec(tuple(replacements), name="random")
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 7)
        variants = (VariantSpec(name=info.circuit.name), spec)
        factored = FactoredMnaEngine(info.circuit).transfer_block(
            info.output_node, grid, variants, info.input_source)
        batched = BatchedMnaEngine(info.circuit).transfer_block(
            info.output_node, grid, variants, info.input_source)
        _assert_block_close(factored.values, batched.values, rtol=1e-8,
                            context=f"components {chosen}")


class TestFactoredSparsePath:
    def test_sparse_and_dense_factorisations_agree(self):
        """With scipy present the large-circuit sparse path matches the
        dense numpy path within tolerance."""
        if lowrank.scipy_sparse() is None:
            pytest.skip("scipy not available")
        info = BENCHMARK_CIRCUITS["rc_ladder"]()
        universe = build_universe(info.circuit,
                                  components=info.faultable,
                                  deviations=(-0.2, 0.2))
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 13)
        variants = (VariantSpec(name=info.circuit.name),) + \
            universe.variants()
        sparse_engine = FactoredMnaEngine(info.circuit, sparse=True)
        dense_engine = FactoredMnaEngine(info.circuit, sparse=False)
        assert sparse_engine.uses_sparse
        assert not dense_engine.uses_sparse
        sparse_block = sparse_engine.transfer_block(
            info.output_node, grid, variants, info.input_source)
        dense_block = dense_engine.transfer_block(
            info.output_node, grid, variants, info.input_source)
        _assert_block_close(sparse_block.values, dense_block.values,
                            rtol=1e-9)

    def test_auto_mode_keys_off_dimension(self):
        if lowrank.scipy_sparse() is None:
            pytest.skip("scipy not available")
        small = rc_lowpass()
        assert not FactoredMnaEngine(small.circuit).uses_sparse
        assert FactoredMnaEngine(small.circuit,
                                 sparse_min_dim=1).uses_sparse

    def test_without_scipy_auto_falls_back_to_numpy(self, monkeypatch):
        """No scipy: 'auto' quietly uses the dense numpy factorisation
        and stays correct; explicit sparse=True fails loudly."""
        monkeypatch.setattr(lowrank, "scipy_sparse", lambda: None)
        info = rc_lowpass()
        engine = FactoredMnaEngine(info.circuit, sparse_min_dim=1)
        assert not engine.uses_sparse
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 9)
        universe = build_universe(info.circuit, deviations=(-0.1, 0.1))
        variants = (VariantSpec(name=info.circuit.name),) + \
            universe.variants()
        block = engine.transfer_block(info.output_node, grid, variants,
                                      info.input_source)
        reference = _scalar_reference(info, universe, grid)
        for index, expected in enumerate(reference):
            _assert_block_close(block.values[index], expected.values,
                                rtol=1e-9)
        with pytest.raises(SimulationError, match="scipy"):
            FactoredMnaEngine(info.circuit, sparse=True)


class TestFactoredSelection:
    def test_make_engine_factored(self):
        engine = make_engine(rc_lowpass().circuit, "factored")
        assert isinstance(engine, FactoredMnaEngine)

    def test_config_accepts_and_round_trips_factored(self):
        config = PipelineConfig(engine="factored")
        restored = PipelineConfig.from_json_dict(config.to_json_dict())
        assert restored.engine.kind == "factored"
        assert restored.engine == config.engine
        # The wire format keeps the original string spelling.
        assert config.to_json_dict()["engine"] == "factored"

    def test_invalid_factored_knobs_rejected(self):
        circuit = rc_lowpass().circuit
        with pytest.raises(SimulationError, match="cond_limit"):
            FactoredMnaEngine(circuit, cond_limit=0.0)
        with pytest.raises(SimulationError, match="max_rank"):
            FactoredMnaEngine(circuit, max_rank=0)
        with pytest.raises(SimulationError, match="sparse"):
            FactoredMnaEngine(circuit, sparse="always")

    def test_factored_pipeline_agrees_with_batched(self):
        from repro import FaultTrajectoryATPG
        info = rc_lowpass()
        results = {}
        for kind in ("batched", "factored"):
            config = PipelineConfig.quick()
            config = PipelineConfig(
                dictionary_points=64, ga=config.ga, engine=kind)
            results[kind] = FaultTrajectoryATPG(info, config).run(seed=3)
        batched, factored = results["batched"], results["factored"]
        assert batched.test_vector_hz == factored.test_vector_hz
        _assert_block_close(factored.dictionary.golden.values,
                            batched.dictionary.golden.values,
                            rtol=1e-9)
        evaluation_b = batched.evaluate(deviations=(-0.25, 0.25))
        evaluation_f = factored.evaluate(deviations=(-0.25, 0.25))
        assert evaluation_b.accuracy == evaluation_f.accuracy
