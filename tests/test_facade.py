"""The curated top-level API: ``repro.__all__``, ``repro.run`` and the
deprecation shims that keep old spellings alive."""

from __future__ import annotations

import dataclasses
import warnings

import pytest

import repro
from repro import (
    CorpusSpec,
    EngineSpec,
    ParallelismConfig,
    PipelineConfig,
    PosteriorConfig,
    ReproDeprecationWarning,
)
from repro.ga import GAConfig


# ----------------------------------------------------------------------
# Facade integrity
# ----------------------------------------------------------------------
def test_every_public_name_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_core_surface_is_exported():
    required = {
        "Circuit", "CircuitInfo", "run", "generate", "CIRCUIT_FAMILIES",
        "FaultTrajectoryATPG", "ATPGResult", "PipelineConfig",
        "ParallelismConfig", "EngineSpec", "PosteriorConfig",
        "PosteriorDiagnoser", "CorpusSpec", "FamilySpec", "run_corpus",
        "DiagnosisService", "ArtifactStore", "errors", "ReproError",
        "ReproDeprecationWarning", "FamilyError", "CorpusError",
        "synthesize_universe", "__version__",
    }
    missing = required - set(repro.__all__)
    assert not missing, f"facade lost public names: {sorted(missing)}"


def test_version_matches_package_metadata():
    assert repro.__version__ == "1.8.0"


def test_run_convenience_accepts_family_tuple():
    config = PipelineConfig(
        dictionary_points=48,
        ga=GAConfig.quick(seeded_generations=2, population_size=12))
    result = repro.run(("rc_ladder", 0), config=config, seed=1)
    assert result.info.circuit.name == "rc_ladder_n5_s0"
    assert len(result.test_vector_hz) == config.num_frequencies


def test_run_convenience_accepts_benchmark_name():
    config = PipelineConfig(
        dictionary_points=48,
        ga=GAConfig.quick(seeded_generations=2, population_size=12))
    result = repro.run("rc_lowpass", config=config, seed=1)
    assert result.info.circuit.name == "rc_lowpass"


# ----------------------------------------------------------------------
# Deprecation shims: old flat kwargs still work, warn, and round-trip
# through JSON unchanged.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cls,kwargs,check", [
    (PipelineConfig, {"n_workers": 3},
     lambda c: c.parallelism.n_workers == 3),
    (PipelineConfig, {"executor": "thread"},
     lambda c: c.parallelism.executor == "thread"),
    (PipelineConfig, {"ga_workers": 2, "ga_executor": "process"},
     lambda c: c.parallelism.ga_workers == 2
     and c.parallelism.ga_executor == "process"),
    (PosteriorConfig, {"n_workers": 4},
     lambda c: c.parallelism.n_workers == 4),
    (PosteriorConfig, {"executor": "thread"},
     lambda c: c.parallelism.executor == "thread"),
])
def test_legacy_kwargs_warn_and_forward(cls, kwargs, check):
    with pytest.warns(ReproDeprecationWarning):
        config = cls(**kwargs)
    assert check(config)


def test_new_spellings_do_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", ReproDeprecationWarning)
        PipelineConfig(parallelism=ParallelismConfig(
            n_workers=3, ga_workers=2))
        PosteriorConfig(parallelism=ParallelismConfig(n_workers=2))
        dataclasses.replace(PipelineConfig(), engine="factored")


def test_flat_wire_format_round_trips_without_warning():
    """Configs persisted before the consolidation load silently and
    serialise back to the identical flat document."""
    wire = PipelineConfig().to_json_dict()
    assert wire["n_workers"] == 0 and wire["engine"] == "batched"
    with warnings.catch_warnings():
        warnings.simplefilter("error", ReproDeprecationWarning)
        restored = PipelineConfig.from_json_dict(wire)
    assert restored == PipelineConfig()
    assert restored.to_json_dict() == wire

    legacy = {"n_workers": 5, "executor": "thread", "ga_workers": 2}
    with warnings.catch_warnings():
        warnings.simplefilter("error", ReproDeprecationWarning)
        restored = PipelineConfig.from_json_dict(legacy)
    assert restored.parallelism == ParallelismConfig(
        n_workers=5, executor="thread", ga_workers=2)
    round_tripped = restored.to_json_dict()
    for key, value in legacy.items():
        assert round_tripped[key] == value


def test_engine_spec_collapses_to_string_on_wire():
    assert EngineSpec("batched").to_json_value() == "batched"
    spec = EngineSpec.parse("factored:sparse=true")
    assert spec.to_json_value() == {"kind": "factored", "sparse": True}
    assert EngineSpec.coerce(spec.to_json_value()) == spec


def test_corpus_spec_inherits_config_wire_compat():
    """A corpus spec embedding flat legacy pipeline keys still loads."""
    wire = CorpusSpec.quick().to_json_dict()
    wire["pipeline"]["n_workers"] = 2          # legacy flat key
    with warnings.catch_warnings():
        warnings.simplefilter("error", ReproDeprecationWarning)
        spec = CorpusSpec.from_json_dict(wire)
    assert spec.pipeline.parallelism.n_workers == 2
