"""Tests for fault models and the fault universe."""

import pytest

from repro.circuits import tow_thomas_biquad
from repro.errors import FaultError
from repro.faults import (
    CatastrophicFault,
    OpAmpParamFault,
    ParametricFault,
    catastrophic_universe,
    paper_deviation_grid,
    parametric_universe,
)


@pytest.fixture(scope="module")
def macro_info():
    return tow_thomas_biquad(ideal_opamps=False)


class TestPaperGrid:
    def test_default_grid(self):
        grid = paper_deviation_grid()
        assert grid == (-0.4, -0.3, -0.2, -0.1, 0.1, 0.2, 0.3, 0.4)

    def test_excludes_zero(self):
        assert 0.0 not in paper_deviation_grid()

    def test_symmetric(self):
        grid = paper_deviation_grid(0.3, 0.15)
        assert grid == (-0.3, -0.15, 0.15, 0.3)

    def test_bad_step(self):
        with pytest.raises(FaultError):
            paper_deviation_grid(0.4, 0.0)
        with pytest.raises(FaultError):
            paper_deviation_grid(0.4, 0.3)  # not a multiple


class TestParametricFault:
    def test_label(self):
        assert ParametricFault("R3", 0.2).label == "R3+20%"
        assert ParametricFault("C1", -0.4).label == "C1-40%"

    def test_apply_scales_value(self, macro_info):
        fault = ParametricFault("R3", 0.25)
        faulty = fault.apply(macro_info.circuit)
        assert faulty["R3"].value == pytest.approx(
            macro_info.circuit["R3"].value * 1.25)
        # Original untouched.
        assert macro_info.circuit["R3"].value == pytest.approx(1e4)

    def test_apply_renames_circuit(self, macro_info):
        faulty = ParametricFault("R3", 0.25).apply(macro_info.circuit)
        assert "R3+25%" in faulty.name

    def test_full_negative_deviation_rejected(self):
        with pytest.raises(FaultError):
            ParametricFault("R1", -1.0)

    def test_missing_component_rejected(self, macro_info):
        with pytest.raises(FaultError, match="not in circuit"):
            ParametricFault("R99", 0.1).apply(macro_info.circuit)

    def test_opamp_target_rejected(self, macro_info):
        with pytest.raises(FaultError, match="OpAmpParamFault"):
            ParametricFault("OA1", 0.1).apply(macro_info.circuit)


class TestCatastrophicFault:
    def test_labels(self):
        assert CatastrophicFault("R1", "open").label == "R1:open"
        assert CatastrophicFault("C2", "short").label == "C2:short"

    def test_bad_kind(self):
        with pytest.raises(FaultError):
            CatastrophicFault("R1", "fried")

    def test_resistor_open(self, macro_info):
        faulty = CatastrophicFault("R1", "open").apply(macro_info.circuit)
        assert faulty["R1"].value == pytest.approx(1e12)

    def test_capacitor_short_is_huge(self, macro_info):
        faulty = CatastrophicFault("C1", "short").apply(
            macro_info.circuit)
        assert faulty["C1"].value >= 1.0

    def test_opamp_target_rejected(self, macro_info):
        with pytest.raises(FaultError):
            CatastrophicFault("OA1", "open").apply(macro_info.circuit)


class TestOpAmpParamFault:
    def test_label(self):
        fault = OpAmpParamFault("OA1", "a0", -0.3)
        assert fault.label == "OA1.a0-30%"

    def test_apply(self, macro_info):
        fault = OpAmpParamFault("OA1", "a0", -0.5)
        faulty = fault.apply(macro_info.circuit)
        assert faulty["OA1"].a0 == pytest.approx(1e5)

    def test_unknown_param(self, macro_info):
        with pytest.raises(FaultError):
            OpAmpParamFault("OA1", "slew", 0.1).apply(macro_info.circuit)

    def test_passive_target_rejected(self, macro_info):
        with pytest.raises(FaultError, match="OpAmpMacro"):
            OpAmpParamFault("R1", "a0", 0.1).apply(macro_info.circuit)

    def test_ideal_opamp_rejected(self):
        info = tow_thomas_biquad(ideal_opamps=True)
        with pytest.raises(FaultError, match="ideal_opamps=False"):
            OpAmpParamFault("OA1", "a0", 0.1).apply(info.circuit)


class TestUniverse:
    def test_paper_universe_size(self, macro_info):
        universe = parametric_universe(macro_info.circuit,
                                       components=macro_info.faultable)
        # 7 components x 8 deviations.
        assert len(universe) == 56
        assert universe.components == macro_info.faultable

    def test_labels_unique(self, macro_info):
        universe = parametric_universe(macro_info.circuit,
                                       components=macro_info.faultable)
        assert len(set(universe.labels)) == len(universe)

    def test_by_component_groups(self, macro_info):
        universe = parametric_universe(macro_info.circuit,
                                       components=macro_info.faultable)
        groups = universe.by_component()
        assert set(groups) == set(macro_info.faultable)
        assert all(len(faults) == 8 for faults in groups.values())

    def test_faulty_circuits_iterates_all(self, macro_info):
        universe = parametric_universe(macro_info.circuit,
                                       components=("R1", "C1"),
                                       deviations=(-0.1, 0.1))
        pairs = list(universe.faulty_circuits())
        assert len(pairs) == 4
        for fault, circuit in pairs:
            assert fault.label in circuit.name

    def test_restricted_to(self, macro_info):
        universe = parametric_universe(macro_info.circuit,
                                       components=macro_info.faultable)
        sub = universe.restricted_to(("R1", "R2"))
        assert sub.components == ("R1", "R2")
        assert len(sub) == 16

    def test_restricted_to_missing(self, macro_info):
        universe = parametric_universe(macro_info.circuit,
                                       components=("R1",))
        with pytest.raises(FaultError):
            universe.restricted_to(("R2",))

    def test_zero_deviation_rejected(self, macro_info):
        with pytest.raises(FaultError, match="golden"):
            parametric_universe(macro_info.circuit,
                                components=("R1",),
                                deviations=(0.0, 0.1))

    def test_include_opamp_params(self, macro_info):
        universe = parametric_universe(macro_info.circuit,
                                       components=("R1",),
                                       deviations=(-0.2, 0.2),
                                       include_opamp_params=True)
        # R1 (2) + 3 op-amps x 4 params x 2 deviations = 26.
        assert len(universe) == 26
        assert any(label.startswith("OA1.a0") for label in universe.labels)

    def test_active_component_without_flag_rejected(self, macro_info):
        with pytest.raises(FaultError, match="two-terminal"):
            parametric_universe(macro_info.circuit, components=("OA1",))

    def test_catastrophic_universe(self, macro_info):
        universe = catastrophic_universe(macro_info.circuit,
                                         components=("R1", "C1"))
        assert len(universe) == 4
        assert set(universe.labels) == {"R1:open", "R1:short",
                                        "C1:open", "C1:short"}
