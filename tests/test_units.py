"""Tests for engineering units, grids and dB helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.units import (
    UnitError,
    db,
    db_to_linear,
    decade_grid,
    format_frequency,
    format_value,
    geometric_midpoint,
    log_frequency_grid,
    nearest_index,
    octave_span,
    parse_value,
)


class TestParseValue:
    def test_plain_integer(self):
        assert parse_value("1500") == 1500.0

    def test_scientific(self):
        assert parse_value("1.5e3") == 1500.0

    def test_kilo(self):
        assert parse_value("4.7k") == pytest.approx(4700.0)

    def test_mega_spelled_meg(self):
        assert parse_value("1MEG") == pytest.approx(1e6)

    def test_meg_case_insensitive(self):
        assert parse_value("2.2meg") == pytest.approx(2.2e6)

    def test_milli_lowercase(self):
        assert parse_value("3m") == pytest.approx(3e-3)

    def test_milli_uppercase_is_milli_not_mega(self):
        # SPICE semantics: case-insensitive, so "M" is milli.
        assert parse_value("3M") == pytest.approx(3e-3)

    def test_micro(self):
        assert parse_value("10u") == pytest.approx(1e-5)

    def test_nano_with_unit(self):
        assert parse_value("15.9nF") == pytest.approx(15.9e-9)

    def test_pico(self):
        assert parse_value("22p") == pytest.approx(22e-12)

    def test_femto(self):
        assert parse_value("1f") == pytest.approx(1e-15)

    def test_giga_tera(self):
        assert parse_value("2G") == pytest.approx(2e9)
        assert parse_value("1T") == pytest.approx(1e12)

    def test_unit_suffix_ohm(self):
        assert parse_value("4.7kohm") == pytest.approx(4700.0)

    def test_negative_value(self):
        assert parse_value("-3.3k") == pytest.approx(-3300.0)

    def test_numeric_passthrough(self):
        assert parse_value(330) == 330.0
        assert parse_value(4.7) == 4.7

    def test_malformed_raises(self):
        with pytest.raises(UnitError):
            parse_value("abc")

    def test_empty_raises(self):
        with pytest.raises(UnitError):
            parse_value("")

    def test_wrong_type_raises(self):
        with pytest.raises(UnitError):
            parse_value(None)


class TestFormatValue:
    def test_kilo(self):
        assert format_value(4700.0) == "4.7k"

    def test_nano_with_unit(self):
        assert format_value(1.59e-8, unit="F") == "15.9nF"

    def test_zero(self):
        assert format_value(0.0, unit="Hz") == "0Hz"

    def test_unity(self):
        assert format_value(1.0) == "1"

    def test_mega(self):
        assert format_value(2.5e6) == "2.5MEG"

    def test_format_frequency(self):
        assert format_frequency(1e3) == "1kHz"

    @given(st.floats(min_value=1e-14, max_value=1e13,
                     allow_nan=False, allow_infinity=False))
    def test_roundtrip(self, value):
        """parse(format(x)) stays within formatting precision of x."""
        text = format_value(value, digits=12)
        assert parse_value(text) == pytest.approx(value, rel=1e-9)


class TestGrids:
    def test_log_grid_endpoints(self):
        grid = log_frequency_grid(10.0, 1e5, 41)
        assert grid[0] == pytest.approx(10.0)
        assert grid[-1] == pytest.approx(1e5)
        assert len(grid) == 41

    def test_log_grid_monotone(self):
        grid = log_frequency_grid(1.0, 1e6, 301)
        assert np.all(np.diff(grid) > 0)

    def test_log_grid_equal_ratios(self):
        grid = log_frequency_grid(1.0, 1e4, 5)
        ratios = grid[1:] / grid[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_log_grid_bad_bounds(self):
        with pytest.raises(UnitError):
            log_frequency_grid(-1.0, 10.0)
        with pytest.raises(UnitError):
            log_frequency_grid(100.0, 10.0)
        with pytest.raises(UnitError):
            log_frequency_grid(10.0, 100.0, points=1)

    def test_decade_grid_density(self):
        grid = decade_grid(10.0, 1e4, points_per_decade=10)
        # 3 decades at 10/decade -> 31 points.
        assert len(grid) == 31

    def test_decade_grid_bad_density(self):
        with pytest.raises(UnitError):
            decade_grid(10.0, 1e4, points_per_decade=0)


class TestDb:
    def test_scalar(self):
        assert db(10.0) == pytest.approx(20.0)

    def test_complex(self):
        assert db(1j) == pytest.approx(0.0)

    def test_array(self):
        out = db(np.array([1.0, 0.1]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(-20.0)

    def test_floor_prevents_inf(self):
        assert np.isfinite(db(0.0))

    def test_db_to_linear_roundtrip(self):
        assert db_to_linear(db(123.0)) == pytest.approx(123.0)

    @given(st.floats(min_value=-200.0, max_value=200.0))
    def test_db_to_linear_inverse(self, value_db):
        assert db(db_to_linear(value_db)) == pytest.approx(value_db,
                                                           abs=1e-9)


class TestMisc:
    def test_geometric_midpoint(self):
        assert geometric_midpoint(100.0, 10000.0) == pytest.approx(1000.0)

    def test_geometric_midpoint_invalid(self):
        with pytest.raises(UnitError):
            geometric_midpoint(-1.0, 10.0)

    def test_octave_span(self):
        assert octave_span(440.0, 880.0) == pytest.approx(1.0)

    def test_nearest_index_log(self):
        grid = log_frequency_grid(10.0, 1e5, 5)  # 10,100,1k,10k,100k
        assert nearest_index(grid, 900.0) == 2
        assert nearest_index(grid, 5000.0) == 3

    def test_nearest_index_empty(self):
        with pytest.raises(UnitError):
            nearest_index([], 1.0)
