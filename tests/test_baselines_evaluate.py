"""Tests for baseline diagnosers and the evaluation harness."""

import numpy as np
import pytest

from repro.diagnosis import (
    HELD_OUT_DEVIATIONS,
    NearestNeighborClassifier,
    TrajectoryClassifier,
    ambiguity_groups,
    evaluate_classifier,
    exhaustive_search,
    make_test_cases,
    random_test_vectors,
)
from repro.diagnosis.evaluate import DiagnosisCase
from repro.errors import DiagnosisError
from repro.ga import FrequencySpace
from repro.trajectory import (
    FaultTrajectory,
    SignatureMapper,
    TrajectorySet,
)


@pytest.fixture(scope="module")
def nn_classifier(biquad_dictionary):
    mapper = SignatureMapper((500.0, 1500.0))
    return NearestNeighborClassifier(biquad_dictionary, mapper)


class TestNearestNeighbor:
    def test_stored_point_maps_to_its_fault(self, nn_classifier,
                                            biquad_dictionary):
        mapper = nn_classifier.mapper
        entry = biquad_dictionary.entry("R1+20%")
        point = mapper.signature(entry.response,
                                 biquad_dictionary.golden)
        diagnosis = nn_classifier.classify_point(point)
        assert diagnosis.component == "R1"
        assert diagnosis.estimated_deviation == pytest.approx(0.2)

    def test_cannot_interpolate_deviation(self, nn_classifier,
                                          biquad_info):
        """NN returns a grid deviation; a +25% fault snaps to +20% or
        +30% -- the structural weakness the trajectory method fixes."""
        from repro.sim import ACAnalysis
        freqs = np.array([500.0, 1500.0])
        golden = ACAnalysis(biquad_info.circuit).transfer(
            biquad_info.output_node, freqs)
        faulty = ACAnalysis(
            biquad_info.circuit.scaled_value("R1", 1.25)).transfer(
                biquad_info.output_node, freqs)
        point = nn_classifier.mapper.signature(faulty, golden)
        diagnosis = nn_classifier.classify_point(point)
        assert diagnosis.component == "R1"
        assert diagnosis.estimated_deviation in (
            pytest.approx(0.2), pytest.approx(0.3))

    def test_dimension_check(self, nn_classifier):
        with pytest.raises(DiagnosisError):
            nn_classifier.classify_point(np.zeros(3))

    def test_ranking_covers_components(self, nn_classifier):
        diagnosis = nn_classifier.classify_point(np.array([0.5, 0.5]))
        assert len(diagnosis.ranking) == 7


class TestVectorSelectors:
    def test_random_test_vectors(self):
        space = FrequencySpace(10.0, 1e6, 2)
        vectors = random_test_vectors(space, 5, seed=3)
        assert len(vectors) == 5
        for f1, f2 in vectors:
            assert 10.0 <= f1 < f2 <= 1e6 * (1 + 1e-9)

    def test_random_vectors_deterministic(self):
        space = FrequencySpace(10.0, 1e6, 2)
        assert random_test_vectors(space, 3, seed=7) == \
            random_test_vectors(space, 3, seed=7)

    def test_random_count_validation(self):
        space = FrequencySpace(10.0, 1e6, 2)
        with pytest.raises(DiagnosisError):
            random_test_vectors(space, 0)

    def test_exhaustive_search_finds_target(self):
        """Fitness peaked at (100, 10k): the grid scan must find the
        nearest grid pair and report its evaluation count."""
        space = FrequencySpace(10.0, 1e5, 2)

        def fitness(freqs):
            target = np.log10(np.array([100.0, 1e4]))
            got = np.log10(np.array(freqs))
            return float(np.exp(-np.sum((got - target) ** 2)))

        best, value, evaluations = exhaustive_search(
            space, fitness, points_per_decade=5)
        assert best[0] == pytest.approx(100.0, rel=0.3)
        assert best[1] == pytest.approx(1e4, rel=0.3)
        # C(21, 2) = 210 combinations for 4 decades at 5/decade.
        assert evaluations == 210


class TestMakeCases:
    def test_case_count(self, biquad_info):
        mapper = SignatureMapper((500.0, 1500.0))
        cases = make_test_cases(biquad_info, mapper,
                                deviations=(-0.15, 0.15))
        assert len(cases) == 7 * 2
        components = {case.true_component for case in cases}
        assert components == set(biquad_info.faultable)

    def test_repeats_and_noise_deterministic(self, biquad_info):
        mapper = SignatureMapper((500.0, 1500.0))
        kwargs = dict(deviations=(0.25,), noise_db=0.1, repeats=3,
                      seed=42)
        a = make_test_cases(biquad_info, mapper, **kwargs)
        b = make_test_cases(biquad_info, mapper, **kwargs)
        assert len(a) == 21
        for case_a, case_b in zip(a, b):
            assert np.allclose(case_a.point, case_b.point)

    def test_noise_changes_points(self, biquad_info):
        mapper = SignatureMapper((500.0, 1500.0))
        clean = make_test_cases(biquad_info, mapper, deviations=(0.25,))
        noisy = make_test_cases(biquad_info, mapper, deviations=(0.25,),
                                noise_db=0.1, seed=1)
        assert not np.allclose(clean[0].point, noisy[0].point)

    def test_tolerance_perturbs_other_components(self, biquad_info):
        mapper = SignatureMapper((500.0, 1500.0))
        clean = make_test_cases(biquad_info, mapper, deviations=(0.25,))
        spread = make_test_cases(biquad_info, mapper, deviations=(0.25,),
                                 tolerance=0.05, seed=1)
        assert not np.allclose(clean[0].point, spread[0].point)

    def test_validation(self, biquad_info):
        mapper = SignatureMapper((500.0, 1500.0))
        with pytest.raises(DiagnosisError):
            make_test_cases(biquad_info, mapper, noise_db=-1.0)
        with pytest.raises(DiagnosisError):
            make_test_cases(biquad_info, mapper, repeats=0)


class TestEvaluation:
    def make_xy_classifier(self):
        mapper = SignatureMapper((100.0, 1000.0))
        deviations = (-0.2, -0.1, 0.0, 0.1, 0.2)
        x = FaultTrajectory("X", deviations,
                            np.outer(deviations, [1.0, 0.0]))
        y = FaultTrajectory("Y", deviations,
                            np.outer(deviations, [0.0, 1.0]))
        return TrajectoryClassifier(TrajectorySet(mapper, (x, y)))

    def test_perfect_synthetic_evaluation(self):
        classifier = self.make_xy_classifier()
        cases = [
            DiagnosisCase("X", 0.15, np.array([0.15, 0.0])),
            DiagnosisCase("X", -0.05, np.array([-0.05, 0.0])),
            DiagnosisCase("Y", 0.12, np.array([0.0, 0.12])),
        ]
        result = evaluate_classifier(classifier, cases)
        assert result.accuracy == 1.0
        assert result.deviation_mae() == pytest.approx(0.0, abs=1e-9)
        assert result.num_cases == 3

    def test_confusion_and_per_component(self):
        classifier = self.make_xy_classifier()
        cases = [
            DiagnosisCase("X", 0.15, np.array([0.15, 0.0])),
            DiagnosisCase("Y", 0.15, np.array([0.15, 0.0])),  # mislabeled
        ]
        result = evaluate_classifier(classifier, cases)
        assert result.accuracy == 0.5
        confusion = result.confusion()
        assert confusion[("X", "X")] == 1
        assert confusion[("Y", "X")] == 1
        per = result.per_component_accuracy()
        assert per["X"] == 1.0
        assert per["Y"] == 0.0

    def test_group_accuracy(self):
        classifier = self.make_xy_classifier()
        cases = [DiagnosisCase("Y", 0.15, np.array([0.15, 0.0]))]
        groups = (frozenset({"X", "Y"}),)
        result = evaluate_classifier(classifier, cases, groups=groups)
        assert result.accuracy == 0.0
        assert result.group_accuracy == 1.0

    def test_summary_text(self):
        classifier = self.make_xy_classifier()
        cases = [DiagnosisCase("X", 0.15, np.array([0.15, 0.0]))]
        result = evaluate_classifier(classifier, cases,
                                     groups=(frozenset({"X", "Y"}),))
        text = result.summary()
        assert "component accuracy" in text
        assert "group accuracy" in text

    def test_empty_cases_rejected(self):
        with pytest.raises(DiagnosisError):
            evaluate_classifier(self.make_xy_classifier(), [])

    def test_held_out_deviations_are_off_grid(self):
        from repro.faults import paper_deviation_grid
        grid = set(paper_deviation_grid())
        assert not grid.intersection(HELD_OUT_DEVIATIONS)


class TestAmbiguityGroups:
    def test_separated_trajectories_are_singletons(self):
        mapper = SignatureMapper((100.0, 1000.0))
        deviations = (-0.2, -0.1, 0.0, 0.1, 0.2)
        x = FaultTrajectory("X", deviations,
                            np.outer(deviations, [1.0, 0.0]))
        y = FaultTrajectory("Y", deviations,
                            np.outer(deviations, [0.0, 1.0]))
        groups = ambiguity_groups(TrajectorySet(mapper, (x, y)),
                                  threshold=0.01)
        assert groups == (frozenset({"X"}), frozenset({"Y"}))

    def test_near_identical_merge(self):
        mapper = SignatureMapper((100.0, 1000.0))
        deviations = (-0.2, -0.1, 0.0, 0.1, 0.2)
        x = FaultTrajectory("X", deviations,
                            np.outer(deviations, [1.0, 0.0]))
        x2_points = np.outer(deviations, [1.0, 0.0])
        x2_points[:, 1] += 1e-5
        x2 = FaultTrajectory("X2", deviations, x2_points)
        y = FaultTrajectory("Y", deviations,
                            np.outer(deviations, [0.0, 1.0]))
        groups = ambiguity_groups(TrajectorySet(mapper, (x, x2, y)),
                                  threshold=0.01)
        assert frozenset({"X", "X2"}) in groups
        assert frozenset({"Y"}) in groups

    def test_transitive_merge(self):
        mapper = SignatureMapper((100.0, 1000.0))
        deviations = (-0.2, -0.1, 0.0, 0.1, 0.2)
        base = np.outer(deviations, [1.0, 0.0])
        a = FaultTrajectory("A", deviations, base)
        b = FaultTrajectory("B", deviations,
                            base + np.array([0.0, 0.008]))
        c = FaultTrajectory("C", deviations,
                            base + np.array([0.0, 0.016]))
        groups = ambiguity_groups(TrajectorySet(mapper, (a, b, c)),
                                  threshold=0.01)
        # A-B close, B-C close -> one transitive group.
        assert groups == (frozenset({"A", "B", "C"}),)

    def test_single_trajectory(self):
        mapper = SignatureMapper((100.0, 1000.0))
        deviations = (-0.1, 0.0, 0.1)
        only = FaultTrajectory("A", deviations,
                               np.outer(deviations, [1.0, 0.0]))
        groups = ambiguity_groups(TrajectorySet(mapper, (only,)), 0.01)
        assert groups == (frozenset({"A"}),)

    def test_threshold_validation(self, biquad_trajectories):
        with pytest.raises(DiagnosisError):
            ambiguity_groups(biquad_trajectories, -0.1)

    def test_biquad_known_degenerate_pairs(self, biquad_info):
        """With ideal op-amps R3/R5 and R4/C2 are exactly degenerate;
        with macromodels they stay nearly so at passband frequencies."""
        from repro.faults import parametric_universe, FaultDictionary
        freqs = np.array([500.0, 1500.0])
        universe = parametric_universe(biquad_info.circuit,
                                       components=biquad_info.faultable)
        exact = FaultDictionary.build(universe, biquad_info.output_node,
                                      freqs)
        trajectories = TrajectorySet.from_source(
            exact, SignatureMapper((500.0, 1500.0)))
        groups = ambiguity_groups(trajectories, threshold=0.01)
        lookup = {}
        for group in groups:
            for member in group:
                lookup[member] = group
        assert lookup["R3"] == lookup["R5"]
        assert lookup["R4"] == lookup["C2"]
