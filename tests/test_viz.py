"""Tests for ASCII figures and CSV export."""

import csv

import numpy as np
import pytest

from repro.errors import ReproError
from repro.viz import (
    confusion_csv,
    ga_history_csv,
    line_plot,
    response_family_csv,
    scatter_plot,
    table,
    trajectory_csv,
    trajectory_plot,
    write_csv,
)


class TestLinePlot:
    def test_renders_with_legend(self):
        x = np.logspace(1, 5, 50)
        series = {"golden": -20.0 * np.log10(1 + x / 1e3),
                  "faulty": -20.0 * np.log10(1 + x / 2e3)}
        text = line_plot(x, series, title="Fig 1")
        assert "Fig 1" in text
        assert "*=golden" in text
        assert "+=faulty" in text

    def test_canvas_height(self):
        x = np.logspace(1, 3, 10)
        text = line_plot(x, {"a": np.linspace(0, 1, 10)}, height=12)
        # 12 canvas rows between the two border rows.
        assert sum(1 for line in text.splitlines()
                   if line.strip().startswith("|")) == 12

    def test_needs_series(self):
        with pytest.raises(ReproError):
            line_plot(np.array([1.0, 2.0]), {})

    def test_length_mismatch(self):
        with pytest.raises(ReproError):
            line_plot(np.array([1.0, 2.0]), {"a": np.array([1.0])})

    def test_too_many_series(self):
        x = np.array([1.0, 2.0])
        series = {f"s{i}": x for i in range(11)}
        with pytest.raises(ReproError, match="too many"):
            line_plot(x, series)

    def test_flat_series_does_not_crash(self):
        x = np.array([1.0, 10.0, 100.0])
        text = line_plot(x, {"flat": np.zeros(3)})
        assert "flat" in text


class TestScatterAndTrajectory:
    def test_scatter_markers(self):
        points = {"A": np.array([[0.0, 0.0], [1.0, 1.0]]),
                  "B": np.array([[0.5, -0.5]])}
        text = scatter_plot(points, title="plane")
        assert "*=A" in text and "+=B" in text

    def test_scatter_needs_points(self):
        with pytest.raises(ReproError):
            scatter_plot({})

    def test_scatter_rejects_3d(self):
        with pytest.raises(ReproError):
            scatter_plot({"A": np.zeros((2, 3))})

    def test_trajectory_plot_marks_origin_and_unknown(self):
        points = {"R3": np.array([[-1.0, -0.5], [0.0, 0.0],
                                  [1.0, 0.5]])}
        text = trajectory_plot(points, unknown=(0.4, 0.1))
        assert "O" in text
        assert "?" in text

    def test_single_point_cloud(self):
        text = scatter_plot({"A": np.array([[2.0, 3.0]])})
        assert "*=A" in text


class TestTable:
    def test_alignment_and_rule(self):
        text = table(["name", "value"],
                     [["R1", 0.123456], ["C1", 2.0]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", "+"}
        assert "0.1235" in text  # default 4 significant digits

    def test_needs_headers(self):
        with pytest.raises(ReproError):
            table([], [])


class TestCsvExport:
    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "t.csv", ["a", "b"],
                         [[1, 2], [3, 4]])
        rows = list(csv.reader(path.open()))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_write_csv_creates_dirs(self, tmp_path):
        path = write_csv(tmp_path / "sub" / "dir" / "t.csv", ["x"],
                         [[1]])
        assert path.exists()

    def test_response_family(self, tmp_path, biquad_dictionary):
        responses = {"golden": biquad_dictionary.golden,
                     "R3+40%": biquad_dictionary.entry("R3+40%").response}
        path = response_family_csv(tmp_path / "fig1.csv", responses)
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["freq_hz", "golden_db", "R3+40%_db"]
        assert len(rows) == 1 + len(biquad_dictionary.freqs_hz)

    def test_response_family_grid_mismatch(self, tmp_path,
                                           biquad_dictionary):
        from repro.sim import FrequencyResponse
        other = FrequencyResponse(np.array([1.0, 2.0]),
                                  np.ones(2, dtype=complex))
        with pytest.raises(ReproError, match="different frequency grid"):
            response_family_csv(tmp_path / "bad.csv",
                                {"golden": biquad_dictionary.golden,
                                 "other": other})

    def test_trajectory_csv(self, tmp_path, biquad_trajectories):
        path = trajectory_csv(tmp_path / "fig3.csv", biquad_trajectories)
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["component", "deviation", "coord1", "coord2"]
        # 7 trajectories x 9 points.
        assert len(rows) == 1 + 63

    def test_ga_history_csv(self, tmp_path, biquad_surface):
        from repro.ga import (FrequencySpace, GAConfig, GeneticAlgorithm,
                              PaperFitness)
        space = FrequencySpace(100.0, 1e5, 2)
        result = GeneticAlgorithm(
            space, PaperFitness(biquad_surface),
            GAConfig.quick(seeded_generations=2, population_size=8)
        ).run(seed=0)
        path = ga_history_csv(tmp_path / "ga.csv", result)
        rows = list(csv.reader(path.open()))
        assert rows[0][0] == "generation"
        assert len(rows) == 3

    def test_confusion_csv(self, tmp_path):
        path = confusion_csv(tmp_path / "conf.csv",
                             {("R1", "R1"): 5, ("R1", "R2"): 1})
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["true_component", "predicted_component",
                           "count"]
        assert ["R1", "R2", "1"] in rows
