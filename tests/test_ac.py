"""Tests for AC analysis and the FrequencyResponse container."""

import numpy as np
import pytest

from repro.circuits import Circuit, rc_lowpass, voltage_divider
from repro.errors import SimulationError
from repro.sim import ACAnalysis, FrequencyResponse
from repro.units import log_frequency_grid


@pytest.fixture(scope="module")
def rc_response():
    info = rc_lowpass(f0_hz=1e3)
    grid = log_frequency_grid(1.0, 1e6, 241)
    return ACAnalysis(info.circuit).transfer(info.output_node, grid)


class TestFrequencyResponseValidation:
    def test_shape_mismatch(self):
        with pytest.raises(SimulationError):
            FrequencyResponse(np.array([1.0, 2.0]), np.array([1.0 + 0j]))

    def test_nonpositive_frequency(self):
        with pytest.raises(SimulationError):
            FrequencyResponse(np.array([0.0, 1.0]),
                              np.array([1.0, 1.0], dtype=complex))

    def test_non_increasing_grid(self):
        with pytest.raises(SimulationError):
            FrequencyResponse(np.array([2.0, 1.0]),
                              np.array([1.0, 1.0], dtype=complex))

    def test_len(self, rc_response):
        assert len(rc_response) == 241


class TestRCAnalytic:
    """First-order RC low-pass has closed-form H = 1/(1 + jf/f0)."""

    def test_magnitude_everywhere(self, rc_response):
        f = rc_response.freqs_hz
        expected = 1.0 / np.sqrt(1.0 + (f / 1000.0) ** 2)
        assert np.allclose(rc_response.magnitude, expected, rtol=1e-9)

    def test_phase_everywhere(self, rc_response):
        f = rc_response.freqs_hz
        expected = -np.arctan(f / 1000.0)
        assert np.allclose(rc_response.phase_rad, expected, atol=1e-9)

    def test_cutoff(self, rc_response):
        assert rc_response.cutoff_3db() == pytest.approx(1000.0, rel=1e-3)

    def test_dc_gain(self, rc_response):
        assert rc_response.dc_gain_db() == pytest.approx(0.0, abs=1e-4)

    def test_group_delay_low_frequency(self, rc_response):
        # tau_g(0) = RC = 1/(2 pi f0).
        expected = 1.0 / (2.0 * np.pi * 1000.0)
        assert rc_response.group_delay()[0] == pytest.approx(expected,
                                                             rel=5e-2)


class TestInterpolation:
    def test_exact_at_grid_points(self, rc_response):
        index = 100
        f = float(rc_response.freqs_hz[index])
        assert rc_response.magnitude_db_at(f) == pytest.approx(
            float(rc_response.magnitude_db[index]), abs=1e-12)

    def test_between_grid_points(self, rc_response):
        value = rc_response.magnitude_db_at(1234.5)
        expected = 20.0 * np.log10(
            1.0 / np.sqrt(1.0 + (1234.5 / 1000.0) ** 2))
        # 241 points over 6 decades: interpolation error is a few mdB.
        assert value == pytest.approx(expected, abs=5e-3)

    def test_vector_query(self, rc_response):
        out = rc_response.magnitude_db_at(np.array([100.0, 1000.0]))
        assert out.shape == (2,)

    def test_clamps_out_of_band(self, rc_response):
        # Below the grid: clamped to the first point.
        assert rc_response.magnitude_db_at(0.1) == pytest.approx(
            float(rc_response.magnitude_db[0]))

    def test_rejects_nonpositive_query(self, rc_response):
        with pytest.raises(SimulationError):
            rc_response.magnitude_db_at(-5.0)

    def test_complex_at(self, rc_response):
        value = rc_response.at(1000.0)
        assert abs(value) == pytest.approx(1.0 / np.sqrt(2.0), rel=1e-6)
        assert np.angle(value) == pytest.approx(-np.pi / 4.0, rel=1e-4)

    def test_resampled(self, rc_response):
        new_grid = log_frequency_grid(10.0, 1e5, 31)
        resampled = rc_response.resampled(new_grid)
        assert len(resampled) == 31
        expected = 1.0 / np.sqrt(1.0 + (new_grid / 1000.0) ** 2)
        assert np.allclose(resampled.magnitude, expected, rtol=1e-3)


class TestCharacteristics:
    def test_peak_of_flat_response(self):
        info = voltage_divider()
        grid = log_frequency_grid(1.0, 1e6, 31)
        resp = ACAnalysis(info.circuit).transfer(info.output_node, grid)
        _, peak_db = resp.peak()
        assert peak_db == pytest.approx(20.0 * np.log10(0.5), abs=1e-9)

    def test_cutoff_never_crossing_raises(self):
        info = voltage_divider()
        grid = log_frequency_grid(1.0, 1e6, 31)
        resp = ACAnalysis(info.circuit).transfer(info.output_node, grid)
        with pytest.raises(SimulationError, match="never falls"):
            resp.cutoff_3db()


class TestACAnalysis:
    def test_transfer_normalises_by_source(self):
        # Same circuit but AC magnitude 2: transfer must be identical.
        info = rc_lowpass()
        ckt2 = Circuit("rc2")
        ckt2.add_voltage_source("VIN", "in", "0", ac=2.0)
        ckt2.add_resistor("R1", "in", "out", info.circuit["R1"].value)
        ckt2.add_capacitor("C1", "out", "0", info.circuit["C1"].value)
        grid = log_frequency_grid(10.0, 1e5, 21)
        h1 = ACAnalysis(info.circuit).transfer("out", grid)
        h2 = ACAnalysis(ckt2).transfer("out", grid)
        assert np.allclose(h1.values, h2.values, rtol=1e-12)

    def test_transfer_with_phase_source(self):
        ckt = Circuit("rcph")
        ckt.add_voltage_source("VIN", "in", "0", ac=1.0, ac_phase_deg=90.0)
        ckt.add_resistor("R1", "in", "out", 1e4)
        ckt.add_capacitor("C1", "out", "0", 1.59155e-8)
        grid = np.array([1000.0])
        h = ACAnalysis(ckt).transfer("out", grid)
        # Normalisation removes the source phase entirely.
        assert np.angle(h.values[0]) == pytest.approx(-np.pi / 4.0,
                                                      rel=1e-3)

    def test_transfer_ground_output_is_zero(self):
        info = rc_lowpass()
        grid = log_frequency_grid(10.0, 1e3, 5)
        h = ACAnalysis(info.circuit).transfer("0", grid)
        assert np.all(h.values == 0.0)

    def test_transfer_auto(self):
        info = rc_lowpass()
        h = ACAnalysis(info.circuit).transfer_auto("out", 10.0, 1e5,
                                                   points=33)
        assert len(h) == 33

    def test_explicit_source_must_have_ac(self):
        ckt = Circuit("noac")
        ckt.add_voltage_source("V1", "in", "0", dc=1.0)
        ckt.add_resistor("R1", "in", "0", 1.0)
        analysis = ACAnalysis(ckt)
        with pytest.raises(SimulationError, match="no AC magnitude"):
            analysis.transfer("in", np.array([100.0]),
                              input_source="V1")

    def test_node_voltages_all_nodes(self):
        info = rc_lowpass()
        grid = log_frequency_grid(10.0, 1e3, 5)
        volts = ACAnalysis(info.circuit).node_voltages(grid)
        assert set(volts) == {"in", "out"}
        assert np.allclose(np.abs(volts["in"].values), 1.0)
