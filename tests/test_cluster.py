"""Diagnosis cluster: routing equivalence, failover, wire transport.

The heart of this suite is the Hypothesis property: for random circuit
mixes, replica counts (2 and 3), knob settings and arrival
interleavings, a consistent-hash :class:`ClusterService` answers every
request **bitwise-identically** to a single sequential
:meth:`DiagnosisService.submit` -- the correctness contract that makes
replica routing transparent to clients.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import (
    ArtifactStore,
    AsyncDiagnosisService,
    ClusterService,
    DiagnosisService,
    PipelineConfig,
    serve,
)
from repro.errors import (ClusterError, ReplicaUnavailableError,
                          ServiceError)
from repro.runtime import telemetry
from repro.runtime.cluster import (CircuitRouter, HTTPReplica,
                                   InProcessReplica, SpawnedReplica)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

pytestmark = pytest.mark.serving

# Shared serving scaffolding (config, circuits, warm_service fixture,
# measured-row generator) lives in conftest.py -- the serving suite
# uses the same definitions.
from conftest import (QUICK_SERVING as QUICK,
                      SERVING_CIRCUITS as CIRCUITS, measured_rows)

#: Cheap two-component circuits for tests that must build *separate*
#: engines per replica.
CHEAP_CIRCUITS = ("rc_lowpass", "voltage_divider")


def shared_cluster(warm_service, n_replicas, **async_kwargs):
    return ClusterService.in_process(n_replicas, services=warm_service,
                                     **async_kwargs)


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------
class TestCircuitRouter:
    def test_placement_is_deterministic_and_total(self):
        router = CircuitRouter(("replica-0", "replica-1", "replica-2"))
        names = [f"circuit_{i}" for i in range(60)]
        placed = {name: router.replica_for(name) for name in names}
        again = CircuitRouter(("replica-0", "replica-1", "replica-2"))
        assert placed == {name: again.replica_for(name)
                          for name in names}
        assert set(placed.values()) == set(router.replica_names)

    def test_failover_order_starts_at_owner(self):
        router = CircuitRouter(("a", "b", "c"))
        for name in ("rc_lowpass", "voltage_divider"):
            order = router.failover_order(name)
            assert order[0] == router.replica_for(name)
            assert sorted(order) == ["a", "b", "c"]

    def test_down_replica_only_remaps_its_circuits(self):
        router = CircuitRouter(("a", "b", "c"))
        names = [f"circuit_{i}" for i in range(120)]
        before = {name: router.replica_for(name) for name in names}
        for name in names:
            moved = router.replica_for(name, exclude=frozenset({"c"}))
            if before[name] != "c":
                assert moved == before[name]

    def test_empty_and_exhausted_rings_raise(self):
        with pytest.raises(ClusterError):
            CircuitRouter(())
        router = CircuitRouter(("a",))
        with pytest.raises(ClusterError, match="no live replica"):
            router.replica_for("x", exclude=frozenset({"a"}))


# ----------------------------------------------------------------------
# Property: cluster == single service, bitwise
# ----------------------------------------------------------------------
request_lists = st.lists(
    st.tuples(st.integers(0, len(CIRCUITS) - 1),   # circuit
              st.integers(1, 4),                   # rows in the request
              st.integers(0, 2 ** 31)),            # measurement seed
    min_size=1, max_size=12)


class TestClusterEquivalence:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(requests=request_lists,
           n_replicas=st.sampled_from([2, 3]),
           max_batch=st.integers(1, 32),
           window_ms=st.sampled_from([0.0, 0.5, 2.0]),
           stagger=st.lists(st.integers(0, 2), min_size=12,
                            max_size=12))
    def test_routed_results_bitwise_equal_single_service(
            self, warm_service, requests, n_replicas, max_batch,
            window_ms, stagger):
        """N interleaved cluster submits == N sequential submits,
        whatever the replica count."""
        batches = [(CIRCUITS[index], measured_rows(
            warm_service, CIRCUITS[index], rows, seed))
            for index, rows, seed in requests]
        expected = [warm_service.submit(circuit, rows)
                    for circuit, rows in batches]

        async def clustered():
            cluster = shared_cluster(
                warm_service, n_replicas,
                window_seconds=window_ms / 1e3, max_batch=max_batch)

            async def one(position, circuit, rows):
                for _ in range(stagger[position % len(stagger)]):
                    await asyncio.sleep(0)
                return await cluster.submit(circuit, rows)

            results = await asyncio.gather(
                *(one(position, circuit, rows)
                  for position, (circuit, rows) in enumerate(batches)))
            await cluster.aclose()
            return results

        results = asyncio.run(clustered())
        # Diagnosis is a frozen dataclass: == compares every float
        # exactly, so this is the bitwise claim.
        assert results == expected

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(requests=request_lists, n_replicas=st.sampled_from([2, 3]))
    def test_burst_submit_many_bitwise_equal_single_service(
            self, warm_service, requests, n_replicas):
        """A mixed-circuit burst through the cluster == sequential."""
        batches = [(CIRCUITS[index], measured_rows(
            warm_service, CIRCUITS[index], rows, seed))
            for index, rows, seed in requests]
        expected = [warm_service.submit(circuit, rows)
                    for circuit, rows in batches]

        async def clustered():
            cluster = shared_cluster(warm_service, n_replicas,
                                     window_seconds=0.001)
            results = await cluster.submit_many(batches)
            await cluster.aclose()
            return results

        assert asyncio.run(clustered()) == expected


class TestCrossReplicaDeterminism:
    def test_separate_replica_services_answer_identically(self):
        """Independently built replicas (own engine caches, same
        config+seed) return bitwise-identical diagnoses -- the
        property that makes failover transparent."""
        services = [DiagnosisService(config=QUICK, seed=3)
                    for _ in range(2)]
        reference = DiagnosisService(config=QUICK, seed=3)
        for name in CHEAP_CIRCUITS:
            reference.warm(name)
        batches = [(name, measured_rows(reference, name, 3, seed=42 + i))
                   for i, name in enumerate(CHEAP_CIRCUITS)]
        expected = [reference.submit(name, rows)
                    for name, rows in batches]

        async def clustered():
            cluster = ClusterService.in_process(
                2, services=services, window_seconds=0.001)
            results = [await cluster.submit(name, rows)
                       for name, rows in batches]
            await cluster.aclose()
            return results

        assert asyncio.run(clustered()) == expected


# ----------------------------------------------------------------------
# Failover / health
# ----------------------------------------------------------------------
class TestFailover:
    def test_dead_replica_reroutes_and_results_stay_identical(
            self, warm_service):
        circuit = "rc_lowpass"
        rows = measured_rows(warm_service, circuit, 2, seed=9)
        expected = warm_service.submit(circuit, rows)

        async def run():
            cluster = shared_cluster(warm_service, 3,
                                     window_seconds=0.001)
            owner = cluster.replica_for(circuit)
            await owner.front.aclose()       # kill the owning replica
            result = await cluster.submit(circuit, rows)
            assert owner.name in cluster.down
            assert cluster.failovers >= 1
            # The re-route is sticky until health says otherwise.
            assert cluster.replica_for(circuit).name != owner.name
            await cluster.aclose()
            return result

        assert asyncio.run(run()) == expected

    def test_burst_reroutes_only_the_dead_replicas_share(
            self, warm_service):
        batches = [(name, measured_rows(warm_service, name, 1,
                                        seed=17 + i))
                   for i, name in enumerate(CIRCUITS * 2)]
        expected = [warm_service.submit(name, rows)
                    for name, rows in batches]

        async def run():
            cluster = shared_cluster(warm_service, 3,
                                     window_seconds=0.001)
            victim = cluster.replica_for(CIRCUITS[0])
            await victim.front.aclose()
            results = await cluster.submit_many(batches)
            assert victim.name in cluster.down
            await cluster.aclose()
            return results

        assert asyncio.run(run()) == expected

    def test_every_replica_down_raises_cluster_error(self, warm_service):
        async def run():
            cluster = shared_cluster(warm_service, 2,
                                     window_seconds=0.001)
            for replica in cluster.replicas.values():
                await replica.front.aclose()
            with pytest.raises(ClusterError, match="no live replica"):
                await cluster.submit(
                    "rc_lowpass",
                    measured_rows(warm_service, "rc_lowpass", 1, 0))
            await cluster.aclose()

        asyncio.run(run())

    def test_check_health_marks_down_and_revives(self, warm_service):
        async def run():
            cluster = shared_cluster(warm_service, 3,
                                     window_seconds=0.001)
            assert await cluster.check_health() == {
                name: True for name in cluster.replicas}
            victim = next(iter(cluster.replicas.values()))
            await victim.front.aclose()
            health = await cluster.check_health()
            assert health[victim.name] is False
            assert victim.name in cluster.down
            # A replacement front under the same name rejoins the ring.
            victim.front = AsyncDiagnosisService(warm_service,
                                                 window_seconds=0.001)
            health = await cluster.check_health()
            assert health[victim.name] is True
            assert victim.name not in cluster.down
            await cluster.aclose()

        asyncio.run(run())

    def test_closed_cluster_rejects_submits(self, warm_service):
        async def run():
            cluster = shared_cluster(warm_service, 2)
            await cluster.aclose()
            with pytest.raises(ServiceError, match="closed"):
                await cluster.submit(
                    "rc_lowpass",
                    measured_rows(warm_service, "rc_lowpass", 1, 0))

        asyncio.run(run())

    def test_invalid_clusters_rejected(self, warm_service):
        with pytest.raises(ClusterError):
            ClusterService([])
        front = AsyncDiagnosisService(warm_service)
        with pytest.raises(ClusterError, match="duplicate"):
            ClusterService([InProcessReplica("twin", front),
                            InProcessReplica("twin", front)])
        with pytest.raises(ClusterError):
            ClusterService.in_process(0, services=warm_service)
        with pytest.raises(ClusterError, match="2 services"):
            ClusterService.in_process(
                3, services=[DiagnosisService(config=QUICK)] * 2)


# ----------------------------------------------------------------------
# Introspection
# ----------------------------------------------------------------------
class TestClusterIntrospection:
    def test_stats_snapshot_aggregates(self, warm_service):
        async def run():
            cluster = shared_cluster(warm_service, 2,
                                     window_seconds=0.001)
            await cluster.submit(
                "rc_lowpass",
                measured_rows(warm_service, "rc_lowpass", 1, 3))
            await cluster.submit_many(
                [("voltage_divider",
                  measured_rows(warm_service, "voltage_divider", 1, 4))])
            snapshot = await cluster.stats_snapshot()
            await cluster.aclose()
            return snapshot

        snapshot = asyncio.run(run())
        assert snapshot["cluster"]["replicas"] == 2
        assert snapshot["cluster"]["requests"] == 2
        assert snapshot["cluster"]["bursts"] == 1
        assert snapshot["cluster"]["failovers"] == 0
        assert set(snapshot["per_replica"]) == {"replica-0",
                                                "replica-1"}
        for replica_snapshot in snapshot["per_replica"].values():
            assert "requests" in replica_snapshot
        merged = snapshot["merged"]
        assert merged["requests"] == sum(
            replica_snapshot["requests"] for replica_snapshot
            in snapshot["per_replica"].values())
        assert "per_circuit" in merged
        assert "batch_size_histogram" in merged

    def test_metrics_text_merges_replica_scrapes(self, warm_service):
        async def run():
            cluster = shared_cluster(warm_service, 2,
                                     window_seconds=0.001)
            await cluster.submit(
                "rc_lowpass",
                measured_rows(warm_service, "rc_lowpass", 1, 9))
            text = await cluster.metrics_text()
            await cluster.aclose()
            return text

        text = asyncio.run(run())
        families = telemetry.parse_exposition(text)
        # The cluster's own registry renders first...
        assert families["repro_cluster_requests_total"]["samples"] \
            [0][2] == 1
        up = {labels["replica"]: value for _, labels, value
              in families["repro_cluster_replica_up"]["samples"]}
        assert up == {"replica-0": 1.0, "replica-1": 1.0}
        assert "repro_cluster_replica_call_seconds" in families
        # ...then every replica scrape, tagged with a replica label.
        replicas = {labels.get("replica") for _, labels, _
                    in families["repro_service_requests_total"]
                    ["samples"]}
        assert replicas == {"replica-0", "replica-1"}

    def test_known_and_warmed_circuits(self, warm_service):
        async def run():
            cluster = shared_cluster(warm_service, 2,
                                     window_seconds=0.001)
            known = cluster.known_circuits()
            assert "rc_lowpass" in known["benchmarks"]
            assert set(CIRCUITS) <= set(cluster.warmed_circuits())
            assert cluster.queue_depth == 0
            await cluster.aclose()

        asyncio.run(run())

    def test_registered_circuits_surface_through_cluster(self):
        """Circuits registered on a replica's service appear in the
        cluster's /v1/circuits view (own service: the shared session
        fixture must stay read-only)."""
        from repro import rc_lowpass

        async def run():
            service = DiagnosisService(config=QUICK, seed=3)
            service.register("custom_dut", rc_lowpass())
            cluster = ClusterService.in_process(
                2, services=service, window_seconds=0.001)
            assert "custom_dut" in \
                cluster.known_circuits()["registered"]
            await cluster.aclose()

        asyncio.run(run())


class TestClusterBehindHTTP:
    def test_fully_down_cluster_answers_503_not_404(self, warm_service):
        """An outage must look retryable to HTTP clients: routing
        failure (every owning replica down) is 503, never 404."""
        from repro.runtime import codec as wire

        async def run():
            cluster = shared_cluster(warm_service, 2,
                                     window_seconds=0.001)
            for replica in cluster.replicas.values():
                await replica.front.aclose()
            server = await serve(cluster, host="127.0.0.1", port=0)
            host, port = server.address
            try:
                reader, writer = await asyncio.open_connection(host,
                                                               port)
                body = wire.encode_request(
                    "rc_lowpass",
                    measured_rows(warm_service, "rc_lowpass", 1, 0))
                writer.write((f"POST /v1/diagnose HTTP/1.1\r\n"
                              f"Host: {host}\r\n"
                              f"Content-Length: {len(body)}\r\n"
                              f"Connection: close\r\n\r\n"
                              ).encode("latin1") + body)
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
                status = int(raw.split(b" ", 2)[1])
                assert status == 503
                assert b"ClusterError" in raw
            finally:
                await server.aclose()

        asyncio.run(run())


class TestConfigAndCliValidation:
    def test_pipeline_config_json_round_trip_and_errors(self):
        from repro.errors import ReproError
        restored = PipelineConfig.from_json_dict(QUICK.to_json_dict())
        assert restored == QUICK
        with pytest.raises(ReproError, match="bad pipeline-config"):
            PipelineConfig.from_json_dict({"ga": {"bogus": 1}})
        with pytest.raises(ReproError, match="bad pipeline-config"):
            PipelineConfig.from_json_dict({"no_such_field": 1})

    def test_cli_sharded_backend_requires_store_root(self):
        from repro.runtime.cli import build_parser, make_store
        args = build_parser().parse_args(["--backend", "sharded"])
        with pytest.raises(SystemExit, match="store-root"):
            make_store(args)


# ----------------------------------------------------------------------
# Wire transport (HTTPReplica against an in-process HTTP server)
# ----------------------------------------------------------------------
class TestHTTPReplica:
    def test_http_replica_round_trip_and_keep_alive(self, warm_service):
        rows = measured_rows(warm_service, "rc_lowpass", 3, seed=21)
        expected = warm_service.submit("rc_lowpass", rows)
        burst = [("rc_lowpass", rows[0:1]), ("voltage_divider",
                 measured_rows(warm_service, "voltage_divider", 1, 22))]
        expected_burst = [warm_service.submit(name, r)
                          for name, r in burst]

        async def run():
            server = await serve(
                AsyncDiagnosisService(warm_service,
                                      window_seconds=0.001),
                host="127.0.0.1", port=0)
            host, port = server.address
            replica = HTTPReplica("wire", host, port)
            try:
                assert await replica.healthy()
                result = await replica.submit("rc_lowpass", rows)
                assert result == expected
                # The keep-alive connection went back to the pool and
                # is reused by the next request.
                assert len(replica._idle) == 1
                conn_before = replica._idle[0]
                assert await replica.submit_many(burst) == expected_burst
                assert replica._idle[0] is conn_before
                freqs = await replica.test_vector_hz("rc_lowpass")
                assert freqs == tuple(sorted(
                    warm_service.test_vector_hz("rc_lowpass")))
                snapshot = await replica.stats_snapshot()
                assert "requests" in snapshot
            finally:
                await replica.aclose()
                await server.aclose()

        asyncio.run(run())

    def test_request_errors_do_not_trip_failover(self, warm_service):
        """Bad requests raise ServiceError (not
        ReplicaUnavailableError): the cluster must not mark a healthy
        replica down for a client's bad payload."""

        async def run():
            server = await serve(
                AsyncDiagnosisService(warm_service,
                                      window_seconds=0.001),
                host="127.0.0.1", port=0)
            host, port = server.address
            replica = HTTPReplica("wire", host, port)
            try:
                with pytest.raises(ServiceError, match="unknown"):
                    await replica.submit("no_such_circuit",
                                         np.zeros((1, 2)))
                # Request-level errors cross the wire as the same
                # type an in-process replica raises.
                from repro.errors import DiagnosisError
                with pytest.raises(DiagnosisError):
                    await replica.submit("rc_lowpass",
                                         np.zeros((1, 7)))
                assert await replica.healthy()
            finally:
                await replica.aclose()
                await server.aclose()

        asyncio.run(run())

    def test_unreachable_replica_raises_unavailable(self):
        async def run():
            replica = HTTPReplica("ghost", "127.0.0.1", 1,
                                  health_timeout=0.5)
            with pytest.raises(ReplicaUnavailableError):
                await replica.submit("rc_lowpass", np.zeros((1, 2)))
            assert not await replica.healthy()

        asyncio.run(run())

    def test_truncated_response_reads_as_replica_failure(self):
        """A replica dying mid-response (partial status line, then
        EOF) must surface as ReplicaUnavailableError so the cluster
        fails over -- not as a raw ValueError/IndexError."""

        async def broken(reader, writer):
            await reader.readline()       # request line arrives
            writer.write(b"HTTP/")        # dies mid-status-line
            await writer.drain()
            writer.close()

        async def broken_after_status(reader, writer):
            await reader.readline()
            # Status line flushed, then death mid-headers: must not
            # read as a complete zero-length 200 response.
            writer.write(b"HTTP/1.1 200 OK\r\n")
            await writer.drain()
            writer.close()

        async def run():
            for handler in (broken, broken_after_status):
                server = await asyncio.start_server(handler,
                                                    "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                replica = HTTPReplica("flaky", "127.0.0.1", port)
                try:
                    with pytest.raises(ReplicaUnavailableError):
                        await replica.submit("rc_lowpass",
                                             np.zeros((1, 2)))
                finally:
                    await replica.aclose()
                    server.close()
                    await server.wait_closed()

        asyncio.run(run())

    def test_stale_pool_survives_replica_restart(self, warm_service):
        """A restarted replica leaves several stale keep-alive
        connections in the pool; the next request must still reach it
        (the retry connects fresh instead of burning both attempts on
        stale connections)."""
        rows = measured_rows(warm_service, "rc_lowpass", 1, seed=77)
        expected = warm_service.submit("rc_lowpass", rows)

        async def run():
            server = await serve(
                AsyncDiagnosisService(warm_service,
                                      window_seconds=0.001),
                host="127.0.0.1", port=0)
            host, port = server.address
            replica = HTTPReplica("wire", host, port)
            # Two concurrent requests pool two keep-alive connections.
            await asyncio.gather(replica.submit("rc_lowpass", rows),
                                 replica.submit("rc_lowpass", rows))
            assert len(replica._idle) == 2
            await server.aclose()
            restarted = await serve(
                AsyncDiagnosisService(warm_service,
                                      window_seconds=0.001),
                host=host, port=port)
            try:
                assert await replica.submit("rc_lowpass",
                                            rows) == expected
            finally:
                await replica.aclose()
                await restarted.aclose()

        asyncio.run(run())


# ----------------------------------------------------------------------
# Spawned worker processes (the full production shape)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestSpawnedCluster:
    def test_spawned_workers_end_to_end_with_failover(self, tmp_path):
        """Two repro-serve worker processes behind the router: results
        bitwise-equal a local reference service, health checks pass,
        and killing a worker re-routes its circuits transparently."""
        store_root = tmp_path / "store"
        reference = DiagnosisService(config=QUICK,
                                     store=ArtifactStore(store_root),
                                     seed=3)
        for name in CHEAP_CIRCUITS:
            reference.warm(name)
        batches = [(name, measured_rows(reference, name, 2, seed=5 + i))
                   for i, name in enumerate(CHEAP_CIRCUITS)]
        expected = [reference.submit(name, rows)
                    for name, rows in batches]

        async def run():
            cluster = await ClusterService.spawn(
                2, store_root=store_root, config=QUICK, seed=3,
                window_ms=1.0, warm=CHEAP_CIRCUITS)
            try:
                results = [await cluster.submit(name, rows)
                           for name, rows in batches]
                assert results == expected
                assert await cluster.submit_many(batches) == expected
                health = await cluster.check_health()
                assert health == {name: True for name in
                                  cluster.replicas}
                # The health probes feed the sync introspection
                # caches, so a spawned cluster reports its warmed
                # circuits over /v1/healthz too.
                assert set(CHEAP_CIRCUITS) <= \
                    set(cluster.warmed_circuits())
                snapshot = await cluster.stats_snapshot()
                assert snapshot["cluster"]["requests"] == \
                    len(batches) * 2
                # Kill the worker owning the first circuit: its
                # traffic must fail over to the survivor, identically.
                victim = cluster.replica_for(CHEAP_CIRCUITS[0])
                victim.process.terminate()
                await victim.process.wait()
                rerouted = await cluster.submit(CHEAP_CIRCUITS[0],
                                                batches[0][1])
                assert rerouted == expected[0]
                assert cluster.failovers >= 1
                assert victim.name in cluster.down
                health = await cluster.check_health()
                assert health[victim.name] is False
            finally:
                await cluster.aclose()

        asyncio.run(run())

    def test_spawn_failure_reaps_the_worker(self):
        """A worker that dies before announcing (unwritable store
        root) raises ClusterError and leaves no orphan process."""
        from pathlib import Path

        async def run():
            with pytest.raises(ClusterError, match="before announcing"):
                await SpawnedReplica.spawn(
                    "doomed", store_root=Path("/proc/no/such/store"),
                    config=QUICK, start_timeout=60.0)

        asyncio.run(run())

    def test_failed_post_spawn_step_reaps_the_workers(self, tmp_path):
        """A post-spawn failure (bad --warm name) must terminate the
        worker processes it already started, not orphan them."""

        async def run():
            started = []
            original = ClusterService.__init__

            def spy(self, replicas, **kwargs):
                started.extend(replicas)
                original(self, replicas, **kwargs)

            ClusterService.__init__ = spy
            try:
                with pytest.raises(ServiceError, match="unknown"):
                    await ClusterService.spawn(
                        1, store_root=tmp_path / "store", config=QUICK,
                        seed=3, warm=("no_such_circuit",))
            finally:
                ClusterService.__init__ = original
            assert started, "spawn never constructed the cluster"
            for replica in started:
                assert replica.process.returncode is not None, \
                    f"{replica.name} left an orphan worker process"

        asyncio.run(run())
