"""Tests for the SPICE-like netlist parser and writer."""

import pytest

from repro.circuits import (
    Capacitor,
    IdealOpAmp,
    OpAmpMacro,
    Resistor,
    VoltageSource,
    circuit_to_netlist,
    parse_netlist,
    parse_netlist_file,
    write_netlist,
)
from repro.errors import NetlistParseError

SALLEN_KEY = """\
* Sallen-Key low-pass
VIN in 0 DC 0 AC 1
R1 in a 10k
R2 a b 10k
C1 a out 22n
C2 b 0 10n
XOP1 b out out ideal_opamp
.end
"""


class TestParsing:
    def test_parse_sallen_key(self):
        ckt = parse_netlist(SALLEN_KEY)
        assert ckt.name == "Sallen-Key low-pass"
        assert len(ckt) == 6
        assert isinstance(ckt["XOP1"], IdealOpAmp)
        assert ckt["C1"].value == pytest.approx(22e-9)

    def test_source_ac_spec(self):
        ckt = parse_netlist(SALLEN_KEY)
        vin = ckt["VIN"]
        assert isinstance(vin, VoltageSource)
        assert vin.ac_magnitude == 1.0
        assert vin.value == 0.0

    def test_bare_dc_value(self):
        ckt = parse_netlist("V1 a 0 5\nR1 a 0 1k\n")
        assert ckt["V1"].value == 5.0

    def test_ac_with_phase(self):
        ckt = parse_netlist("V1 a 0 DC 0 AC 2 45\nR1 a 0 1k\n")
        assert ckt["V1"].ac_magnitude == 2.0
        assert ckt["V1"].ac_phase_deg == 45.0

    def test_comment_lines_skipped(self):
        text = "* title\n* a comment\nV1 a 0 1\nR1 a 0 1k\n"
        assert len(parse_netlist(text)) == 2

    def test_trailing_comment_stripped(self):
        ckt = parse_netlist("V1 a 0 1 ; stimulus\nR1 a 0 1k\n")
        assert ckt["V1"].value == 1.0

    def test_continuation_line(self):
        text = "V1 a 0 DC 0\n+ AC 1\nR1 a 0 1k\n"
        assert parse_netlist(text)["V1"].ac_magnitude == 1.0

    def test_title_line_without_star(self):
        text = "my filter\nV1 a 0 1\nR1 a 0 1k\n"
        assert parse_netlist(text).name == "my filter"

    def test_analysis_cards_ignored(self):
        text = "V1 a 0 DC 0 AC 1\nR1 a 0 1k\n.ac dec 10 1 1meg\n.end\n"
        assert len(parse_netlist(text)) == 2

    def test_controlled_sources(self):
        text = ("V1 a 0 DC 1\n"
                "R1 a b 1k\n"
                "E1 c 0 a b 10\n"
                "RC c 0 1k\n"
                "G1 d 0 a b 1m\n"
                "RD d 0 1k\n"
                "H1 e 0 V1 100\n"
                "RE e 0 1k\n"
                "F1 f 0 V1 2\n"
                "RF f 0 1k\n")
        ckt = parse_netlist(text)
        assert ckt["E1"].gain == 10.0
        assert ckt["G1"].transconductance == pytest.approx(1e-3)
        assert ckt["H1"].transresistance == 100.0
        assert ckt["F1"].gain == 2.0

    def test_opamp_macro_with_params(self):
        text = ("V1 a 0 DC 0 AC 1\n"
                "R1 a b 1k\n"
                "R2 b c 1k\n"
                "X1 0 b c opamp_macro a0=1e5 pole_hz=10\n")
        ckt = parse_netlist(text)
        macro = ckt["X1"]
        assert isinstance(macro, OpAmpMacro)
        assert macro.a0 == pytest.approx(1e5)
        assert macro.pole_hz == pytest.approx(10.0)

    def test_inductor_card(self):
        ckt = parse_netlist("V1 a 0 DC 1\nL1 a b 10m\nR1 b 0 50\n")
        assert ckt["L1"].value == pytest.approx(10e-3)


class TestParseErrors:
    def test_unknown_card_type(self):
        with pytest.raises(NetlistParseError, match="unsupported card"):
            parse_netlist("V1 a 0 1\nQ1 a b c model\n")

    def test_too_few_fields(self):
        with pytest.raises(NetlistParseError, match="expected at least"):
            parse_netlist("R1 a\nV1 a 0 1\n")

    def test_error_reports_line_number(self):
        try:
            parse_netlist("V1 a 0 1\nR1 a\n")
        except NetlistParseError as exc:
            assert exc.line_number == 2
        else:
            pytest.fail("expected NetlistParseError")

    def test_unknown_subckt_model(self):
        with pytest.raises(NetlistParseError, match="unknown subcircuit"):
            parse_netlist("V1 a 0 1\nX1 a 0 b weird_model\n")

    def test_ideal_opamp_rejects_params(self):
        with pytest.raises(NetlistParseError, match="takes no parameters"):
            parse_netlist("V1 a 0 1\nR1 a b 1\n"
                          "X1 0 a b ideal_opamp a0=1\n")

    def test_bad_param_syntax(self):
        with pytest.raises(NetlistParseError, match="param=value"):
            parse_netlist("V1 a 0 1\nR1 a b 1\n"
                          "X1 0 a b opamp_macro a0\n")

    def test_empty_netlist(self):
        with pytest.raises(NetlistParseError, match="no components"):
            parse_netlist("* nothing here\n")

    def test_validation_runs(self):
        # Parsed circuits are validated: missing ground must fail.
        with pytest.raises(Exception, match="ground"):
            parse_netlist("V1 a b 1\nR1 a b 1k\n")


class TestRoundtrip:
    def test_write_then_parse(self):
        original = parse_netlist(SALLEN_KEY)
        text = circuit_to_netlist(original)
        again = parse_netlist(text)
        assert again.component_names == original.component_names
        for component in original:
            clone = again[component.name]
            assert type(clone) is type(component)
            if isinstance(component, (Resistor, Capacitor)):
                assert clone.value == pytest.approx(component.value)

    def test_roundtrip_macro_params(self):
        text = ("V1 a 0 DC 0 AC 1\nR1 a b 1k\nR2 b c 1k\n"
                "X1 0 b c opamp_macro a0=123k\n")
        original = parse_netlist(text)
        again = parse_netlist(circuit_to_netlist(original))
        assert again["X1"].a0 == pytest.approx(123e3)

    def test_file_io(self, tmp_path):
        original = parse_netlist(SALLEN_KEY)
        path = write_netlist(original, tmp_path / "sk.cir")
        loaded = parse_netlist_file(path)
        assert loaded.component_names == original.component_names

    def test_file_name_from_stem(self, tmp_path):
        path = tmp_path / "mycircuit.cir"
        path.write_text("V1 a 0 1\nR1 a 0 1k\n")
        assert parse_netlist_file(path).name == "mycircuit"
