"""Regenerate the per-circuit golden diagnosis files.

Each ``tests/golden/<circuit>.json`` pins the *structural* output of a
fixed-seed pipeline run: the GA-selected test vector and the full
diagnosis (predicted component, estimated deviation, distance, margin,
perpendicularity) for every injected fault on a fixed grid. The
regression test replays the same run and compares field by field, so
accuracy drift shows up as a named circuit/component/deviation diff --
not just a moved aggregate metric.

Regenerate after an *intentional* behaviour change::

    PYTHONPATH=src python tests/golden/update_golden.py

then review the diff like any other code change.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro import FaultTrajectoryATPG, PipelineConfig, get_benchmark
from repro.ga import GAConfig
from repro.sim import ACAnalysis

GOLDEN_DIR = Path(__file__).resolve().parent

SEED = 2005
#: Every registry circuit is pinned (keep in sync with
#: repro.circuits.library.BENCHMARK_CIRCUITS).
CIRCUITS = ("rc_lowpass", "voltage_divider", "sallen_key_lowpass",
            "tow_thomas_biquad", "khn_state_variable", "mfb_bandpass",
            "twin_t_notch", "lc_ladder_lowpass5", "rc_ladder")
#: Held-out injected deviations (disjoint from the trajectory grid).
FAULT_DEVIATIONS = (-0.25, -0.1, 0.1, 0.25)

CONFIG = PipelineConfig(dictionary_points=48,
                        deviations=(-0.3, -0.15, 0.15, 0.3),
                        ga=GAConfig(population_size=10, generations=3))


def generate_golden(circuit_name: str, engine: str = None) -> dict:
    """One circuit's golden record (deterministic in SEED/CONFIG).

    ``engine`` overrides the pipeline's simulation engine; the golden
    files are pinned under the default, and the regression test replays
    them under every engine kind to prove the alternatives reproduce
    the same diagnosis behaviour.
    """
    config = CONFIG if engine is None else \
        dataclasses.replace(CONFIG, engine=engine)
    info = get_benchmark(circuit_name)
    result = FaultTrajectoryATPG(info, config).run(seed=SEED)
    freqs = np.array(sorted(result.test_vector_hz), dtype=float)

    labels = []
    rows = []
    for component in info.faultable:
        for deviation in FAULT_DEVIATIONS:
            faulty = info.circuit.scaled_value(component,
                                               1.0 + deviation)
            response = ACAnalysis(faulty).transfer(info.output_node,
                                                   freqs)
            rows.append(np.atleast_1d(response.magnitude_db_at(freqs)))
            labels.append((component, deviation))

    diagnoses = result.diagnose_many(np.vstack(rows))
    cases = []
    for (component, deviation), diagnosis in zip(labels, diagnoses):
        margin = diagnosis.margin
        cases.append({
            "injected_component": component,
            "injected_deviation": deviation,
            "predicted_component": diagnosis.component,
            "estimated_deviation": diagnosis.estimated_deviation,
            "distance": diagnosis.distance,
            "margin": margin if np.isfinite(margin) else None,
            "perpendicular": diagnosis.perpendicular,
        })
    return {
        "circuit": circuit_name,
        "seed": SEED,
        "fault_deviations": list(FAULT_DEVIATIONS),
        "test_vector_hz": freqs.tolist(),
        "cases": cases,
    }


def main() -> int:
    for circuit_name in CIRCUITS:
        record = generate_golden(circuit_name)
        path = GOLDEN_DIR / f"{circuit_name}.json"
        path.write_text(json.dumps(record, indent=2) + "\n")
        correct = sum(case["predicted_component"] ==
                      case["injected_component"]
                      for case in record["cases"])
        print(f"wrote {path} ({correct}/{len(record['cases'])} "
              f"cases diagnose their injected component)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
