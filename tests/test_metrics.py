"""Tests for trajectory metrics on hand-constructed configurations."""

import math

import numpy as np
import pytest

from repro.trajectory import (
    FaultTrajectory,
    SignatureMapper,
    TrajectorySet,
    count_common_pathways,
    count_intersections,
    evaluate_metrics,
    min_separation,
    pairwise_separations,
)


def straight_trajectory(component, angle_deg, dim=2,
                        deviations=(-0.2, -0.1, 0.0, 0.1, 0.2)):
    """A straight trajectory through the origin at a given angle."""
    direction = np.zeros(dim)
    direction[0] = math.cos(math.radians(angle_deg))
    direction[1] = math.sin(math.radians(angle_deg))
    points = np.outer(np.asarray(deviations), direction)
    return FaultTrajectory(component, tuple(deviations), points)


def make_set(*trajectories):
    dim = trajectories[0].dimension
    mapper = SignatureMapper(tuple(100.0 * (i + 1) for i in range(dim)))
    return TrajectorySet(mapper, trajectories)


class TestIntersections:
    def test_star_configuration_no_crossings(self):
        """Trajectories fanning out of the origin touch only there."""
        star = make_set(straight_trajectory("A", 0.0),
                        straight_trajectory("B", 45.0),
                        straight_trajectory("C", 110.0))
        assert count_intersections(star) == 0

    def test_offset_crossing_detected(self):
        a = straight_trajectory("A", 0.0)
        # A V-shaped trajectory crossing A away from the origin.
        crossing_points = np.array([
            [0.05, -0.1], [0.075, -0.05], [0.1, 0.0], [0.125, 0.05],
            [0.15, 0.1]])
        # Shift so its own 0-deviation point passes through origin.
        crossing_points -= crossing_points[2]
        b = FaultTrajectory("B", (-0.2, -0.1, 0.0, 0.1, 0.2),
                            crossing_points + np.array([0.0, -0.001]))
        pair = make_set(a, b)
        assert count_intersections(pair) >= 1

    def test_single_trajectory_zero(self):
        single = make_set(straight_trajectory("A", 30.0))
        assert count_intersections(single) == 0

    def test_collinear_pair_counted_as_overlap_not_crossing(self):
        overlap = make_set(straight_trajectory("A", 0.0),
                           straight_trajectory("B", 0.0))
        assert count_intersections(overlap) == 0
        assert count_common_pathways(overlap) > 0

    def test_perpendicular_star_in_3d(self):
        a = straight_trajectory("A", 0.0, dim=3)
        b = straight_trajectory("B", 90.0, dim=3)
        assert count_intersections(make_set(a, b)) == 0

    def test_3d_near_contact_counts(self):
        a = straight_trajectory("A", 0.0, dim=3)
        # Identical pathway, microscopically displaced in z.
        points = a.points.copy()
        points[:, 2] += 1e-9
        b = FaultTrajectory("B", a.deviations, points)
        assert count_intersections(make_set(a, b)) == 1


class TestOverlaps:
    def test_identical_trajectories_overlap(self):
        overlap = make_set(straight_trajectory("A", 0.0),
                           straight_trajectory("B", 0.0))
        # 4 segments each, pairwise collinear overlapping.
        assert count_common_pathways(overlap) >= 4

    def test_distinct_angles_no_overlap(self):
        fan = make_set(straight_trajectory("A", 0.0),
                       straight_trajectory("B", 30.0))
        assert count_common_pathways(fan) == 0

    def test_3d_returns_zero(self):
        fan = make_set(straight_trajectory("A", 0.0, dim=3),
                       straight_trajectory("B", 0.0, dim=3))
        assert count_common_pathways(fan) == 0


class TestSeparations:
    def test_pairwise_keys(self):
        star = make_set(straight_trajectory("A", 0.0),
                        straight_trajectory("B", 90.0),
                        straight_trajectory("C", 45.0))
        separations = pairwise_separations(star)
        assert set(separations) == {("A", "B"), ("A", "C"), ("B", "C")}

    def test_perpendicular_star_separation(self):
        """For two perpendicular trajectories of half-length 0.2 with
        vertices every 0.1, the smallest non-origin vertex-to-segment
        distance is 0.1 (the +/-10% vertex to the other's origin)."""
        star = make_set(straight_trajectory("A", 0.0),
                        straight_trajectory("B", 90.0))
        assert min_separation(star) == pytest.approx(0.1)

    def test_parallel_offset_separation(self):
        a = straight_trajectory("A", 0.0)
        b_points = a.points + np.array([0.0, 0.05])
        # b no longer passes through origin; build by hand with its own
        # origin inserted at the shifted position? Keep golden at 0 dev:
        b = FaultTrajectory("B", a.deviations, b_points)
        pair = make_set(a, b)
        separations = pairwise_separations(pair)
        assert separations[("A", "B")] == pytest.approx(0.05)

    def test_min_separation_zero_when_crossing(self):
        a = straight_trajectory("A", 0.0)
        # A steep trajectory crossing the x-axis at x = +0.05 (away from
        # the origin, so the contact is a genuine crossing).
        points = np.array([
            [0.025, -0.11], [0.0375, -0.06], [0.05, -0.01],
            [0.0625, 0.04], [0.075, 0.09]])
        b = FaultTrajectory("B", a.deviations, points)
        pair = make_set(a, b)
        assert count_intersections(pair) >= 1
        assert min_separation(pair) == 0.0

    def test_single_trajectory_raises(self):
        single = make_set(straight_trajectory("A", 0.0))
        with pytest.raises(Exception):
            pairwise_separations(single)


class TestEvaluateMetrics:
    def test_full_metrics(self):
        star = make_set(straight_trajectory("A", 0.0),
                        straight_trajectory("B", 90.0))
        metrics = evaluate_metrics(star)
        assert metrics.intersections == 0
        assert metrics.common_pathways == 0
        assert metrics.total_conflicts == 0
        assert metrics.min_separation == pytest.approx(0.1)
        assert metrics.per_pair_separation[("A", "B")] == pytest.approx(
            0.1)

    def test_conflicts_only_fast_path(self):
        star = make_set(straight_trajectory("A", 0.0),
                        straight_trajectory("B", 90.0))
        metrics = evaluate_metrics(star, include_separations=False)
        assert metrics.intersections == 0
        assert math.isnan(metrics.min_separation)
        assert metrics.per_pair_separation == {}

    def test_single_trajectory_metrics(self):
        single = make_set(straight_trajectory("A", 0.0))
        metrics = evaluate_metrics(single)
        assert metrics.intersections == 0
        assert math.isnan(metrics.min_separation)

    def test_biquad_set_is_finite(self, biquad_trajectories):
        metrics = evaluate_metrics(biquad_trajectories)
        assert metrics.intersections >= 0
        assert metrics.common_pathways >= 0
        assert metrics.min_separation >= 0.0
        assert metrics.mean_separation >= metrics.min_separation
