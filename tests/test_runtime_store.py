"""Artifact store: content keys, round-trips, warm-run simulation skip."""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import (
    ArtifactStore,
    FaultTrajectoryATPG,
    PipelineConfig,
    parametric_universe,
    rc_lowpass,
)
from repro.errors import StoreError
from repro.faults import FaultDictionary
from repro.ga import GAConfig
from repro.runtime.store import (derive_key, ga_search_key,
                                 problem_key, trajectory_key)
from repro.trajectory import SignatureMapper, TrajectorySet
from repro.units import log_frequency_grid

QUICK_GA = GAConfig(population_size=8, generations=2)


@pytest.fixture()
def problem():
    info = rc_lowpass()
    config = PipelineConfig(dictionary_points=32, deviations=(-0.2, 0.2),
                            ga=QUICK_GA)
    universe = parametric_universe(info.circuit,
                                   components=info.faultable,
                                   deviations=config.deviations)
    grid = log_frequency_grid(info.f_min_hz, info.f_max_hz,
                              config.dictionary_points)
    return info, config, universe, grid


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
class TestKeys:
    def test_key_is_deterministic(self, problem):
        info, config, universe, grid = problem
        assert problem_key(info, universe) == problem_key(info, universe)
        assert ga_search_key("b" * 64, info, config, 1) == \
            ga_search_key("b" * 64, info, config, 1)

    def test_key_tracks_every_input(self, problem):
        info, config, universe, grid = problem
        base = problem_key(info, universe)
        # Different netlist value.
        other_info = rc_lowpass(f0_hz=2e3)
        other_universe = parametric_universe(
            other_info.circuit, components=other_info.faultable,
            deviations=config.deviations)
        assert problem_key(other_info, other_universe) != base
        # Different universe.
        small = parametric_universe(info.circuit,
                                    components=info.faultable,
                                    deviations=(-0.1, 0.1))
        assert problem_key(info, small) != base
        # Different grid changes the dictionary sub-key.
        assert derive_key(base, "dense", list(grid)) != \
            derive_key(base, "dense", list(grid[:-1]))
        # GA knobs change the search key.
        import dataclasses
        other = dataclasses.replace(config, fitness="margin")
        assert ga_search_key("b" * 64, info, other, 1) != \
            ga_search_key("b" * 64, info, config, 1)
        assert ga_search_key("b" * 64, info, config, 2) != \
            ga_search_key("b" * 64, info, config, 1)

    def test_keys_scope_only_real_dependencies(self, problem):
        """Execution knobs and downstream-only knobs never enter a
        key: n_workers/executor build the same bytes, and the
        ambiguity threshold only affects post-processing -- all three
        must share cache slots."""
        import dataclasses
        info, config, universe, grid = problem
        from repro.parallelism import ParallelismConfig
        pooled = ParallelismConfig(n_workers=8, executor="thread")
        for variant in (dataclasses.replace(config, parallelism=pooled),
                        dataclasses.replace(config,
                                            ambiguity_threshold=0.5)):
            assert ga_search_key("b" * 64, info, variant, 1) == \
                ga_search_key("b" * 64, info, config, 1)
            assert trajectory_key("c" * 64, variant) == \
                trajectory_key("c" * 64, config)

    def test_key_stable_across_processes(self, problem):
        import os

        import repro

        info, config, universe, grid = problem
        local = problem_key(info, universe) + " " + \
            ga_search_key("b" * 64, info, config, 1)
        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        script = (
            "from repro import rc_lowpass, PipelineConfig, "
            "parametric_universe\n"
            "from repro.ga import GAConfig\n"
            "from repro.runtime.store import ga_search_key, "
            "problem_key\n"
            "info = rc_lowpass()\n"
            "config = PipelineConfig(dictionary_points=32, "
            "deviations=(-0.2, 0.2), "
            "ga=GAConfig(population_size=8, generations=2))\n"
            "universe = parametric_universe(info.circuit, "
            "components=info.faultable, deviations=config.deviations)\n"
            "print(problem_key(info, universe) + ' ' + "
            "ga_search_key('b' * 64, info, config, 1))\n")
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == local

    def test_derive_key(self):
        assert derive_key("abc", "ga", 1) == derive_key("abc", "ga", 1)
        assert derive_key("abc", "ga", 1) != derive_key("abc", "ga", 2)
        assert derive_key("abc", "ga", None) != derive_key("abc", "ga", 0)

    def test_invalid_keys_and_kinds_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for bad_key in ("../escape", "..", ".", "", "short",
                        "G" * 64, "0" * 63):
            with pytest.raises(StoreError):
                store.has("dictionary", bad_key)
        for bad_kind in ("..", "", "Kind", "a/b"):
            with pytest.raises(StoreError):
                store.has(bad_kind, "0" * 64)


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------
class TestRoundTrips:
    def test_dictionary_round_trip(self, tmp_path, problem):
        info, _, universe, grid = problem
        store = ArtifactStore(tmp_path)
        built = FaultDictionary.build(universe, info.output_node, grid,
                                      input_source=info.input_source)
        assert store.load_dictionary("dictionary", "0" * 64) is None
        store.save_dictionary("dictionary", "0" * 64, built)
        assert store.has("dictionary", "0" * 64)
        loaded = store.load_dictionary("dictionary", "0" * 64)
        assert loaded.labels == built.labels
        assert np.array_equal(loaded.golden.values, built.golden.values)
        for a, b in zip(loaded.entries, built.entries):
            assert np.array_equal(a.response.values, b.response.values)
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.stats.puts == 1

    def test_ga_result_round_trip(self, tmp_path, problem):
        info, config, universe, grid = problem
        store = ArtifactStore(tmp_path)
        result = FaultTrajectoryATPG(info, config).run(seed=5)
        store.save_ga_result("1" * 64, result.ga_result)
        loaded = store.load_ga_result("1" * 64)
        assert loaded.best_freqs_hz == result.ga_result.best_freqs_hz
        assert loaded.best_fitness == result.ga_result.best_fitness
        assert loaded.generations_run == result.ga_result.generations_run
        assert loaded.evaluations == result.ga_result.evaluations
        assert [s.best_fitness for s in loaded.history] == \
            [s.best_fitness for s in result.ga_result.history]
        assert np.array_equal(loaded.final_population,
                              result.ga_result.final_population)

    def test_trajectories_round_trip(self, tmp_path, biquad_trajectories):
        store = ArtifactStore(tmp_path)
        store.save_trajectories("2" * 64, biquad_trajectories)
        loaded = store.load_trajectories("2" * 64)
        assert loaded.components == biquad_trajectories.components
        assert loaded.mapper == biquad_trajectories.mapper
        for a, b in zip(loaded, biquad_trajectories):
            assert a.deviations == b.deviations
            assert np.array_equal(a.points, b.points)

    def test_save_is_idempotent_under_races(self, tmp_path, problem):
        """Two writers of the same key coexist: the loser's rename is
        discarded and the artifact stays readable."""
        info, _, universe, grid = problem
        store = ArtifactStore(tmp_path)
        built = FaultDictionary.build(universe, info.output_node, grid,
                                      input_source=info.input_source)
        store.save_dictionary("dictionary", "f" * 64, built)
        store.save_dictionary("dictionary", "f" * 64, built)
        assert store.load_dictionary("dictionary",
                                     "f" * 64).labels == built.labels


# ----------------------------------------------------------------------
# Store-accelerated pipeline runs
# ----------------------------------------------------------------------
class TestWarmRuns:
    def test_warm_run_skips_simulation_entirely(self, tmp_path, problem):
        info, config, _, _ = problem
        store = ArtifactStore(tmp_path)
        cold = FaultTrajectoryATPG(info, config).run(seed=5, store=store)
        assert cold.cache_hits == ()
        simulations_before = FaultDictionary.simulations_run
        hits_before = store.stats.hits
        warm = FaultTrajectoryATPG(info, config).run(seed=5, store=store)
        # The acceptance criterion: zero fault simulations on a warm run.
        assert FaultDictionary.simulations_run == simulations_before
        assert store.stats.hits == hits_before + 4
        assert set(warm.cache_hits) == {"dictionary", "ga", "exact",
                                        "trajectories"}
        # And the warmed result is the cold result, exactly.
        assert warm.test_vector_hz == cold.test_vector_hz
        assert warm.ga_result.best_fitness == cold.ga_result.best_fitness
        assert warm.metrics == cold.metrics
        assert warm.groups == cold.groups
        for a, b in zip(warm.trajectories, cold.trajectories):
            assert np.array_equal(a.points, b.points)

    def test_warm_run_diagnoses_identically(self, tmp_path, problem):
        info, config, _, _ = problem
        store = ArtifactStore(tmp_path)
        cold = FaultTrajectoryATPG(info, config).run(seed=5, store=store)
        warm = FaultTrajectoryATPG(info, config).run(seed=5, store=store)
        point = np.array([0.5, -0.25])
        assert warm.diagnose_point(point) == cold.diagnose_point(point)

    def test_different_seed_reuses_dictionary_not_ga(self, tmp_path,
                                                     problem):
        info, config, _, _ = problem
        store = ArtifactStore(tmp_path)
        FaultTrajectoryATPG(info, config).run(seed=5, store=store)
        other = FaultTrajectoryATPG(info, config).run(seed=6, store=store)
        assert "dictionary" in other.cache_hits
        assert "ga" not in other.cache_hits

    def test_unseeded_runs_never_cache_the_ga(self, tmp_path, problem):
        """seed=None means an independent random search per run; the
        store must not memoise it (only the simulations)."""
        info, config, _, _ = problem
        store = ArtifactStore(tmp_path)
        FaultTrajectoryATPG(info, config).run(seed=None, store=store)
        repeat = FaultTrajectoryATPG(info, config).run(seed=None,
                                                       store=store)
        assert "dictionary" in repeat.cache_hits
        assert "ga" not in repeat.cache_hits

    def test_ga_sweep_reuses_dictionary(self, tmp_path, problem):
        """Sweeping a search knob must not re-simulate the dictionary:
        artifacts are keyed on only their real dependencies."""
        import dataclasses
        info, config, _, _ = problem
        store = ArtifactStore(tmp_path)
        FaultTrajectoryATPG(info, config).run(seed=5, store=store)
        simulations_before = FaultDictionary.simulations_run
        swept = dataclasses.replace(config, fitness="margin")
        other = FaultTrajectoryATPG(info, swept).run(seed=5, store=store)
        assert "dictionary" in other.cache_hits
        assert "ga" not in other.cache_hits
        # Only the exact dictionary may need simulating (new vector).
        assert FaultDictionary.simulations_run <= simulations_before + 1

    def test_store_layout_is_content_addressed(self, tmp_path, problem):
        info, config, _, _ = problem
        store = ArtifactStore(tmp_path)
        FaultTrajectoryATPG(info, config).run(seed=5, store=store)
        slots = [p for p in Path(tmp_path).rglob("*") if p.is_dir()
                 and len(p.name) == 64]
        assert len(slots) == 4  # dictionary, ga, exact, trajectories
        for slot in slots:
            assert slot.parent.name == slot.name[:2]
