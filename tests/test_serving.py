"""Serving layer: coalescer equivalence, backpressure, codec, HTTP.

The heart of this suite is the Hypothesis property: for random circuit
mixes, batch sizes, knob settings and arrival interleavings, the
coalescing :class:`AsyncDiagnosisService` answers every request
**bitwise-identically** to a sequential
:meth:`DiagnosisService.submit` -- which is the whole correctness
contract of micro-batching.
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import re

import numpy as np
import pytest

from repro import AsyncDiagnosisService, serve
from repro.diagnosis import Diagnosis
from repro.errors import (CodecError, DiagnosisError, ServiceError,
                          ServiceOverloadedError)
from repro.runtime import codec, telemetry
from repro.runtime.server import DiagnosisHTTPServer

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

pytestmark = pytest.mark.serving

# Shared serving scaffolding (config, circuits, warm_service fixture,
# measured-row generator) lives in conftest.py -- the cluster suite
# uses the same definitions.
from conftest import (QUICK_SERVING as QUICK,
                      SERVING_CIRCUITS as CIRCUITS, measured_rows)


# ----------------------------------------------------------------------
# Property: coalesced == sequential, bitwise
# ----------------------------------------------------------------------
request_lists = st.lists(
    st.tuples(st.integers(0, len(CIRCUITS) - 1),   # circuit
              st.integers(1, 4),                   # rows in the request
              st.integers(0, 2 ** 31)),            # measurement seed
    min_size=1, max_size=12)


class TestCoalescerEquivalence:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(requests=request_lists,
           max_batch=st.integers(1, 32),
           window_ms=st.sampled_from([0.0, 0.5, 2.0]),
           eager=st.booleans(),
           stagger=st.lists(st.integers(0, 2), min_size=12,
                            max_size=12))
    def test_results_bitwise_equal_sequential(
            self, warm_service, requests, max_batch, window_ms, eager,
            stagger):
        """N interleaved async submits == N sequential submits."""
        batches = [(CIRCUITS[index], measured_rows(
            warm_service, CIRCUITS[index], rows, seed))
            for index, rows, seed in requests]
        expected = [warm_service.submit(circuit, rows)
                    for circuit, rows in batches]

        async def coalesced():
            front = AsyncDiagnosisService(
                warm_service, window_seconds=window_ms / 1e3,
                max_batch=max_batch, eager_flush=eager)

            async def one(position, circuit, rows):
                # Random arrival interleaving: yield to the loop 0-2
                # times before submitting.
                for _ in range(stagger[position % len(stagger)]):
                    await asyncio.sleep(0)
                return await front.submit(circuit, rows)

            results = await asyncio.gather(
                *(one(position, circuit, rows)
                  for position, (circuit, rows) in enumerate(batches)))
            await front.aclose()
            return results

        results = asyncio.run(coalesced())
        # Diagnosis is a frozen dataclass: == compares every float
        # exactly, so this is the bitwise claim.
        assert results == expected

    @settings(max_examples=15, deadline=None)
    @given(n_rows=st.integers(1, 8), seed=st.integers(0, 2 ** 31))
    def test_wire_round_trip_preserves_diagnoses(self, warm_service,
                                                 n_rows, seed):
        """encode -> decode over the JSON codec is lossless."""
        rows = measured_rows(warm_service, "rc_lowpass", n_rows, seed)
        diagnoses = warm_service.submit("rc_lowpass", rows)
        payload = codec.encode_response(diagnoses)
        assert codec.decode_response(payload) == diagnoses
        request = codec.decode_request(
            codec.encode_request("rc_lowpass", rows))
        assert request.circuit == "rc_lowpass"
        assert np.array_equal(request.magnitudes_db, rows)


# ----------------------------------------------------------------------
# Coalescing behaviour
# ----------------------------------------------------------------------
class TestCoalescingBehaviour:
    def test_concurrent_submits_share_one_classify(self, warm_service):
        """max_batch reached -> exactly one coalesced flush."""
        rows = [measured_rows(warm_service, "rc_lowpass", 1, seed)
                for seed in range(4)]
        before = warm_service.stats.snapshot()

        async def run():
            front = AsyncDiagnosisService(warm_service, max_batch=4,
                                          window_seconds=5.0,
                                          eager_flush=False)
            results = await asyncio.gather(
                *(front.submit("rc_lowpass", r) for r in rows))
            await front.aclose()
            return results

        results = asyncio.run(run())
        after = warm_service.stats.snapshot()
        assert len(results) == 4
        assert after["coalesced_batches"] - \
            before["coalesced_batches"] == 1
        assert after["coalesced_requests"] - \
            before["coalesced_requests"] == 4
        assert after["requests"] - before["requests"] == 4

    def test_window_flush_without_max_batch(self, warm_service):
        """A lone request is answered after the window, not stuck."""
        rows = measured_rows(warm_service, "rc_lowpass", 2, seed=7)

        async def run():
            front = AsyncDiagnosisService(warm_service, max_batch=1024,
                                          window_seconds=0.005)
            result = await front.submit("rc_lowpass", rows)
            await front.aclose()
            return result

        assert len(asyncio.run(run())) == 2

    def test_bad_request_fails_alone(self, warm_service):
        """A malformed request must not poison its batch peers."""
        good = measured_rows(warm_service, "rc_lowpass", 1, seed=1)
        bad = np.zeros((1, 7))             # wrong signature width

        async def run():
            front = AsyncDiagnosisService(warm_service, max_batch=16,
                                          window_seconds=0.005)
            results = await asyncio.gather(
                front.submit("rc_lowpass", good),
                front.submit("rc_lowpass", bad),
                front.submit("rc_lowpass", good),
                return_exceptions=True)
            await front.aclose()
            return results

        first, second, third = asyncio.run(run())
        assert isinstance(second, DiagnosisError)
        for result in (first, third):
            assert isinstance(result, list) and len(result) == 1

    def test_unknown_circuit_raises(self, warm_service):
        async def run():
            front = AsyncDiagnosisService(warm_service,
                                          window_seconds=0.001)
            try:
                with pytest.raises(ServiceError, match="unknown"):
                    await front.submit("no_such_circuit",
                                       np.zeros((1, 2)))
                # Rejected before any per-circuit state is allocated:
                # bogus names must not grow the queue map (or the
                # service's build-lock map) unboundedly.
                assert "no_such_circuit" not in front._queues
                assert "no_such_circuit" not in \
                    warm_service._build_locks
            finally:
                await front.aclose()

        asyncio.run(run())

    def test_closed_service_rejects_submits(self, warm_service):
        rows = measured_rows(warm_service, "rc_lowpass", 1, seed=2)

        async def run():
            front = AsyncDiagnosisService(warm_service)
            await front.aclose()
            with pytest.raises(ServiceError, match="closed"):
                await front.submit("rc_lowpass", rows)

        asyncio.run(run())

    def test_invalid_knobs_rejected(self, warm_service):
        for kwargs in ({"max_batch": 0}, {"max_pending": 0},
                       {"window_seconds": -1.0},
                       {"overflow": "drop"}):
            with pytest.raises(ServiceError):
                AsyncDiagnosisService(warm_service, **kwargs)
        with pytest.raises(ServiceError, match="not both"):
            AsyncDiagnosisService(warm_service, config=QUICK)


class TestBackpressure:
    def test_reject_overflow(self, warm_service):
        rows = measured_rows(warm_service, "rc_lowpass", 1, seed=3)
        rejections_before = warm_service.stats.rejections

        async def run():
            front = AsyncDiagnosisService(
                warm_service, max_pending=2, overflow="reject",
                max_batch=1024, window_seconds=5.0, eager_flush=False)
            first = asyncio.ensure_future(
                front.submit("rc_lowpass", rows))
            second = asyncio.ensure_future(
                front.submit("rc_lowpass", rows))
            await asyncio.sleep(0)         # both queued
            with pytest.raises(ServiceOverloadedError):
                await front.submit("rc_lowpass", rows)
            front.flush()
            results = await asyncio.gather(first, second)
            await front.aclose()
            return results

        results = asyncio.run(run())
        assert all(len(r) == 1 for r in results)
        assert warm_service.stats.rejections == rejections_before + 1

    def test_wait_overflow_completes_everything(self, warm_service):
        rows = measured_rows(warm_service, "rc_lowpass", 1, seed=4)

        async def run():
            front = AsyncDiagnosisService(
                warm_service, max_pending=2, overflow="wait",
                max_batch=2, window_seconds=0.005)
            results = await asyncio.gather(
                *(front.submit("rc_lowpass", rows) for _ in range(7)))
            await front.aclose()
            return results

        results = asyncio.run(run())
        assert len(results) == 7
        assert all(len(r) == 1 for r in results)

    def test_drain_waits_for_parked_submits(self, warm_service):
        """drain() must cover submits parked on backpressure too."""
        rows = measured_rows(warm_service, "rc_lowpass", 1, seed=6)

        async def run():
            front = AsyncDiagnosisService(
                warm_service, max_pending=1, overflow="wait",
                max_batch=1, window_seconds=0.005)
            submits = [asyncio.ensure_future(
                front.submit("rc_lowpass", rows)) for _ in range(4)]
            await asyncio.sleep(0)         # 1 admitted, 3 parked
            await front.drain()
            assert all(task.done() for task in submits), \
                "drain returned with parked submits still unserved"
            return await asyncio.gather(*submits)

        results = asyncio.run(run())
        assert all(len(r) == 1 for r in results)

    def test_queue_depth_and_latency_stats(self, warm_service):
        rows = measured_rows(warm_service, "rc_lowpass", 1, seed=5)

        async def run():
            front = AsyncDiagnosisService(warm_service, max_batch=8,
                                          window_seconds=0.005)
            await asyncio.gather(
                *(front.submit("rc_lowpass", rows) for _ in range(8)))
            await front.aclose()

        asyncio.run(run())
        stats = warm_service.stats
        assert stats.peak_queue_depth >= 1
        assert stats.latency_p95_seconds >= \
            stats.latency_p50_seconds > 0.0
        assert sum(stats.batch_size_histogram.values()) >= 1
        snapshot = stats.snapshot()
        assert snapshot["latency_p50_seconds"] > 0.0
        assert snapshot["peak_queue_depth"] == stats.peak_queue_depth


# ----------------------------------------------------------------------
# Engine selection end to end (config -> service -> stats, CLI flag)
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_stats_report_active_engine_kind(self):
        import dataclasses
        from repro import DiagnosisService
        for kind in ("batched", "scalar", "factored"):
            config = dataclasses.replace(QUICK, engine=kind)
            service = DiagnosisService(config=config, seed=3)
            assert service.stats.snapshot()["engine_kind"] == kind

    def test_factored_service_serves_diagnoses(self):
        import dataclasses
        from repro import DiagnosisService
        config = dataclasses.replace(QUICK, engine="factored")
        service = DiagnosisService(config=config, seed=3)
        service.warm("rc_lowpass")
        rows = measured_rows(service, "rc_lowpass", 2, seed=7)
        diagnoses = service.submit("rc_lowpass", rows)
        assert len(diagnoses) == 2
        assert all(d.component for d in diagnoses)

    def test_cli_engine_flag_overrides_config(self):
        from repro.runtime.cli import build_parser, load_config
        args = build_parser().parse_args(
            ["--engine", "factored", "--config", "quick"])
        assert load_config(args).engine.kind == "factored"
        # Without the flag the config's own engine field stands.
        assert load_config(
            build_parser().parse_args([])).engine.kind == "batched"

    def test_cli_engine_flag_accepts_knob_specs(self):
        from repro.runtime.cli import build_parser, load_config
        args = build_parser().parse_args(
            ["--engine", "factored:cond_limit=1e6,sparse=false"])
        engine = load_config(args).engine
        assert engine.kind == "factored"
        assert engine.cond_limit == 1e6
        assert engine.sparse is False
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--engine", "magic"])

    def test_cli_engine_flag_documented_in_help(self):
        from repro.runtime.cli import build_parser
        help_text = build_parser().format_help()
        assert "--engine" in help_text
        for kind in ("scalar", "batched", "factored"):
            assert kind in help_text


# ----------------------------------------------------------------------
# Burst batching (submit_many)
# ----------------------------------------------------------------------
class TestSubmitMany:
    def burst(self, warm_service):
        """A mixed-circuit burst interleaving the three circuits."""
        return [(CIRCUITS[index % len(CIRCUITS)],
                 measured_rows(warm_service,
                               CIRCUITS[index % len(CIRCUITS)],
                               1 + index % 3, seed=100 + index))
                for index in range(7)]

    def test_sync_burst_bitwise_equals_per_request_submit(
            self, warm_service):
        burst = self.burst(warm_service)
        expected = [warm_service.submit(circuit, rows)
                    for circuit, rows in burst]
        assert warm_service.submit_many(burst) == expected
        assert warm_service.submit_many([]) == []

    def test_sync_burst_issues_one_classify_per_circuit(
            self, warm_service):
        burst = self.burst(warm_service)
        before = warm_service.stats.snapshot()
        warm_service.submit_many(burst)
        after = warm_service.stats.snapshot()
        assert after["coalesced_batches"] - \
            before["coalesced_batches"] == len(CIRCUITS)
        assert after["coalesced_requests"] - \
            before["coalesced_requests"] == len(burst)
        assert after["requests"] - before["requests"] == len(burst)

    def test_sync_burst_unknown_circuit_fails_whole_burst(
            self, warm_service):
        rows = measured_rows(warm_service, "rc_lowpass", 1, seed=1)
        with pytest.raises(ServiceError, match="unknown"):
            warm_service.submit_many([("rc_lowpass", rows),
                                      ("ghost", rows)])

    def test_async_burst_bitwise_equals_sequential(self, warm_service):
        burst = self.burst(warm_service)
        expected = [warm_service.submit(circuit, rows)
                    for circuit, rows in burst]
        before = warm_service.stats.snapshot()

        async def run():
            front = AsyncDiagnosisService(warm_service, max_batch=64,
                                          window_seconds=0.005)
            results = await front.submit_many(burst)
            await front.aclose()
            return results

        assert asyncio.run(run()) == expected
        after = warm_service.stats.snapshot()
        # The whole burst lands in one loop pass, so the coalescer
        # serves it with exactly one classify call per circuit.
        assert after["coalesced_batches"] - \
            before["coalesced_batches"] == len(CIRCUITS)

    def test_async_burst_with_multiple_failures_settles_cleanly(
            self, warm_service):
        """Two bad entries in one burst: the first failure is raised
        only after every request settled (no unretrieved futures),
        and good peers were still classified."""
        good = measured_rows(warm_service, "rc_lowpass", 1, seed=8)
        bad = np.zeros((1, 7))             # wrong signature width

        async def run():
            front = AsyncDiagnosisService(warm_service, max_batch=16,
                                          window_seconds=0.005)
            with pytest.raises(DiagnosisError):
                await front.submit_many([("rc_lowpass", good),
                                         ("rc_lowpass", bad),
                                         ("voltage_divider", bad),
                                         ("rc_lowpass", good)])
            await front.aclose()

        asyncio.run(run())

    def test_http_diagnose_many_route(self, warm_service):
        burst = self.burst(warm_service)
        expected = [warm_service.submit(circuit, rows)
                    for circuit, rows in burst]

        async def run():
            server = await serve(
                AsyncDiagnosisService(warm_service,
                                      window_seconds=0.001),
                host="127.0.0.1", port=0)
            host, port = server.address
            try:
                status, payload = await _http(
                    host, port, "POST", "/v1/diagnose-many",
                    codec.encode_request_many(burst))
                assert status == 200
                assert codec.decode_response_many(payload) == expected

                status, _ = await _http(host, port, "GET",
                                        "/v1/diagnose-many")
                assert status == 405

                status, payload = await _http(host, port, "POST",
                                              "/v1/diagnose-many",
                                              b'{"requests": []}')
                assert status == 400 and b"CodecError" in payload
            finally:
                await server.aclose()

        asyncio.run(run())


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
class TestCodec:
    def test_request_round_trip(self):
        matrix = np.array([[1.5, -2.25], [0.125, 3.0]])
        request = codec.decode_request(
            codec.encode_request("dut", matrix))
        assert request.circuit == "dut"
        assert request.n_rows == 2
        assert np.array_equal(request.magnitudes_db, matrix)

    def test_infinite_margin_round_trips(self):
        diagnosis = Diagnosis(component="R1", estimated_deviation=0.1,
                              distance=0.5, perpendicular=True,
                              margin=math.inf, point=(1.0, 2.0),
                              ranking=(("R1", 0.5),))
        decoded = codec.decode_response(
            codec.encode_response([diagnosis]))
        assert decoded == [diagnosis]

    @settings(max_examples=60, deadline=None)
    @given(margin=st.one_of(
        st.floats(allow_nan=False, allow_infinity=False),
        st.sampled_from([math.inf, -math.inf])),
        runner_up=st.one_of(
            st.floats(min_value=0.0, allow_nan=False,
                      allow_infinity=False),
            st.just(math.inf)))
    def test_margin_and_ranking_round_trip_property(self, margin,
                                                    runner_up):
        """Every finite or infinite margin (and ranking distance)
        survives the wire bitwise -- inf is encoded distinguishably,
        never collapsed to null."""
        diagnosis = Diagnosis(component="R1", estimated_deviation=0.1,
                              distance=0.5, perpendicular=True,
                              margin=margin, point=(1.0, 2.0),
                              ranking=(("R1", 0.5),
                                       ("R2", runner_up)))
        payload = codec.encode_response([diagnosis])
        assert b"null" not in payload
        decoded = codec.decode_response(payload)
        assert decoded == [diagnosis]

    def test_nan_margin_rejected_at_encode(self):
        diagnosis = Diagnosis(component="R1", estimated_deviation=0.1,
                              distance=0.5, perpendicular=True,
                              margin=math.nan, point=(1.0, 2.0),
                              ranking=(("R1", 0.5),))
        with pytest.raises(CodecError, match="margin"):
            codec.encode_response([diagnosis])

    def test_nan_token_and_legacy_null_decode(self):
        """The decoder still understands an explicit "nan" token and
        the legacy null-means-infinity encoding of old peers."""
        template = {"component": "R1", "estimated_deviation": 0.1,
                    "distance": 0.5, "perpendicular": True,
                    "point": [1.0, 2.0], "ranking": [["R1", 0.5]]}
        nan_payload = json.dumps(
            {"diagnoses": [dict(template, margin="nan")]}).encode()
        decoded = codec.decode_response(nan_payload)
        assert math.isnan(decoded[0].margin)
        null_payload = json.dumps(
            {"diagnoses": [dict(template, margin=None)]}).encode()
        decoded = codec.decode_response(null_payload)
        assert decoded[0].margin == math.inf

    @pytest.mark.parametrize("payload", [
        b"not json",
        b"[]",
        b'{"circuit": "", "magnitudes_db": [[1.0]]}',
        b'{"circuit": "x"}',
        b'{"circuit": "x", "magnitudes_db": []}',
        b'{"circuit": "x", "magnitudes_db": [[1.0], [1.0, 2.0]]}',
        b'{"circuit": "x", "magnitudes_db": [["a"]]}',
        b'{"circuit": "x", "magnitudes_db": [[NaN]]}',
        b'{"circuit": "x", "magnitudes_db": [1.0, 2.0]}',
    ])
    def test_malformed_requests_rejected(self, payload):
        with pytest.raises(CodecError):
            codec.decode_request(payload)

    def test_malformed_responses_rejected(self):
        with pytest.raises(CodecError):
            codec.decode_response(b'{"diagnoses": [{"component": "R1"}]}')
        with pytest.raises(CodecError):
            codec.decode_response(b'{"nope": 1}')

    def test_burst_request_round_trip(self):
        burst = [("a", np.array([[1.5, -2.25]])),
                 ("b", np.array([[0.125, 3.0], [4.0, -1.0]]))]
        decoded = codec.decode_request_many(
            codec.encode_request_many(burst))
        assert [(r.circuit, r.n_rows) for r in decoded] == \
            [("a", 1), ("b", 2)]
        for request, (_, matrix) in zip(decoded, burst):
            assert np.array_equal(request.magnitudes_db, matrix)

    @pytest.mark.parametrize("payload", [
        b"not json",
        b"[]",
        b'{"requests": []}',
        b'{"requests": {"circuit": "x"}}',
        b'{"requests": [{"circuit": "x"}]}',
        b'{"requests": [{"circuit": "", "magnitudes_db": [[1.0]]}]}',
    ])
    def test_malformed_burst_requests_rejected(self, payload):
        with pytest.raises(CodecError):
            codec.decode_request_many(payload)

    def test_malformed_burst_responses_rejected(self):
        with pytest.raises(CodecError):
            codec.decode_response_many(b'{"nope": 1}')
        with pytest.raises(CodecError):
            codec.decode_response_many(b'{"batches": [1]}')

    def test_non_numeric_rows_raise_codec_error(self):
        """FrequencyResponse-shaped objects cannot ride the wire: the
        encoder must answer with CodecError, not a NumPy TypeError."""
        with pytest.raises(CodecError, match="numeric"):
            codec.encode_request("x", [object()])
        with pytest.raises(CodecError, match="numeric"):
            codec.encode_request_many([("x", [object()])])

    def test_error_payload_shape(self):
        import json
        payload = json.loads(codec.encode_error("boom", kind="TestKind"))
        assert payload == {"error": {"kind": "TestKind",
                                     "message": "boom"}}


# ----------------------------------------------------------------------
# HTTP front
# ----------------------------------------------------------------------
async def _http(host, port, method, path, body=b""):
    reader, writer = await asyncio.open_connection(host, port)
    head = (f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n").encode("latin1")
    writer.write(head + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header_blob, _, payload = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ", 2)[1])
    return status, payload


class TestHTTPServer:
    def test_diagnose_and_introspection_routes(self, warm_service):
        rows = measured_rows(warm_service, "rc_lowpass", 3, seed=11)
        expected = warm_service.submit("rc_lowpass", rows)

        async def run():
            server = await serve(
                AsyncDiagnosisService(warm_service,
                                      window_seconds=0.001),
                host="127.0.0.1", port=0)
            host, port = server.address
            try:
                status, payload = await _http(
                    host, port, "POST", "/v1/diagnose",
                    codec.encode_request("rc_lowpass", rows))
                assert status == 200
                assert codec.decode_response(payload) == expected

                status, payload = await _http(host, port, "GET",
                                              "/v1/healthz")
                assert status == 200
                assert b'"status":"ok"' in payload

                status, payload = await _http(host, port, "GET",
                                              "/v1/stats")
                assert status == 200
                assert b"batch_size_histogram" in payload
                assert json.loads(payload)["engine_kind"] == \
                    warm_service.config.engine.kind

                status, payload = await _http(host, port, "GET",
                                              "/v1/circuits")
                assert status == 200
                assert b"rc_lowpass" in payload

                status, payload = await _http(
                    host, port, "GET", "/v1/test-vector/rc_lowpass")
                assert status == 200
                assert b"test_vector_hz" in payload
            finally:
                await server.aclose()

        asyncio.run(run())

    def test_http_error_statuses(self, warm_service):
        async def run():
            server = await serve(
                AsyncDiagnosisService(warm_service,
                                      window_seconds=0.001),
                host="127.0.0.1", port=0)
            host, port = server.address
            try:
                status, payload = await _http(host, port, "POST",
                                              "/v1/diagnose",
                                              b"not json")
                assert status == 400 and b"CodecError" in payload

                status, payload = await _http(
                    host, port, "POST", "/v1/diagnose",
                    codec.encode_request("ghost", [[0.0, 0.0]]))
                assert status == 404 and b"unknown circuit" in payload

                status, _ = await _http(host, port, "GET",
                                        "/v1/diagnose")
                assert status == 405

                status, _ = await _http(host, port, "GET",
                                        "/v1/nowhere")
                assert status == 404

                # Oversized request line: a clean 400, not a dropped
                # connection (StreamReader's limit raises ValueError).
                status, _ = await _http(host, port, "GET",
                                        "/v1/" + "x" * 100_000)
                assert status == 400

                # Declared body beyond the cap is refused up front.
                reader, writer = await asyncio.open_connection(host,
                                                               port)
                writer.write(b"POST /v1/diagnose HTTP/1.1\r\n"
                             b"Content-Length: 999999999999\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
                assert int(raw.split(b" ", 2)[1]) == 413
            finally:
                await server.aclose()

        asyncio.run(run())


# ----------------------------------------------------------------------
# HTTP keep-alive / pipelining
# ----------------------------------------------------------------------
async def _read_one_response(reader):
    """Frame exactly one HTTP response off a persistent connection."""
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    payload = await reader.readexactly(length) if length else b""
    return status, headers, payload


class TestKeepAlive:
    def test_pipelined_requests_on_one_connection(self, warm_service):
        """Two diagnose requests written back-to-back before reading
        anything come back in order on the same connection; an
        explicit Connection: close then ends it."""
        rows = measured_rows(warm_service, "rc_lowpass", 1, seed=31)
        expected = warm_service.submit("rc_lowpass", rows)
        body = codec.encode_request("rc_lowpass", rows)

        async def run():
            server = await serve(
                AsyncDiagnosisService(warm_service,
                                      window_seconds=0.001),
                host="127.0.0.1", port=0)
            host, port = server.address
            try:
                reader, writer = await asyncio.open_connection(host,
                                                               port)
                request = (f"POST /v1/diagnose HTTP/1.1\r\n"
                           f"Host: {host}\r\n"
                           f"Content-Length: {len(body)}\r\n\r\n"
                           ).encode("latin1") + body
                writer.write(request + request)    # pipelined pair
                await writer.drain()
                for _ in range(2):
                    status, headers, payload = await \
                        _read_one_response(reader)
                    assert status == 200
                    assert headers["connection"] == "keep-alive"
                    assert codec.decode_response(payload) == expected
                writer.write((f"GET /v1/healthz HTTP/1.1\r\n"
                              f"Host: {host}\r\n"
                              f"Connection: close\r\n\r\n"
                              ).encode("latin1"))
                await writer.drain()
                status, headers, _ = await _read_one_response(reader)
                assert status == 200
                assert headers["connection"] == "close"
                assert await reader.read() == b""  # server hung up
                writer.close()
                await writer.wait_closed()
            finally:
                await server.aclose()

        asyncio.run(run())

    def test_http10_closes_unless_keep_alive_requested(self,
                                                       warm_service):
        async def exchange(host, port, version, extra=""):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write((f"GET /v1/healthz {version}\r\n"
                          f"Host: {host}\r\n{extra}\r\n"
                          ).encode("latin1"))
            await writer.drain()
            status, headers, _ = await _read_one_response(reader)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
            return status, headers

        async def run():
            server = await serve(
                AsyncDiagnosisService(warm_service,
                                      window_seconds=0.001),
                host="127.0.0.1", port=0)
            host, port = server.address
            try:
                status, headers = await exchange(host, port,
                                                 "HTTP/1.0")
                assert status == 200
                assert headers["connection"] == "close"
                status, headers = await exchange(
                    host, port, "HTTP/1.0",
                    extra="Connection: keep-alive\r\n")
                assert status == 200
                assert headers["connection"] == "keep-alive"
            finally:
                await server.aclose()

        asyncio.run(run())

    def test_aclose_returns_promptly_with_idle_keepalive_client(
            self, warm_service):
        """Shutdown must not wait on clients idling between requests
        (Python >= 3.12.1 Server.wait_closed() waits for connection
        handlers, so the parked tasks must be reaped first)."""
        rows = measured_rows(warm_service, "rc_lowpass", 1, seed=41)
        body = codec.encode_request("rc_lowpass", rows)

        async def run():
            server = await serve(
                AsyncDiagnosisService(warm_service,
                                      window_seconds=0.001),
                host="127.0.0.1", port=0)
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write((f"POST /v1/diagnose HTTP/1.1\r\n"
                          f"Host: {host}\r\n"
                          f"Content-Length: {len(body)}\r\n\r\n"
                          ).encode("latin1") + body)
            await writer.drain()
            status, headers, _ = await _read_one_response(reader)
            assert status == 200
            assert headers["connection"] == "keep-alive"
            # The connection now idles; aclose must not stall on it.
            await asyncio.wait_for(server.aclose(), timeout=5.0)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

        asyncio.run(run())

    def test_idle_connection_reclaimed_after_timeout(self,
                                                     warm_service):
        """A keep-alive connection that goes quiet is closed by the
        server's idle timeout instead of parking a handler forever."""

        async def run():
            front = AsyncDiagnosisService(warm_service,
                                          window_seconds=0.001)
            from repro import DiagnosisHTTPServer
            server = DiagnosisHTTPServer(front, host="127.0.0.1",
                                         port=0, idle_timeout=0.2)
            await server.start()
            host, port = server.address
            try:
                reader, writer = await asyncio.open_connection(host,
                                                               port)
                # Send nothing: the server must hang up on its own.
                data = await asyncio.wait_for(reader.read(),
                                              timeout=5.0)
                assert data == b""
                writer.close()
                await writer.wait_closed()
                # A half-sent request (line, then stall mid-headers)
                # is reclaimed too: the timeout covers the whole read
                # phase, not just the first line.
                reader, writer = await asyncio.open_connection(host,
                                                               port)
                writer.write(b"POST /v1/diagnose HTTP/1.1\r\n"
                             b"Content-Length: 100\r\n")
                await writer.drain()
                data = await asyncio.wait_for(reader.read(),
                                              timeout=5.0)
                assert data == b""
                writer.close()
                await writer.wait_closed()
            finally:
                await server.aclose()

        asyncio.run(run())

    def test_chunked_transfer_encoding_rejected_and_closed(
            self, warm_service):
        """Chunked bodies are unsupported; answering keep-alive with
        the chunk framing unread would desynchronise the stream, so
        the server must refuse and close."""

        async def run():
            server = await serve(
                AsyncDiagnosisService(warm_service,
                                      window_seconds=0.001),
                host="127.0.0.1", port=0)
            host, port = server.address
            try:
                reader, writer = await asyncio.open_connection(host,
                                                               port)
                writer.write((f"POST /v1/diagnose HTTP/1.1\r\n"
                              f"Host: {host}\r\n"
                              f"Transfer-Encoding: chunked\r\n\r\n"
                              f"5\r\nhello\r\n0\r\n\r\n"
                              ).encode("latin1"))
                await writer.drain()
                status, headers, payload = await \
                    _read_one_response(reader)
                assert status == 400
                assert b"Transfer-Encoding" in payload
                assert headers["connection"] == "close"
                assert await reader.read() == b""
                writer.close()
                await writer.wait_closed()
                # Conflicting Content-Length copies: same refusal.
                reader, writer = await asyncio.open_connection(host,
                                                               port)
                writer.write((f"POST /v1/diagnose HTTP/1.1\r\n"
                              f"Host: {host}\r\n"
                              f"Content-Length: 10\r\n"
                              f"Content-Length: 0\r\n\r\n"
                              f"0123456789").encode("latin1"))
                await writer.drain()
                status, headers, payload = await \
                    _read_one_response(reader)
                assert status == 400
                assert b"conflicting Content-Length" in payload
                assert headers["connection"] == "close"
                assert await reader.read() == b""
                writer.close()
                await writer.wait_closed()
            finally:
                await server.aclose()

        asyncio.run(run())

    def test_oversized_header_block_rejected(self, warm_service):
        """Streaming endless header lines must hit the head-bytes cap
        (431 + close), not grow server memory for the idle window."""

        async def run():
            server = await serve(
                AsyncDiagnosisService(warm_service,
                                      window_seconds=0.001),
                host="127.0.0.1", port=0)
            host, port = server.address
            try:
                reader, writer = await asyncio.open_connection(host,
                                                               port)
                writer.write(b"GET /v1/healthz HTTP/1.1\r\n")
                filler = b"x" * 1000
                for index in range(100):       # ~100 KB of headers
                    writer.write(b"h%d: %s\r\n" % (index, filler))
                await writer.drain()
                status, headers, _ = await _read_one_response(reader)
                assert status == 431
                assert headers["connection"] == "close"
                assert await reader.read() == b""
                writer.close()
                await writer.wait_closed()
            finally:
                await server.aclose()

        asyncio.run(run())

    def test_parse_error_closes_the_connection(self, warm_service):
        """A framing error leaves the stream unsynchronised: answer
        400 and close, never try to read a next request."""

        async def run():
            server = await serve(
                AsyncDiagnosisService(warm_service,
                                      window_seconds=0.001),
                host="127.0.0.1", port=0)
            host, port = server.address
            try:
                reader, writer = await asyncio.open_connection(host,
                                                               port)
                writer.write(b"BOGUS\r\n\r\n")
                await writer.drain()
                status, headers, _ = await _read_one_response(reader)
                assert status == 400
                assert headers["connection"] == "close"
                assert await reader.read() == b""
                writer.close()
                await writer.wait_closed()
            finally:
                await server.aclose()

        asyncio.run(run())


# ----------------------------------------------------------------------
# Telemetry over HTTP: /v1/metrics, request ids, trace embed, access log
# ----------------------------------------------------------------------
async def _http_full(host, port, method, path, body=b"",
                     extra_headers=()):
    """One request with custom headers; returns (status, headers,
    payload)."""
    reader, writer = await asyncio.open_connection(host, port)
    extra = "".join(f"{name}: {value}\r\n"
                    for name, value in extra_headers)
    head = (f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n{extra}"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n").encode("latin1")
    writer.write(head + body)
    await writer.drain()
    status, headers, payload = await _read_one_response(reader)
    writer.close()
    await writer.wait_closed()
    return status, headers, payload


class TestTelemetryHTTP:
    def test_metrics_route_serves_valid_exposition(self, warm_service):
        rows = measured_rows(warm_service, "rc_lowpass", 2, seed=5)
        # Store families register on the process registry when a store
        # exists; give the scrape one to cover.
        from repro.runtime import ArtifactStore, InMemoryBackend
        ArtifactStore(backend=InMemoryBackend())

        async def run():
            server = await serve(
                AsyncDiagnosisService(warm_service,
                                      window_seconds=0.001),
                host="127.0.0.1", port=0)
            host, port = server.address
            try:
                status, _, _ = await _http_full(
                    host, port, "POST", "/v1/diagnose",
                    codec.encode_request("rc_lowpass", rows))
                assert status == 200
                status, headers, payload = await _http_full(
                    host, port, "GET", "/v1/metrics")
                assert status == 200
                assert headers["content-type"] == telemetry.CONTENT_TYPE
                return payload.decode("utf-8")
            finally:
                await server.aclose()

        text = asyncio.run(run())
        families = telemetry.parse_exposition(text)
        # Service-level counters moved onto the registry.
        requests = families["repro_service_requests_total"]
        assert requests["type"] == "counter"
        assert sum(value for _, _, value in requests["samples"]) >= 1
        assert "repro_service_request_latency_seconds" in families
        assert "repro_service_queue_depth" in families
        assert "repro_service_coalesce_batch_rows" in families
        # Process-wide engine/pipeline/store families ride along.
        assert "repro_engine_solve_seconds" in families
        assert "repro_pipeline_stage_seconds" in families
        assert "repro_store_hits_total" in families

    def test_request_id_echo_and_generation(self, warm_service):
        async def run():
            server = await serve(
                AsyncDiagnosisService(warm_service,
                                      window_seconds=0.001),
                host="127.0.0.1", port=0)
            host, port = server.address
            try:
                _, headers, _ = await _http_full(
                    host, port, "GET", "/v1/healthz",
                    extra_headers=[("X-Request-Id", "req-42.alpha")])
                assert headers["x-request-id"] == "req-42.alpha"

                _, headers, _ = await _http_full(
                    host, port, "GET", "/v1/healthz")
                generated = headers["x-request-id"]
                assert re.fullmatch(r"[A-Za-z0-9._-]{1,128}", generated)

                # Header-injection attempts are replaced, not echoed.
                _, headers, _ = await _http_full(
                    host, port, "GET", "/v1/healthz",
                    extra_headers=[("X-Request-Id", "a b\tc")])
                assert headers["x-request-id"] != "a b\tc"
            finally:
                await server.aclose()

        asyncio.run(run())

    def test_debug_header_embeds_span_tree(self, warm_service):
        rows = measured_rows(warm_service, "rc_lowpass", 2, seed=7)

        async def run():
            server = await serve(
                AsyncDiagnosisService(warm_service,
                                      window_seconds=0.001),
                host="127.0.0.1", port=0)
            host, port = server.address
            try:
                status, _, payload = await _http_full(
                    host, port, "POST", "/v1/diagnose",
                    codec.encode_request("rc_lowpass", rows),
                    extra_headers=[("X-Repro-Debug", "trace")])
                assert status == 200
                data = json.loads(payload)
                trace = data["trace"]
                assert trace["name"] == "http.request"
                assert trace["attrs"]["path"] == "/v1/diagnose"
                assert trace["attrs"]["status"] == 200
                child_names = {child["name"] for child
                               in trace.get("children", ())}
                assert "service.submit" in child_names
                # The decorated payload still decodes as a response.
                assert codec.decode_response(payload) == \
                    warm_service.submit("rc_lowpass", rows)

                # Without the header there is no trace key.
                _, _, payload = await _http_full(
                    host, port, "POST", "/v1/diagnose",
                    codec.encode_request("rc_lowpass", rows))
                assert "trace" not in json.loads(payload)
            finally:
                await server.aclose()

        asyncio.run(run())

    def test_json_access_log_lines(self, warm_service, caplog):
        async def run():
            front = AsyncDiagnosisService(warm_service,
                                          window_seconds=0.001)
            server = DiagnosisHTTPServer(front, host="127.0.0.1",
                                         port=0, log_json=True)
            await server.start()
            host, port = server.address
            try:
                await _http_full(
                    host, port, "GET", "/v1/healthz",
                    extra_headers=[("X-Request-Id", "log-probe")])
            finally:
                await server.aclose()

        with caplog.at_level(logging.INFO, logger="repro.access"):
            asyncio.run(run())
        lines = [json.loads(record.getMessage())
                 for record in caplog.records
                 if record.name == "repro.access"]
        probe = [line for line in lines
                 if line["request_id"] == "log-probe"]
        assert probe, f"no access line for the probe in {lines}"
        assert probe[0]["method"] == "GET"
        assert probe[0]["path"] == "/v1/healthz"
        assert probe[0]["status"] == 200
        assert probe[0]["duration_ms"] >= 0.0

    def test_access_log_can_be_disabled(self, warm_service, caplog):
        async def run():
            front = AsyncDiagnosisService(warm_service,
                                          window_seconds=0.001)
            server = DiagnosisHTTPServer(front, host="127.0.0.1",
                                         port=0, access_log=False)
            await server.start()
            host, port = server.address
            try:
                await _http_full(host, port, "GET", "/v1/healthz")
            finally:
                await server.aclose()

        with caplog.at_level(logging.INFO, logger="repro.access"):
            asyncio.run(run())
        assert not [record for record in caplog.records
                    if record.name == "repro.access"]
