"""DiagnosisService: warm-up, batched submits, LRU and counters.

The concurrency classes at the bottom are the stress tier: they hammer
``submit``/``warm`` from many threads and pin down the service's
thread-safety contract -- one pipeline build per circuit no matter how
many threads race, exact counters, and LRU eviction invariants that
hold under churn.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import ArtifactStore, DiagnosisService, PipelineConfig, \
    rc_lowpass
from repro.core.atpg import FaultTrajectoryATPG
from repro.errors import ServiceError
from repro.ga import GAConfig
from repro.runtime.service import ServiceStats
from repro.sim import ACAnalysis

QUICK = PipelineConfig(dictionary_points=32, deviations=(-0.2, 0.2),
                       ga=GAConfig(population_size=8, generations=2))


@pytest.fixture()
def service(tmp_path):
    return DiagnosisService(config=QUICK,
                            store=ArtifactStore(tmp_path / "store"),
                            max_engines=2, seed=3)


def _measured_batch(info, freqs, specs):
    rows = []
    for component, deviation in specs:
        faulty = info.circuit.scaled_value(component, 1.0 + deviation)
        response = ACAnalysis(faulty).transfer(info.output_node, freqs)
        rows.append(response.magnitude_db_at(freqs))
    return np.vstack(rows)


class TestServiceRequests:
    def test_submit_diagnoses_batches(self, service):
        info = rc_lowpass()
        service.register("dut", info)
        freqs = np.array(sorted(service.test_vector_hz("dut")))
        batch = _measured_batch(info, freqs, (("R1", 0.15),
                                              ("C1", -0.12),
                                              ("R1", -0.18)))
        diagnoses = service.submit("dut", batch)
        assert len(diagnoses) == 3
        assert all(d.component in info.faultable for d in diagnoses)
        # submit() agrees with the warmed engine's scalar classifier.
        result = service.warm("dut")
        scalar = [result.diagnose_response(
            ACAnalysis(info.circuit.scaled_value(c, 1.0 + d)).transfer(
                info.output_node, freqs))
            for c, d in (("R1", 0.15), ("C1", -0.12), ("R1", -0.18))]
        assert [d.component for d in diagnoses] == \
            [d.component for d in scalar]

    def test_benchmark_circuits_resolve_by_name(self, service):
        result = service.warm("rc_lowpass")
        assert result.info.circuit.name == "rc_lowpass"
        assert service.warmed_circuits == ("rc_lowpass",)

    def test_unknown_circuit_rejected(self, service):
        with pytest.raises(ServiceError):
            service.submit("not_a_circuit", np.zeros((1, 2)))

    def test_counters_accumulate(self, service):
        info = rc_lowpass()
        service.register("dut", info)
        freqs = np.array(sorted(service.test_vector_hz("dut")))
        batch = _measured_batch(info, freqs, (("R1", 0.15),
                                              ("C1", -0.12)))
        service.submit("dut", batch)
        service.submit("dut", batch)
        assert service.stats.requests == 2
        assert service.stats.responses_diagnosed == 4
        assert service.stats.total_latency_seconds > 0.0
        per = service.stats.per_circuit["dut"]
        assert per.requests == 2
        assert per.responses_diagnosed == 4
        assert per.warm_loads == 1
        assert per.mean_latency_seconds > 0.0


class TestServiceLru:
    def test_lru_evicts_least_recently_used(self, tmp_path):
        service = DiagnosisService(config=QUICK, max_engines=1, seed=3,
                                   store=ArtifactStore(tmp_path))
        service.warm("rc_lowpass")
        service.warm("voltage_divider")
        assert service.warmed_circuits == ("voltage_divider",)
        assert service.stats.evictions == 1
        # Re-warming the evicted circuit hits the artifact store, so no
        # fault simulation reruns.
        from repro.faults import FaultDictionary
        before = FaultDictionary.simulations_run
        service.warm("rc_lowpass")
        assert FaultDictionary.simulations_run == before

    def test_warm_hits_keep_engine_hot(self, service):
        service.warm("rc_lowpass")
        first = service._engine("rc_lowpass")
        assert service._engine("rc_lowpass") is first
        assert service.stats.per_circuit["rc_lowpass"].warm_loads == 1

    def test_max_engines_validated(self):
        with pytest.raises(ServiceError):
            DiagnosisService(max_engines=0)


CIRCUITS = ("rc_lowpass", "voltage_divider", "sallen_key_lowpass")


def _count_pipeline_runs(monkeypatch):
    """Monkeypatch the pipeline so every real build is counted."""
    counts = {}
    lock = threading.Lock()
    real_run = FaultTrajectoryATPG.run

    def counting_run(self, *args, **kwargs):
        with lock:
            name = self.info.circuit.name
            counts[name] = counts.get(name, 0) + 1
        return real_run(self, *args, **kwargs)

    monkeypatch.setattr(FaultTrajectoryATPG, "run", counting_run)
    return counts


class TestStatsThreadSafety:
    """ServiceStats mutation is internally locked: counters stay exact
    no matter how many threads record into one object."""

    def test_record_request_is_exact_under_contention(self):
        stats = ServiceStats()
        threads, per_thread = 8, 500

        def hammer(thread_index):
            for _ in range(per_thread):
                stats.record_request(f"c{thread_index % 2}", 3, 0.001)

        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(hammer, range(threads)))

        total = threads * per_thread
        assert stats.requests == total
        assert stats.responses_diagnosed == 3 * total
        assert stats.total_latency_seconds == pytest.approx(0.001 * total)
        assert sum(per.requests
                   for per in stats.per_circuit.values()) == total

    def test_mixed_recording_is_exact_under_contention(self):
        stats = ServiceStats()
        rounds = 300

        def submits():
            for _ in range(rounds):
                stats.record_request("a", 1, 0.002)

        def coalesced():
            for _ in range(rounds):
                stats.record_coalesced("a", [(1, 0.001), (2, 0.001)],
                                       n_rows=3)

        def churn():
            for _ in range(rounds):
                stats.record_warm_load("a")
                stats.record_eviction()
                stats.record_rejection()
                stats.observe_queue_depth(5)

        with ThreadPoolExecutor(max_workers=6) as pool:
            for future in [pool.submit(f) for f in
                           (submits, submits, coalesced, coalesced,
                            churn, churn)]:
                future.result()

        assert stats.requests == 2 * rounds + 2 * 2 * rounds
        assert stats.responses_diagnosed == 2 * rounds + 2 * 3 * rounds
        assert stats.coalesced_batches == 2 * rounds
        assert stats.coalesced_requests == 2 * 2 * rounds
        assert stats.evictions == 2 * rounds
        assert stats.rejections == 2 * rounds
        assert stats.per_circuit["a"].warm_loads == 2 * rounds
        assert stats.peak_queue_depth == 5
        assert sum(stats.batch_size_histogram.values()) == 2 * rounds
        assert stats.latency_p95_seconds >= stats.latency_p50_seconds


@pytest.mark.slow
class TestServiceConcurrency:
    """Hammer the engine LRU from many threads."""

    def test_no_duplicate_warm_builds(self, monkeypatch):
        """Racing warms of the same circuit build the pipeline once."""
        counts = _count_pipeline_runs(monkeypatch)
        service = DiagnosisService(config=QUICK, max_engines=8, seed=3)

        def warm_all(_):
            for name in CIRCUITS:
                service.warm(name)

        with ThreadPoolExecutor(max_workers=12) as pool:
            list(pool.map(warm_all, range(12)))

        assert counts == {name: 1 for name in CIRCUITS}
        for name in CIRCUITS:
            assert service.stats.per_circuit[name].warm_loads == 1
        assert service.stats.evictions == 0
        assert sorted(service.warmed_circuits) == sorted(CIRCUITS)

    def test_counters_exact_under_concurrent_submit(self):
        service = DiagnosisService(config=QUICK, max_engines=8, seed=3)
        rows = {}
        for name in CIRCUITS:
            result = service.warm(name)
            freqs = np.array(sorted(result.test_vector_hz))
            rng = np.random.default_rng(hash(name) % (2 ** 32))
            rows[name] = rng.normal(0.0, 3.0, size=(3, freqs.size))
        threads, per_thread = 8, 40

        def hammer(thread_index):
            name = CIRCUITS[thread_index % len(CIRCUITS)]
            for _ in range(per_thread):
                assert len(service.submit(name, rows[name])) == 3

        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(hammer, range(threads)))

        total = threads * per_thread
        assert service.stats.requests == total
        assert service.stats.responses_diagnosed == 3 * total
        assert sum(per.requests for per
                   in service.stats.per_circuit.values()) == total

    def test_eviction_invariants_under_churn(self, tmp_path,
                                             monkeypatch):
        """max_engines=2 with 3 circuits: capacity and accounting hold
        while threads force constant eviction/re-warm churn."""
        counts = _count_pipeline_runs(monkeypatch)
        service = DiagnosisService(
            config=QUICK, max_engines=2, seed=3,
            store=ArtifactStore(tmp_path / "store"))

        def churn(thread_index):
            for round_index in range(6):
                name = CIRCUITS[(thread_index + round_index)
                                % len(CIRCUITS)]
                result = service.warm(name)
                assert result.info.circuit.name == name

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(churn, range(6)))

        warmed = service.warmed_circuits
        assert len(warmed) <= 2
        assert set(warmed) <= set(CIRCUITS)
        total_builds = sum(
            per.warm_loads for per in service.stats.per_circuit.values())
        # Every build either still occupies an LRU slot or was evicted.
        assert total_builds == sum(counts.values())
        assert total_builds - service.stats.evictions == len(warmed)
