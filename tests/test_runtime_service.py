"""DiagnosisService: warm-up, batched submits, LRU and counters."""

import numpy as np
import pytest

from repro import ArtifactStore, DiagnosisService, PipelineConfig, \
    rc_lowpass
from repro.errors import ServiceError
from repro.ga import GAConfig
from repro.sim import ACAnalysis

QUICK = PipelineConfig(dictionary_points=32, deviations=(-0.2, 0.2),
                       ga=GAConfig(population_size=8, generations=2))


@pytest.fixture()
def service(tmp_path):
    return DiagnosisService(config=QUICK,
                            store=ArtifactStore(tmp_path / "store"),
                            max_engines=2, seed=3)


def _measured_batch(info, freqs, specs):
    rows = []
    for component, deviation in specs:
        faulty = info.circuit.scaled_value(component, 1.0 + deviation)
        response = ACAnalysis(faulty).transfer(info.output_node, freqs)
        rows.append(response.magnitude_db_at(freqs))
    return np.vstack(rows)


class TestServiceRequests:
    def test_submit_diagnoses_batches(self, service):
        info = rc_lowpass()
        service.register("dut", info)
        freqs = np.array(sorted(service.test_vector_hz("dut")))
        batch = _measured_batch(info, freqs, (("R1", 0.15),
                                              ("C1", -0.12),
                                              ("R1", -0.18)))
        diagnoses = service.submit("dut", batch)
        assert len(diagnoses) == 3
        assert all(d.component in info.faultable for d in diagnoses)
        # submit() agrees with the warmed engine's scalar classifier.
        result = service.warm("dut")
        scalar = [result.diagnose_response(
            ACAnalysis(info.circuit.scaled_value(c, 1.0 + d)).transfer(
                info.output_node, freqs))
            for c, d in (("R1", 0.15), ("C1", -0.12), ("R1", -0.18))]
        assert [d.component for d in diagnoses] == \
            [d.component for d in scalar]

    def test_benchmark_circuits_resolve_by_name(self, service):
        result = service.warm("rc_lowpass")
        assert result.info.circuit.name == "rc_lowpass"
        assert service.warmed_circuits == ("rc_lowpass",)

    def test_unknown_circuit_rejected(self, service):
        with pytest.raises(ServiceError):
            service.submit("not_a_circuit", np.zeros((1, 2)))

    def test_counters_accumulate(self, service):
        info = rc_lowpass()
        service.register("dut", info)
        freqs = np.array(sorted(service.test_vector_hz("dut")))
        batch = _measured_batch(info, freqs, (("R1", 0.15),
                                              ("C1", -0.12)))
        service.submit("dut", batch)
        service.submit("dut", batch)
        assert service.stats.requests == 2
        assert service.stats.responses_diagnosed == 4
        assert service.stats.total_latency_seconds > 0.0
        per = service.stats.per_circuit["dut"]
        assert per.requests == 2
        assert per.responses_diagnosed == 4
        assert per.warm_loads == 1
        assert per.mean_latency_seconds > 0.0


class TestServiceLru:
    def test_lru_evicts_least_recently_used(self, tmp_path):
        service = DiagnosisService(config=QUICK, max_engines=1, seed=3,
                                   store=ArtifactStore(tmp_path))
        service.warm("rc_lowpass")
        service.warm("voltage_divider")
        assert service.warmed_circuits == ("voltage_divider",)
        assert service.stats.evictions == 1
        # Re-warming the evicted circuit hits the artifact store, so no
        # fault simulation reruns.
        from repro.faults import FaultDictionary
        before = FaultDictionary.simulations_run
        service.warm("rc_lowpass")
        assert FaultDictionary.simulations_run == before

    def test_warm_hits_keep_engine_hot(self, service):
        service.warm("rc_lowpass")
        first = service._engine("rc_lowpass")
        assert service._engine("rc_lowpass") is first
        assert service.stats.per_circuit["rc_lowpass"].warm_loads == 1

    def test_max_engines_validated(self):
        with pytest.raises(ServiceError):
            DiagnosisService(max_engines=0)
