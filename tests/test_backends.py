"""Storage backends: protocol conformance, sharding, maintenance,
byte-compatibility with pre-refactor store roots.

Every backend implements the same :class:`StorageBackend` contract, so
the conformance tests run identically against the local-directory,
in-memory and sharded implementations. The sharded tests additionally
pin the consistent-hash properties (stable placement, minimal remap on
node loss, full-ring fallback on miss), and the legacy-store test
replays a committed pre-backend store tree through
:class:`LocalDirBackend` to prove existing roots stay readable.
"""

from __future__ import annotations

import hashlib
import importlib.util
import shutil
import time
from pathlib import Path

import numpy as np
import pytest

from repro import ArtifactStore, DiagnosisService, FaultTrajectoryATPG
from repro.errors import StoreError
from repro.faults import FaultDictionary
from repro.runtime.backends import (HashRing, InMemoryBackend,
                                    LocalDirBackend, ShardedBackend,
                                    StorageBackend)
from repro.runtime.store import as_store

DATA_DIR = Path(__file__).resolve().parent / "data"

_spec = importlib.util.spec_from_file_location(
    "legacy_store_maker", DATA_DIR / "make_legacy_store.py")
legacy_maker = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(legacy_maker)


def key_of(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def publish_blob(backend: StorageBackend, kind: str, key: str,
                 payload: bytes) -> bool:
    def populate(scratch: Path) -> None:
        (scratch / "blob.bin").write_bytes(payload)
        nested = scratch / "nested" / "meta.json"
        nested.parent.mkdir()
        nested.write_text("{}")

    return backend.publish(kind, key, populate)


BACKENDS = ("local", "memory", "sharded")


def make_backend(kind: str, tmp_path: Path) -> StorageBackend:
    if kind == "local":
        return LocalDirBackend(tmp_path / "root")
    if kind == "memory":
        return InMemoryBackend()
    return ShardedBackend([LocalDirBackend(tmp_path / f"shard{i}")
                           for i in range(3)])


# ----------------------------------------------------------------------
# Consistent hashing
# ----------------------------------------------------------------------
class TestHashRing:
    def test_deterministic_and_total(self):
        ring = HashRing(("a", "b", "c"))
        keys = [f"circuit-{i}" for i in range(100)]
        first = [ring.node_for(k) for k in keys]
        again = [HashRing(("a", "b", "c")).node_for(k) for k in keys]
        assert first == again
        assert set(first) == {"a", "b", "c"}   # all nodes take load

    def test_node_loss_only_remaps_that_node(self):
        """The consistent-hashing property: dropping one node moves
        only the keys it owned."""
        ring = HashRing(("a", "b", "c"))
        keys = [f"circuit-{i}" for i in range(200)]
        before = {k: ring.node_for(k) for k in keys}
        survivors = HashRing(("a", "b"))
        for k in keys:
            if before[k] != "c":
                assert survivors.node_for(k) == before[k], \
                    f"{k} moved although its node survived"

    def test_exclusion_walks_the_ring(self):
        ring = HashRing(("a", "b", "c"))
        for key in ("x", "y", "z"):
            owner = ring.node_for(key)
            fallback = ring.node_for(key, exclude=frozenset({owner}))
            assert fallback != owner
            # Deterministic failover order per key.
            assert fallback == ring.node_for(
                key, exclude=frozenset({owner}))

    def test_all_excluded_raises(self):
        ring = HashRing(("a", "b"))
        with pytest.raises(StoreError, match="no live node"):
            ring.node_for("x", exclude=frozenset({"a", "b"}))

    def test_invalid_rings_rejected(self):
        with pytest.raises(StoreError):
            HashRing(())
        with pytest.raises(StoreError):
            HashRing(("a", "a"))
        with pytest.raises(StoreError):
            HashRing(("a",), vnodes=0)


# ----------------------------------------------------------------------
# Protocol conformance (every backend)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend_kind", BACKENDS)
class TestBackendConformance:
    def test_publish_open_round_trip(self, backend_kind, tmp_path):
        backend = make_backend(backend_kind, tmp_path)
        key = key_of("artifact-1")
        assert backend.open("dictionary", key) is None
        assert not backend.has("dictionary", key)
        assert publish_blob(backend, "dictionary", key, b"payload")
        assert backend.has("dictionary", key)
        slot = backend.open("dictionary", key)
        assert slot is not None
        assert (slot / "blob.bin").read_bytes() == b"payload"
        assert (slot / "nested" / "meta.json").read_text() == "{}"

    def test_first_writer_wins(self, backend_kind, tmp_path):
        backend = make_backend(backend_kind, tmp_path)
        key = key_of("artifact-2")
        assert publish_blob(backend, "ga", key, b"first")
        assert not publish_blob(backend, "ga", key, b"second")
        slot = backend.open("ga", key)
        assert (slot / "blob.bin").read_bytes() == b"first"

    def test_delete(self, backend_kind, tmp_path):
        backend = make_backend(backend_kind, tmp_path)
        key = key_of("artifact-3")
        assert not backend.delete("exact", key)
        publish_blob(backend, "exact", key, b"x")
        assert backend.delete("exact", key)
        assert backend.open("exact", key) is None
        assert not backend.has("exact", key)

    def test_records_and_disk_usage(self, backend_kind, tmp_path):
        backend = make_backend(backend_kind, tmp_path)
        payloads = {key_of(f"a{i}"): b"x" * (10 * (i + 1))
                    for i in range(3)}
        for key, payload in payloads.items():
            publish_blob(backend, "dictionary", key, payload)
        records = list(backend.records())
        assert {r.key for r in records} == set(payloads)
        for record in records:
            # blob.bin plus the 2-byte nested meta.json.
            assert record.n_bytes == len(payloads[record.key]) + 2
            assert record.kind == "dictionary"
        assert backend.disk_usage() == sum(
            len(p) + 2 for p in payloads.values())

    def test_prune_evicts_lru_first(self, backend_kind, tmp_path):
        backend = make_backend(backend_kind, tmp_path)
        keys = [key_of(f"p{i}") for i in range(3)]
        for key in keys:
            publish_blob(backend, "dictionary", key, b"z" * 100)
            time.sleep(0.02)          # strictly ordered mtimes
        # Touch the oldest artifact: a read refreshes its recency.
        assert backend.open("dictionary", keys[0]) is not None
        evicted = backend.prune(max_bytes=2 * 102)
        assert [record.key for record in evicted] == [keys[1]]
        assert backend.has("dictionary", keys[0])
        assert not backend.has("dictionary", keys[1])
        assert backend.has("dictionary", keys[2])
        assert backend.disk_usage() <= 2 * 102
        # Prune to zero clears everything; a second prune is a no-op.
        assert len(backend.prune(max_bytes=0)) == 2
        assert backend.disk_usage() == 0
        assert backend.prune(max_bytes=0) == ()

    def test_invalid_slots_rejected(self, backend_kind, tmp_path):
        backend = make_backend(backend_kind, tmp_path)
        for bad_key in ("../escape", "", "short", "G" * 64):
            with pytest.raises(StoreError):
                backend.has("dictionary", bad_key)
        for bad_kind in ("..", "", "Kind", "a/b"):
            with pytest.raises(StoreError):
                backend.has(bad_kind, "0" * 64)

    def test_pipeline_warm_run_skips_simulation(self, backend_kind,
                                                tmp_path):
        """The acceptance criterion, per backend: a store-warmed
        pipeline repeat runs zero fault simulations and reproduces the
        cold run exactly."""
        backend = make_backend(backend_kind, tmp_path)
        store = ArtifactStore(backend=backend)
        info = legacy_maker.circuit_info()
        config = legacy_maker.CONFIG
        cold = FaultTrajectoryATPG(info, config).run(seed=5, store=store)
        simulations_before = FaultDictionary.simulations_run
        warm = FaultTrajectoryATPG(info, config).run(seed=5, store=store)
        assert FaultDictionary.simulations_run == simulations_before
        assert set(warm.cache_hits) == {"dictionary", "ga", "exact",
                                        "trajectories"}
        assert warm.test_vector_hz == cold.test_vector_hz
        for a, b in zip(warm.trajectories, cold.trajectories):
            assert np.array_equal(a.points, b.points)


# ----------------------------------------------------------------------
# Sharded specifics
# ----------------------------------------------------------------------
class TestShardedBackend:
    def test_keys_spread_across_shards(self, tmp_path):
        shards = [LocalDirBackend(tmp_path / f"s{i}") for i in range(3)]
        backend = ShardedBackend(shards)
        for i in range(30):
            publish_blob(backend, "dictionary", key_of(f"spread{i}"),
                         b"x")
        per_shard = [len(list(shard.records())) for shard in shards]
        assert sum(per_shard) == 30
        assert all(count > 0 for count in per_shard), per_shard

    def test_placement_is_deterministic(self, tmp_path):
        backend = ShardedBackend([InMemoryBackend() for _ in range(3)])
        key = key_of("placed")
        owner = backend.shard_for("dictionary", key)
        publish_blob(backend, "dictionary", key, b"x")
        assert owner.has("dictionary", key)

    def test_miss_falls_back_to_full_ring(self, tmp_path):
        """An artifact living on the 'wrong' shard (written before a
        rebalance) is still found and deletable."""
        shards = [InMemoryBackend() for _ in range(3)]
        backend = ShardedBackend(shards)
        key = key_of("misplaced")
        owner = backend.shard_for("dictionary", key)
        stranger = next(s for s in shards if s is not owner)
        publish_blob(stranger, "dictionary", key, b"old-home")
        assert not owner.has("dictionary", key)
        assert backend.has("dictionary", key)
        slot = backend.open("dictionary", key)
        assert (slot / "blob.bin").read_bytes() == b"old-home"
        assert backend.delete("dictionary", key)
        assert not backend.has("dictionary", key)

    def test_delete_clears_stale_copies_everywhere(self, tmp_path):
        shards = [InMemoryBackend() for _ in range(3)]
        backend = ShardedBackend(shards)
        key = key_of("duplicated")
        for shard in shards:           # rebalance left copies behind
            publish_blob(shard, "ga", key, b"copy")
        assert backend.delete("ga", key)
        assert all(not shard.has("ga", key) for shard in shards)

    def test_prune_folds_duplicate_copies_into_one_record(self):
        """Post-rebalance duplicates must not over-evict: deleting one
        logical artifact frees every physical copy, and the byte
        accounting has to reflect that."""
        shards = [InMemoryBackend() for _ in range(2)]
        backend = ShardedBackend(shards)
        dup = key_of("duplicated-old")
        for shard in shards:           # two physical copies, old
            publish_blob(shard, "ga", dup, b"d" * 100)
        time.sleep(0.02)
        fresh = key_of("fresh-hot")
        publish_blob(backend, "ga", fresh, b"f" * 100)
        # Physical usage: 2 x 102 (dup) + 102 (fresh). Evicting the
        # old duplicated artifact alone reaches the bound -- the hot
        # artifact must survive.
        evicted = backend.prune(max_bytes=102)
        assert [(r.kind, r.key) for r in evicted] == [("ga", dup)]
        assert evicted[0].n_bytes == 2 * 102
        assert backend.has("ga", fresh)
        assert backend.disk_usage() == 102

    def test_needs_at_least_one_shard(self):
        with pytest.raises(StoreError):
            ShardedBackend([])


# ----------------------------------------------------------------------
# ArtifactStore over backends
# ----------------------------------------------------------------------
class TestStoreOverBackends:
    def test_exactly_one_of_root_or_backend(self, tmp_path):
        with pytest.raises(StoreError):
            ArtifactStore()
        with pytest.raises(StoreError):
            ArtifactStore(tmp_path, backend=InMemoryBackend())
        assert ArtifactStore(tmp_path).root == tmp_path
        assert ArtifactStore(backend=InMemoryBackend()).root is None

    def test_as_store_coercions(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert as_store(store) is store
        assert as_store(None) is None
        from_path = as_store(tmp_path)
        assert isinstance(from_path.backend, LocalDirBackend)
        backend = InMemoryBackend()
        assert as_store(backend).backend is backend
        with pytest.raises(StoreError):
            as_store(42)

    def test_service_accepts_path_and_backend_stores(self, tmp_path):
        by_path = DiagnosisService(config=legacy_maker.CONFIG,
                                   store=tmp_path / "store", seed=3)
        assert isinstance(by_path.store, ArtifactStore)
        by_backend = DiagnosisService(config=legacy_maker.CONFIG,
                                      store=InMemoryBackend(), seed=3)
        assert isinstance(by_backend.store.backend, InMemoryBackend)

    def test_store_prune_and_disk_usage(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        info = legacy_maker.circuit_info()
        FaultTrajectoryATPG(info, legacy_maker.CONFIG).run(
            seed=5, store=store)
        total = store.disk_usage()
        assert total > 0
        records = list(store.backend.records())
        assert {r.kind for r in records} == {"dictionary", "ga",
                                             "exact", "trajectories"}
        assert sum(r.n_bytes for r in records) == total
        # Keep roughly half: the least recently used artifacts go.
        evicted = store.prune(max_bytes=total // 2)
        assert evicted
        assert store.disk_usage() <= total // 2
        for record in evicted:
            assert not store.has(record.kind, record.key)

    def test_artifact_vanishing_mid_read_degrades_to_miss(
            self, tmp_path):
        """A concurrent prune between open() and the file reads must
        read as a miss (caller recomputes), not crash the load."""
        store = ArtifactStore(tmp_path / "store")
        info = legacy_maker.circuit_info()
        FaultTrajectoryATPG(info, legacy_maker.CONFIG).run(
            seed=5, store=store)
        record = next(r for r in store.backend.records()
                      if r.kind == "dictionary")
        stale_slot = store.backend.open("dictionary", record.key)
        store.backend.delete("dictionary", record.key)
        # Simulate the race: open() handed out a path that a prune
        # then deleted before the loader touched the files.
        store.backend.open = lambda kind, key: stale_slot
        stats_before = store.stats.snapshot()
        assert store.load_dictionary("dictionary",
                                     record.key) is None
        assert store.stats.misses == stats_before["misses"] + 1
        assert store.stats.hits == stats_before["hits"]

    def test_corrupt_artifact_self_heals(self, tmp_path):
        """A corrupt artifact (present but unreadable) must read as a
        miss AND vacate its slot, so the recompute can republish --
        first-writer-wins would otherwise keep the bad copy forever."""
        store = ArtifactStore(tmp_path / "store")
        info = legacy_maker.circuit_info()
        config = legacy_maker.CONFIG
        FaultTrajectoryATPG(info, config).run(seed=5, store=store)
        record = next(r for r in store.backend.records()
                      if r.kind == "dictionary")
        slot = store.backend.open("dictionary", record.key)
        (slot / "dictionary.npz").unlink()   # truncated/corrupt slot
        assert store.load_dictionary("dictionary", record.key) is None
        assert not store.has("dictionary", record.key)
        rerun = FaultTrajectoryATPG(info, config).run(seed=5,
                                                      store=store)
        assert "dictionary" not in rerun.cache_hits
        warm = FaultTrajectoryATPG(info, config).run(seed=5,
                                                     store=store)
        assert "dictionary" in warm.cache_hits

    def test_pruned_artifact_rebuilds_on_next_run(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        info = legacy_maker.circuit_info()
        config = legacy_maker.CONFIG
        FaultTrajectoryATPG(info, config).run(seed=5, store=store)
        store.prune(max_bytes=0)
        rerun = FaultTrajectoryATPG(info, config).run(seed=5,
                                                      store=store)
        assert rerun.cache_hits == ()        # everything was evicted
        warm = FaultTrajectoryATPG(info, config).run(seed=5,
                                                     store=store)
        assert set(warm.cache_hits) == {"dictionary", "ga", "exact",
                                        "trajectories"}


# ----------------------------------------------------------------------
# Byte-compatibility with pre-backend store roots
# ----------------------------------------------------------------------
class TestLegacyStoreCompatibility:
    """``tests/data/legacy_store`` was written by the original
    ArtifactStore (no backend layer). It must stay fully readable."""

    @pytest.fixture()
    def legacy_root(self, tmp_path):
        root = tmp_path / "legacy_store"
        shutil.copytree(legacy_maker.LEGACY_ROOT, root)
        return root

    def test_layout_matches_local_backend(self, legacy_root):
        backend = LocalDirBackend(legacy_root)
        records = list(backend.records())
        assert {r.kind for r in records} == {"dictionary", "ga",
                                             "exact", "trajectories"}
        for record in records:
            slot = legacy_root / record.kind / record.key[:2] / record.key
            assert slot.is_dir()

    def test_legacy_run_loads_all_artifacts(self, legacy_root):
        """Replaying the fixture's pipeline run against the committed
        tree must hit every artifact (same content keys, same bytes)
        and reproduce a fresh run bitwise."""
        store = ArtifactStore(backend=LocalDirBackend(legacy_root))
        info = legacy_maker.circuit_info()
        config = legacy_maker.CONFIG
        warm = FaultTrajectoryATPG(info, config).run(
            seed=legacy_maker.SEED, store=store)
        assert set(warm.cache_hits) == {"dictionary", "ga", "exact",
                                        "trajectories"}, (
            "committed legacy store no longer resolves -- the layout, "
            "content keys or serialisation format changed; see "
            "tests/data/make_legacy_store.py")
        fresh = FaultTrajectoryATPG(info, config).run(
            seed=legacy_maker.SEED)
        assert warm.test_vector_hz == fresh.test_vector_hz
        assert warm.metrics == fresh.metrics
        for a, b in zip(warm.trajectories, fresh.trajectories):
            assert np.array_equal(a.points, b.points)
        point = np.array([0.4, -0.2])
        assert warm.diagnose_point(point) == fresh.diagnose_point(point)

    def test_legacy_store_served_through_sharded_fallback(
            self, tmp_path, legacy_root):
        """A legacy root dropped into a sharded deployment as one of
        the shards stays reachable via the full-ring fallback."""
        backend = ShardedBackend([
            LocalDirBackend(legacy_root),
            LocalDirBackend(tmp_path / "new-shard"),
        ])
        store = ArtifactStore(backend=backend)
        warm = FaultTrajectoryATPG(
            legacy_maker.circuit_info(), legacy_maker.CONFIG).run(
            seed=legacy_maker.SEED, store=store)
        assert set(warm.cache_hits) == {"dictionary", "ga", "exact",
                                        "trajectories"}
