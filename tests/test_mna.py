"""Tests for MNA assembly and solving against hand-computed circuits."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.errors import SimulationError, SingularCircuitError
from repro.sim import MnaSystem
from repro.units import TWO_PI


def solve_dc(circuit):
    return MnaSystem(circuit).solve_at(0.0, excitation="dc")


class TestResistiveNetworks:
    def test_voltage_divider(self):
        ckt = Circuit("div")
        ckt.add_voltage_source("V1", "in", "0", dc=10.0)
        ckt.add_resistor("R1", "in", "out", 6000.0)
        ckt.add_resistor("R2", "out", "0", 4000.0)
        sol = solve_dc(ckt)
        assert sol.node_voltage("out").real == pytest.approx(4.0)
        # Source current: 10V over 10k, flowing out of the + terminal.
        assert sol.branch_current("V1").real == pytest.approx(-1e-3)

    def test_current_source_into_resistor(self):
        ckt = Circuit("cs")
        ckt.add_current_source("I1", "0", "a", dc=2e-3)
        ckt.add_resistor("R1", "a", "0", 1000.0)
        sol = solve_dc(ckt)
        # 2 mA from ground into node a through the source -> +2 V.
        assert sol.node_voltage("a").real == pytest.approx(2.0)

    def test_wheatstone_balanced(self):
        ckt = Circuit("bridge")
        ckt.add_voltage_source("V1", "top", "0", dc=10.0)
        ckt.add_resistor("R1", "top", "l", 1000.0)
        ckt.add_resistor("R2", "l", "0", 1000.0)
        ckt.add_resistor("R3", "top", "r", 2000.0)
        ckt.add_resistor("R4", "r", "0", 2000.0)
        ckt.add_resistor("RB", "l", "r", 500.0)
        sol = solve_dc(ckt)
        assert sol.voltage_between("l", "r").real == pytest.approx(0.0,
                                                                   abs=1e-12)

    def test_voltage_between(self):
        ckt = Circuit("div")
        ckt.add_voltage_source("V1", "in", "0", dc=9.0)
        ckt.add_resistor("R1", "in", "m", 1000.0)
        ckt.add_resistor("R2", "m", "0", 2000.0)
        sol = solve_dc(ckt)
        assert sol.voltage_between("in", "m").real == pytest.approx(3.0)

    def test_node_voltages_includes_ground(self):
        ckt = Circuit("div")
        ckt.add_voltage_source("V1", "in", "0", dc=1.0)
        ckt.add_resistor("R1", "in", "0", 1.0)
        assert solve_dc(ckt).node_voltages()["0"] == 0.0


class TestControlledSources:
    def test_vcvs_gain(self):
        ckt = Circuit("e")
        ckt.add_voltage_source("V1", "a", "0", dc=1.0)
        ckt.add_resistor("R1", "a", "0", 1000.0)
        ckt.add_vcvs("E1", "out", "0", "a", "0", gain=7.5)
        ckt.add_resistor("RL", "out", "0", 1000.0)
        sol = solve_dc(ckt)
        assert sol.node_voltage("out").real == pytest.approx(7.5)

    def test_vccs_into_load(self):
        ckt = Circuit("g")
        ckt.add_voltage_source("V1", "a", "0", dc=2.0)
        ckt.add_resistor("R1", "a", "0", 1000.0)
        # I = gm * V(a) extracted from 'out' node -> V(out) = -gm*V*RL
        ckt.add_vccs("G1", "out", "0", "a", "0", transconductance=1e-3)
        ckt.add_resistor("RL", "out", "0", 500.0)
        sol = solve_dc(ckt)
        assert sol.node_voltage("out").real == pytest.approx(-1.0)

    def test_ccvs_transresistance(self):
        ckt = Circuit("h")
        ckt.add_voltage_source("V1", "a", "0", dc=1.0)
        ckt.add_resistor("R1", "a", "0", 100.0)    # I(V1) = -10 mA
        ckt.add_ccvs("H1", "out", "0", "V1", transresistance=200.0)
        ckt.add_resistor("RL", "out", "0", 1000.0)
        sol = solve_dc(ckt)
        assert sol.node_voltage("out").real == pytest.approx(-2.0)

    def test_cccs_gain(self):
        ckt = Circuit("f")
        ckt.add_voltage_source("V1", "a", "0", dc=1.0)
        ckt.add_resistor("R1", "a", "0", 100.0)    # I(V1) = -10 mA
        ckt.add_cccs("F1", "out", "0", "V1", gain=2.0)
        ckt.add_resistor("RL", "out", "0", 100.0)
        sol = solve_dc(ckt)
        # F extracts 2*I(V1) = -20 mA from 'out' -> V(out) = +2 V.
        assert sol.node_voltage("out").real == pytest.approx(2.0)


class TestOpAmps:
    def test_ideal_inverting_amplifier(self):
        ckt = Circuit("inv")
        ckt.add_voltage_source("V1", "in", "0", dc=0.5)
        ckt.add_resistor("RI", "in", "x", 1000.0)
        ckt.add_resistor("RF", "x", "out", 4700.0)
        ckt.add_ideal_opamp("OA", "0", "x", "out")
        sol = solve_dc(ckt)
        assert sol.node_voltage("out").real == pytest.approx(-2.35)
        assert sol.node_voltage("x").real == pytest.approx(0.0, abs=1e-12)

    def test_ideal_noninverting_amplifier(self):
        ckt = Circuit("noninv")
        ckt.add_voltage_source("V1", "in", "0", dc=1.0)
        ckt.add_resistor("RG", "x", "0", 1000.0)
        ckt.add_resistor("RF", "x", "out", 9000.0)
        ckt.add_ideal_opamp("OA", "in", "x", "out")
        sol = solve_dc(ckt)
        assert sol.node_voltage("out").real == pytest.approx(10.0)

    def test_ideal_follower(self):
        ckt = Circuit("buf")
        ckt.add_voltage_source("V1", "in", "0", dc=3.3)
        ckt.add_ideal_opamp("OA", "in", "out", "out")
        ckt.add_resistor("RL", "out", "0", 1000.0)
        sol = solve_dc(ckt)
        assert sol.node_voltage("out").real == pytest.approx(3.3)

    def test_macro_open_loop_dc_gain(self):
        ckt = Circuit("ol")
        ckt.add_voltage_source("V1", "p", "0", dc=1e-6)
        ckt.add_opamp_macro("OA", "p", "0", "out", a0=1e5)
        ckt.add_resistor("RL", "out", "0", 1e6)
        sol = solve_dc(ckt)
        # Open loop: Vout ~ a0 * Vin (lightly loaded).
        expected = 1e-6 * 1e5 * (1e6 / (1e6 + 75.0))
        assert sol.node_voltage("out").real == pytest.approx(expected,
                                                             rel=1e-6)

    def test_macro_closed_loop_matches_ideal(self):
        def inverting(ideal):
            ckt = Circuit("inv")
            ckt.add_voltage_source("V1", "in", "0", dc=1.0)
            ckt.add_resistor("RI", "in", "x", 1000.0)
            ckt.add_resistor("RF", "x", "out", 10000.0)
            if ideal:
                ckt.add_ideal_opamp("OA", "0", "x", "out")
            else:
                ckt.add_opamp_macro("OA", "0", "x", "out")
            ckt.add_resistor("RL", "out", "0", 10e3)
            return solve_dc(ckt).node_voltage("out").real
        # a0 = 2e5 -> loop-gain error of order 1e-4.
        assert inverting(False) == pytest.approx(inverting(True), rel=1e-3)

    def test_macro_single_pole_rolloff(self):
        ckt = Circuit("pole")
        ckt.add_voltage_source("V1", "p", "0", ac=1.0)
        ckt.add_opamp_macro("OA", "p", "0", "out", a0=1e5, pole_hz=10.0)
        ckt.add_resistor("RL", "out", "0", 1e9)
        system = MnaSystem(ckt)
        gain_dc = abs(system.solve_at(1j * TWO_PI * 0.001).node_voltage(
            "out"))
        gain_pole = abs(system.solve_at(1j * TWO_PI * 10.0).node_voltage(
            "out"))
        gain_decade = abs(system.solve_at(1j * TWO_PI * 100.0).node_voltage(
            "out"))
        assert gain_dc == pytest.approx(1e5, rel=1e-3)
        assert gain_pole == pytest.approx(1e5 / np.sqrt(2.0), rel=1e-3)
        assert gain_decade == pytest.approx(1e4, rel=2e-2)


class TestReactive:
    def test_inductor_is_dc_short(self):
        ckt = Circuit("l")
        ckt.add_voltage_source("V1", "in", "0", dc=1.0)
        ckt.add_inductor("L1", "in", "out", 1e-3)
        ckt.add_resistor("R1", "out", "0", 100.0)
        sol = solve_dc(ckt)
        assert sol.node_voltage("out").real == pytest.approx(1.0)
        assert sol.branch_current("L1").real == pytest.approx(0.01)

    def test_rc_complex_response(self):
        ckt = Circuit("rc")
        ckt.add_voltage_source("V1", "in", "0", ac=1.0)
        ckt.add_resistor("R1", "in", "out", 1000.0)
        ckt.add_capacitor("C1", "out", "0", 1e-6)
        system = MnaSystem(ckt)
        f0 = 1.0 / (TWO_PI * 1000.0 * 1e-6)
        sol = system.solve_at(1j * TWO_PI * f0)
        value = sol.node_voltage("out")
        assert abs(value) == pytest.approx(1.0 / np.sqrt(2.0), rel=1e-9)
        assert np.angle(value) == pytest.approx(-np.pi / 4.0, rel=1e-9)

    def test_lc_resonance(self):
        ckt = Circuit("rlc")
        ckt.add_voltage_source("V1", "in", "0", ac=1.0)
        ckt.add_resistor("R1", "in", "a", 100.0)
        ckt.add_inductor("L1", "a", "out", 1e-3)
        ckt.add_capacitor("C1", "out", "0", 1e-6)
        system = MnaSystem(ckt)
        f_res = 1.0 / (TWO_PI * np.sqrt(1e-3 * 1e-6))
        sol = system.solve_at(1j * TWO_PI * f_res)
        # Series LC at resonance is a short: V(out)=V(in)... the full
        # source voltage appears across the capacitor bottom? No: at
        # resonance L and C impedances cancel, so the divider sees only
        # R1 and |V(out)| = |Z_C|/R1.
        z_c = 1.0 / (TWO_PI * f_res * 1e-6)
        assert abs(sol.node_voltage("out")) == pytest.approx(z_c / 100.0,
                                                             rel=1e-6)


class TestBatchedSolve:
    def test_matches_per_frequency(self, biquad_info):
        system = MnaSystem(biquad_info.circuit)
        freqs = np.logspace(1, 5, 17)
        batch = system.solve_frequencies(freqs)
        for index in (0, 8, 16):
            single = system.solve_at(1j * TWO_PI * freqs[index])
            assert np.allclose(batch[index], single.vector, rtol=1e-9)

    def test_rejects_empty_grid(self, biquad_info):
        system = MnaSystem(biquad_info.circuit)
        with pytest.raises(SimulationError):
            system.solve_frequencies(np.array([]))

    def test_rejects_nonpositive_frequency(self, biquad_info):
        system = MnaSystem(biquad_info.circuit)
        with pytest.raises(SimulationError):
            system.solve_frequencies(np.array([0.0, 10.0]))


class TestSingularities:
    def test_floating_node_detected(self):
        ckt = Circuit("float")
        ckt.add_voltage_source("V1", "in", "0", dc=1.0)
        ckt.add_capacitor("C1", "in", "mid", 1e-9)
        ckt.add_capacitor("C2", "mid", "0", 1e-9)
        with pytest.raises(SingularCircuitError):
            MnaSystem(ckt).solve_at(0.0, excitation="dc")

    def test_gmin_rescues_floating_node(self):
        ckt = Circuit("float")
        ckt.add_voltage_source("V1", "in", "0", dc=1.0)
        ckt.add_capacitor("C1", "in", "mid", 1e-9)
        ckt.add_capacitor("C2", "mid", "0", 1e-9)
        sol = MnaSystem(ckt, gmin=1e-12).solve_at(0.0, excitation="dc")
        assert np.isfinite(sol.node_voltage("mid").real)

    def test_voltage_source_loop_detected(self):
        ckt = Circuit("loop")
        ckt.add_voltage_source("V1", "a", "0", dc=1.0)
        ckt.add_voltage_source("V2", "a", "0", dc=2.0)
        ckt.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(SingularCircuitError):
            MnaSystem(ckt).solve_at(0.0, excitation="dc")

    def test_unknown_node_query(self):
        ckt = Circuit("div")
        ckt.add_voltage_source("V1", "in", "0", dc=1.0)
        ckt.add_resistor("R1", "in", "0", 1.0)
        sol = MnaSystem(ckt).solve_at(0.0, excitation="dc")
        with pytest.raises(SimulationError, match="unknown node"):
            sol.node_voltage("nope")

    def test_unknown_branch_query(self):
        ckt = Circuit("div")
        ckt.add_voltage_source("V1", "in", "0", dc=1.0)
        ckt.add_resistor("R1", "in", "0", 1.0)
        sol = MnaSystem(ckt).solve_at(0.0, excitation="dc")
        with pytest.raises(SimulationError, match="no branch current"):
            sol.branch_current("R1")

    def test_bad_excitation_rejected(self):
        ckt = Circuit("div")
        ckt.add_voltage_source("V1", "in", "0", dc=1.0)
        ckt.add_resistor("R1", "in", "0", 1.0)
        with pytest.raises(SimulationError, match="excitation"):
            MnaSystem(ckt).rhs("foo")
