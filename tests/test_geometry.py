"""Tests for trajectory geometry primitives, incl. property-based ones."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TrajectoryError
from repro.trajectory import (
    count_collinear_overlaps,
    count_segment_crossings,
    crossing_points,
    point_to_segments_distance,
    polyline_arc_length,
    polyline_min_distance,
    project_point_onto_segments,
    segment_crossing_matrix,
)


def seg(*pairs):
    """Build (starts, ends) arrays from ((x0,y0),(x1,y1)) tuples."""
    starts = np.array([p[0] for p in pairs], dtype=float)
    ends = np.array([p[1] for p in pairs], dtype=float)
    return starts, ends


class TestCrossings:
    def test_x_cross(self):
        a = seg(((0, 0), (1, 1)))
        b = seg(((0, 1), (1, 0)))
        assert count_segment_crossings(*a, *b) == 1

    def test_parallel_no_cross(self):
        a = seg(((0, 0), (1, 0)))
        b = seg(((0, 1), (1, 1)))
        assert count_segment_crossings(*a, *b) == 0

    def test_shared_endpoint_not_a_crossing(self):
        """Trajectories emanating from the origin touch there; the
        strict test must not count that contact."""
        a = seg(((0, 0), (1, 1)))
        b = seg(((0, 0), (1, -1)))
        assert count_segment_crossings(*a, *b) == 0

    def test_t_touch_not_a_crossing(self):
        # b's endpoint lies on a's interior: not a proper crossing.
        a = seg(((0, 0), (2, 0)))
        b = seg(((1, 0), (1, 1)))
        assert count_segment_crossings(*a, *b) == 0

    def test_collinear_overlap_not_a_crossing(self):
        a = seg(((0, 0), (2, 0)))
        b = seg(((1, 0), (3, 0)))
        assert count_segment_crossings(*a, *b) == 0

    def test_multiple_crossings_counted(self):
        # A zig-zag crossing a horizontal line twice.
        a = seg(((0, 0), (2, 0)))
        b = seg(((0.2, -1), (0.8, 1)), ((0.8, 1), (1.4, -1)))
        assert count_segment_crossings(*a, *b) == 2

    def test_matrix_shape_and_symmetry(self):
        a = seg(((0, 0), (1, 1)), ((1, 1), (2, 0)))
        b = seg(((0, 1), (1, 0)), ((0, 0.5), (2, 0.5)))
        matrix = segment_crossing_matrix(*a, *b)
        assert matrix.shape == (2, 2)
        transposed = segment_crossing_matrix(*b, *a)
        assert np.array_equal(matrix, transposed.T)

    def test_crossing_points_location(self):
        a = seg(((0, 0), (2, 2)))
        b = seg(((0, 2), (2, 0)))
        points = crossing_points(*a, *b)
        assert points.shape == (1, 2)
        assert np.allclose(points[0], [1.0, 1.0])

    def test_no_crossing_points_empty(self):
        a = seg(((0, 0), (1, 0)))
        b = seg(((0, 1), (1, 1)))
        assert crossing_points(*a, *b).shape == (0, 2)

    def test_dimension_checked(self):
        with pytest.raises(TrajectoryError):
            count_segment_crossings(np.zeros((1, 3)), np.ones((1, 3)),
                                    np.zeros((1, 3)), np.ones((1, 3)))

    @given(st.floats(-5, 5), st.floats(-5, 5), st.floats(0.1, 5))
    @settings(max_examples=50)
    def test_translation_invariance(self, dx, dy, scale):
        """Crossing count is invariant under translation and scaling."""
        a = seg(((0, 0), (1, 1)))
        b = seg(((0, 1), (1, 0)))
        offset = np.array([dx, dy])
        a2 = (a[0] * scale + offset, a[1] * scale + offset)
        b2 = (b[0] * scale + offset, b[1] * scale + offset)
        assert count_segment_crossings(*a2, *b2) == 1


class TestOverlaps:
    def test_partial_overlap(self):
        a = seg(((0, 0), (2, 0)))
        b = seg(((1, 0), (3, 0)))
        assert count_collinear_overlaps(*a, *b) == 1

    def test_identical_segments(self):
        a = seg(((0, 0), (1, 1)))
        assert count_collinear_overlaps(*a, *a) == 1

    def test_collinear_but_disjoint(self):
        a = seg(((0, 0), (1, 0)))
        b = seg(((2, 0), (3, 0)))
        assert count_collinear_overlaps(*a, *b) == 0

    def test_collinear_touching_at_point(self):
        a = seg(((0, 0), (1, 0)))
        b = seg(((1, 0), (2, 0)))
        assert count_collinear_overlaps(*a, *b) == 0

    def test_crossing_segments_not_overlap(self):
        a = seg(((0, 0), (1, 1)))
        b = seg(((0, 1), (1, 0)))
        assert count_collinear_overlaps(*a, *b) == 0


class TestProjection:
    def test_interior_foot(self):
        starts = np.array([[0.0, 0.0]])
        ends = np.array([[2.0, 0.0]])
        distances, t, interior = project_point_onto_segments(
            np.array([1.0, 1.0]), starts, ends)
        assert distances[0] == pytest.approx(1.0)
        assert t[0] == pytest.approx(0.5)
        assert interior[0]

    def test_beyond_end_clamps(self):
        starts = np.array([[0.0, 0.0]])
        ends = np.array([[1.0, 0.0]])
        distances, t, interior = project_point_onto_segments(
            np.array([3.0, 0.0]), starts, ends)
        assert distances[0] == pytest.approx(2.0)
        assert t[0] == pytest.approx(1.0)
        assert not interior[0]

    def test_before_start_clamps(self):
        starts = np.array([[0.0, 0.0]])
        ends = np.array([[1.0, 0.0]])
        distances, t, interior = project_point_onto_segments(
            np.array([-2.0, 0.0]), starts, ends)
        assert distances[0] == pytest.approx(2.0)
        assert t[0] == pytest.approx(0.0)
        assert not interior[0]

    def test_degenerate_zero_length_segment(self):
        starts = np.array([[1.0, 1.0]])
        ends = np.array([[1.0, 1.0]])
        distances, t, interior = project_point_onto_segments(
            np.array([4.0, 5.0]), starts, ends)
        assert distances[0] == pytest.approx(5.0)
        assert not interior[0]

    def test_works_in_3d(self):
        starts = np.array([[0.0, 0.0, 0.0]])
        ends = np.array([[0.0, 0.0, 2.0]])
        distances, t, interior = project_point_onto_segments(
            np.array([1.0, 0.0, 1.0]), starts, ends)
        assert distances[0] == pytest.approx(1.0)
        assert interior[0]

    def test_dimension_mismatch(self):
        with pytest.raises(TrajectoryError):
            project_point_onto_segments(np.array([1.0, 2.0, 3.0]),
                                        np.zeros((2, 2)),
                                        np.ones((2, 2)))

    @given(st.lists(st.floats(-10, 10), min_size=2, max_size=2),
           st.lists(st.floats(-10, 10), min_size=2, max_size=2),
           st.lists(st.floats(-10, 10), min_size=2, max_size=2))
    @settings(max_examples=80)
    def test_distance_bounded_by_endpoints(self, p, a, b):
        """Distance to a segment never exceeds the distance to either
        endpoint (property of the closest-point projection)."""
        point = np.array(p)
        starts = np.array([a])
        ends = np.array([b])
        distance = point_to_segments_distance(point, starts, ends)[0]
        to_start = np.linalg.norm(point - starts[0])
        to_end = np.linalg.norm(point - ends[0])
        assert distance <= min(to_start, to_end) + 1e-9

    @given(st.lists(st.floats(-10, 10), min_size=2, max_size=2),
           st.lists(st.floats(-10, 10), min_size=2, max_size=2),
           st.floats(0.0, 1.0))
    @settings(max_examples=80)
    def test_point_on_segment_has_zero_distance(self, a, b, t):
        starts = np.array([a])
        ends = np.array([b])
        point = starts[0] + t * (ends[0] - starts[0])
        distance = point_to_segments_distance(point, starts, ends)[0]
        direction = ends[0] - starts[0]
        length_sq = float(np.dot(direction, direction))
        if length_sq <= 1e-12:
            # Below the degeneracy threshold (geometry._EPS, gated on
            # the squared length exactly as here) the segment is
            # treated as a point at its start, so the distance can be
            # as large as the segment itself.
            assert distance <= np.sqrt(length_sq) + 1e-12
        else:
            scale = max(np.sqrt(length_sq), 1.0)
            assert distance <= 1e-9 * scale + 1e-12


class TestPolylines:
    def test_arc_length(self):
        poly = np.array([[0, 0], [3, 4], [3, 8]], dtype=float)
        assert polyline_arc_length(poly) == pytest.approx(9.0)

    def test_arc_length_single_point(self):
        assert polyline_arc_length(np.array([[1.0, 2.0]])) == 0.0

    def test_min_distance_parallel_lines(self):
        a = np.array([[0, 0], [1, 0], [2, 0]], dtype=float)
        b = a + np.array([0.0, 0.5])
        assert polyline_min_distance(a, b) == pytest.approx(0.5)

    def test_min_distance_crossing_is_small(self):
        a = np.array([[0, 0], [2, 2]], dtype=float)
        b = np.array([[0, 2], [2, 0]], dtype=float)
        # Vertex-to-segment approximation: equals sqrt(2) here (every
        # vertex sits sqrt(2) away from the other diagonal).
        assert polyline_min_distance(a, b) == pytest.approx(np.sqrt(2.0))

    def test_skip_masks_shared_origin(self):
        a = np.array([[-1, -1], [0, 0], [1, 1]], dtype=float)
        b = np.array([[-1, 1], [0, 0], [1, -1]], dtype=float)
        touching = polyline_min_distance(a, b)
        assert touching == pytest.approx(0.0, abs=1e-12)
        skip_a = np.array([False, True, False])
        skip_b = np.array([False, True, False])
        masked = polyline_min_distance(a, b, skip_a=skip_a,
                                       skip_b=skip_b)
        assert masked > 0.0

    def test_too_short_polyline_rejected(self):
        with pytest.raises(TrajectoryError):
            polyline_min_distance(np.array([[0.0, 0.0]]),
                                  np.array([[1, 1], [2, 2]], dtype=float))
