"""T-PERF -- simulation substrate performance.

Times the three hot substrate operations as the circuit grows (RC
ladders of 10..200 sections): MNA assembly, a batched 401-point AC
sweep, and a full fault-dictionary build on the biquad CUT. These bound
the cost of everything above them (dictionary, GA, diagnosis).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import rc_ladder
from repro.faults import FaultDictionary, parametric_universe
from repro.sim import ACAnalysis, MnaSystem
from repro.units import log_frequency_grid

from _helpers import write_report


@pytest.mark.parametrize("sections", [10, 50, 100, 200])
def bench_tperf_ac_sweep(benchmark, sections):
    info = rc_ladder(sections=sections)
    grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 401)
    analysis = ACAnalysis(info.circuit)

    response = benchmark(
        lambda: analysis.transfer(info.output_node, grid))
    assert np.all(np.isfinite(response.magnitude_db))


@pytest.mark.parametrize("sections", [10, 100])
def bench_tperf_mna_assembly(benchmark, sections):
    info = rc_ladder(sections=sections)
    system = benchmark(lambda: MnaSystem(info.circuit))
    # n node unknowns + 1 source branch.
    assert system.dim == sections + 2


def bench_tperf_biquad_dictionary(benchmark, cut, cut_universe):
    grid = log_frequency_grid(cut.f_min_hz, cut.f_max_hz, 401)
    dictionary = benchmark(
        lambda: FaultDictionary.build(cut_universe, cut.output_node,
                                      grid,
                                      input_source=cut.input_source))
    assert len(dictionary) == 56


def bench_tperf_summary(benchmark, out_dir):
    """Record the scaling table (solve time vs unknowns) once."""
    import time

    def measure():
        rows = []
        for sections in (10, 50, 100, 200):
            info = rc_ladder(sections=sections)
            grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 401)
            analysis = ACAnalysis(info.circuit)
            started = time.perf_counter()
            analysis.transfer(info.output_node, grid)
            elapsed = time.perf_counter() - started
            rows.append([sections, analysis.system.dim,
                         elapsed * 1e3])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    from repro.viz import table, write_csv
    headers = ["ladder sections", "MNA unknowns", "401-pt sweep [ms]"]
    formatted = [[r[0], r[1], f"{r[2]:.1f}"] for r in rows]
    write_csv(out_dir / "tperf.csv", headers, rows)
    text = "\n".join(["T-PERF: AC sweep scaling (dense batched solve)",
                      "", table(headers, formatted)])
    write_report(out_dir, "tperf_report.txt", text)