"""T-SERVING -- async coalescing front vs sequential submit throughput.

Drives the serving stack the way an online diagnoser sees traffic:
``CONCURRENCY`` clients each issuing a stream of single-row diagnosis
requests for warmed circuits, and compares

* **sequential** -- the same request stream answered one
  ``DiagnosisService.submit`` call at a time (the pre-serving-layer
  deployment shape), against
* **coalesced** -- :class:`AsyncDiagnosisService` micro-batching the
  concurrent requests into single ``classify_points`` calls
  (``max_batch`` = concurrency, 1 ms window).

Before any timing is trusted, the harness asserts the coalesced results
are **bitwise-identical** to sequential submits for a mixed
multi-circuit request set. The report lands in ``BENCH_serving.json``
with per-mode throughput, the coalesced batch-size histogram and
p50/p95 request latency from :class:`ServiceStats`.

Run standalone (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick] [--check]

``--quick`` shrinks the stream for the CI smoke job; ``--check``
validates the emitted JSON structure and (in full mode) enforces the
headline criterion: coalesced throughput >= 2x sequential at
concurrency 16.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

from repro import (
    AsyncDiagnosisService,
    DiagnosisService,
    PipelineConfig,
    ServiceStats,
)
from repro.ga import GAConfig

from _helpers import check_environment, environment_info
from _helpers import noisy_golden_rows as request_rows

SEED = 2005
CONCURRENCY = 16

CIRCUITS = ("rc_lowpass", "voltage_divider", "sallen_key_lowpass")

CONFIG = PipelineConfig(dictionary_points=48,
                        deviations=(-0.3, -0.15, 0.15, 0.3),
                        ga=GAConfig(population_size=10, generations=3))

REQUIRED_KEYS = {
    "sequential": ("requests", "seconds", "requests_per_second"),
    "coalesced": ("requests", "seconds", "requests_per_second",
                  "batches", "batch_size_histogram",
                  "latency_p50_ms", "latency_p95_ms"),
}

SCENARIOS = ("hot_circuit", "multi_circuit")


def build_service() -> DiagnosisService:
    service = DiagnosisService(config=CONFIG, max_engines=8, seed=SEED)
    for name in CIRCUITS:
        service.warm(name)
    return service


def assert_equivalence(service: DiagnosisService) -> None:
    """Coalesced answers must match sequential submits bitwise."""
    requests = []
    for index, circuit in enumerate(CIRCUITS):
        rows = request_rows(service, circuit, 6, seed=SEED + index)
        requests.extend((circuit, rows[i:i + 1]) for i in range(6))
        requests.append((circuit, rows))          # one multi-row request
    sequential = [service.submit(circuit, rows)
                  for circuit, rows in requests]

    async def coalesced():
        front = AsyncDiagnosisService(service, window_seconds=0.005,
                                      max_batch=CONCURRENCY)
        results = await asyncio.gather(
            *(front.submit(circuit, rows) for circuit, rows in requests))
        await front.aclose()
        return results

    assert asyncio.run(coalesced()) == sequential, \
        "coalesced results diverge from sequential submit"


def bench_sequential(service: DiagnosisService, stream) -> dict:
    started = time.perf_counter()
    for circuit, rows in stream:
        service.submit(circuit, rows)
    elapsed = time.perf_counter() - started
    return {"requests": len(stream), "seconds": elapsed,
            "requests_per_second": len(stream) / elapsed}


def bench_coalesced(service: DiagnosisService, stream,
                    concurrency: int) -> dict:
    """The same stream, split over ``concurrency`` async clients."""
    shards = [stream[index::concurrency] for index in range(concurrency)]
    # Fresh stats so the reported percentiles/histogram measure this
    # coalesced run only, not warm-up or sequential-mode latencies
    # still sitting in the rolling reservoir.
    service.stats = ServiceStats()

    async def run_clients():
        front = AsyncDiagnosisService(service, window_seconds=0.001,
                                      max_batch=concurrency)

        async def client(shard):
            for circuit, rows in shard:
                await front.submit(circuit, rows)

        started = time.perf_counter()
        await asyncio.gather(*(client(shard) for shard in shards))
        elapsed = time.perf_counter() - started
        await front.aclose()
        return elapsed

    elapsed = asyncio.run(run_clients())
    after = service.stats.snapshot()
    return {
        "requests": len(stream),
        "seconds": elapsed,
        "requests_per_second": len(stream) / elapsed,
        "batches": after["coalesced_batches"],
        "batch_size_histogram": {
            str(bucket): count for bucket, count
            in after["batch_size_histogram"].items() if count},
        "latency_p50_ms": after["latency_p50_seconds"] * 1e3,
        "latency_p95_ms": after["latency_p95_seconds"] * 1e3,
        "peak_queue_depth": after["peak_queue_depth"],
    }


def make_stream(service: DiagnosisService, total: int,
                scenario: str) -> list:
    """Single-row request streams for the two traffic shapes."""
    stream = []
    for index in range(total):
        if scenario == "hot_circuit":
            circuit = CIRCUITS[0]
        else:
            circuit = CIRCUITS[index % len(CIRCUITS)]
        stream.append((circuit,
                       request_rows(service, circuit, 1, seed=index)))
    return stream


def bench_scenario(service: DiagnosisService, scenario: str,
                   per_client: int) -> dict:
    stream = make_stream(service, per_client * CONCURRENCY, scenario)
    # Interleave a warm-up pass so neither mode pays first-touch costs.
    bench_sequential(service, stream[:CONCURRENCY * 4])
    sequential = bench_sequential(service, stream)
    coalesced = bench_coalesced(service, stream, CONCURRENCY)
    return {
        "sequential": sequential,
        "coalesced": coalesced,
        "speedup": coalesced["requests_per_second"] /
        sequential["requests_per_second"],
    }


def run(quick: bool) -> dict:
    service = build_service()
    assert_equivalence(service)

    per_client = 40 if quick else 250
    scenarios = {scenario: bench_scenario(service, scenario, per_client)
                 for scenario in SCENARIOS}
    hot = scenarios["hot_circuit"]
    return {
        "benchmark": "T-SERVING",
        "quick": quick,
        "environment": environment_info(),
        "circuits": list(CIRCUITS),
        "concurrency": CONCURRENCY,
        "scenarios": scenarios,
        "sequential": hot["sequential"],
        "coalesced": hot["coalesced"],
        "coalesced_speedup": hot["speedup"],
        "notes": (
            "Coalesced results asserted bitwise-equal to sequential "
            "DiagnosisService.submit before timing. Streams are "
            f"single-row requests from {CONCURRENCY} concurrent "
            "clients; the async front micro-batches them into classify "
            "calls of up to 'concurrency' rows. 'hot_circuit' (the "
            "headline, mirrored at the top level) keeps every client "
            "on one circuit -- the coalescer's design point; "
            f"'multi_circuit' round-robins {len(CIRCUITS)} circuits, "
            "fragmenting each flush across per-circuit queues, so its "
            "speedup is lower."),
    }


def check(report: dict, quick: bool) -> None:
    """Validate the report structure (the CI smoke contract)."""
    check_environment(report, "BENCH_serving.json")
    for key, fields in REQUIRED_KEYS.items():
        section = report[key]
        for field in fields:
            if field not in section:
                raise SystemExit(f"BENCH_serving.json missing "
                                 f"{key}.{field}")
    for mode in ("sequential", "coalesced"):
        rps = report[mode]["requests_per_second"]
        if not (isinstance(rps, float) and rps > 0.0):
            raise SystemExit(
                f"BENCH_serving.json has bad {mode} throughput: {rps!r}")
    for scenario in SCENARIOS:
        if scenario not in report["scenarios"]:
            raise SystemExit(f"BENCH_serving.json missing scenario "
                             f"{scenario}")
        if report["scenarios"][scenario]["coalesced"]["batches"] < 1:
            raise SystemExit(f"{scenario}: coalesced mode never batched")
    speedup = report["coalesced_speedup"]
    floor = 1.0 if quick else 2.0
    if speedup < floor:
        raise SystemExit(
            f"coalesced speedup {speedup:.2f}x below the {floor:.1f}x "
            f"floor at concurrency {report['concurrency']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny stream (CI smoke mode)")
    parser.add_argument("--check", action="store_true",
                        help="validate the emitted JSON structure")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent / "out" /
                        "BENCH_serving.json")
    args = parser.parse_args(argv)

    report = run(quick=args.quick)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for scenario, result in report["scenarios"].items():
        sequential = result["sequential"]
        coalesced = result["coalesced"]
        print(f"[{scenario}] sequential: {sequential['requests']} "
              f"requests in {sequential['seconds']:.2f} s "
              f"({sequential['requests_per_second']:.0f} rps)")
        print(f"[{scenario}] coalesced ({report['concurrency']} "
              f"clients): {coalesced['requests_per_second']:.0f} rps, "
              f"{coalesced['batches']} batches, "
              f"p50 {coalesced['latency_p50_ms']:.2f} ms, "
              f"p95 {coalesced['latency_p95_ms']:.2f} ms "
              f"-> {result['speedup']:.2f}x")
    print(f"headline (hot_circuit) speedup: "
          f"{report['coalesced_speedup']:.2f}x")
    print(f"wrote {args.out}")
    if args.check:
        check(report, quick=args.quick)
        print("structure check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
