"""FIG1 -- paper Fig. 1: "golden behaviour & fault dictionary items".

Regenerates the family of AC magnitude responses of the biquad CUT with
one component (R3, as in the paper's Fig. 3 narrative) swept over the
60 %-140 % fault grid, the golden curve among them. The benchmark times
the full fault-dictionary construction (56 faulty circuits x 401
frequencies), the substrate operation behind the figure.

Expected shape (DESIGN.md): a family of low-pass curves fanning around
the golden one, separating most near the pole frequency.
"""

from __future__ import annotations

import numpy as np

from repro.faults import FaultDictionary
from repro.sim import deviation_sweep
from repro.units import log_frequency_grid
from repro.viz import line_plot, response_family_csv

from _helpers import write_report


def bench_fig1_dictionary_build(benchmark, cut, cut_universe):
    """Time: full fault simulation of the paper's universe."""
    grid = log_frequency_grid(cut.f_min_hz, cut.f_max_hz, 401)

    def build():
        return FaultDictionary.build(cut_universe, cut.output_node, grid,
                                     input_source=cut.input_source)

    dictionary = benchmark(build)
    assert len(dictionary) == 56


def bench_fig1_report(benchmark, cut, cut_dictionary, out_dir):
    """Regenerate Fig. 1's data and verify its qualitative shape."""
    grid = cut_dictionary.freqs_hz
    deviations = [-0.4, -0.2, 0.2, 0.4]
    sweep = benchmark.pedantic(
        lambda: deviation_sweep(cut.circuit, cut.output_node, "R3",
                                deviations, grid),
        rounds=1, iterations=1)

    series = {"golden": sweep.nominal.magnitude_db}
    responses = {"golden": sweep.nominal}
    for deviation, response in zip(sweep.parameter_values,
                                   sweep.responses):
        label = f"R3{deviation * 100:+.0f}%"
        series[label] = response.magnitude_db
        responses[label] = response

    response_family_csv(out_dir / "fig1_fault_dictionary.csv", responses)
    plot = line_plot(grid, series,
                     title="FIG1: golden behaviour & fault dictionary "
                           "items (R3 swept 60%..140%)")

    # --- Shape checks -------------------------------------------------
    # H(0) = R3/R1 and w0^2 = 1/(R3 R4 C1 C2): the R3 family separates
    # at DC by exactly 20 log10(1.4/0.6) and fans out further near f0,
    # while far above f0 the response ~ 1/(R1 R4 C1 C2 w^2) no longer
    # depends on R3 at all -- the curves re-converge.
    spread = sweep.spread_db()
    peak_region = (grid > 300.0) & (grid < 3000.0)
    high_region = (grid > 2e4) & (grid < 1e5)
    dc_expected = 20.0 * np.log10(1.4 / 0.6)
    lines = [plot, ""]
    lines.append(f"family spread at DC: {spread[0]:.2f} dB "
                 f"(theory {dc_expected:.2f} dB)")
    lines.append(f"max family spread:   {spread.max():.2f} dB at "
                 f"{grid[int(np.argmax(spread))]:.0f} Hz")
    lines.append(f"spread at 20k-100k:  {spread[high_region].max():.2f} "
                 "dB (R3 cancels out of the high-frequency asymptote)")
    assert abs(spread[0] - dc_expected) < 0.2
    # The fan persists through the passband (> 90 % of the DC spread
    # survives at the pole) ...
    assert spread[peak_region].max() > 0.9 * dc_expected
    # ... and collapses in the stopband where R3 drops out of the
    # asymptote 1/(R1 R4 C1 C2 w^2).
    assert spread[high_region].max() < 1.0
    lines.append("shape check PASSED: curves fan out through the "
                 "passband and re-converge in the stopband")
    write_report(out_dir, "fig1_report.txt", "\n".join(lines))
