"""T-ABL -- ablation of the design choices DESIGN.md calls out.

Dimensions ablated (3 seeds each, reduced GA budget, accuracy accounted
at the CUT's structural classes {R1} {R2} {C1} {R3,R5} {R4,C2}):

* **fitness** -- paper 1/(1+I) vs margin vs combined. The paper fitness
  plateaus at 1.0 once trajectories are conflict-free, so it cannot
  prefer a *robust* conflict-free vector.
* **fault-target set** -- full 7-component universe vs one
  representative per structural class (the degenerate pairs R3/R5 and
  R4/C2 otherwise pin the margin at ~0 and starve the search signal).
* **selection** -- roulette (paper) vs tournament vs rank.
* **signature scale** -- dB vs linear magnitude mapping.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.ga import (
    CombinedFitness,
    FrequencySpace,
    GAConfig,
    GeneticAlgorithm,
    MarginFitness,
    PaperFitness,
)
from repro.trajectory import SignatureMapper
from repro.viz import table, write_csv

from _helpers import score_test_vector, write_report

NOISE_DB = 0.02
SEEDS = (0, 1, 2)
GA_BUDGET = GAConfig(population_size=64, generations=10)

STRUCTURAL_GROUPS = (frozenset({"R1"}), frozenset({"R2"}),
                     frozenset({"C1"}), frozenset({"R3", "R5"}),
                     frozenset({"R4", "C2"}))
CLASS_REPRESENTATIVES = ("R1", "R2", "C1", "R3", "R4")


def _make_fitness(kind, surface, components, scale="db"):
    mapper = SignatureMapper((1.0, 2.0), scale=scale)
    margin_scale = 0.1 if components else 0.01
    if kind == "paper":
        return PaperFitness(surface, mapper, components=components)
    if kind == "margin":
        return MarginFitness(surface, mapper, components=components,
                             margin_scale=margin_scale)
    return CombinedFitness(surface, mapper, components=components,
                           margin_scale=margin_scale)


def _run_variant(cut, cut_universe, cut_surface, kind,
                 selection="roulette", components=None, scale="db",
                 noise_db=NOISE_DB):
    """Mean (noisy class accuracy, margin) over the ablation seeds."""
    space = FrequencySpace(cut.f_min_hz, cut.f_max_hz, 2)
    config = dataclasses.replace(GA_BUDGET, selection=selection)
    class_accuracy = []
    margins = []
    for seed in SEEDS:
        fitness = _make_fitness(kind, cut_surface, components, scale)
        result = GeneticAlgorithm(space, fitness, config).run(seed=seed)
        evaluation = score_test_vector(
            cut, cut_universe, result.best_freqs_hz, noise_db=noise_db,
            repeats=3 if noise_db > 0 else 1, seed=seed, scale=scale,
            groups=STRUCTURAL_GROUPS)
        class_accuracy.append(evaluation.group_accuracy)
        margins.append(
            fitness.metrics_for(result.best_freqs_hz).min_separation)
    return float(np.mean(class_accuracy)), float(np.mean(margins))


def bench_tabl_fitness_and_targets(benchmark, cut, cut_universe,
                                   cut_surface, out_dir):
    variants = [
        ("paper", None),
        ("margin", None),
        ("combined", None),
        ("paper", CLASS_REPRESENTATIVES),
        ("margin", CLASS_REPRESENTATIVES),
        ("combined", CLASS_REPRESENTATIVES),
    ]

    def run_all():
        rows = []
        for kind, components in variants:
            accuracy, margin = _run_variant(cut, cut_universe,
                                            cut_surface, kind,
                                            components=components)
            target = "class reps" if components else "full universe"
            rows.append([kind, target, accuracy, margin])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    headers = ["fitness", "targets", "noisy class acc",
               "search margin [dB]"]
    formatted = [[r[0], r[1], f"{r[2] * 100:.1f}%", f"{r[3]:.4f}"]
                 for r in rows]
    write_csv(out_dir / "tabl_fitness.csv", headers, rows)
    lines = [
        f"T-ABL: fitness / fault-target ablation (3 seeds each, "
        f"{GA_BUDGET.population_size}x{GA_BUDGET.generations} GA, "
        f"noise {NOISE_DB} dB, structural-class accuracy)", "",
        table(headers, formatted), "",
    ]

    # --- Shape checks -------------------------------------------------
    score_of = {(r[0], r[1]): r[2] for r in rows}
    margin_of = {(r[0], r[1]): r[3] for r in rows}
    best_full = max(score_of[(k, "full universe")]
                    for k in ("paper", "margin", "combined"))
    best_reps = max(score_of[(k, "class reps")]
                    for k in ("margin", "combined"))
    assert best_reps >= best_full - 1e-9, \
        "class-aware search must not lose to the degeneracy-starved one"
    assert margin_of[("margin", "class reps")] > \
        margin_of[("paper", "full universe")], \
        "margin fitness over representatives must open a real margin"
    lines.append(
        "shape check PASSED: optimising over class representatives "
        "opens real margins; the paper fitness's plateau leaves them "
        "on the table")
    write_report(out_dir, "tabl_report.txt", "\n".join(lines))


def bench_tabl_selection(benchmark, cut, cut_universe, cut_surface,
                         out_dir):
    """Selection-operator ablation, paper fitness (cheap fast path)."""

    def run_all():
        rows = []
        for selection in ("roulette", "tournament", "rank"):
            accuracy, margin = _run_variant(cut, cut_universe,
                                            cut_surface, "paper",
                                            selection=selection)
            rows.append([selection, accuracy, margin])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    headers = ["selection", "noisy class acc", "search margin [dB]"]
    formatted = [[r[0], f"{r[1] * 100:.1f}%", f"{r[2]:.4f}"]
                 for r in rows]
    write_csv(out_dir / "tabl_selection.csv", headers, rows)
    text = "\n".join([
        "T-ABL: selection-operator ablation (paper fitness)", "",
        table(headers, formatted), "",
        "note: with the plateaued paper fitness the selection operator "
        "barely matters -- every conflict-free vector looks identical "
        "to the search.",
    ])
    write_report(out_dir, "tabl_selection_report.txt", text)


def bench_tabl_signature_scale(benchmark, cut, cut_universe, cut_surface,
                               out_dir):
    """dB vs linear signature mapping, combined fitness over class
    representatives, clean evaluation (noise semantics differ between
    the scales, so noisy numbers would not be comparable)."""

    def run_both():
        rows = []
        for scale in ("db", "linear"):
            accuracy, margin = _run_variant(
                cut, cut_universe, cut_surface, "combined",
                components=CLASS_REPRESENTATIVES, scale=scale,
                noise_db=0.0)
            rows.append([scale, accuracy, margin])
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    headers = ["signature scale", "clean class acc", "search margin"]
    formatted = [[r[0], f"{r[1] * 100:.1f}%", f"{r[2]:.4f}"]
                 for r in rows]
    write_csv(out_dir / "tabl_scale.csv", headers, rows)
    text = "\n".join([
        "T-ABL: signature scale ablation (combined fitness, class "
        "representatives)", "",
        table(headers, formatted),
    ])
    for row in rows:
        assert row[1] > 0.9, f"{row[0]} scale collapsed"
    write_report(out_dir, "tabl_scale_report.txt", text)