"""T-ACC -- diagnosis accuracy: GA test vector vs the baselines.

Compares, on held-out deviations (+/-15/25/35 %, clean and with 0.02 dB
measurement noise):

* **GA (paper fitness)** -- the paper's flow verbatim: 1/(1+I) fitness,
  roulette GA, perpendicular nearest-segment classifier;
* **GA (combined fitness)** -- the margin-aware extension (DESIGN.md
  decision 4);
* **dictionary-NN** -- classical fault-dictionary nearest-point matching
  on the *same* test vector (no trajectory interpolation);
* **random vectors** -- no optimisation, averaged over 3 draws;
* **sensitivity-ranked** -- deterministic frequency picking (no GA);
* **exhaustive grid** -- brute-force fitness scan (the "frequency sweep"
  approach the paper calls unfeasible), with its evaluation count.

Accuracy is accounted at the CUT's *structural class* level: on the
Tow-Thomas biquad R3/R5 enter the ideal transfer function only through
R3*(R5/R6) and R4/C2 only through the product R4*C2, so magnitude
signatures cannot split those pairs -- {R3,R5} and {R4,C2} are the
finest honest diagnosis unit (DESIGN.md, substitutions table). Raw
component accuracy is reported alongside.

Expected shapes: every vector separates the 5 structural classes on
clean data; the margin-aware GA stays robust under noise where the
paper fitness's 1.0-plateau lets fragile vectors through (the T-ABL
ablation quantifies the fix); the trajectory classifier beats NN on
deviation estimation (NN snaps to the +/-10 % grid).
"""

from __future__ import annotations

import numpy as np

from repro.diagnosis import NearestNeighborClassifier, exhaustive_search, \
    random_test_vectors
from repro.faults import FaultDictionary
from repro.ga import CombinedFitness, FrequencySpace, GAConfig, \
    GeneticAlgorithm, PaperFitness
from repro.sim import rank_frequencies, sensitivity_analysis
from repro.trajectory import SignatureMapper
from repro.units import log_frequency_grid
from repro.viz import table, write_csv

from _helpers import HELD_OUT, SEED, build_exact_classifier, \
    score_test_vector, write_report

NOISE_DB = 0.02

# Structural ambiguity classes of the biquad CUT (exact for ideal
# op-amps, near-exact for the uA741-class macromodels in the passband).
STRUCTURAL_GROUPS = (frozenset({"R1"}), frozenset({"R2"}),
                     frozenset({"C1"}), frozenset({"R3", "R5"}),
                     frozenset({"R4", "C2"}))

# One representative component per structural class: the class-aware GA
# optimises the separation of what is physically separable instead of
# chasing the unreachable R3/R5 and R4/C2 splits.
CLASS_REPRESENTATIVES = ("R1", "R2", "C1", "R3", "R4")


def bench_tacc_comparison(benchmark, cut, cut_universe, cut_surface,
                          paper_pipeline_result, out_dir):
    space = FrequencySpace(cut.f_min_hz, cut.f_max_hz, 2)

    def evaluate_all():
        rows = []

        def add_row(method, freqs, evaluations, classifier=None,
                    mapper=None):
            clean = score_test_vector(cut, cut_universe, freqs,
                                      classifier=classifier,
                                      mapper=mapper,
                                      groups=STRUCTURAL_GROUPS)
            noisy = score_test_vector(cut, cut_universe, freqs,
                                      noise_db=NOISE_DB, repeats=3,
                                      seed=SEED, classifier=classifier,
                                      mapper=mapper,
                                      groups=STRUCTURAL_GROUPS)
            rows.append([
                method,
                f"{freqs[0]:.0f}/{freqs[1]:.0f}",
                evaluations,
                clean.accuracy, clean.group_accuracy,
                noisy.accuracy, noisy.group_accuracy,
                clean.deviation_mae(),
            ])

        # 1. The paper's GA flow, verbatim.
        ga_freqs = paper_pipeline_result.test_vector_hz
        add_row("GA paper fitness", ga_freqs,
                paper_pipeline_result.ga_result.evaluations)

        # 2. Class-aware margin GA (extension): combined fitness over
        # one representative per structural class.
        combined = CombinedFitness(cut_surface,
                                   components=CLASS_REPRESENTATIVES,
                                   margin_scale=0.1)
        robust = GeneticAlgorithm(space, combined,
                                  GAConfig.paper()).run(seed=SEED)
        add_row("GA class-aware margin", robust.best_freqs_hz,
                robust.evaluations)

        # 3. Dictionary-NN on the robust test vector.
        mapper = SignatureMapper(robust.best_freqs_hz)
        exact = FaultDictionary.build(
            cut_universe, cut.output_node,
            np.array(sorted(robust.best_freqs_hz)),
            input_source=cut.input_source)
        nn = NearestNeighborClassifier(exact, mapper)
        add_row("dictionary-NN", robust.best_freqs_hz,
                robust.evaluations, classifier=nn, mapper=mapper)

        # 4. Random test vectors (mean over 3 draws).
        random_rows = []
        for index, freqs in enumerate(random_test_vectors(space, 3,
                                                          seed=SEED)):
            clean = score_test_vector(cut, cut_universe, freqs,
                                      groups=STRUCTURAL_GROUPS)
            noisy = score_test_vector(cut, cut_universe, freqs,
                                      noise_db=NOISE_DB, repeats=3,
                                      seed=SEED + index,
                                      groups=STRUCTURAL_GROUPS)
            random_rows.append([clean.accuracy, clean.group_accuracy,
                                noisy.accuracy, noisy.group_accuracy,
                                clean.deviation_mae()])
        mean = np.mean(np.array(random_rows), axis=0)
        rows.append(["random (mean of 3)", "-", 0, mean[0], mean[1],
                     mean[2], mean[3], mean[4]])

        # 5. Sensitivity-ranked frequencies (deterministic, no GA).
        grid = log_frequency_grid(cut.f_min_hz, cut.f_max_hz, 61)
        sens = sensitivity_analysis(cut.circuit, cut.output_node, grid,
                                    components=cut.faultable)
        sens_freqs = rank_frequencies(sens, count=2)
        add_row("sensitivity-ranked", sens_freqs, 61)

        # 6. Exhaustive grid scan of the paper fitness.
        fitness = PaperFitness(cut_surface)
        best_freqs, best_fitness, evaluations = exhaustive_search(
            space, fitness, points_per_decade=6)
        add_row(f"exhaustive (fitness {best_fitness:.2f})", best_freqs,
                evaluations)
        return rows

    rows = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    headers = ["method", "f1/f2 [Hz]", "evals", "clean comp",
               "clean class", "noisy comp", "noisy class", "dev MAE"]
    formatted = []
    for row in rows:
        formatted.append(
            [row[0], row[1], row[2]] +
            [f"{value * 100:.1f}%" for value in row[3:7]] +
            [f"{row[7] * 100:.2f}pp"])
    report = table(headers, formatted)
    write_csv(out_dir / "tacc_accuracy.csv", headers, rows)

    lines = ["T-ACC: diagnosis accuracy on held-out deviations "
             f"({', '.join(f'{d * 100:+.0f}%' for d in HELD_OUT)}), "
             f"noise {NOISE_DB} dB, structural classes "
             "{R1} {R2} {C1} {R3,R5} {R4,C2}", "", report, ""]

    # --- Shape checks -------------------------------------------------
    by_method = {row[0].split(" (")[0]: row for row in rows}
    paper_ga = by_method["GA paper fitness"]
    robust_ga = by_method["GA class-aware margin"]
    nn = by_method["dictionary-NN"]
    rnd = by_method["random"]
    exhaustive = by_method["exhaustive"]
    # The paper's GA reaches I = 0 (the exhaustive scan confirms the
    # plateau exists) -- but 1/(1+I) is blind to margins, so its vector
    # may be fragile; that finding is quantified by the rows below and
    # ablated in T-ABL.
    assert float(exhaustive[0].split("fitness ")[1].rstrip(")")) >= 1.0
    assert paper_pipeline_result.ga_result.best_fitness >= 1.0
    # The class-aware margin GA separates all 5 structural classes on
    # clean data and stays at least as robust as random under noise.
    assert robust_ga[4] == 1.0
    assert robust_ga[6] >= rnd[6] - 1e-9
    assert robust_ga[6] >= paper_ga[6], \
        "margin awareness must not lose to the plateau fitness"
    # Trajectory interpolation estimates off-grid deviations; NN snaps
    # to the +/-10% grid, so its MAE is bounded below by ~5pp.
    assert robust_ga[7] < 0.02, "trajectory deviation MAE within 2pp"
    assert nn[7] >= 0.04, "NN cannot interpolate off-grid deviations"
    lines.append(
        "shape check PASSED: class-aware margin GA separates all "
        "structural classes cleanly and dominates under noise; the "
        "paper fitness reaches I=0 but its plateau admits fragile "
        "vectors (see T-ABL); trajectory beats dictionary-NN on "
        "deviation estimation")
    write_report(out_dir, "tacc_report.txt", "\n".join(lines))