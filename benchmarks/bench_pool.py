"""T-POOL -- process-pool speedups over zero-copy shared surfaces.

Measures the three compute kernels that ``repro.runtime.shm`` fans out
across worker *processes* (true multi-core, no GIL) against their
serial and thread-pool shapes, and writes ``BENCH_pool.json``:

* **ga** -- the GA test-vector search on the paper CUT: one
  :class:`~repro.faults.surface.ResponseSurface` published once into
  POSIX shared memory, population shards scored by pool workers;
* **posterior** -- the Monte-Carlo sampled-surface build of
  :class:`~repro.diagnosis.posterior.PosteriorDiagnoser`, sample
  blocks written into disjoint slices of one shared result tensor;
* **dictionary** -- ``build_dictionary_parallel`` with its ship-once
  pool initializer (circuit + grid pickled per worker, not per chunk).

Before any timing is trusted the harness asserts every pooled result
is **bitwise-identical** to its serial reference (GA search history
included), and that the run leaked **zero** ``/dev/shm`` segments.

Speedups are honest: ``environment.cpu_count`` is recorded next to
them, and on a 1-core container ~1x (or below, pool start-up paid) is
the expected, accepted outcome. The 2x acceptance gate only arms in
full mode on a >= 4-core machine with shared memory available.

Run standalone (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_pool.py [--quick] [--check]

``--quick`` shrinks every kernel for the CI smoke job; ``--check``
validates the emitted JSON structure (and the armed gates) and exits
non-zero on failure.
"""

from __future__ import annotations

import argparse
import glob
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import FaultTrajectoryATPG, PipelineConfig
from repro.circuits.library import get_benchmark
from repro.diagnosis import PosteriorConfig, PosteriorDiagnoser
from repro.faults import FaultDictionary, ResponseSurface
from repro.ga import FrequencySpace, GAConfig, GeneticAlgorithm
from repro.runtime import build_dictionary_parallel, codec, shm_available
from repro.units import log_frequency_grid

from _helpers import check_environment, environment_info

SEED = 2005  # the paper's publication year

CIRCUIT = "tow_thomas_biquad"

#: Acceptance bar for the GA process pool, armed only in full mode on
#: a machine with at least this many cores (and working /dev/shm).
MIN_SPEEDUP = 2.0
GATE_MIN_CORES = 4

REQUIRED_KEYS = {
    "ga": ("serial_s", "thread_s", "process_s", "process_speedup",
           "thread_speedup", "evaluations"),
    "posterior": ("serial_s", "pooled_s", "speedup", "n_samples",
                  "executor_resolved"),
    "dictionary": ("serial_s", "thread_s", "process_s",
                   "process_speedup", "n_faults"),
    "shm": ("available", "workers", "leaked_segments"),
}


def _shm_segments() -> set:
    """Names of live POSIX shared-memory segments (psm_* on Linux)."""
    return {Path(p).name for p in glob.glob("/dev/shm/psm_*")}


def _timed(func):
    started = time.perf_counter()
    value = func()
    return value, time.perf_counter() - started


class Harness:
    """One circuit's staged inputs, shared by every kernel."""

    def __init__(self, quick: bool, workers: int) -> None:
        self.quick = quick
        self.workers = workers
        self.info = get_benchmark(CIRCUIT)
        self.pipeline = PipelineConfig(
            dictionary_points=48 if quick else 96,
            deviations=(-0.3, 0.3) if quick else
            (-0.3, -0.15, 0.15, 0.3),
            ga=GAConfig(population_size=12 if quick else 32,
                        generations=3 if quick else 8),
            engine="factored")
        atpg = FaultTrajectoryATPG(self.info, self.pipeline)
        self.atpg = atpg
        self.universe, self.dictionary = atpg.build_dictionary()
        self.surface = ResponseSurface(self.dictionary)
        self.space = FrequencySpace(self.info.f_min_hz,
                                    self.info.f_max_hz,
                                    self.pipeline.num_frequencies)
        self.grid = log_frequency_grid(self.info.f_min_hz,
                                       self.info.f_max_hz,
                                       self.pipeline.dictionary_points)

    # ------------------------------------------------------------------
    def run_ga(self, n_workers: int, executor: str):
        """One full GA search with a *fresh* fitness (cold score cache)."""
        fitness = self.atpg.make_fitness(self.surface)
        ga = GeneticAlgorithm(self.space, fitness, self.pipeline.ga,
                              n_workers=n_workers, executor=executor)
        return ga.run(seed=SEED)

    def bench_ga(self) -> dict:
        serial, serial_s = _timed(lambda: self.run_ga(1, "thread"))
        thread, thread_s = _timed(
            lambda: self.run_ga(self.workers, "thread"))
        process, process_s = _timed(
            lambda: self.run_ga(self.workers, "process"))
        for mode, pooled in (("thread", thread), ("process", process)):
            if pooled.best_freqs_hz != serial.best_freqs_hz or \
                    pooled.best_fitness != serial.best_fitness or \
                    pooled.history != serial.history:
                raise AssertionError(
                    f"{mode}-pool GA diverges from the serial search")
        return {
            "serial_s": serial_s,
            "thread_s": thread_s,
            "process_s": process_s,
            "thread_speedup": serial_s / thread_s,
            "process_speedup": serial_s / process_s,
            "evaluations": serial.evaluations,
            "generations": serial.generations_run,
        }

    # ------------------------------------------------------------------
    def bench_posterior(self, atpg_result) -> dict:
        n_samples = 32 if self.quick else 128
        base = dict(n_samples=n_samples, seed=SEED,
                    samples_per_block=8 if self.quick else 16)
        serial_cfg = PosteriorConfig(n_workers=0, **base)
        pooled_cfg = PosteriorConfig(n_workers=self.workers,
                                     executor="process", **base)
        serial, serial_s = _timed(
            lambda: PosteriorDiagnoser.from_atpg(atpg_result, serial_cfg))
        pooled, pooled_s = _timed(
            lambda: PosteriorDiagnoser.from_atpg(atpg_result, pooled_cfg))

        diagnoser = atpg_result.batch_diagnoser()
        golden_db = diagnoser._golden_sample_db()
        rng = np.random.default_rng(SEED)
        rows = golden_db[None, :] + rng.normal(
            0.0, 3.0, size=(4, golden_db.shape[0]))
        points = diagnoser.signatures(rows)
        if codec.encode_posterior_response(
                pooled.diagnose_points(points)) != \
                codec.encode_posterior_response(
                    serial.diagnose_points(points)):
            raise AssertionError(
                "pooled posterior build diverges from the serial build")
        return {
            "serial_s": serial_s,
            "pooled_s": pooled_s,
            "speedup": serial_s / pooled_s,
            "n_samples": n_samples,
            "samples_per_block": base["samples_per_block"],
            "executor_resolved":
                "process" if shm_available() else "thread",
        }

    # ------------------------------------------------------------------
    def bench_dictionary(self) -> dict:
        serial, serial_s = _timed(lambda: FaultDictionary.build(
            self.universe, self.info.output_node, self.grid,
            input_source=self.info.input_source,
            engine=self.atpg.engine))

        def pooled(executor):
            return build_dictionary_parallel(
                self.universe, self.info.output_node, self.grid,
                input_source=self.info.input_source,
                n_workers=self.workers, executor=executor,
                engine_kind=self.pipeline.engine)

        thread, thread_s = _timed(lambda: pooled("thread"))
        process, process_s = _timed(lambda: pooled("process"))
        for mode, built in (("thread", thread), ("process", process)):
            if built.labels != serial.labels or not np.array_equal(
                    built.response_matrix_db(),
                    serial.response_matrix_db()):
                raise AssertionError(
                    f"{mode}-pool dictionary diverges from serial build")
        return {
            "serial_s": serial_s,
            "thread_s": thread_s,
            "process_s": process_s,
            "thread_speedup": serial_s / thread_s,
            "process_speedup": serial_s / process_s,
            "n_faults": len(self.universe),
            "grid_points": int(self.grid.size),
        }


def run(quick: bool = False) -> dict:
    environment = environment_info()
    workers = max(2, min(4, environment["cpu_count"]))
    before = _shm_segments()

    harness = Harness(quick, workers)
    ga = harness.bench_ga()
    # The posterior kernel needs a full ATPG result; reuse the staged
    # dictionary via a plain pipeline run (serial GA -- not timed).
    atpg_result = FaultTrajectoryATPG(
        harness.info, harness.pipeline).run(seed=SEED)
    posterior = harness.bench_posterior(atpg_result)
    dictionary = harness.bench_dictionary()

    leaked = sorted(_shm_segments() - before)
    return {
        "benchmark": "T-POOL",
        "quick": quick,
        "environment": environment,
        "circuit": CIRCUIT,
        "ga": ga,
        "posterior": posterior,
        "dictionary": dictionary,
        "shm": {
            "available": shm_available(),
            "workers": workers,
            "leaked_segments": len(leaked),
            "leaked_names": leaked,
        },
        "min_speedup": MIN_SPEEDUP,
        "gate_min_cores": GATE_MIN_CORES,
        "notes": (
            "Every pooled result asserted bitwise-identical to its "
            "serial reference before timing (GA history, posterior "
            "diagnoses over the wire codec, dictionary matrices). "
            "Process pools publish the response surface / result "
            "tensor once into POSIX shared memory; speedups are only "
            "meaningful next to environment.cpu_count -- ~1x on a "
            f"1-core container is honest. The {MIN_SPEEDUP:.0f}x GA "
            f"gate arms in full mode at >= {GATE_MIN_CORES} cores."),
    }


def check(report: dict) -> None:
    """Validate the report structure (the CI smoke contract)."""
    check_environment(report, "BENCH_pool.json")
    for key, fields in REQUIRED_KEYS.items():
        section = report[key]
        for field in fields:
            if field not in section:
                raise SystemExit(f"BENCH_pool.json missing {key}.{field}")
    for key in ("ga", "posterior", "dictionary"):
        for field, value in report[key].items():
            if field.endswith("_s") and not (
                    isinstance(value, float) and value > 0.0):
                raise SystemExit(
                    f"BENCH_pool.json has bad {key}.{field}: {value!r}")
    if report["shm"]["leaked_segments"]:
        raise SystemExit(
            f"pool run leaked shared-memory segments: "
            f"{report['shm']['leaked_names']}")
    cores = report["environment"]["cpu_count"]
    if not report["quick"] and report["shm"]["available"] and \
            cores >= GATE_MIN_CORES:
        speedup = report["ga"]["process_speedup"]
        if speedup < MIN_SPEEDUP:
            raise SystemExit(
                f"GA process-pool speedup {speedup:.2f}x below the "
                f"{MIN_SPEEDUP:.1f}x floor on {cores} cores")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny kernels (CI smoke mode)")
    parser.add_argument("--check", action="store_true",
                        help="validate the emitted JSON structure")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent / "out" /
                        "BENCH_pool.json")
    args = parser.parse_args(argv)

    report = run(quick=args.quick)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    cores = report["environment"]["cpu_count"]
    print(f"cores: {cores}, workers: {report['shm']['workers']}, "
          f"shm: {report['shm']['available']}")
    ga = report["ga"]
    print(f"ga: serial {ga['serial_s']:.2f} s, thread "
          f"{ga['thread_s']:.2f} s ({ga['thread_speedup']:.2f}x), "
          f"process {ga['process_s']:.2f} s "
          f"({ga['process_speedup']:.2f}x) over "
          f"{ga['evaluations']} evaluations")
    posterior = report["posterior"]
    print(f"posterior ({posterior['n_samples']} worlds): serial "
          f"{posterior['serial_s']:.2f} s, pooled "
          f"{posterior['pooled_s']:.2f} s "
          f"({posterior['speedup']:.2f}x, "
          f"{posterior['executor_resolved']} executor)")
    dictionary = report["dictionary"]
    print(f"dictionary ({dictionary['n_faults']} faults x "
          f"{dictionary['grid_points']} points): serial "
          f"{dictionary['serial_s']:.2f} s, thread "
          f"{dictionary['thread_s']:.2f} s, process "
          f"{dictionary['process_s']:.2f} s "
          f"({dictionary['process_speedup']:.2f}x)")
    print(f"leaked shm segments: {report['shm']['leaked_segments']}")
    print(f"wrote {args.out}")
    if args.check:
        check(report)
        print("structure check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
