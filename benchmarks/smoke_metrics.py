"""Metrics smoke: boot ``repro-serve``, drive traffic, validate the scrape.

The CI job for the observability surface:

1. boots a 2-replica ``repro-serve`` cluster on an ephemeral port
   (quick pipeline config, in-memory artifact store, JSON access logs);
2. warms a circuit through ``GET /v1/test-vector/<circuit>``;
3. fires a small diagnose burst with an explicit ``X-Request-Id`` and
   checks the id is echoed back;
4. scrapes ``GET /v1/metrics`` and validates the payload with the same
   exposition parser the test suite uses
   (:func:`repro.runtime.telemetry.parse_exposition`), asserting that
   engine, store, service and cluster metric families are all present
   with sane values.

Run standalone::

    python benchmarks/smoke_metrics.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
sys.path.insert(0, str(SRC))

import numpy as np                                     # noqa: E402

from repro.runtime import codec, telemetry             # noqa: E402
from repro.runtime.cluster import LISTENING_PREFIX     # noqa: E402

CIRCUIT = "rc_lowpass"
BURST = 6

#: Families the scrape must cover: engine, store, service and cluster.
REQUIRED_FAMILIES = (
    "repro_engine_stamp_seconds",
    "repro_engine_solve_seconds",
    "repro_engine_variants_solved_total",
    "repro_pipeline_stage_seconds",
    "repro_store_hits_total",
    "repro_store_misses_total",
    "repro_service_requests_total",
    "repro_service_request_latency_seconds",
    "repro_service_coalesce_batch_rows",
    "repro_service_queue_depth",
    "repro_cluster_requests_total",
    "repro_cluster_replica_up",
    "repro_cluster_replica_call_seconds",
)


def _get(url: str, timeout: float = 600.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read()


def _post(url: str, body: bytes, headers: dict, timeout: float = 600.0):
    request = urllib.request.Request(url, data=body, headers=headers,
                                     method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read()


def _spawn_server() -> tuple:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.runtime.cli",
         "--host", "127.0.0.1", "--port", "0",
         "--replicas", "2", "--config", "quick",
         "--backend", "memory", "--window-ms", "1",
         "--log-json"],
        stdout=subprocess.PIPE, env=env)
    deadline = time.monotonic() + 600.0
    assert process.stdout is not None
    while True:
        if time.monotonic() > deadline:
            raise SystemExit("server never announced its address")
        line = process.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited before announcing its address "
                f"(rc={process.poll()})")
        text = line.decode("utf-8", "replace").strip()
        if text.startswith(LISTENING_PREFIX):
            _, _, address = text.partition(LISTENING_PREFIX)
            host, port = address.split()
            return process, host, int(port)


def main() -> int:
    process, host, port = _spawn_server()
    base = f"http://{host}:{port}"
    try:
        # Warm the circuit and learn its test-vector width.
        status, _, payload = _get(f"{base}/v1/test-vector/{CIRCUIT}")
        assert status == 200, status
        width = len(json.loads(payload)["test_vector_hz"])
        print(f"warmed {CIRCUIT} ({width}-frequency test vector)")

        # Diagnose burst with request-id propagation.
        body = codec.encode_request(CIRCUIT, np.zeros((3, width)))
        for index in range(BURST):
            request_id = f"smoke-{index}"
            status, headers, _ = _post(
                f"{base}/v1/diagnose", body,
                {"X-Request-Id": request_id})
            assert status == 200, status
            assert headers.get("X-Request-Id") == request_id, headers
        print(f"diagnose burst: {BURST} requests, ids echoed")

        # Scrape and validate.
        status, headers, payload = _get(f"{base}/v1/metrics",
                                        timeout=60.0)
        assert status == 200, status
        assert headers.get("Content-Type") == telemetry.CONTENT_TYPE, \
            headers.get("Content-Type")
        families = telemetry.parse_exposition(
            payload.decode("utf-8"))
        missing = [name for name in REQUIRED_FAMILIES
                   if name not in families]
        if missing:
            raise SystemExit(f"/v1/metrics missing families: {missing}")

        requests_total = sum(
            value for _, _, value
            in families["repro_cluster_requests_total"]["samples"])
        if requests_total < BURST:
            raise SystemExit(
                f"repro_cluster_requests_total {requests_total} < "
                f"burst size {BURST}")
        up = {labels.get("replica"): value for _, labels, value
              in families["repro_cluster_replica_up"]["samples"]}
        if sorted(up) != ["replica-0", "replica-1"] or \
                set(up.values()) != {1.0}:
            raise SystemExit(f"bad replica-up gauges: {up}")
        print(f"/v1/metrics: {len(families)} families, "
              f"{requests_total:.0f} cluster requests, "
              f"{len(up)} replicas up -- ok")
        return 0
    finally:
        # SIGINT, not SIGTERM: the CLI's KeyboardInterrupt path tears
        # the spawned worker processes down with it.
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=60)
        except subprocess.TimeoutExpired:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()


if __name__ == "__main__":
    sys.exit(main())
