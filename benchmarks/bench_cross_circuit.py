"""T-XCUT -- method generality across circuits.

Runs the full pipeline (reduced GA budget) on four further benchmark
filters and reports test vector, conflicts, ambiguity groups and
held-out accuracy. Expected shape: group-level accuracy stays perfect
everywhere; the *composition* of the ambiguity groups is circuit
physics (e.g. R1/R2 of the unity-gain Sallen-Key swap roles in w0).
"""

from __future__ import annotations

import dataclasses

from repro import FaultTrajectoryATPG, PipelineConfig
from repro.circuits import (
    khn_state_variable,
    mfb_bandpass,
    sallen_key_lowpass,
    twin_t_notch,
)
from repro.ga import GAConfig
from repro.viz import table, write_csv

from _helpers import SEED, write_report

CIRCUITS = (
    ("sallen_key", sallen_key_lowpass),
    ("khn_state_variable", khn_state_variable),
    ("mfb_bandpass", mfb_bandpass),
    ("twin_t_notch", twin_t_notch),
)

CONFIG = dataclasses.replace(
    PipelineConfig.quick(),
    ga=GAConfig(population_size=64, generations=8))


def bench_txcut_generality(benchmark, out_dir):
    def run_all():
        rows = []
        for name, factory in CIRCUITS:
            info = factory()
            result = FaultTrajectoryATPG(info, CONFIG).run(seed=SEED)
            evaluation = result.evaluate(deviations=(-0.25, 0.25))
            groups = "; ".join(
                "{" + ",".join(sorted(g)) + "}"
                for g in result.groups if len(g) > 1) or "none"
            rows.append([
                name,
                len(info.faultable),
                "/".join(f"{f:.0f}" for f in result.test_vector_hz),
                result.metrics.total_conflicts,
                evaluation.accuracy,
                evaluation.group_accuracy,
                groups,
            ])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    headers = ["circuit", "targets", "test vector [Hz]", "conflicts",
               "comp acc", "group acc", "ambiguity groups"]
    formatted = [[r[0], r[1], r[2], r[3], f"{r[4] * 100:.1f}%",
                  f"{r[5] * 100:.1f}%", r[6]] for r in rows]
    write_csv(out_dir / "txcut.csv", headers, rows)
    lines = ["T-XCUT: cross-circuit generality (held-out +/-25%)", "",
             table(headers, formatted), ""]

    # --- Shape checks -------------------------------------------------
    for row in rows:
        assert row[5] == 1.0, \
            f"{row[0]}: group-level accuracy must be perfect on clean " \
            "held-out faults"
    lines.append("shape check PASSED: perfect group-level diagnosis on "
                 "all four circuits")
    write_report(out_dir, "txcut_report.txt", "\n".join(lines))