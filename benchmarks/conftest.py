"""Shared fixtures for the benchmark/reproduction harness.

Each ``bench_*`` file regenerates one experiment from DESIGN.md's index
(FIG1-FIG3, T-GA, T-ACC, T-ABL, T-NFREQ, T-XCUT, T-PERF). Benchmarks
time the hot operation with pytest-benchmark and write the figure/table
data (CSV + ASCII rendering) to ``benchmarks/out/`` so the paper's
artefacts can be inspected and re-plotted.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import (
    FaultTrajectoryATPG,
    PipelineConfig,
    ResponseSurface,
    parametric_universe,
    tow_thomas_biquad,
)
from repro.faults import FaultDictionary
from repro.units import log_frequency_grid

from _helpers import SEED


@pytest.fixture(scope="session")
def out_dir():
    path = Path(__file__).parent / "out"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def cut():
    """The paper's CUT with op-amp macromodels (see DESIGN.md)."""
    return tow_thomas_biquad(ideal_opamps=False)


@pytest.fixture(scope="session")
def cut_universe(cut):
    return parametric_universe(cut.circuit, components=cut.faultable)


@pytest.fixture(scope="session")
def cut_dictionary(cut, cut_universe):
    grid = log_frequency_grid(cut.f_min_hz, cut.f_max_hz, 401)
    return FaultDictionary.build(cut_universe, cut.output_node, grid,
                                 input_source=cut.input_source)


@pytest.fixture(scope="session")
def cut_surface(cut_dictionary):
    return ResponseSurface(cut_dictionary)


@pytest.fixture(scope="session")
def paper_pipeline_result(cut):
    """One full paper-configuration pipeline run shared by benchmarks."""
    return FaultTrajectoryATPG(cut, PipelineConfig.paper()).run(seed=SEED)
