"""T-POSTERIOR -- probabilistic diagnosis cost vs the hard classifier.

Times the request-side cost of ``repro.diagnosis.posterior`` -- a
Monte-Carlo sampled-response-surface posterior with adaptive
test-selection ranking -- against the hard nearest-trajectory
classifier it generalises, and writes ``BENCH_posterior.json``:

* **build** -- one 256-world Monte-Carlo sweep of the paper CUT's
  fault universe through the factored (Sherman-Morrison-Woodbury)
  engine: wall time and the number of variant simulations amortised
  into the sampled surface;
* **request** -- best-of-N wall time of a single hard diagnosis vs a
  single posterior diagnosis (plus an 8-row coalesced batch of each)
  on measured-looking rows, and the headline ``ratio`` between the
  single-row paths. The acceptance bar: a full posterior at 256 MC
  samples costs at most **25x** one hard diagnosis.

Before any timing is trusted the harness asserts correctness: the
zero-tolerance posterior argmax must match the hard classifier on
every measured row, and a from-scratch rebuild with the same seed must
reproduce the posteriors bitwise (over the wire codec included).

Run standalone (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_posterior.py [--quick] [--out F]

``--quick`` drops to 64 worlds and fewer repeats for the CI smoke job;
``--check`` validates the emitted JSON structure (and, in full mode,
the 25x ratio gate) and exits non-zero on failure.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import FaultTrajectoryATPG, PipelineConfig
from repro.circuits.library import get_benchmark
from repro.diagnosis import PosteriorConfig, PosteriorDiagnoser
from repro.runtime import codec

from _helpers import check_environment, environment_info

SEED = 2005  # the paper's publication year

CIRCUIT = "tow_thomas_biquad"

#: Acceptance bar: posterior-at-256-worlds vs one hard diagnosis.
MAX_POSTERIOR_RATIO = 25.0

REQUIRED_KEYS = {
    "build": ("n_samples", "samples_simulated", "build_s", "engine"),
    "request": ("hard_single_s", "posterior_single_s", "ratio",
                "hard_batch_s", "posterior_batch_s", "batch_rows"),
    "posterior": ("mean_entropy_bits", "next_best_freq_hz",
                  "n_hypotheses"),
}


def _best_of(repeats, func):
    """Minimum wall time over ``repeats`` runs (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - started)
    return best


def _measured_points(diagnoser, n_rows):
    """Signature points for golden-plus-noise request rows."""
    golden_db = diagnoser._golden_sample_db()
    rng = np.random.default_rng(SEED)
    rows = golden_db[None, :] + rng.normal(
        0.0, 3.0, size=(n_rows, golden_db.shape[0]))
    return diagnoser.signatures(rows)


def _assert_zero_tolerance_agrees(result, diagnoser, points):
    """tolerance -> 0 must reproduce the hard classifier's argmax."""
    limit = PosteriorDiagnoser.from_atpg(
        result, PosteriorConfig(n_samples=2, tolerance=0.0, seed=SEED))
    hard = diagnoser.classify_points(points)
    soft = limit.diagnose_points(points)
    for row, (hard_one, soft_one) in enumerate(zip(hard, soft)):
        if hard_one.component != soft_one.component:
            raise AssertionError(
                f"zero-tolerance posterior disagrees with the hard "
                f"classifier on row {row}: {soft_one.component!r} != "
                f"{hard_one.component!r}")


def _assert_bitwise_rebuild(result, config, reference, points):
    """Same config + seed -> bitwise-identical posteriors on the wire."""
    rebuilt = PosteriorDiagnoser.from_atpg(result, config)
    again = rebuilt.diagnose_points(points)
    if codec.encode_posterior_response(again) != \
            codec.encode_posterior_response(reference):
        raise AssertionError(
            "posterior rebuild is not bitwise reproducible")


def run(quick: bool = False) -> dict:
    n_samples = 64 if quick else 256
    repeats = 5 if quick else 20
    batch_rows = 8

    pipeline = dataclasses.replace(PipelineConfig.quick(),
                                   engine="factored")
    result = FaultTrajectoryATPG(get_benchmark(CIRCUIT),
                                 pipeline).run(seed=SEED)
    diagnoser = result.batch_diagnoser()

    config = PosteriorConfig(n_samples=n_samples, seed=SEED)
    started = time.perf_counter()
    posterior = PosteriorDiagnoser.from_atpg(result, config)
    build_s = time.perf_counter() - started

    points = _measured_points(diagnoser, batch_rows)
    _assert_zero_tolerance_agrees(result, diagnoser, points)
    diagnoses = posterior.diagnose_points(points)
    _assert_bitwise_rebuild(result, config, diagnoses, points)

    # Warm both paths once, then time best-of-N.
    diagnoser.classify_points(points[:1])
    posterior.diagnose_points(points[:1])
    hard_single = _best_of(repeats,
                           lambda: diagnoser.classify_points(points[:1]))
    soft_single = _best_of(repeats,
                           lambda: posterior.diagnose_points(points[:1]))
    hard_batch = _best_of(repeats,
                          lambda: diagnoser.classify_points(points))
    soft_batch = _best_of(repeats,
                          lambda: posterior.diagnose_points(points))

    return {
        "benchmark": "T-POSTERIOR",
        "quick": quick,
        "environment": environment_info(),
        "circuit": CIRCUIT,
        "n_faults": len(result.universe.faults),
        "build": {
            "n_samples": n_samples,
            "samples_simulated": posterior.samples_simulated,
            "build_s": build_s,
            "engine": pipeline.engine,
        },
        "request": {
            "hard_single_s": hard_single,
            "posterior_single_s": soft_single,
            "ratio": soft_single / hard_single,
            "hard_batch_s": hard_batch,
            "posterior_batch_s": soft_batch,
            "batch_rows": batch_rows,
            "repeats": repeats,
        },
        "posterior": {
            "mean_entropy_bits": float(np.mean(
                [d.entropy_bits for d in diagnoses])),
            "next_best_freq_hz": diagnoses[0].test_ranking[0][0],
            "n_hypotheses": len(posterior.component_labels),
        },
        "max_ratio": MAX_POSTERIOR_RATIO,
    }


def check(report: dict) -> None:
    """Validate the report structure (the CI smoke contract)."""
    check_environment(report, "BENCH_posterior.json")
    for key, fields in REQUIRED_KEYS.items():
        section = report[key]
        for field in fields:
            if field not in section:
                raise SystemExit(
                    f"BENCH_posterior.json missing {key}.{field}")
    for field in ("hard_single_s", "posterior_single_s",
                  "hard_batch_s", "posterior_batch_s", "ratio"):
        value = report["request"][field]
        if not (isinstance(value, float) and value > 0.0):
            raise SystemExit(
                f"BENCH_posterior.json has bad request.{field}: "
                f"{value!r}")
    if report["build"]["samples_simulated"] < \
            report["build"]["n_samples"]:
        raise SystemExit("bad build.samples_simulated")
    if not report["quick"]:
        # Performance bar only in full mode -- CI machines are too
        # noisy for ratio assertions on tiny workloads.
        ratio = report["request"]["ratio"]
        if ratio > MAX_POSTERIOR_RATIO:
            raise SystemExit(
                f"posterior diagnosis costs {ratio:.1f}x a hard "
                f"diagnosis (bar: {MAX_POSTERIOR_RATIO:.0f}x at "
                f"{report['build']['n_samples']} MC samples)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="64 worlds, fewer repeats (CI smoke mode)")
    parser.add_argument("--check", action="store_true",
                        help="validate the emitted JSON structure")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent / "out" /
                        "BENCH_posterior.json")
    args = parser.parse_args(argv)

    report = run(quick=args.quick)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    build = report["build"]
    print(f"posterior build ({build['n_samples']} worlds, "
          f"{build['samples_simulated']} variant simulations, "
          f"{build['engine']} engine): {build['build_s']:.2f} s")
    request = report["request"]
    print(f"request: hard {request['hard_single_s'] * 1e3:.3f} ms, "
          f"posterior {request['posterior_single_s'] * 1e3:.3f} ms "
          f"({request['ratio']:.1f}x; bar {MAX_POSTERIOR_RATIO:.0f}x); "
          f"{request['batch_rows']}-row batch: hard "
          f"{request['hard_batch_s'] * 1e3:.3f} ms, posterior "
          f"{request['posterior_batch_s'] * 1e3:.3f} ms")
    summary = report["posterior"]
    print(f"posterior ({summary['n_hypotheses']} hypotheses): mean "
          f"entropy {summary['mean_entropy_bits']:.3f} b, next best "
          f"measurement {summary['next_best_freq_hz']:.4g} Hz")
    print(f"wrote {args.out}")
    if args.check:
        check(report)
        print("structure check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
