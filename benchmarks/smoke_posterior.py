"""Posterior smoke: boot ``repro-serve``, drive the probabilistic tier.

The CI job for ``POST /v1/diagnose-posterior``:

1. boots a 2-replica ``repro-serve`` cluster on an ephemeral port
   (quick pipeline config, in-memory artifact store, 16 Monte-Carlo
   worlds so the cold posterior build stays cheap);
2. warms a circuit through ``GET /v1/test-vector/<circuit>``;
3. fires a single posterior request and a burst, validating every
   returned posterior: probabilities normalised and descending, the
   fault-free hypothesis present, a non-empty information-gain test
   ranking, and burst rows bitwise-identical to the single-request
   rows (the coalescing path must not change results);
4. scrapes ``GET /v1/metrics`` and asserts the ``repro_posterior_*``
   families report the traffic.

Run standalone::

    python benchmarks/smoke_posterior.py
"""

from __future__ import annotations

import json
import math
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
sys.path.insert(0, str(SRC))

import numpy as np                                     # noqa: E402

from repro.diagnosis import FAULT_FREE_LABEL           # noqa: E402
from repro.runtime import codec, telemetry             # noqa: E402
from repro.runtime.cluster import LISTENING_PREFIX     # noqa: E402

CIRCUIT = "rc_lowpass"
ROWS = 3
BURST = 4

REQUIRED_FAMILIES = (
    "repro_posterior_requests_total",
    "repro_posterior_rows_total",
    "repro_posterior_samples_total",
    "repro_posterior_build_seconds",
    "repro_posterior_request_seconds",
    "repro_posterior_entropy_bits",
)


def _get(url: str, timeout: float = 600.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, dict(response.headers), response.read()


def _post(url: str, body: bytes, timeout: float = 600.0):
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"},
        method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, response.read()


def _spawn_server() -> tuple:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.runtime.cli",
         "--host", "127.0.0.1", "--port", "0",
         "--replicas", "2", "--config", "quick",
         "--backend", "memory", "--window-ms", "1",
         "--posterior-samples", "16", "--log-json"],
        stdout=subprocess.PIPE, env=env)
    deadline = time.monotonic() + 600.0
    assert process.stdout is not None
    while True:
        if time.monotonic() > deadline:
            raise SystemExit("server never announced its address")
        line = process.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited before announcing its address "
                f"(rc={process.poll()})")
        text = line.decode("utf-8", "replace").strip()
        if text.startswith(LISTENING_PREFIX):
            _, _, address = text.partition(LISTENING_PREFIX)
            host, port = address.split()
            return process, host, int(port)


def _validate(diagnosis) -> None:
    probabilities = [p for _, p in diagnosis.probabilities]
    if not math.isclose(sum(probabilities), 1.0, abs_tol=1e-9):
        raise SystemExit(
            f"posterior does not normalise: sum={sum(probabilities)}")
    if any(p < 0.0 for p in probabilities):
        raise SystemExit(f"negative probability: {probabilities}")
    if sorted(probabilities, reverse=True) != probabilities:
        raise SystemExit("probabilities not descending")
    labels = {name for name, _ in diagnosis.probabilities}
    if FAULT_FREE_LABEL not in labels:
        raise SystemExit(f"no {FAULT_FREE_LABEL!r} hypothesis: {labels}")
    if not diagnosis.test_ranking:
        raise SystemExit("empty test ranking")
    if any(not math.isfinite(gain) or gain < 0.0
           for _, gain in diagnosis.test_ranking):
        raise SystemExit(f"bad info gains: {diagnosis.test_ranking}")


def main() -> int:
    process, host, port = _spawn_server()
    base = f"http://{host}:{port}"
    try:
        status, _, payload = _get(f"{base}/v1/test-vector/{CIRCUIT}")
        assert status == 200, status
        width = len(json.loads(payload)["test_vector_hz"])
        print(f"warmed {CIRCUIT} ({width}-frequency test vector)")

        rng = np.random.default_rng(2005)
        rows = rng.normal(0.0, 1.0, size=(ROWS, width))

        # Single posterior request (cold build happens here).
        body = codec.encode_request(CIRCUIT, rows)
        status, payload = _post(f"{base}/v1/diagnose-posterior", body)
        assert status == 200, status
        single = codec.decode_posterior_response(payload)
        assert len(single) == ROWS, len(single)
        for diagnosis in single:
            _validate(diagnosis)
        print(f"single request: {ROWS} posteriors validated "
              f"({single[0].n_samples} MC worlds, top "
              f"{single[0].component!r} at {single[0].probability:.1%})")

        # Burst: coalesced rows must be bitwise-identical to the
        # single-request results.
        burst_body = codec.encode_request_many(
            [(CIRCUIT, rows)] * BURST)
        status, payload = _post(f"{base}/v1/diagnose-posterior",
                                burst_body)
        assert status == 200, status
        batches = codec.decode_posterior_response_many(payload)
        assert len(batches) == BURST, len(batches)
        for batch in batches:
            if batch != single:
                raise SystemExit(
                    "burst posteriors differ from the single request")
        print(f"burst: {BURST} requests x {ROWS} rows, "
              f"bitwise-identical to the single request")

        status, _, payload = _get(f"{base}/v1/metrics", timeout=60.0)
        assert status == 200, status
        families = telemetry.parse_exposition(payload.decode("utf-8"))
        missing = [name for name in REQUIRED_FAMILIES
                   if name not in families]
        if missing:
            raise SystemExit(f"/v1/metrics missing families: {missing}")
        requests_total = sum(
            value for _, _, value
            in families["repro_posterior_requests_total"]["samples"])
        rows_total = sum(
            value for _, _, value
            in families["repro_posterior_rows_total"]["samples"])
        if requests_total < 1 + BURST:
            raise SystemExit(
                f"repro_posterior_requests_total {requests_total} < "
                f"{1 + BURST}")
        if rows_total < (1 + BURST) * ROWS:
            raise SystemExit(
                f"repro_posterior_rows_total {rows_total} < "
                f"{(1 + BURST) * ROWS}")
        print(f"/v1/metrics: {len(REQUIRED_FAMILIES)} posterior "
              f"families, {requests_total:.0f} requests, "
              f"{rows_total:.0f} rows -- ok")
        return 0
    finally:
        # SIGINT, not SIGTERM: the CLI's KeyboardInterrupt path tears
        # the spawned worker processes down with it.
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=60)
        except subprocess.TimeoutExpired:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()


if __name__ == "__main__":
    sys.exit(main())
