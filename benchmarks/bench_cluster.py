"""T-CLUSTER -- consistent-hash replica routing vs a single service.

Drives a multi-circuit request mix (every registry circuit,
round-robin, ``CONCURRENCY`` concurrent clients) against three
deployment shapes:

* **single** -- one :class:`AsyncDiagnosisService` with a fixed
  per-process engine budget (``max_engines``);
* **cluster_2 / cluster_3** -- a :class:`ClusterService` of N
  in-process replicas with the *same per-replica budget*, circuits
  consistent-hashed across them;
* **spawned_http** -- the full production shape: ``repro-serve``
  worker processes spoken to over keep-alive HTTP, one worker vs two.

The headline scenario (``engine_bound_mix``) models the production
constraint that motivates the cluster: a replica's warmed-engine cache
is bounded by memory, and the circuit catalogue is bigger than one
replica's budget. A single service then thrashes its LRU -- every
request for an evicted circuit pays a store reload -- while the
cluster's aggregate cache is the *sum* of the replicas' budgets, so
every circuit stays warm on its owning replica. That cache-partition
effect, not CPU parallelism, is what this box (single-core CI runner)
can measure honestly; the ``uniform_capacity`` scenario, where every
deployment holds all engines warm, is included to show the ~1x
CPU-bound baseline such a box gives (scaling there needs real cores,
which the spawned-worker shape exploits on multi-core hosts).

Before any timing is trusted, the harness asserts 2- and 3-replica
cluster results are **bitwise-identical** to sequential single-service
submits on a mixed request set. The report lands in
``BENCH_cluster.json``.

Run standalone (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_cluster.py [--quick] [--check]

``--quick`` shrinks the streams for the CI smoke job; ``--check``
validates the emitted JSON structure and (in full mode) enforces the
headline criterion: 3-replica throughput > single-replica on the
multi-circuit mix.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

from repro import (
    ArtifactStore,
    AsyncDiagnosisService,
    ClusterService,
    DiagnosisService,
    PipelineConfig,
)
from _helpers import check_environment, environment_info
from _helpers import noisy_golden_rows as request_rows
from repro.circuits.library import BENCHMARK_CIRCUITS
from repro.ga import GAConfig
from repro.runtime.cluster import CircuitRouter

SEED = 2005
CONCURRENCY = 16
#: The whole registry: a catalogue bigger than one replica's budget.
CIRCUITS = tuple(sorted(BENCHMARK_CIRCUITS))
#: Per-replica warmed-engine budget in the engine-bound scenarios.
ENGINE_BUDGET = 4

CONFIG = PipelineConfig(dictionary_points=48,
                        deviations=(-0.3, -0.15, 0.15, 0.3),
                        ga=GAConfig(population_size=10, generations=3))

MODE_KEYS = ("requests", "seconds", "requests_per_second", "evictions")

SCENARIOS = ("engine_bound_mix", "uniform_capacity", "spawned_http")


def build_store(root: Path) -> ArtifactStore:
    """Warm a shared artifact store so engine (re)loads skip
    simulation -- the deployment shape every replica shares."""
    store = ArtifactStore(root)
    reference = DiagnosisService(config=CONFIG, store=store,
                                 max_engines=len(CIRCUITS), seed=SEED)
    for name in CIRCUITS:
        reference.warm(name)
    return store


def make_stream(reference: DiagnosisService, total: int) -> list:
    """Round-robin multi-circuit single-row request stream."""
    return [(CIRCUITS[index % len(CIRCUITS)],
             request_rows(reference, CIRCUITS[index % len(CIRCUITS)],
                          1, seed=index))
            for index in range(total)]


def assert_equivalence(reference: DiagnosisService) -> None:
    """Cluster answers (2 and 3 replicas) must match sequential
    single-service submits bitwise."""
    requests = []
    for index, circuit in enumerate(CIRCUITS):
        rows = request_rows(reference, circuit, 4, seed=SEED + index)
        requests.extend((circuit, rows[i:i + 1]) for i in range(4))
        requests.append((circuit, rows))      # one multi-row request
    sequential = [reference.submit(circuit, rows)
                  for circuit, rows in requests]

    for n_replicas in (2, 3):
        async def clustered():
            cluster = ClusterService.in_process(
                n_replicas, services=reference,
                window_seconds=0.002, max_batch=CONCURRENCY)
            results = await asyncio.gather(
                *(cluster.submit(circuit, rows)
                  for circuit, rows in requests))
            burst = await cluster.submit_many(requests)
            await cluster.aclose()
            return results, burst

        results, burst = asyncio.run(clustered())
        assert results == sequential, \
            f"{n_replicas}-replica cluster diverges from sequential"
        assert burst == sequential, \
            f"{n_replicas}-replica submit_many diverges from sequential"


def total_evictions(services) -> int:
    return sum(service.stats.evictions for service in services)


def drive(front_factory, services, stream, concurrency: int) -> dict:
    """Time a front against the stream split over N async clients."""
    shards = [stream[index::concurrency] for index in range(concurrency)]

    async def run_clients():
        front = front_factory()
        # Short warm-up so neither shape pays one-off first-touch cost
        # inside the timed window (the engine-bound shapes keep
        # thrashing regardless -- that is the scenario).
        for circuit, rows in stream[:len(CIRCUITS)]:
            await front.submit(circuit, rows)
        evictions_before = total_evictions(services)

        async def client(shard):
            for circuit, rows in shard:
                await front.submit(circuit, rows)

        started = time.perf_counter()
        await asyncio.gather(*(client(shard) for shard in shards))
        elapsed = time.perf_counter() - started
        await front.aclose()
        return elapsed, total_evictions(services) - evictions_before

    elapsed, evictions = asyncio.run(run_clients())
    return {"requests": len(stream), "seconds": elapsed,
            "requests_per_second": len(stream) / elapsed,
            "evictions": evictions}


def replica_services(store: ArtifactStore, count: int,
                     max_engines: int) -> list:
    return [DiagnosisService(config=CONFIG, store=store,
                             max_engines=max_engines, seed=SEED)
            for _ in range(count)]


def placement(n_replicas: int) -> dict:
    """Which replica owns which circuit under the default ring."""
    router = CircuitRouter([f"replica-{i}" for i in range(n_replicas)])
    owners: dict = {}
    for circuit in CIRCUITS:
        owners.setdefault(router.replica_for(circuit), []).append(circuit)
    return {name: sorted(names) for name, names in sorted(owners.items())}


def bench_engine_bound(store: ArtifactStore,
                       reference: DiagnosisService,
                       per_client: int) -> dict:
    stream = make_stream(reference, per_client * CONCURRENCY)
    result: dict = {"per_replica_max_engines": ENGINE_BUDGET,
                    "placement_3": placement(3)}

    singles = replica_services(store, 1, ENGINE_BUDGET)
    result["single"] = drive(
        lambda: AsyncDiagnosisService(singles[0], window_seconds=0.001,
                                      max_batch=CONCURRENCY),
        singles, stream, CONCURRENCY)
    for n_replicas in (2, 3):
        services = replica_services(store, n_replicas, ENGINE_BUDGET)
        result[f"cluster_{n_replicas}"] = drive(
            lambda: ClusterService.in_process(
                n_replicas, services=services, window_seconds=0.001,
                max_batch=CONCURRENCY),
            services, stream, CONCURRENCY)
        result[f"speedup_{n_replicas}"] = \
            result[f"cluster_{n_replicas}"]["requests_per_second"] / \
            result["single"]["requests_per_second"]
    return result


def bench_uniform_capacity(store: ArtifactStore,
                           reference: DiagnosisService,
                           per_client: int) -> dict:
    stream = make_stream(reference, per_client * CONCURRENCY)
    budget = len(CIRCUITS)                    # everyone holds all warm
    singles = replica_services(store, 1, budget)
    result = {"per_replica_max_engines": budget}
    result["single"] = drive(
        lambda: AsyncDiagnosisService(singles[0], window_seconds=0.001,
                                      max_batch=CONCURRENCY),
        singles, stream, CONCURRENCY)
    services = replica_services(store, 3, budget)
    result["cluster_3"] = drive(
        lambda: ClusterService.in_process(
            3, services=services, window_seconds=0.001,
            max_batch=CONCURRENCY),
        services, stream, CONCURRENCY)
    result["speedup_3"] = \
        result["cluster_3"]["requests_per_second"] / \
        result["single"]["requests_per_second"]
    return result


def bench_spawned(store_root: Path, reference: DiagnosisService,
                  total: int) -> dict:
    """The production shape: worker processes over keep-alive HTTP."""
    stream = make_stream(reference, total)
    result: dict = {"per_replica_max_engines": ENGINE_BUDGET}

    for label, n_workers in (("single_worker", 1), ("two_workers", 2)):
        async def run_workers():
            cluster = await ClusterService.spawn(
                n_workers, store_root=store_root, config=CONFIG,
                seed=SEED, max_engines=ENGINE_BUDGET, window_ms=1.0,
                max_batch=CONCURRENCY)
            try:
                for circuit, rows in stream[:len(CIRCUITS)]:
                    await cluster.submit(circuit, rows)   # warm-up

                async def client(shard):
                    for circuit, rows in shard:
                        await cluster.submit(circuit, rows)

                shards = [stream[index::CONCURRENCY]
                          for index in range(CONCURRENCY)]
                started = time.perf_counter()
                await asyncio.gather(*(client(shard)
                                       for shard in shards))
                return time.perf_counter() - started
            finally:
                await cluster.aclose()

        elapsed = asyncio.run(run_workers())
        result[label] = {"requests": len(stream), "seconds": elapsed,
                         "requests_per_second": len(stream) / elapsed,
                         "evictions": None}    # worker-side, not visible
    result["speedup"] = \
        result["two_workers"]["requests_per_second"] / \
        result["single_worker"]["requests_per_second"]
    return result


def run(quick: bool) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-cluster-") as tmp:
        store_root = Path(tmp) / "store"
        store = build_store(store_root)
        reference = DiagnosisService(config=CONFIG, store=store,
                                     max_engines=len(CIRCUITS),
                                     seed=SEED)
        for name in CIRCUITS:
            reference.warm(name)
        assert_equivalence(reference)

        engine_bound = bench_engine_bound(
            store, reference, per_client=3 if quick else 10)
        uniform = bench_uniform_capacity(
            store, reference, per_client=30 if quick else 120)
        spawned = bench_spawned(store_root, reference,
                                total=32 if quick else 96)

    return {
        "benchmark": "T-CLUSTER",
        "quick": quick,
        "environment": environment_info(),
        "circuits": list(CIRCUITS),
        "concurrency": CONCURRENCY,
        "scenarios": {
            "engine_bound_mix": engine_bound,
            "uniform_capacity": uniform,
            "spawned_http": spawned,
        },
        "cluster_speedup": engine_bound["speedup_3"],
        "notes": (
            "Cluster results asserted bitwise-equal to sequential "
            "single-service submits (2 and 3 replicas, per-request and "
            "submit_many) before timing. The headline "
            "'engine_bound_mix' fixes every replica's warmed-engine "
            f"budget at max_engines={ENGINE_BUDGET} while the mix "
            f"round-robins {len(CIRCUITS)} circuits: the single "
            "service thrashes its LRU (one store reload per evicted "
            "circuit, see 'evictions'), while consistent-hash routing "
            "keeps every circuit warm on its owning replica -- the "
            "cluster's aggregate cache is the sum of the replicas' "
            "budgets. 'uniform_capacity' gives every shape enough "
            "budget for the whole catalogue: on this single-core "
            "runner the in-process replicas then time-share one CPU, "
            "so ~1x is the honest expectation (CPU scaling needs the "
            "spawned multi-process shape on a multi-core host). "
            "'spawned_http' is that production shape end-to-end "
            "(repro-serve workers, keep-alive HTTP, shared store) at "
            "the same engine-bound budgets."),
    }


def check(report: dict, quick: bool) -> None:
    """Validate the report structure (the CI smoke contract)."""
    check_environment(report, "BENCH_cluster.json")
    for scenario in SCENARIOS:
        if scenario not in report["scenarios"]:
            raise SystemExit(f"BENCH_cluster.json missing scenario "
                             f"{scenario}")
    engine_bound = report["scenarios"]["engine_bound_mix"]
    for mode in ("single", "cluster_2", "cluster_3"):
        for key in MODE_KEYS:
            if key not in engine_bound[mode]:
                raise SystemExit(f"BENCH_cluster.json missing "
                                 f"engine_bound_mix.{mode}.{key}")
        rps = engine_bound[mode]["requests_per_second"]
        if not (isinstance(rps, float) and rps > 0.0):
            raise SystemExit(f"bad {mode} throughput: {rps!r}")
    spawned = report["scenarios"]["spawned_http"]
    for mode in ("single_worker", "two_workers"):
        if spawned[mode]["requests_per_second"] <= 0.0:
            raise SystemExit(f"bad spawned {mode} throughput")
    # The speedup floor is a full-mode criterion only: quick mode's
    # tiny streams are a structure check, not a timing gate (a noisy
    # shared CI runner must not flake the smoke job).
    if not quick:
        speedup = report["cluster_speedup"]
        if speedup <= 1.2:
            raise SystemExit(
                f"3-replica speedup {speedup:.2f}x not above the "
                f"1.2x floor on the engine-bound multi-circuit mix")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny streams (CI smoke mode)")
    parser.add_argument("--check", action="store_true",
                        help="validate the emitted JSON structure")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent / "out" /
                        "BENCH_cluster.json")
    args = parser.parse_args(argv)

    report = run(quick=args.quick)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    engine_bound = report["scenarios"]["engine_bound_mix"]
    for mode in ("single", "cluster_2", "cluster_3"):
        entry = engine_bound[mode]
        print(f"[engine_bound_mix] {mode}: "
              f"{entry['requests_per_second']:.0f} rps "
              f"({entry['evictions']} evictions)")
    print(f"[engine_bound_mix] speedups: "
          f"2 replicas {engine_bound['speedup_2']:.2f}x, "
          f"3 replicas {engine_bound['speedup_3']:.2f}x")
    uniform = report["scenarios"]["uniform_capacity"]
    print(f"[uniform_capacity] single "
          f"{uniform['single']['requests_per_second']:.0f} rps vs "
          f"cluster_3 {uniform['cluster_3']['requests_per_second']:.0f} "
          f"rps -> {uniform['speedup_3']:.2f}x (1-core box)")
    spawned = report["scenarios"]["spawned_http"]
    print(f"[spawned_http] 1 worker "
          f"{spawned['single_worker']['requests_per_second']:.0f} rps "
          f"vs 2 workers "
          f"{spawned['two_workers']['requests_per_second']:.0f} rps "
          f"-> {spawned['speedup']:.2f}x")
    print(f"headline cluster speedup (engine-bound mix, 3 replicas): "
          f"{report['cluster_speedup']:.2f}x")
    print(f"wrote {args.out}")
    if args.check:
        check(report, quick=args.quick)
        print("structure check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
