"""T-NFREQ -- test-vector length study (n = 1, 2, 3 frequencies).

The paper argues for a *minimal* set of frequencies and uses two; this
study quantifies what each additional frequency buys. In n > 2 the
intersection count generalises to a proximity surrogate and the
perpendicular classifier works unchanged in R^n (DESIGN.md, decision 2).

Expected shape: one frequency cannot separate 7 components (massive
trajectory overlap on a line); two frequencies reach the paper's
operating point; a third adds margin/robustness at 50 % more test time.
"""

from __future__ import annotations

from repro.ga import FrequencySpace, GAConfig, GeneticAlgorithm
from repro.ga.fitness import MarginFitness
from repro.trajectory import SignatureMapper
from repro.viz import table, write_csv

from _helpers import score_test_vector
from _helpers import SEED, write_report

NOISE_DB = 0.02
GA_BUDGET = GAConfig(population_size=64, generations=10)


def bench_tnfreq_study(benchmark, cut, cut_universe, cut_surface,
                       out_dir):
    def run_study():
        rows = []
        for count in (1, 2, 3):
            space = FrequencySpace(cut.f_min_hz, cut.f_max_hz, count)
            mapper = SignatureMapper(
                tuple(float(i + 1) for i in range(count)))
            # Margin-based fitness: the 2-D-only crossing count is not
            # defined for n=1 and saturates for n=3, the margin works
            # in every dimension.
            fitness = MarginFitness(cut_surface, mapper,
                                    margin_scale=0.01)
            result = GeneticAlgorithm(space, fitness, GA_BUDGET).run(
                seed=SEED)
            clean = score_test_vector(cut, cut_universe,
                                      result.best_freqs_hz)
            noisy = score_test_vector(cut, cut_universe,
                                      result.best_freqs_hz,
                                      noise_db=NOISE_DB, repeats=3,
                                      seed=SEED)
            margin = fitness.metrics_for(
                result.best_freqs_hz).min_separation
            rows.append([count,
                         "/".join(f"{f:.0f}"
                                  for f in result.best_freqs_hz),
                         clean.group_accuracy, noisy.group_accuracy,
                         margin])
        return rows

    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    headers = ["n freqs", "test vector [Hz]", "clean grp acc",
               "noisy grp acc", "margin [dB]"]
    formatted = [[r[0], r[1], f"{r[2] * 100:.1f}%", f"{r[3] * 100:.1f}%",
                  f"{r[4]:.4f}"] for r in rows]
    write_csv(out_dir / "tnfreq.csv", headers, rows)
    lines = ["T-NFREQ: test-vector length study "
             f"(margin fitness, {GA_BUDGET.population_size}x"
             f"{GA_BUDGET.generations} GA, noise {NOISE_DB} dB)", "",
             table(headers, formatted), ""]

    # --- Shape checks -------------------------------------------------
    by_count = {row[0]: row for row in rows}
    assert by_count[2][2] >= by_count[1][2], \
        "two frequencies must not separate worse than one"
    assert by_count[3][4] >= by_count[2][4] * 0.5, \
        "a third frequency should not collapse the margin"
    lines.append("shape check PASSED: the paper's n=2 operating point "
                 "dominates n=1; n=3 buys margin")
    write_report(out_dir, "tnfreq_report.txt", "\n".join(lines))