"""Shared evaluation helpers for the benchmark harness."""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.circuits import CircuitInfo
from repro.diagnosis import (
    TrajectoryClassifier,
    ambiguity_groups,
    evaluate_classifier,
    make_test_cases,
)
from repro.faults import FaultDictionary, FaultUniverse
from repro.trajectory import SignatureMapper, TrajectorySet, \
    evaluate_metrics

HELD_OUT = (-0.35, -0.25, -0.15, 0.15, 0.25, 0.35)

# One fixed seed makes every benchmark artefact reproducible run-to-run.
SEED = 2005  # the paper's publication year


# The single implementation lives in the corpus runner; BENCH_* and
# CORPUS_* artifacts share one environment-stamp format and validator.
from repro.corpus.runner import check_environment, \
    environment_info  # noqa: E402,F401


def write_report(out_dir: Path, name: str, text: str) -> None:
    """Persist an experiment's human-readable report and echo it."""
    (out_dir / name).write_text(text + "\n")
    print(text)


# Re-exported so every bench keeps one import root for its helpers;
# the single implementation lives in the package (the test suites use
# the same one).
from repro.runtime.testing import noisy_golden_rows  # noqa: E402,F401


def build_exact_classifier(info: CircuitInfo, universe: FaultUniverse,
                           freqs: Tuple[float, ...],
                           ambiguity_threshold: float = 0.01,
                           scale: str = "db"):
    """Trajectories + classifier simulated exactly at a test vector."""
    mapper = SignatureMapper(freqs, scale=scale)
    exact = FaultDictionary.build(universe, info.output_node,
                                  np.array(sorted(freqs), dtype=float),
                                  input_source=info.input_source)
    trajectories = TrajectorySet.from_source(exact, mapper)
    classifier = TrajectoryClassifier(trajectories, golden=exact.golden)
    groups = ambiguity_groups(trajectories, ambiguity_threshold)
    metrics = evaluate_metrics(trajectories)
    return mapper, classifier, groups, metrics


def score_test_vector(info: CircuitInfo, universe: FaultUniverse,
                      freqs: Tuple[float, ...],
                      noise_db: float = 0.0,
                      repeats: int = 1,
                      seed: Optional[int] = 0,
                      deviations: Sequence[float] = HELD_OUT,
                      classifier=None,
                      mapper=None,
                      groups=None,
                      scale: str = "db"):
    """Evaluate one test vector on held-out faults.

    Returns an EvaluationResult; pass a prebuilt classifier to score a
    non-trajectory diagnoser (e.g. the dictionary-NN baseline) under
    identical measurement conditions.
    """
    if classifier is None or mapper is None:
        mapper, classifier, derived_groups, _ = build_exact_classifier(
            info, universe, freqs, scale=scale)
        if groups is None:
            groups = derived_groups
    cases = make_test_cases(info, mapper,
                            components=universe.components,
                            deviations=deviations, noise_db=noise_db,
                            repeats=repeats, seed=seed)
    return evaluate_classifier(classifier, cases, groups=groups or ())
