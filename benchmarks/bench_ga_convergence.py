"""T-GA -- GA convergence under the paper's exact settings.

128 individuals, 15 generations, 50 % reproduction, 40 % mutation,
roulette-wheel selection, fitness 1/(1+I). Expected shape (DESIGN.md):
best fitness is non-decreasing (elitism) and reaches the 1.0 plateau
(I = 0) within the 15-generation budget on the biquad CUT.

The benchmark times one full GA run.
"""

from __future__ import annotations

import numpy as np

from repro.ga import FrequencySpace, GAConfig, GeneticAlgorithm, \
    PaperFitness
from repro.viz import ga_history_csv, table

from _helpers import SEED, write_report


def bench_tga_paper_run(benchmark, cut, cut_surface, out_dir):
    space = FrequencySpace(cut.f_min_hz, cut.f_max_hz, 2)

    def run():
        fitness = PaperFitness(cut_surface)
        engine = GeneticAlgorithm(space, fitness, GAConfig.paper())
        return engine.run(seed=SEED)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    ga_history_csv(out_dir / "tga_history.csv", result)

    rows = [[s.generation, s.best_fitness, s.mean_fitness,
             s.std_fitness] for s in result.history]
    history = table(["gen", "best", "mean", "std"], rows,
                    float_format="{:.4f}")
    lines = [
        "T-GA: paper GA configuration (128 x 15, roulette, "
        "fitness 1/(1+I))", "", history, "",
        result.summary(),
    ]

    # --- Shape checks -------------------------------------------------
    best = result.best_fitness_curve()
    assert np.all(np.diff(best) >= -1e-12), "elitism: monotone best"
    assert result.best_fitness >= 1.0, \
        "paper budget suffices to reach I = 0 on the biquad"
    lines.append("shape check PASSED: monotone convergence to the "
                 "intersection-free plateau within 15 generations")
    write_report(out_dir, "tga_report.txt", "\n".join(lines))


def bench_tga_multiseed_reliability(benchmark, cut, cut_surface,
                                    out_dir):
    """How often does the paper budget reach I=0? (5 seeds)"""
    space = FrequencySpace(cut.f_min_hz, cut.f_max_hz, 2)

    def run_many():
        hits = []
        for seed in range(5):
            fitness = PaperFitness(cut_surface)
            result = GeneticAlgorithm(space, fitness,
                                      GAConfig.paper()).run(seed=seed)
            hits.append(result.best_fitness >= 1.0)
        return hits

    hits = benchmark.pedantic(run_many, rounds=1, iterations=1)
    rate = float(np.mean(hits))
    text = (f"T-GA reliability: {sum(hits)}/5 seeds reached fitness 1.0 "
            f"({rate * 100:.0f}%)")
    assert rate >= 0.8, "paper budget should almost always converge"
    write_report(out_dir, "tga_reliability.txt", text)