"""FIG2 -- paper Fig. 2: the transformation into coordinate data.

Two curves -- H (golden) and K (faulty) -- are sampled at the test
frequencies f1, f2, yielding H(f1)=A1, H(f2)=A2, K(f1)=B1, K(f2)=B2 and
the XY points (A1, A2) and (B1, B2); translating by the golden point puts
the golden behaviour at the origin (the paper's simplification, which
the rest of the flow builds on).

The benchmark times the batched signature computation over the full
dictionary -- the operation the GA performs in its inner loop.
"""

from __future__ import annotations

import numpy as np

from repro.trajectory import SignatureMapper
from repro.viz import scatter_plot, table, write_csv

from _helpers import write_report

F1, F2 = 500.0, 1500.0


def bench_fig2_signature_matrix(benchmark, cut_surface):
    """Time: signatures of all 56 dictionary entries at (f1, f2)."""
    mapper = SignatureMapper((F1, F2))
    matrix = benchmark(lambda: mapper.signature_matrix(cut_surface))
    assert matrix.shape == (56, 2)


def bench_fig2_report(benchmark, cut_dictionary, out_dir):
    """Regenerate Fig. 2: sampling H and K at f1, f2 -> XY points."""
    golden = cut_dictionary.golden
    faulty = cut_dictionary.entry("R3+40%").response

    def sample():
        return (golden.magnitude_db_at(F1), golden.magnitude_db_at(F2),
                faulty.magnitude_db_at(F1), faulty.magnitude_db_at(F2))

    a1, a2, b1, b2 = benchmark.pedantic(sample, rounds=1, iterations=1)

    rows = [
        ["H (golden)", F1, a1],
        ["H (golden)", F2, a2],
        ["K (R3+40%)", F1, b1],
        ["K (R3+40%)", F2, b2],
    ]
    samples = table(["curve", "freq [Hz]", "|H| [dB]"], rows)
    write_csv(out_dir / "fig2_sampling.csv",
              ["curve", "freq_hz", "mag_db"], rows)

    golden_point = np.array([a1, a2])
    faulty_point = np.array([b1, b2])
    absolute = scatter_plot(
        {"H->(A1,A2)": golden_point[None, :],
         "K->(B1,B2)": faulty_point[None, :]},
        title="FIG2: sampled curves as XY points (absolute)",
        x_label=f"|H({F1:.0f} Hz)| dB", y_label=f"|H({F2:.0f} Hz)| dB")
    relative = scatter_plot(
        {"K - H": (faulty_point - golden_point)[None, :]},
        extra={"O": (0.0, 0.0)},
        title="FIG2: golden behaviour translated to the origin",
        x_label="delta dB @ f1", y_label="delta dB @ f2")

    # --- Shape checks -------------------------------------------------
    assert not np.allclose(golden_point, faulty_point), \
        "a 40% fault must move the signature point"
    distance = float(np.linalg.norm(faulty_point - golden_point))
    lines = [samples, "", absolute, "", relative, "",
             f"signature displacement |K - H| = {distance:.3f} dB"]
    assert distance > 0.5
    lines.append("shape check PASSED: fault displaces the XY point away "
                 "from the (translated) origin")
    write_report(out_dir, "fig2_report.txt", "\n".join(lines))