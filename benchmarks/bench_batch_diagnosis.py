"""T-RUNTIME -- serving-layer performance.

Measures the two hot paths the ``repro.runtime`` subsystem
industrialises:

* **batch vs per-response classification** -- the vectorised
  :class:`BatchDiagnoser` against a Python loop over
  ``TrajectoryClassifier.classify_point`` on the same point batch;
* **cold vs store-warmed pipeline runs** -- a full
  ``FaultTrajectoryATPG.run()`` against a repeat run served from a
  content-addressed :class:`ArtifactStore`.

Writes ``truntime_report.txt`` / ``truntime.csv`` with the measured
throughputs and speedups.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro import FaultTrajectoryATPG, PipelineConfig
from repro.runtime import ArtifactStore, BatchDiagnoser
from repro.viz import table, write_csv

from _helpers import SEED, write_report

BATCH_SIZE = 2048


@pytest.fixture(scope="module")
def engine(cut):
    """One quick pipeline run plus its batch diagnoser and a point
    batch drawn around the trajectories (mixed on/off-trajectory)."""
    result = FaultTrajectoryATPG(cut, PipelineConfig.quick()).run(
        seed=SEED)
    diagnoser = BatchDiagnoser(result.trajectories,
                               golden=result.classifier.golden)
    rng = np.random.default_rng(SEED)
    vertices = np.vstack([t.points for t in result.trajectories])
    span = float(np.abs(vertices).max()) or 1.0
    base = vertices[rng.integers(0, vertices.shape[0], BATCH_SIZE)]
    points = base + rng.normal(scale=0.05 * span, size=base.shape)
    return result, diagnoser, points


def bench_truntime_scalar_classify(benchmark, engine):
    result, _, points = engine
    diagnoses = benchmark(
        lambda: [result.classifier.classify_point(p) for p in points])
    assert len(diagnoses) == BATCH_SIZE


def bench_truntime_batch_classify(benchmark, engine):
    _, diagnoser, points = engine
    diagnoses = benchmark(lambda: diagnoser.classify_points(points))
    assert len(diagnoses) == BATCH_SIZE


def bench_truntime_store_warmed_run(benchmark, cut):
    """A warmed run (everything cache-hit) -- the repeat-query cost."""
    with tempfile.TemporaryDirectory() as root:
        store = ArtifactStore(root)
        atpg = FaultTrajectoryATPG(cut, PipelineConfig.quick())
        atpg.run(seed=SEED, store=store)        # populate

        result = benchmark(lambda: atpg.run(seed=SEED, store=store))
        assert set(result.cache_hits) == {"dictionary", "ga", "exact",
                                          "trajectories"}


def bench_truntime_summary(benchmark, engine, cut, out_dir):
    """One-shot throughput/speedup table for the report."""
    result, diagnoser, points = engine

    def measure():
        started = time.perf_counter()
        scalar = [result.classifier.classify_point(p) for p in points]
        scalar_s = time.perf_counter() - started
        started = time.perf_counter()
        batched = diagnoser.classify_points(points)
        batch_s = time.perf_counter() - started
        assert batched == scalar

        with tempfile.TemporaryDirectory() as root:
            store = ArtifactStore(root)
            atpg = FaultTrajectoryATPG(cut, PipelineConfig.quick())
            started = time.perf_counter()
            atpg.run(seed=SEED, store=store)
            cold_s = time.perf_counter() - started
            started = time.perf_counter()
            atpg.run(seed=SEED, store=store)
            warm_s = time.perf_counter() - started
        return scalar_s, batch_s, cold_s, warm_s

    scalar_s, batch_s, cold_s, warm_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    rows = [
        ["per-response classify", f"{BATCH_SIZE / scalar_s:,.0f}",
         f"{scalar_s * 1e3:.1f}", "1.0x"],
        ["batch classify", f"{BATCH_SIZE / batch_s:,.0f}",
         f"{batch_s * 1e3:.1f}", f"{scalar_s / batch_s:.1f}x"],
        ["cold pipeline run", "-", f"{cold_s * 1e3:.1f}", "1.0x"],
        ["store-warmed run", "-", f"{warm_s * 1e3:.1f}",
         f"{cold_s / warm_s:.1f}x"],
    ]
    headers = ["path", "points/s", "time [ms]", "speedup"]
    write_csv(out_dir / "truntime.csv", headers, rows)
    text = "\n".join([
        f"T-RUNTIME: serving-layer throughput "
        f"({BATCH_SIZE}-point batch, biquad CUT)",
        "",
        table(headers, rows),
    ])
    write_report(out_dir, "truntime_report.txt", text)
