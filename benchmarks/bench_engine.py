"""T-ENGINE -- stamp-once/solve-many simulation engine performance.

Measures the two hot paths the ``repro.sim.engine`` layer accelerates
and writes a machine-readable ``BENCH_engine.json``:

* **dictionary build, scalar vs batched** -- ``FaultDictionary.build``
  through :class:`ScalarMnaEngine` (one circuit assembly + sweep per
  fault, the historical path) against :class:`BatchedMnaEngine`
  (delta-stamped variants, chunked batched solves), in two regimes:

  - *dense*: the 401-point dictionary grid. Here LAPACK factorisation
    time dominates and is identical on both paths (same per-matrix
    solves, bitwise-equal results), so the speedup is modest;
  - *test_vector*: the exact dictionary at a 2-frequency test vector --
    the per-run pipeline stage and the serving-shaped workload. Here
    per-fault assembly overhead dominates the scalar path and
    stamp-once wins big.

* **GA generation evaluation, per-individual vs population** --
  ``fitness(vector)`` in a Python loop against
  ``fitness.score_population`` (one shared response-surface sampling
  pass + memo-deduplicated scoring) on identical fresh-cache
  populations.

Both comparisons assert result equality before timing is trusted.

Run standalone (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_engine.py [--quick] [--out F]

``--quick`` shrinks every workload for the CI smoke job; ``--check``
additionally validates the emitted JSON structure and exits non-zero on
a malformed report, so the harness cannot rot silently.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import (
    BatchedMnaEngine,
    ScalarMnaEngine,
    parametric_universe,
    tow_thomas_biquad,
)
from repro.faults import FaultDictionary, ResponseSurface
from repro.ga import PaperFitness
from repro.ga.encoding import FrequencySpace
from repro.units import log_frequency_grid

SEED = 2005

REQUIRED_KEYS = {
    "dictionary_build": ("dense", "test_vector"),
    "ga_evaluation": ("per_individual_s", "population_s", "speedup"),
    "telemetry_overhead": ("instrumented_s", "bare_s",
                           "overhead_fraction"),
}

#: Ceiling on the relative cost of the always-on profiling hooks over
#: a dictionary build (the serving acceptance bar).
MAX_TELEMETRY_OVERHEAD = 0.02


def _best_of(repeats, func):
    """Minimum wall time over ``repeats`` runs (noise-robust)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - started)
    return best, result


def _assert_identical(built, reference):
    assert built.labels == reference.labels
    assert np.array_equal(built.golden.values, reference.golden.values)
    for a, b in zip(built.entries, reference.entries):
        assert np.array_equal(a.response.values, b.response.values)


def bench_dictionary_build(info, universe, grid, repeats):
    """Scalar vs batched build on one grid; results asserted equal."""
    scalar_s, scalar = _best_of(repeats, lambda: FaultDictionary.build(
        universe, info.output_node, grid,
        input_source=info.input_source,
        engine=ScalarMnaEngine(info.circuit)))
    batched_s, batched = _best_of(repeats, lambda: FaultDictionary.build(
        universe, info.output_node, grid,
        input_source=info.input_source,
        engine=BatchedMnaEngine(info.circuit)))
    # Warm: the pipeline stamps once and reuses the engine across the
    # dense grid, the exact grid and held-out case generation.
    engine = BatchedMnaEngine(info.circuit)
    warm_s, _ = _best_of(repeats, lambda: FaultDictionary.build(
        universe, info.output_node, grid,
        input_source=info.input_source, engine=engine))
    _assert_identical(batched, scalar)
    return {
        "points": int(np.asarray(grid).size),
        "n_variants": len(universe) + 1,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "batched_warm_s": warm_s,
        "speedup": scalar_s / batched_s,
        "speedup_warm": scalar_s / warm_s,
    }


def bench_ga_evaluation(info, universe, grid, population_size, repeats):
    """Per-individual loop vs score_population on fresh caches."""
    dictionary = FaultDictionary.build(
        universe, info.output_node, grid,
        input_source=info.input_source)
    space = FrequencySpace(info.f_min_hz, info.f_max_hz, 2)
    rng = np.random.default_rng(SEED)
    population = space.random_population(rng, population_size)
    decoded = [space.decode(genome) for genome in population]

    def per_individual():
        fitness = PaperFitness(ResponseSurface(dictionary))
        return np.array([fitness(freqs) for freqs in decoded])

    def population_level():
        fitness = PaperFitness(ResponseSurface(dictionary))
        return fitness.score_population(decoded)

    individual_s, individual_scores = _best_of(repeats, per_individual)
    population_s, population_scores = _best_of(repeats, population_level)
    assert np.array_equal(individual_scores, population_scores)
    return {
        "population": population_size,
        "per_individual_s": individual_s,
        "population_s": population_s,
        "speedup": individual_s / population_s,
    }


def bench_telemetry_overhead(info, universe, grid, repeats):
    """Dictionary build with profiling sinks attached vs detached.

    The default instrumentation (installed on import of the runtime
    layer) stays on for the instrumented leg; the bare leg detaches
    every sink, so the hot paths skip their timestamps entirely.
    Results are asserted identical -- observability must not change
    the computation.
    """
    from repro import profiling
    from repro.runtime import telemetry

    telemetry.install_default_instrumentation()

    def build():
        return FaultDictionary.build(
            universe, info.output_node, grid,
            input_source=info.input_source,
            engine=BatchedMnaEngine(info.circuit))

    instrumented_s, instrumented = _best_of(repeats, build)
    with profiling.suspended():
        bare_s, bare = _best_of(repeats, build)
    _assert_identical(instrumented, bare)
    return {
        "points": int(np.asarray(grid).size),
        "instrumented_s": instrumented_s,
        "bare_s": bare_s,
        "overhead_fraction": instrumented_s / bare_s - 1.0,
    }


def run(quick: bool) -> dict:
    info = tow_thomas_biquad(ideal_opamps=False)
    universe = parametric_universe(info.circuit,
                                   components=info.faultable)
    dense_points = 101 if quick else 401
    repeats = 2 if quick else 5
    dense_grid = log_frequency_grid(info.f_min_hz, info.f_max_hz,
                                    dense_points)
    test_vector = np.array([500.0, 1500.0])

    report = {
        "benchmark": "T-ENGINE",
        "quick": quick,
        "circuit": info.circuit.name,
        "n_faults": len(universe),
        "dictionary_build": {
            "dense": bench_dictionary_build(info, universe, dense_grid,
                                            repeats),
            "test_vector": bench_dictionary_build(
                info, universe, test_vector,
                repeats=10 if quick else 30),
        },
        "ga_evaluation": bench_ga_evaluation(
            info, universe, dense_grid,
            population_size=32 if quick else 128,
            repeats=2 if quick else 3),
        "telemetry_overhead": bench_telemetry_overhead(
            info, universe, dense_grid,
            repeats=5 if quick else 8),
        "notes": (
            "All timed paths are asserted bitwise-equal before the "
            "numbers are trusted. 'test_vector' is the exact-dictionary "
            "stage every pipeline run and diagnosis request executes; "
            "'dense' is LAPACK-bound, so both paths share its floor."),
    }
    report["dictionary_build_speedup"] = \
        report["dictionary_build"]["test_vector"]["speedup"]
    return report


def check(report: dict) -> None:
    """Validate the report structure (the CI smoke contract)."""
    for key, fields in REQUIRED_KEYS.items():
        section = report[key]
        for field in fields:
            if field not in section:
                raise SystemExit(
                    f"BENCH_engine.json missing {key}.{field}")
    for regime in ("dense", "test_vector"):
        for field in ("scalar_s", "batched_s", "speedup"):
            value = report["dictionary_build"][regime][field]
            if not (isinstance(value, float) and value > 0.0):
                raise SystemExit(
                    f"BENCH_engine.json has bad "
                    f"dictionary_build.{regime}.{field}: {value!r}")
    if report["dictionary_build_speedup"] <= 0.0:
        raise SystemExit("bad headline dictionary_build_speedup")
    overhead = report["telemetry_overhead"]["overhead_fraction"]
    if overhead > MAX_TELEMETRY_OVERHEAD:
        raise SystemExit(
            f"telemetry overhead {overhead:.2%} exceeds the "
            f"{MAX_TELEMETRY_OVERHEAD:.0%} budget")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny workloads (CI smoke mode)")
    parser.add_argument("--check", action="store_true",
                        help="validate the emitted JSON structure")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent / "out" /
                        "BENCH_engine.json")
    args = parser.parse_args(argv)

    report = run(quick=args.quick)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    build = report["dictionary_build"]
    print(f"dictionary build (dense, {build['dense']['points']} pts): "
          f"scalar {build['dense']['scalar_s'] * 1e3:.1f} ms, "
          f"batched {build['dense']['batched_s'] * 1e3:.1f} ms "
          f"({build['dense']['speedup']:.2f}x)")
    tv = build["test_vector"]
    print(f"dictionary build (test vector, {tv['points']} pts): "
          f"scalar {tv['scalar_s'] * 1e3:.2f} ms, "
          f"batched {tv['batched_s'] * 1e3:.2f} ms "
          f"({tv['speedup']:.2f}x cold, {tv['speedup_warm']:.2f}x warm)")
    ga = report["ga_evaluation"]
    print(f"GA evaluation ({ga['population']} individuals): "
          f"per-individual {ga['per_individual_s'] * 1e3:.1f} ms, "
          f"population {ga['population_s'] * 1e3:.1f} ms "
          f"({ga['speedup']:.2f}x)")
    overhead = report["telemetry_overhead"]
    print(f"telemetry overhead (dictionary build, "
          f"{overhead['points']} pts): instrumented "
          f"{overhead['instrumented_s'] * 1e3:.1f} ms, bare "
          f"{overhead['bare_s'] * 1e3:.1f} ms "
          f"({overhead['overhead_fraction']:+.2%})")
    print(f"wrote {args.out}")
    if args.check:
        check(report)
        print("structure check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
