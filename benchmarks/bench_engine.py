"""T-ENGINE -- stamp-once/solve-many simulation engine performance.

Measures the two hot paths the ``repro.sim.engine`` layer accelerates
and writes a machine-readable ``BENCH_engine.json``:

* **dictionary build, scalar vs batched** -- ``FaultDictionary.build``
  through :class:`ScalarMnaEngine` (one circuit assembly + sweep per
  fault, the historical path) against :class:`BatchedMnaEngine`
  (delta-stamped variants, chunked batched solves), in two regimes:

  - *dense*: the 401-point dictionary grid. Here LAPACK factorisation
    time dominates and is identical on both paths (same per-matrix
    solves, bitwise-equal results), so the speedup is modest;
  - *test_vector*: the exact dictionary at a 2-frequency test vector --
    the per-run pipeline stage and the serving-shaped workload. Here
    per-fault assembly overhead dominates the scalar path and
    stamp-once wins big.

* **GA generation evaluation, per-individual vs population** --
  ``fitness(vector)`` in a Python loop against
  ``fitness.score_population`` (one shared response-surface sampling
  pass + memo-deduplicated scoring) on identical fresh-cache
  populations.

Both dictionary-build regimes additionally time
:class:`FactoredMnaEngine` (factor-once Sherman-Morrison-Woodbury
low-rank updates), and a **size sweep** over uniform RC ladders with a
fixed fault set maps where the low-rank path overtakes the dense one
as the MNA dimension grows.

Every comparison asserts result equality (bitwise for batched, scaled
tolerance for factored) before timing is trusted.

Run standalone (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_engine.py [--quick] [--out F]

``--quick`` shrinks every workload for the CI smoke job; ``--check``
additionally validates the emitted JSON structure and exits non-zero on
a malformed report, so the harness cannot rot silently.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import (
    BatchedMnaEngine,
    FactoredMnaEngine,
    ScalarMnaEngine,
    parametric_universe,
    tow_thomas_biquad,
)
from repro.circuits.library import rc_ladder
from repro.faults import FaultDictionary, ResponseSurface
from repro.ga import PaperFitness
from repro.ga.encoding import FrequencySpace
from repro.sim import VariantSpec
from repro.units import log_frequency_grid

from _helpers import check_environment, environment_info

SEED = 2005

REQUIRED_KEYS = {
    "dictionary_build": ("dense", "test_vector"),
    "ga_evaluation": ("per_individual_s", "population_s", "speedup"),
    "size_sweep": ("points", "fault_components", "cases"),
    "telemetry_overhead": ("instrumented_s", "bare_s",
                           "overhead_fraction"),
}

#: Factored-vs-scalar agreement bound (scaled; see the engine docs --
#: the low-rank path is a different floating-point computation).
FACTORED_RTOL = 1e-9

#: Ceiling on the relative cost of the always-on profiling hooks over
#: a dictionary build (the serving acceptance bar).
MAX_TELEMETRY_OVERHEAD = 0.02


def _best_of(repeats, func):
    """Minimum wall time over ``repeats`` runs (noise-robust)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - started)
    return best, result


def _assert_identical(built, reference):
    assert built.labels == reference.labels
    assert np.array_equal(built.golden.values, reference.golden.values)
    for a, b in zip(built.entries, reference.entries):
        assert np.array_equal(a.response.values, b.response.values)


def _assert_close(values, reference, context=""):
    """Scaled-tolerance agreement (the factored-engine contract)."""
    scale = max(float(np.max(np.abs(reference))), 1e-30)
    if not np.allclose(values, reference, rtol=FACTORED_RTOL,
                       atol=FACTORED_RTOL * scale):
        worst = float(np.max(np.abs(values - reference))) / scale
        raise AssertionError(
            f"factored path drifted {worst:.2e} (scaled) past "
            f"{FACTORED_RTOL:.0e} {context}")


def _assert_dictionary_close(built, reference):
    assert built.labels == reference.labels
    _assert_close(built.golden.values, reference.golden.values,
                  "on the golden response")
    for a, b in zip(built.entries, reference.entries):
        _assert_close(a.response.values, b.response.values,
                      f"on {a.response.label}")


def bench_dictionary_build(info, universe, grid, repeats):
    """Scalar vs batched vs factored build on one grid.

    Batched is asserted bitwise-equal to scalar; factored is asserted
    within the scaled ``FACTORED_RTOL`` band before its timing is
    trusted.
    """
    scalar_s, scalar = _best_of(repeats, lambda: FaultDictionary.build(
        universe, info.output_node, grid,
        input_source=info.input_source,
        engine=ScalarMnaEngine(info.circuit)))
    batched_s, batched = _best_of(repeats, lambda: FaultDictionary.build(
        universe, info.output_node, grid,
        input_source=info.input_source,
        engine=BatchedMnaEngine(info.circuit)))
    factored_s, factored = _best_of(
        repeats, lambda: FaultDictionary.build(
            universe, info.output_node, grid,
            input_source=info.input_source,
            engine=FactoredMnaEngine(info.circuit)))
    # Warm: the pipeline stamps once and reuses the engine across the
    # dense grid, the exact grid and held-out case generation.
    engine = BatchedMnaEngine(info.circuit)
    warm_s, _ = _best_of(repeats, lambda: FaultDictionary.build(
        universe, info.output_node, grid,
        input_source=info.input_source, engine=engine))
    factored_engine = FactoredMnaEngine(info.circuit)
    factored_warm_s, _ = _best_of(
        repeats, lambda: FaultDictionary.build(
            universe, info.output_node, grid,
            input_source=info.input_source, engine=factored_engine))
    _assert_identical(batched, scalar)
    _assert_dictionary_close(factored, scalar)
    return {
        "points": int(np.asarray(grid).size),
        "n_variants": len(universe) + 1,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "batched_warm_s": warm_s,
        "factored_s": factored_s,
        "factored_warm_s": factored_warm_s,
        "speedup": scalar_s / batched_s,
        "speedup_warm": scalar_s / warm_s,
        "speedup_factored": scalar_s / factored_s,
        "factored_vs_batched": batched_s / factored_s,
        "lowrank_fallbacks": sum(
            factored_engine.lowrank_fallbacks.values()),
    }


def bench_ga_evaluation(info, universe, grid, population_size, repeats):
    """Per-individual loop vs score_population on fresh caches."""
    dictionary = FaultDictionary.build(
        universe, info.output_node, grid,
        input_source=info.input_source)
    space = FrequencySpace(info.f_min_hz, info.f_max_hz, 2)
    rng = np.random.default_rng(SEED)
    population = space.random_population(rng, population_size)
    decoded = [space.decode(genome) for genome in population]

    def per_individual():
        fitness = PaperFitness(ResponseSurface(dictionary))
        return np.array([fitness(freqs) for freqs in decoded])

    def population_level():
        fitness = PaperFitness(ResponseSurface(dictionary))
        return fitness.score_population(decoded)

    individual_s, individual_scores = _best_of(repeats, per_individual)
    population_s, population_scores = _best_of(repeats, population_level)
    assert np.array_equal(individual_scores, population_scores)
    return {
        "population": population_size,
        "per_individual_s": individual_s,
        "population_s": population_s,
        "speedup": individual_s / population_s,
    }


#: Fault components timed at every ladder size -- fixed so the sweep
#: isolates circuit *dimension*, not fault count.
SWEEP_FAULT_COMPONENTS = 12
SWEEP_GRID_POINTS = 31


def bench_size_sweep(sections_list, repeats):
    """Engine times vs circuit size on uniform RC ladders.

    The MNA dimension grows linearly with ``sections`` while the fault
    set stays fixed, exposing the dense-vs-low-rank crossover: per
    variant the batched path refactors the full matrix at every
    frequency (O(n^3)) where the factored path reuses the nominal
    factorisation and solves a rank-<=2 capacitance system.
    """
    cases = []
    for sections in sections_list:
        info = rc_ladder(sections=sections)
        names = list(info.circuit.passive_names)
        step = max(1, len(names) // SWEEP_FAULT_COMPONENTS)
        chosen = tuple(names[::step][:SWEEP_FAULT_COMPONENTS])
        universe = parametric_universe(info.circuit,
                                       components=chosen,
                                       deviations=(-0.2, 0.2))
        grid = log_frequency_grid(info.f_min_hz, info.f_max_hz,
                                  SWEEP_GRID_POINTS)
        variants = (VariantSpec(name=info.circuit.name),) + \
            universe.variants()

        blocks = {}
        times = {}
        for kind in ("scalar", "batched", "factored"):
            def solve(kind=kind):
                engine = {"scalar": ScalarMnaEngine,
                          "batched": BatchedMnaEngine,
                          "factored": FactoredMnaEngine}[kind](
                              info.circuit)
                block = engine.transfer_block(
                    info.output_node, grid, variants,
                    info.input_source)
                return engine, block
            times[kind], (engine, blocks[kind]) = _best_of(repeats,
                                                           solve)
        assert np.array_equal(blocks["batched"].values,
                              blocks["scalar"].values)
        _assert_close(blocks["factored"].values,
                      blocks["scalar"].values,
                      f"on the {sections}-section ladder")
        cases.append({
            "sections": sections,
            "dim": int(engine.system.dim),
            "n_variants": len(variants),
            "sparse_factorisation": bool(engine.uses_sparse),
            "scalar_s": times["scalar"],
            "batched_s": times["batched"],
            "factored_s": times["factored"],
            "factored_vs_batched":
                times["batched"] / times["factored"],
        })
    return {
        "points": SWEEP_GRID_POINTS,
        "fault_components": SWEEP_FAULT_COMPONENTS,
        "cases": cases,
    }


def bench_telemetry_overhead(info, universe, grid, repeats):
    """Dictionary build with profiling sinks attached vs detached.

    The default instrumentation (installed on import of the runtime
    layer) stays on for the instrumented leg; the bare leg detaches
    every sink, so the hot paths skip their timestamps entirely.
    Results are asserted identical -- observability must not change
    the computation.
    """
    from repro import profiling
    from repro.runtime import telemetry

    telemetry.install_default_instrumentation()

    def build():
        return FaultDictionary.build(
            universe, info.output_node, grid,
            input_source=info.input_source,
            engine=BatchedMnaEngine(info.circuit))

    instrumented_s, instrumented = _best_of(repeats, build)
    with profiling.suspended():
        bare_s, bare = _best_of(repeats, build)
    _assert_identical(instrumented, bare)
    return {
        "points": int(np.asarray(grid).size),
        "instrumented_s": instrumented_s,
        "bare_s": bare_s,
        "overhead_fraction": instrumented_s / bare_s - 1.0,
    }


def run(quick: bool) -> dict:
    info = tow_thomas_biquad(ideal_opamps=False)
    universe = parametric_universe(info.circuit,
                                   components=info.faultable)
    dense_points = 101 if quick else 401
    repeats = 2 if quick else 5
    dense_grid = log_frequency_grid(info.f_min_hz, info.f_max_hz,
                                    dense_points)
    test_vector = np.array([500.0, 1500.0])

    report = {
        "benchmark": "T-ENGINE",
        "quick": quick,
        "environment": environment_info(),
        "circuit": info.circuit.name,
        "n_faults": len(universe),
        "dictionary_build": {
            "dense": bench_dictionary_build(info, universe, dense_grid,
                                            repeats),
            "test_vector": bench_dictionary_build(
                info, universe, test_vector,
                repeats=10 if quick else 30),
        },
        "ga_evaluation": bench_ga_evaluation(
            info, universe, dense_grid,
            population_size=32 if quick else 128,
            repeats=2 if quick else 3),
        "size_sweep": bench_size_sweep(
            (10, 30) if quick else (10, 25, 50, 100, 200),
            repeats=1 if quick else 2),
        "telemetry_overhead": bench_telemetry_overhead(
            info, universe, dense_grid,
            repeats=5 if quick else 8),
        "notes": (
            "Scalar and batched paths are asserted bitwise-equal, the "
            "factored path within its scaled tolerance band, before "
            "the numbers are trusted. 'test_vector' is the "
            "exact-dictionary stage every pipeline run and diagnosis "
            "request executes; 'dense' is LAPACK-bound for scalar/"
            "batched, which is exactly the per-variant refactorisation "
            "the factored engine's Sherman-Morrison-Woodbury updates "
            "avoid. The size sweep fixes the fault set and grows the "
            "RC-ladder dimension to expose the dense-vs-low-rank "
            "crossover."),
    }
    report["dictionary_build_speedup"] = \
        report["dictionary_build"]["test_vector"]["speedup"]
    report["factored_vs_batched_dense"] = \
        report["dictionary_build"]["dense"]["factored_vs_batched"]
    return report


def check(report: dict) -> None:
    """Validate the report structure (the CI smoke contract)."""
    check_environment(report, "BENCH_engine.json")
    for key, fields in REQUIRED_KEYS.items():
        section = report[key]
        for field in fields:
            if field not in section:
                raise SystemExit(
                    f"BENCH_engine.json missing {key}.{field}")
    for regime in ("dense", "test_vector"):
        for field in ("scalar_s", "batched_s", "factored_s",
                      "speedup", "factored_vs_batched"):
            value = report["dictionary_build"][regime][field]
            if not (isinstance(value, float) and value > 0.0):
                raise SystemExit(
                    f"BENCH_engine.json has bad "
                    f"dictionary_build.{regime}.{field}: {value!r}")
    if report["dictionary_build_speedup"] <= 0.0:
        raise SystemExit("bad headline dictionary_build_speedup")
    for case in report["size_sweep"]["cases"]:
        for field in ("scalar_s", "batched_s", "factored_s"):
            if not case[field] > 0.0:
                raise SystemExit(
                    f"bad size_sweep time {field} at "
                    f"{case['sections']} sections")
    if not report["quick"]:
        # Full-mode performance bars (quick mode only checks shape --
        # CI machines are too noisy for ratio assertions on tiny
        # workloads).
        headline = report["factored_vs_batched_dense"]
        if headline < 2.0:
            raise SystemExit(
                f"factored engine only {headline:.2f}x vs batched on "
                f"the dense build (bar: 2x)")
        if not any(case["factored_vs_batched"] > 1.0 for case in
                   report["size_sweep"]["cases"]):
            raise SystemExit(
                "size sweep shows no dense-vs-low-rank crossover")
    overhead = report["telemetry_overhead"]["overhead_fraction"]
    if overhead > MAX_TELEMETRY_OVERHEAD:
        raise SystemExit(
            f"telemetry overhead {overhead:.2%} exceeds the "
            f"{MAX_TELEMETRY_OVERHEAD:.0%} budget")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny workloads (CI smoke mode)")
    parser.add_argument("--check", action="store_true",
                        help="validate the emitted JSON structure")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent / "out" /
                        "BENCH_engine.json")
    args = parser.parse_args(argv)

    report = run(quick=args.quick)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    build = report["dictionary_build"]
    dense = build["dense"]
    print(f"dictionary build (dense, {dense['points']} pts): "
          f"scalar {dense['scalar_s'] * 1e3:.1f} ms, "
          f"batched {dense['batched_s'] * 1e3:.1f} ms "
          f"({dense['speedup']:.2f}x), "
          f"factored {dense['factored_s'] * 1e3:.1f} ms "
          f"({dense['factored_vs_batched']:.2f}x vs batched)")
    tv = build["test_vector"]
    print(f"dictionary build (test vector, {tv['points']} pts): "
          f"scalar {tv['scalar_s'] * 1e3:.2f} ms, "
          f"batched {tv['batched_s'] * 1e3:.2f} ms "
          f"({tv['speedup']:.2f}x cold, {tv['speedup_warm']:.2f}x "
          f"warm), factored {tv['factored_s'] * 1e3:.2f} ms")
    for case in report["size_sweep"]["cases"]:
        mode = "sparse" if case["sparse_factorisation"] else "dense"
        print(f"size sweep ({case['sections']} sections, dim "
              f"{case['dim']}, {mode} factorisation): scalar "
              f"{case['scalar_s'] * 1e3:.1f} ms, batched "
              f"{case['batched_s'] * 1e3:.1f} ms, factored "
              f"{case['factored_s'] * 1e3:.1f} ms "
              f"({case['factored_vs_batched']:.2f}x vs batched)")
    ga = report["ga_evaluation"]
    print(f"GA evaluation ({ga['population']} individuals): "
          f"per-individual {ga['per_individual_s'] * 1e3:.1f} ms, "
          f"population {ga['population_s'] * 1e3:.1f} ms "
          f"({ga['speedup']:.2f}x)")
    overhead = report["telemetry_overhead"]
    print(f"telemetry overhead (dictionary build, "
          f"{overhead['points']} pts): instrumented "
          f"{overhead['instrumented_s'] * 1e3:.1f} ms, bare "
          f"{overhead['bare_s'] * 1e3:.1f} ms "
          f"({overhead['overhead_fraction']:+.2%})")
    print(f"wrote {args.out}")
    if args.check:
        check(report)
        print("structure check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
