"""FIG3 -- paper Fig. 3: the R3 fault trajectory (left) and the
perpendicular-projection diagnosis of an unknown fault (right).

Uses the GA-selected test vector from the shared paper-configuration
pipeline run. The left half renders every component's trajectory through
the origin; the right half plants an off-grid unknown fault (R3 -25 %),
drops perpendiculars onto the known trajectories and reports the
distance ranking, exactly as the paper's (*) example.

The benchmark times a single diagnosis (classify_point) -- the per-device
cost of the deployed test.
"""

from __future__ import annotations

import numpy as np

from repro.sim import ACAnalysis
from repro.viz import table, trajectory_csv, trajectory_plot

from _helpers import write_report

UNKNOWN_COMPONENT = "R3"
UNKNOWN_DEVIATION = -0.25


def _unknown_point(result, cut):
    faulty = cut.circuit.scaled_value(UNKNOWN_COMPONENT,
                                      1.0 + UNKNOWN_DEVIATION)
    freqs = np.array(sorted(result.test_vector_hz))
    response = ACAnalysis(faulty).transfer(cut.output_node, freqs,
                                           cut.input_source)
    golden = result.classifier.golden
    return result.mapper.signature(response, golden)


def bench_fig3_classify(benchmark, paper_pipeline_result, cut):
    """Time: one perpendicular nearest-segment diagnosis."""
    point = _unknown_point(paper_pipeline_result, cut)
    diagnosis = benchmark(
        lambda: paper_pipeline_result.classifier.classify_point(point))
    assert diagnosis.component == UNKNOWN_COMPONENT


def bench_fig3_report(benchmark, paper_pipeline_result, cut, out_dir):
    result = paper_pipeline_result
    point = benchmark.pedantic(lambda: _unknown_point(result, cut),
                               rounds=1, iterations=1)
    diagnosis = result.diagnose_point(point)

    # Left: all trajectories (R3 highlighted by its own series).
    clouds = {}
    for trajectory in result.trajectories:
        clouds[trajectory.component] = trajectory.points
    left = trajectory_plot(
        clouds, unknown=(float(point[0]), float(point[1])),
        title=(f"FIG3: fault trajectories at GA test vector "
               f"[{result.test_vector_hz[0]:.0f} Hz, "
               f"{result.test_vector_hz[1]:.0f} Hz]; O=origin, "
               f"?=unknown fault"))
    trajectory_csv(out_dir / "fig3_trajectories.csv",
                   result.trajectories)

    # Right: perpendicular distance ranking (the paper's M/N decision).
    ranking_rows = [[component, distance]
                    for component, distance in diagnosis.ranking]
    ranking = table(["trajectory", "min distance [dB]"], ranking_rows,
                    float_format="{:.5f}")

    lines = [
        left, "",
        f"unknown fault: {UNKNOWN_COMPONENT} at "
        f"{UNKNOWN_DEVIATION * 100:+.0f}% (not in the dictionary grid)",
        "", ranking, "",
        f"diagnosis: {diagnosis.summary()}",
    ]

    # --- Shape checks -------------------------------------------------
    r3 = result.trajectories["R3"]
    assert np.allclose(r3.point_for(0.0), 0.0), \
        "trajectory passes through the origin (golden point)"
    deltas = np.diff(r3.points, axis=0)
    # Smooth and monotonic (paper Sec. 2.3): consecutive steps never
    # reverse direction.
    assert np.all(np.sum(deltas[1:] * deltas[:-1], axis=1) > 0.0)
    assert diagnosis.component == UNKNOWN_COMPONENT
    assert abs(diagnosis.estimated_deviation - UNKNOWN_DEVIATION) < 0.05
    lines.append("shape check PASSED: monotone trajectory through the "
                 "origin; off-grid fault assigned to the right "
                 "component with interpolated deviation")
    write_report(out_dir, "fig3_report.txt", "\n".join(lines))