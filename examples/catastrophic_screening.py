#!/usr/bin/env python3
"""Hard faults first: catastrophic screening in front of the trajectories.

The paper's parametric flow assumes the defective component still *has*
a value near nominal. Opens and shorts violate that -- their signature
points land far outside the trajectory cloud and a pure trajectory
diagnosis would extrapolate nonsense. This example composes the
catastrophic screen with the trajectory classifier and walks the full
fault menu of the biquad CUT through the hybrid.

Run:  python examples/catastrophic_screening.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FaultDictionary,
    SignatureMapper,
    TrajectoryClassifier,
    TrajectorySet,
    catastrophic_universe,
    parametric_universe,
    tow_thomas_biquad,
)
from repro.diagnosis import CatastrophicScreen, HybridClassifier
from repro.faults import CatastrophicFault, ParametricFault
from repro.sim import ACAnalysis
from repro.viz import table

FREQS = (500.0, 1500.0)


def main() -> None:
    info = tow_thomas_biquad(ideal_opamps=False)
    grid = np.array(sorted(FREQS))
    mapper = SignatureMapper(FREQS)

    # Parametric side: dictionary -> trajectories -> classifier.
    parametric = parametric_universe(info.circuit,
                                     components=info.faultable)
    pdict = FaultDictionary.build(parametric, info.output_node, grid)
    trajectories = TrajectorySet.from_source(pdict, mapper)
    soft = TrajectoryClassifier(trajectories, golden=pdict.golden)

    # Hard side: open/short dictionary -> screen.
    hard_universe = catastrophic_universe(info.circuit,
                                          components=info.faultable)
    cdict = FaultDictionary.build(hard_universe, info.output_node, grid)
    screen = CatastrophicScreen(cdict, mapper)

    hybrid = HybridClassifier(screen, soft)

    menu = [
        CatastrophicFault("R1", "open"),
        CatastrophicFault("C1", "short"),
        CatastrophicFault("R4", "open"),
        ParametricFault("R1", 0.25),
        ParametricFault("R2", -0.35),
        ParametricFault("C1", 0.15),
    ]
    rows = []
    for fault in menu:
        faulty = fault.apply(info.circuit)
        response = ACAnalysis(faulty).transfer(info.output_node, grid)
        verdict = hybrid.classify_response(response)
        if getattr(verdict, "is_catastrophic", False):
            described = f"{verdict.component} {verdict.kind}"
            kind = "hard"
        else:
            described = (f"{verdict.component} "
                         f"{verdict.estimated_deviation * 100:+.1f}%")
            kind = "parametric"
        rows.append([fault.label, kind, described])

    print(f"hybrid diagnosis at test vector {FREQS} Hz:")
    print()
    print(table(["injected", "stage", "verdict"], rows))
    print()
    print("reading: opens/shorts are intercepted by the signature "
          "screen (distance ~0 to a stored hard-fault point); softer "
          "parametric faults fall through to trajectory projection, "
          "which also estimates the deviation.")


if __name__ == "__main__":
    main()
