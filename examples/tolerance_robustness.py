#!/usr/bin/env python3
"""Robustness study: measurement noise and manufacturing tolerances.

A production test never sees the textbook circuit: every healthy
component sits somewhere inside its tolerance band and the instrument
adds noise. This example stresses the trajectory diagnosis with both
effects and compares the paper's 1/(1+I) fitness against the
margin-aware extension -- the library's headline ablation, here as a
runnable script.

Run:  python examples/tolerance_robustness.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CombinedFitness,
    FaultDictionary,
    GAConfig,
    GeneticAlgorithm,
    PaperFitness,
    ResponseSurface,
    TrajectoryClassifier,
    TrajectorySet,
    SignatureMapper,
    parametric_universe,
    tow_thomas_biquad,
)
from repro.diagnosis import ambiguity_groups, evaluate_classifier, \
    make_test_cases
from repro.ga import FrequencySpace
from repro.units import log_frequency_grid
from repro.viz import table

# One representative per structural ambiguity class of the biquad
# (R3/R5 and R4/C2 cannot be split by magnitude signatures; see
# DESIGN.md).
CLASS_REPRESENTATIVES = ("R1", "R2", "C1", "R3", "R4")
STRUCTURAL_GROUPS = (frozenset({"R1"}), frozenset({"R2"}),
                     frozenset({"C1"}), frozenset({"R3", "R5"}),
                     frozenset({"R4", "C2"}))


def evaluate_vector(info, universe, freqs, noise_db, tolerance, seed):
    """Exact-at-test-vector classifier, scored under stress."""
    mapper = SignatureMapper(freqs)
    exact = FaultDictionary.build(universe, info.output_node,
                                  np.array(sorted(freqs)),
                                  input_source=info.input_source)
    trajectories = TrajectorySet.from_source(exact, mapper)
    classifier = TrajectoryClassifier(trajectories, golden=exact.golden)
    cases = make_test_cases(info, mapper,
                            components=universe.components,
                            deviations=(-0.25, 0.25),
                            noise_db=noise_db, tolerance=tolerance,
                            repeats=5, seed=seed)
    return evaluate_classifier(classifier, cases,
                               groups=STRUCTURAL_GROUPS)


def main() -> None:
    info = tow_thomas_biquad(ideal_opamps=False)
    universe = parametric_universe(info.circuit,
                                   components=info.faultable)
    grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 401)
    surface = ResponseSurface(
        FaultDictionary.build(universe, info.output_node, grid,
                              input_source=info.input_source))
    space = FrequencySpace(info.f_min_hz, info.f_max_hz, 2)
    config = GAConfig(population_size=64, generations=10)

    searches = {
        "paper 1/(1+I)": PaperFitness(surface),
        "margin-aware": CombinedFitness(
            surface, components=CLASS_REPRESENTATIVES, margin_scale=0.1),
    }
    stress_levels = [
        ("clean", 0.0, 0.0),
        ("0.02 dB noise", 0.02, 0.0),
        ("1% tolerance", 0.0, 0.01),
        ("noise + tolerance", 0.02, 0.01),
    ]

    rows = []
    for label, fitness in searches.items():
        result = GeneticAlgorithm(space, fitness, config).run(seed=1)
        freqs = result.best_freqs_hz
        scores = []
        for _, noise_db, tolerance in stress_levels:
            evaluation = evaluate_vector(info, universe, freqs,
                                         noise_db, tolerance, seed=99)
            scores.append(f"{evaluation.group_accuracy * 100:.1f}%")
        rows.append([label,
                     f"{freqs[0]:.0f}/{freqs[1]:.0f}"] + scores)

    headers = (["fitness", "f1/f2 [Hz]"] +
               [name for name, _, _ in stress_levels])
    print("structural-class accuracy under measurement stress "
          "(biquad CUT, held-out +/-25%):")
    print()
    print(table(headers, rows))
    print()
    print("reading: the paper fitness stops at 'no intersections' and "
          "may pick a fragile test vector; rewarding the separation "
          "margin keeps the diagnosis stable once real-world noise and "
          "tolerances arrive.")


if __name__ == "__main__":
    main()
