#!/usr/bin/env python3
"""Quickstart: the full fault-trajectory flow on the paper's CUT.

Builds the Tow-Thomas biquad (the paper's normalized negative-feedback
low-pass filter with seven faultable passives), runs the end-to-end ATPG
pipeline -- fault dictionary, GA test-vector search, trajectory
construction -- and then diagnoses an "unknown" fault that is *not* in
the dictionary grid.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import FaultTrajectoryATPG, PipelineConfig, tow_thomas_biquad
from repro.sim import ACAnalysis
from repro.viz import trajectory_plot


def main() -> None:
    # 1. The circuit under test. ideal_opamps=False uses the single-pole
    #    op-amp macromodel (the paper's FFM-style active devices).
    info = tow_thomas_biquad(ideal_opamps=False)
    print(info.circuit.summary())
    print()

    # 2. Run the pipeline: fault universe (+/-10..40% per component),
    #    fault simulation, GA search for the two test frequencies,
    #    trajectory construction and classifier setup.
    #    PipelineConfig.paper() reproduces the paper's GA settings
    #    (128 x 15, roulette); quick() is a lighter budget for demos.
    pipeline = FaultTrajectoryATPG(info, PipelineConfig.quick())
    result = pipeline.run(seed=42)
    print(result.report())
    print()

    # 3. Draw the trajectories (paper Fig. 3, left).
    clouds = {t.component: t.points for t in result.trajectories}
    print(trajectory_plot(clouds, title="fault trajectories"))
    print()

    # 4. Fabricate an unknown fault: R2 at +25% -- between the
    #    dictionary's +20% and +30% grid points -- and measure the CUT
    #    at the two test frequencies.
    faulty = info.circuit.scaled_value("R2", 1.25)
    freqs = np.array(sorted(result.test_vector_hz))
    response = ACAnalysis(faulty).transfer(info.output_node, freqs)

    # 5. Diagnose: perpendiculars onto the trajectories name the
    #    component and interpolate the deviation.
    diagnosis = result.diagnose_response(response)
    print(f"injected:  R2 +25.0%")
    print(f"diagnosed: {diagnosis.summary()}")
    assert diagnosis.component == "R2"

    # 6. Quantify over all components and held-out deviations.
    evaluation = result.evaluate(deviations=(-0.25, -0.15, 0.15, 0.25))
    print()
    print(evaluation.summary())


if __name__ == "__main__":
    main()
