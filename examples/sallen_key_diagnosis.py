#!/usr/bin/env python3
"""Diagnosing a Sallen-Key low-pass, with an ambiguity-group lesson.

The unity-gain Sallen-Key has a structural degeneracy of its own: R1 and
R2 appear symmetrically in w0 (and only asymmetrically in Q through the
capacitor ratio), so some fault pairs are nearly indistinguishable from
the output magnitude alone. This example shows how the library surfaces
that through `ambiguity_groups` instead of silently guessing, and how
the diagnosis margin flags low-confidence verdicts.

Run:  python examples/sallen_key_diagnosis.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FaultTrajectoryATPG,
    PipelineConfig,
    sallen_key_lowpass,
)
from repro.sim import ACAnalysis


def main() -> None:
    info = sallen_key_lowpass(f0_hz=1e3)
    pipeline = FaultTrajectoryATPG(info, PipelineConfig.quick())
    result = pipeline.run(seed=7)
    print(result.report())
    print()

    # The pipeline reports which components the chosen test vector can
    # actually tell apart.
    for group in result.groups:
        members = ", ".join(sorted(group))
        kind = "ambiguous" if len(group) > 1 else "separable"
        print(f"  [{kind}] {{{members}}}")
    print()

    # Diagnose each component at an off-grid deviation and inspect the
    # margin: verdicts inside an ambiguity group come back with a thin
    # margin and diagnosis.ambiguous set.
    freqs = np.array(sorted(result.test_vector_hz))
    for component in info.faultable:
        faulty = info.circuit.scaled_value(component, 1.0 - 0.25)
        response = ACAnalysis(faulty).transfer(info.output_node, freqs)
        diagnosis = result.diagnose_response(response)
        flag = "AMBIGUOUS" if diagnosis.ambiguous else "confident"
        print(f"injected {component} -25%  ->  {diagnosis.component} "
              f"{diagnosis.estimated_deviation * 100.0:+.1f}%  "
              f"margin={diagnosis.margin:.4f}  [{flag}]")

    # Group-level evaluation is the honest score for this topology.
    evaluation = result.evaluate(deviations=(-0.25, 0.25))
    print()
    print(f"component accuracy: {evaluation.accuracy * 100.0:.1f}%")
    print(f"group accuracy:     "
          f"{evaluation.group_accuracy * 100.0:.1f}%")
    assert evaluation.group_accuracy == 1.0


if __name__ == "__main__":
    main()
