#!/usr/bin/env python3
"""GA study on the KHN state-variable filter: floors and knobs.

Two lessons on a 9-passive CUT:

1. **Structural fitness floor.** The KHN has exact overlap classes --
   R4/R5 enter only as a ratio, R6/C1 and R7/C2 only as products -- so
   trajectories of class members coincide and no test vector can remove
   those "common pathways". The paper fitness 1/(1+I) is pinned at its
   floor 1/(1+16) over the *full* fault universe, whatever the GA does.

2. **Hyper-parameters, once the problem is well-posed.** Restricting
   the search to one representative per class makes I = 0 reachable,
   and then the GA knobs the paper fixes (population, mutation,
   selection) can be compared meaningfully.

Run:  python examples/state_variable_ga_study.py
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import (
    FaultDictionary,
    GAConfig,
    GeneticAlgorithm,
    PaperFitness,
    ResponseSurface,
    khn_state_variable,
    parametric_universe,
)
from repro.ga import FrequencySpace
from repro.units import log_frequency_grid
from repro.viz import table

SEEDS = range(4)

# One representative per structural overlap class of the KHN:
# {R1} {R2} {R3} {R4,R5} {R6,C1} {R7,C2}.
CLASS_REPRESENTATIVES = ("R1", "R2", "R3", "R4", "R6", "R7")


def main() -> None:
    info = khn_state_variable(q=2.0)
    universe = parametric_universe(info.circuit,
                                   components=info.faultable)
    grid = log_frequency_grid(info.f_min_hz, info.f_max_hz, 301)
    dictionary = FaultDictionary.build(universe, info.output_node, grid)
    surface = ResponseSurface(dictionary)
    space = FrequencySpace(info.f_min_hz, info.f_max_hz, 2)

    # Lesson 1: the structural floor of the full universe.
    full = PaperFitness(surface)
    result = GeneticAlgorithm(space, full, GAConfig.paper()).run(seed=0)
    floor = 1.0 / (1.0 + 16.0)
    print(f"CUT: {info.circuit.name} "
          f"({len(info.faultable)} fault targets)")
    print(f"full-universe GA best fitness: {result.best_fitness:.4f} "
          f"(structural floor 1/(1+16) = {floor:.4f})")
    print("  -> R4/R5, R6/C1 and R7/C2 overlap exactly; no frequency "
          "pair can separate them.")
    print()

    # Lesson 2: hyper-parameter study on the well-posed search.
    base = GAConfig(population_size=64, generations=10)
    variants = {
        "base (64x10, roulette)": base,
        "small population (16)": dataclasses.replace(
            base, population_size=16),
        "high mutation (0.8)": dataclasses.replace(
            base, mutation_rate=0.8),
        "no crossover": dataclasses.replace(base, crossover_rate=0.0),
        "tournament selection": dataclasses.replace(
            base, selection="tournament"),
        "paper budget (128x15)": GAConfig.paper(),
    }

    rows = []
    for label, config in variants.items():
        fitness = PaperFitness(surface,
                               components=CLASS_REPRESENTATIVES)
        best = []
        for seed in SEEDS:
            fitness.cache_clear()
            run = GeneticAlgorithm(space, fitness, config).run(seed=seed)
            best.append(run.best_fitness)
        rows.append([
            label,
            f"{np.mean(best):.3f}",
            f"{np.mean([b >= 1.0 for b in best]) * 100:.0f}%",
            config.population_size * config.generations,
        ])

    print("search over class representatives "
          f"{CLASS_REPRESENTATIVES}:")
    print()
    print(table(["configuration", "mean best fitness",
                 "reached I=0", "eval budget"], rows))
    print()
    print("reading: once the degenerate classes are collapsed the "
          "plateau is easy to reach; even small budgets usually find a "
          "conflict-free test vector, which is why the paper's 128x15 "
          "configuration converges so comfortably.")


if __name__ == "__main__":
    main()
