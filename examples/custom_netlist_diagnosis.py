#!/usr/bin/env python3
"""Bring-your-own-circuit: diagnosis from a SPICE-like netlist.

Parses a textual netlist (the format most board-level tools can emit),
wraps it in a CircuitInfo and runs the fault-trajectory pipeline on it.
Shows the parser round-trip and fault targets chosen by hand.

Run:  python examples/custom_netlist_diagnosis.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CircuitInfo,
    FaultTrajectoryATPG,
    PipelineConfig,
    parse_netlist,
)
from repro.circuits import circuit_to_netlist
from repro.sim import ACAnalysis

# An active band-pass built from two RC sections and a gain stage --
# something a test engineer might paste out of a schematic export.
NETLIST = """\
* two-stage active band-pass
VIN in 0 DC 0 AC 1
C1 in hp1 100n          ; high-pass section
R1 hp1 0 3.3k
R2 hp1 lp1 4.7k         ; low-pass section
C2 lp1 0 22n
X1 lp1 fb out opamp_macro a0=2e5 pole_hz=5
R3 fb 0 1k              ; gain = 1 + R4/R3
R4 fb out 9.1k
.end
"""


def main() -> None:
    circuit = parse_netlist(NETLIST)
    print("parsed netlist:")
    print(circuit.summary())
    print()
    print("serialised back:")
    print(circuit_to_netlist(circuit))

    info = CircuitInfo(
        circuit=circuit,
        input_source="VIN",
        output_node="out",
        faultable=("C1", "R1", "R2", "C2", "R3", "R4"),
        f0_hz=500.0,
        f_min_hz=5.0,
        f_max_hz=500e3,
        description="custom two-stage band-pass from a netlist",
    )

    result = FaultTrajectoryATPG(info, PipelineConfig.quick()).run(
        seed=13)
    print(result.report())
    print()

    # Inject an off-grid fault on the feedback resistor and diagnose.
    faulty = circuit.scaled_value("R4", 1.0 + 0.35)
    freqs = np.array(sorted(result.test_vector_hz))
    response = ACAnalysis(faulty).transfer(info.output_node, freqs)
    diagnosis = result.diagnose_response(response)
    print(f"injected:  R4 +35%")
    print(f"diagnosed: {diagnosis.summary()}")

    evaluation = result.evaluate(deviations=(-0.25, 0.25))
    print()
    print(evaluation.summary())


if __name__ == "__main__":
    main()
