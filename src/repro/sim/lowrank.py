"""Low-rank delta factorisation + factor-once nominal solves.

Support machinery for :class:`~repro.sim.engine.FactoredMnaEngine`:

* :func:`variant_delta` turns a variant's replacement stamp-ops into a
  :class:`LowRankDelta` -- the dense ``(r, c)`` blocks ``delta_g`` /
  ``delta_b`` such that the variant's MNA matrix is
  ``A_v(s) = A(s) + E_rows @ (delta_g + s * delta_b) @ E_cols.T``
  (``E_*`` are identity-column selections). Single-component faults
  touch 1-4 rows/columns, so the blocks are tiny.
* :class:`NominalFactorSolver` factors the *nominal* ``A(s) = G + s B``
  once per frequency and solves a shared multi-column right-hand side
  (the stimulus vector plus one identity column per touched row) --
  either with one batched dense LAPACK call per frequency chunk, or
  through :func:`scipy.sparse.linalg.splu` when scipy is importable and
  the circuit is large enough for sparsity to pay.

The module deliberately knows nothing about circuits or engines: it
consumes :class:`~repro.sim.mna.ComponentOps` streams and numpy arrays,
so it is unit-testable in isolation and free of import cycles.

scipy is **optional**: every entry point degrades to the numpy dense
path when it is absent (the CI tier runs without scipy to pin this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError, SingularCircuitError
from .mna import ComponentOps

__all__ = [
    "LowRankDelta",
    "NominalFactorSolver",
    "scipy_sparse",
    "singular_bounds",
    "solve_capacitance",
    "variant_delta",
]


def scipy_sparse():
    """The ``scipy.sparse`` module, or ``None`` when scipy is absent.

    Import is attempted lazily on every call (cheap: ``sys.modules``
    hit after the first) so tests can simulate a scipy-less install by
    patching this function rather than the import machinery.
    """
    try:
        import scipy.sparse  # noqa: PLC0415
        import scipy.sparse.linalg  # noqa: PLC0415
    except Exception:
        return None
    return scipy.sparse


@dataclass(frozen=True)
class LowRankDelta:
    """One variant's MNA perturbation as dense blocks on a tiny support.

    ``rows`` / ``cols`` index the touched matrix entries;
    ``delta_g[i, j]`` / ``delta_b[i, j]`` are the exact changes to
    ``G[rows[i], cols[j]]`` / ``B[rows[i], cols[j]]``. ``rhs_rows`` /
    ``rhs_delta`` carry changes to the AC right-hand side (stimulus
    source replacements). Entries whose net change is exactly zero are
    dropped, so the support is the *numerically* touched set.
    """

    rows: Tuple[int, ...]
    cols: Tuple[int, ...]
    delta_g: np.ndarray
    delta_b: np.ndarray
    rhs_rows: Tuple[int, ...]
    rhs_delta: np.ndarray

    @property
    def rank(self) -> int:
        """Upper bound on the update rank (support size)."""
        return max(len(self.rows), len(self.cols))

    @property
    def is_identity(self) -> bool:
        """True when the replacement changes nothing at all."""
        return not self.rows and not self.rhs_rows

    @property
    def signature(self) -> Tuple[Tuple[int, ...], Tuple[int, ...],
                                 Tuple[int, ...]]:
        """Support key -- same-signature variants batch into one solve."""
        return (self.rows, self.cols, self.rhs_rows)


def variant_delta(nominal_ops: Mapping[str, ComponentOps],
                  replaced: Mapping[str, ComponentOps]) -> LowRankDelta:
    """Exact stamp delta of a replacement set vs the nominal ops.

    Both mappings must hold structurally identical op streams per
    component (the engine validates this before calling); the delta of
    an entry is then the position-wise sum of ``new - old`` values, and
    contributions from untouched components cancel exactly.
    """
    matrix: Dict[Tuple[str, int, int], complex] = {}
    rhs: Dict[int, complex] = {}
    for name, new_ops in replaced.items():
        old_ops = nominal_ops[name]
        for (target, row, col, new_value), (_, _, _, old_value) in \
                zip(new_ops.matrix_ops, old_ops.matrix_ops):
            change = complex(new_value) - complex(old_value)
            if change != 0:
                key = (target, row, col)
                matrix[key] = matrix.get(key, 0j) + change
        for (target, row, new_value), (_, _, old_value) in \
                zip(new_ops.rhs_ops, old_ops.rhs_ops):
            if target != "ac":
                continue
            change = complex(new_value) - complex(old_value)
            if change != 0:
                rhs[row] = rhs.get(row, 0j) + change
    # Net-zero entries (e.g. a replacement with the nominal value)
    # shrink the support back out.
    matrix = {key: value for key, value in matrix.items() if value != 0}
    rhs = {row: value for row, value in rhs.items() if value != 0}

    rows = tuple(sorted({key[1] for key in matrix}))
    cols = tuple(sorted({key[2] for key in matrix}))
    row_pos = {row: i for i, row in enumerate(rows)}
    col_pos = {col: j for j, col in enumerate(cols)}
    delta_g = np.zeros((len(rows), len(cols)), dtype=complex)
    delta_b = np.zeros((len(rows), len(cols)), dtype=complex)
    for (target, row, col), value in matrix.items():
        block = delta_g if target == "g" else delta_b
        block[row_pos[row], col_pos[col]] += value
    rhs_rows = tuple(sorted(rhs))
    rhs_delta = np.array([rhs[row] for row in rhs_rows], dtype=complex)
    return LowRankDelta(rows, cols, delta_g, delta_b, rhs_rows,
                        rhs_delta)


def singular_bounds(cap: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(smax, smin)`` of each trailing ``r x r`` block of ``cap``.

    Ranks 1 and 2 -- the overwhelmingly common capacitance sizes for
    single-component faults -- use closed forms (``smax*smin = |det|``
    and ``smax^2+smin^2 = ||.||_F^2``), avoiding one LAPACK SVD call
    per tiny matrix; larger blocks fall back to batched
    ``np.linalg.svd``. Inputs must be finite.
    """
    rank = cap.shape[-1]
    if rank == 1:
        magnitude = np.abs(cap[..., 0, 0])
        return magnitude, magnitude
    if rank == 2:
        frob2 = np.abs(cap[..., 0, 0]) ** 2 + \
            np.abs(cap[..., 0, 1]) ** 2 + \
            np.abs(cap[..., 1, 0]) ** 2 + np.abs(cap[..., 1, 1]) ** 2
        absdet = np.abs(cap[..., 0, 0] * cap[..., 1, 1] -
                        cap[..., 0, 1] * cap[..., 1, 0])
        disc = np.sqrt(np.maximum(frob2 * frob2 - 4.0 * absdet * absdet,
                                  0.0))
        smax = np.sqrt((frob2 + disc) / 2.0)
        # smin from the product identity: exact and immune to the
        # cancellation the subtractive form suffers when smin << smax.
        smin = np.divide(absdet, smax, out=np.zeros_like(absdet),
                         where=smax > 0.0)
        return smax, smin
    singulars = np.linalg.svd(cap, compute_uv=False)
    return singulars[..., 0], singulars[..., -1]


def solve_capacitance(cap: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve each ``(r, r)`` block against its ``(r, 1)`` column.

    Returns shape ``(..., r)``. Ranks 1 and 2 use division / Cramer's
    rule (the conditioning guard has already bounded ``cond(cap)``, so
    the closed forms are as accurate as an LU here); larger blocks use
    batched ``np.linalg.solve``.
    """
    rank = cap.shape[-1]
    if rank == 1:
        return rhs[..., 0] / cap[..., 0]
    if rank == 2:
        a = cap[..., 0, 0]
        b = cap[..., 0, 1]
        c = cap[..., 1, 0]
        d = cap[..., 1, 1]
        r0 = rhs[..., 0, 0]
        r1 = rhs[..., 1, 0]
        det = a * d - b * c
        return np.stack(((d * r0 - b * r1) / det,
                         (a * r1 - c * r0) / det), axis=-1)
    return np.linalg.solve(cap, rhs)[..., 0]


class NominalFactorSolver:
    """Factor ``A(s) = G + s B`` once per frequency, solve many columns.

    ``solve`` returns the ``(F, n, m)`` solution of the *nominal*
    system against a shared ``(n, m)`` right-hand-side block. The dense
    path issues one batched LAPACK call (one LU per frequency amortised
    over all ``m`` columns -- the factor-once economy the engine is
    built on); the sparse path assembles ``scipy.sparse`` CSC matrices
    once and runs ``splu`` per frequency so factorisation cost scales
    with nonzeros instead of ``n^2``.
    """

    def __init__(self, g: np.ndarray, b: np.ndarray, *,
                 sparse: bool = False, label: str = "circuit") -> None:
        self.label = label
        self.sparse = bool(sparse)
        if self.sparse:
            sp = scipy_sparse()
            if sp is None:
                raise SimulationError(
                    f"{label}: sparse nominal factorisation requested "
                    "but scipy is not installed")
            self._g_sp = sp.csc_matrix(g)
            self._b_sp = sp.csc_matrix(b)
            self._splu = sp.linalg.splu
        else:
            self._g = np.asarray(g, dtype=complex)
            self._b = np.asarray(b, dtype=complex)

    def solve(self, s_values: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A(s) x = rhs`` for every ``s``; returns ``(F, n, m)``."""
        s_values = np.asarray(s_values, dtype=complex)
        rhs = np.asarray(rhs, dtype=complex)
        if self.sparse:
            out = self._solve_sparse(s_values, rhs)
        else:
            out = self._solve_dense(s_values, rhs)
        if not np.all(np.isfinite(out)):
            raise SingularCircuitError(
                f"{self.label}: non-finite nominal solution in AC "
                "sweep; check for floating nodes, voltage-source loops "
                "or op-amps without feedback")
        return out

    def _solve_dense(self, s_values: np.ndarray,
                     rhs: np.ndarray) -> np.ndarray:
        stack = self._g[None, :, :] + \
            s_values[:, None, None] * self._b[None, :, :]
        rhs_stack = np.ascontiguousarray(np.broadcast_to(
            rhs[None, :, :], (s_values.size,) + rhs.shape))
        try:
            return np.linalg.solve(stack, rhs_stack)
        except np.linalg.LinAlgError as exc:
            raise SingularCircuitError(
                f"{self.label}: nominal MNA matrix singular in AC "
                "sweep; check for floating nodes, voltage-source loops "
                "or op-amps without feedback") from exc

    def _solve_sparse(self, s_values: np.ndarray,
                      rhs: np.ndarray) -> np.ndarray:
        out = np.empty((s_values.size,) + rhs.shape, dtype=complex)
        for index, s in enumerate(s_values):
            matrix = (self._g_sp + s * self._b_sp).tocsc()
            try:
                factor = self._splu(matrix)
            except (RuntimeError, ValueError) as exc:
                raise SingularCircuitError(
                    f"{self.label}: nominal MNA matrix singular at "
                    f"s={s!r}; check for floating nodes, voltage-source "
                    "loops or op-amps without feedback") from exc
            out[index] = factor.solve(rhs)
        return out
