"""AC small-signal analysis and the :class:`FrequencyResponse` container.

``ACAnalysis`` drives a batched MNA sweep and returns transfer functions
normalised by the stimulus phasor, so a source with ``AC 1 0`` gives
``H(f) = V(out)(f)`` directly (SPICE ``.AC`` semantics).
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..circuits.components import CurrentSource, VoltageSource
from ..circuits.netlist import Circuit
from ..errors import SimulationError
from ..units import db, log_frequency_grid
from .mna import MnaSystem

__all__ = ["FrequencyResponse", "ACAnalysis", "source_phasor"]


def source_phasor(component, source_name: str) -> complex:
    """AC stimulus phasor of an independent source, with validation.

    Shared by :class:`ACAnalysis` and the simulation engines so the
    stimulus normalisation (and its error surface) cannot diverge
    between the scalar and batched paths.
    """
    if not isinstance(component, (VoltageSource, CurrentSource)):
        raise SimulationError(
            f"{source_name!r} is not an independent source")
    if component.ac_magnitude <= 0.0:
        raise SimulationError(
            f"{source_name!r} has no AC magnitude; set ac=... on the "
            "stimulus source")
    return component.ac_magnitude * cmath.exp(
        1j * math.radians(component.ac_phase_deg))


@dataclass(frozen=True)
class FrequencyResponse:
    """A complex transfer function sampled on a frequency grid.

    Interpolation is performed on a log-frequency axis: magnitudes are
    interpolated in dB and phases in unwrapped radians, which is accurate
    for the smooth rational responses of linear analog networks.
    """

    freqs_hz: np.ndarray
    values: np.ndarray
    output: str = "out"
    label: str = ""

    def __post_init__(self) -> None:
        freqs = np.asarray(self.freqs_hz, dtype=float)
        values = np.asarray(self.values, dtype=complex)
        if freqs.ndim != 1 or values.shape != freqs.shape:
            raise SimulationError(
                "FrequencyResponse needs 1-D freqs and values of equal "
                f"length, got {freqs.shape} and {values.shape}")
        if freqs.size < 1:
            raise SimulationError("FrequencyResponse needs at least 1 point")
        if np.any(freqs <= 0.0):
            raise SimulationError("frequencies must be positive")
        if np.any(np.diff(freqs) <= 0.0):
            raise SimulationError("frequency grid must be strictly "
                                  "increasing")
        object.__setattr__(self, "freqs_hz", freqs)
        object.__setattr__(self, "values", values)

    @classmethod
    def _trusted(cls, freqs_hz: np.ndarray, values: np.ndarray,
                 output: str, label: str) -> "FrequencyResponse":
        """Construct without re-validating an already-checked grid.

        Internal fast path for :class:`~repro.sim.engine.ResponseBlock`,
        which validates the shared grid once and slices many responses
        out of one value matrix. ``freqs_hz``/``values`` must already be
        float/complex arrays satisfying the ``__post_init__`` contract.
        """
        response = object.__new__(cls)
        object.__setattr__(response, "freqs_hz", freqs_hz)
        object.__setattr__(response, "values", values)
        object.__setattr__(response, "output", output)
        object.__setattr__(response, "label", label)
        return response

    def __len__(self) -> int:
        return int(self.freqs_hz.size)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def magnitude(self) -> np.ndarray:
        return np.abs(self.values)

    @property
    def magnitude_db(self) -> np.ndarray:
        return np.asarray(db(self.values), dtype=float)

    @property
    def phase_rad(self) -> np.ndarray:
        return np.unwrap(np.angle(self.values))

    @property
    def phase_deg(self) -> np.ndarray:
        return np.degrees(self.phase_rad)

    def group_delay(self) -> np.ndarray:
        """Group delay ``-d(phase)/d(omega)`` in seconds."""
        omega = 2.0 * np.pi * self.freqs_hz
        return -np.gradient(self.phase_rad, omega)

    # ------------------------------------------------------------------
    # Interpolation
    # ------------------------------------------------------------------
    def _log_f(self) -> np.ndarray:
        return np.log10(self.freqs_hz)

    def magnitude_db_at(self, freqs_hz) -> np.ndarray | float:
        """dB magnitude at arbitrary frequencies (log-f interpolation).

        Queries outside the grid clamp to the endpoints.
        """
        query = np.asarray(freqs_hz, dtype=float)
        scalar = query.ndim == 0
        query = np.atleast_1d(query)
        if np.any(query <= 0.0):
            raise SimulationError("query frequencies must be positive")
        result = np.interp(np.log10(query), self._log_f(),
                           self.magnitude_db)
        return float(result[0]) if scalar else result

    def magnitude_at(self, freqs_hz) -> np.ndarray | float:
        out = self.magnitude_db_at(freqs_hz)
        return np.power(10.0, np.asarray(out) / 20.0) if not np.isscalar(
            out) else 10.0 ** (out / 20.0)

    def phase_rad_at(self, freqs_hz) -> np.ndarray | float:
        query = np.asarray(freqs_hz, dtype=float)
        scalar = query.ndim == 0
        query = np.atleast_1d(query)
        result = np.interp(np.log10(query), self._log_f(), self.phase_rad)
        return float(result[0]) if scalar else result

    def at(self, freqs_hz) -> np.ndarray | complex:
        """Complex response at arbitrary frequencies (mag/phase interp)."""
        magnitude = np.atleast_1d(np.asarray(self.magnitude_at(freqs_hz)))
        phase = np.atleast_1d(np.asarray(self.phase_rad_at(freqs_hz)))
        values = magnitude * np.exp(1j * phase)
        if np.asarray(freqs_hz).ndim == 0:
            return complex(values[0])
        return values

    def resampled(self, freqs_hz: np.ndarray) -> "FrequencyResponse":
        """Response interpolated onto a new grid."""
        values = np.atleast_1d(np.asarray(self.at(freqs_hz)))
        return FrequencyResponse(np.asarray(freqs_hz, dtype=float), values,
                                 self.output, self.label)

    # ------------------------------------------------------------------
    # Characteristics
    # ------------------------------------------------------------------
    def dc_gain_db(self) -> float:
        """Magnitude at the lowest simulated frequency."""
        return float(self.magnitude_db[0])

    def peak(self) -> tuple[float, float]:
        """(frequency, dB) of the magnitude maximum."""
        index = int(np.argmax(self.magnitude_db))
        return float(self.freqs_hz[index]), float(self.magnitude_db[index])

    def notch(self) -> tuple[float, float]:
        """(frequency, dB) of the magnitude minimum."""
        index = int(np.argmin(self.magnitude_db))
        return float(self.freqs_hz[index]), float(self.magnitude_db[index])

    def cutoff_3db(self, reference_db: Optional[float] = None) -> float:
        """First frequency where magnitude falls 3 dB below the reference.

        The reference defaults to the low-frequency gain. Raises if the
        response never crosses the threshold.
        """
        reference = (self.dc_gain_db() if reference_db is None
                     else float(reference_db))
        threshold = reference - 3.0103
        mags = self.magnitude_db
        below = np.nonzero(mags <= threshold)[0]
        if below.size == 0:
            raise SimulationError(
                f"{self.label or self.output}: response never falls 3 dB "
                "below the reference within the simulated band")
        index = int(below[0])
        if index == 0:
            return float(self.freqs_hz[0])
        # Log-linear interpolation between the bracketing grid points.
        f_lo, f_hi = self.freqs_hz[index - 1], self.freqs_hz[index]
        m_lo, m_hi = mags[index - 1], mags[index]
        if m_hi == m_lo:
            return float(f_hi)
        fraction = (threshold - m_lo) / (m_hi - m_lo)
        return float(10.0 ** (math.log10(f_lo) +
                              fraction * math.log10(f_hi / f_lo)))


class ACAnalysis:
    """Small-signal frequency-domain analysis of one circuit."""

    def __init__(self, circuit: Circuit, gmin: float = 0.0) -> None:
        self.circuit = circuit
        self.system = MnaSystem(circuit, gmin=gmin)

    def _source_phasor(self, source_name: str) -> complex:
        return source_phasor(self.circuit[source_name], source_name)

    def transfer(self, output_node: str,
                 freqs_hz: np.ndarray | Sequence[float],
                 input_source: Optional[str] = None) -> FrequencyResponse:
        """Transfer function ``V(output) / stimulus`` over a grid."""
        source_name = input_source or self.circuit.ac_source_name()
        phasor = self._source_phasor(source_name)
        freqs = np.asarray(freqs_hz, dtype=float)
        solutions = self.system.solve_frequencies(freqs, excitation="ac")
        index = self.system.node_index(output_node)
        if index < 0:
            values = np.zeros(freqs.size, dtype=complex)
        else:
            values = solutions[:, index] / phasor
        return FrequencyResponse(freqs, values, output=output_node,
                                 label=f"{self.circuit.name}:{output_node}")

    def transfer_auto(self, output_node: str, f_min_hz: float,
                      f_max_hz: float, points: int = 401,
                      input_source: Optional[str] = None
                      ) -> FrequencyResponse:
        """Transfer over an auto-built log grid."""
        grid = log_frequency_grid(f_min_hz, f_max_hz, points)
        return self.transfer(output_node, grid, input_source)

    def node_voltages(self, freqs_hz: np.ndarray
                      ) -> Dict[str, FrequencyResponse]:
        """Raw node-voltage phasors (not normalised) for every node."""
        freqs = np.asarray(freqs_hz, dtype=float)
        solutions = self.system.solve_frequencies(freqs, excitation="ac")
        result: Dict[str, FrequencyResponse] = {}
        for name in self.system.node_names:
            index = self.system.node_index(name)
            result[name] = FrequencyResponse(
                freqs, solutions[:, index], output=name,
                label=f"{self.circuit.name}:{name}")
        return result
