"""Analog simulation substrate: MNA, AC/DC/transient, sensitivity, sweeps."""

from .ac import ACAnalysis, FrequencyResponse
from .dc import DCAnalysis, OperatingPoint
from .engine import (
    BatchedMnaEngine,
    EngineSpec,
    FactoredMnaEngine,
    ResponseBlock,
    ScalarMnaEngine,
    SimulationEngine,
    VariantSpec,
    engine_kind,
    engine_spec,
    make_engine,
)
from .mna import ComponentOps, MnaSolution, MnaSystem
from .sensitivity import (
    SensitivityResult,
    rank_frequencies,
    sensitivity_analysis,
)
from .sweep import SweepResult, deviation_sweep, value_sweep
from .transient import (
    MultitoneWaveform,
    PulseWaveform,
    SineWaveform,
    StepWaveform,
    TransientAnalysis,
    TransientResult,
    Waveform,
)

__all__ = [
    "MnaSystem",
    "MnaSolution",
    "ComponentOps",
    "SimulationEngine",
    "BatchedMnaEngine",
    "FactoredMnaEngine",
    "ScalarMnaEngine",
    "ResponseBlock",
    "VariantSpec",
    "EngineSpec",
    "make_engine",
    "engine_kind",
    "engine_spec",
    "ACAnalysis",
    "FrequencyResponse",
    "DCAnalysis",
    "OperatingPoint",
    "TransientAnalysis",
    "TransientResult",
    "Waveform",
    "StepWaveform",
    "SineWaveform",
    "PulseWaveform",
    "MultitoneWaveform",
    "SensitivityResult",
    "sensitivity_analysis",
    "rank_frequencies",
    "SweepResult",
    "value_sweep",
    "deviation_sweep",
]
