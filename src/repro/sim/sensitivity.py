"""Component sensitivity analysis of the magnitude response.

Computes normalised (semi-relative) sensitivities::

    S_c(f) = d |H(f)|_dB / d ln(value_c)

by central finite differences on the component value. Frequencies where
components have large *and distinct* sensitivities are good test-frequency
candidates; :func:`rank_frequencies` exposes that heuristic as a
deterministic baseline for the GA (used in the T-ACC benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..circuits.netlist import Circuit
from ..errors import SimulationError
from .ac import ACAnalysis, FrequencyResponse

__all__ = ["SensitivityResult", "sensitivity_analysis", "rank_frequencies"]


@dataclass(frozen=True)
class SensitivityResult:
    """dB-magnitude sensitivities per component over a frequency grid."""

    freqs_hz: np.ndarray
    sensitivities: Dict[str, np.ndarray]  # component -> dB per ln(value)

    def component(self, name: str) -> np.ndarray:
        try:
            return self.sensitivities[name]
        except KeyError:
            raise SimulationError(
                f"no sensitivity computed for {name!r}; have "
                f"{sorted(self.sensitivities)}") from None

    def most_sensitive_frequency(self, name: str) -> float:
        curve = np.abs(self.component(name))
        return float(self.freqs_hz[int(np.argmax(curve))])

    def matrix(self, order: Optional[Sequence[str]] = None) -> np.ndarray:
        """Sensitivities stacked as (n_components, n_freqs)."""
        names = list(order) if order else sorted(self.sensitivities)
        return np.vstack([self.component(name) for name in names])


def sensitivity_analysis(circuit: Circuit, output_node: str,
                         freqs_hz: np.ndarray,
                         components: Optional[Sequence[str]] = None,
                         rel_step: float = 0.01) -> SensitivityResult:
    """Central-difference sensitivity of the output dB magnitude.

    ``rel_step`` is the relative perturbation applied to each component
    value (1 % by default, well inside the linear regime for the smooth
    responses this library targets).
    """
    if not 0.0 < rel_step < 0.5:
        raise SimulationError("rel_step must be in (0, 0.5)")
    freqs = np.asarray(freqs_hz, dtype=float)
    targets = tuple(components) if components else circuit.passive_names
    if not targets:
        raise SimulationError(
            f"{circuit.name}: no components to analyse")

    sensitivities: Dict[str, np.ndarray] = {}
    for name in targets:
        up = _magnitude_db(circuit.scaled_value(name, 1.0 + rel_step),
                           output_node, freqs)
        down = _magnitude_db(circuit.scaled_value(name, 1.0 - rel_step),
                             output_node, freqs)
        # d(dB)/d ln v  ~  (dB(v*(1+e)) - dB(v*(1-e))) / (2e)
        sensitivities[name] = (up - down) / (2.0 * rel_step)
    return SensitivityResult(freqs, sensitivities)


def _magnitude_db(circuit: Circuit, output_node: str,
                  freqs: np.ndarray) -> np.ndarray:
    response: FrequencyResponse = ACAnalysis(circuit).transfer(output_node,
                                                               freqs)
    return response.magnitude_db


def rank_frequencies(result: SensitivityResult, count: int = 2,
                     min_decade_gap: float = 0.3) -> Tuple[float, ...]:
    """Pick ``count`` frequencies with high, mutually-distinct sensitivity.

    Scores each grid frequency by the *spread* of component sensitivities
    (a frequency where all components react identically cannot separate
    them), then greedily picks the best frequencies at least
    ``min_decade_gap`` decades apart.
    """
    if count < 1:
        raise SimulationError("count must be >= 1")
    matrix = result.matrix()            # (n_components, n_freqs)
    spread = np.std(matrix, axis=0)     # distinguishing power per frequency
    order = np.argsort(spread)[::-1]
    chosen: list[float] = []
    for index in order:
        freq = float(result.freqs_hz[index])
        if all(abs(np.log10(freq / other)) >= min_decade_gap
               for other in chosen):
            chosen.append(freq)
        if len(chosen) == count:
            break
    if len(chosen) < count:
        raise SimulationError(
            f"could only find {len(chosen)} frequencies {min_decade_gap} "
            f"decades apart; relax the gap or enlarge the grid")
    return tuple(sorted(chosen))
