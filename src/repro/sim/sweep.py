"""Parameter sweeps: families of frequency responses.

The fault dictionary is conceptually a value sweep per component; this
module provides the generic machinery (used directly by Fig. 1 of the
paper: the "golden behaviour & fault dictionary items" response family).

Sweeps are variant families over one circuit, so they ride the batched
simulation engine: the nominal circuit is stamped once and every swept
value becomes a delta-stamped variant in a single
:meth:`~repro.sim.engine.BatchedMnaEngine.transfer_block` request --
bitwise-identical to simulating each value's circuit clone separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..circuits.components import TwoTerminal
from ..circuits.netlist import Circuit
from ..errors import SimulationError
from .ac import FrequencyResponse
from .engine import BatchedMnaEngine, SimulationEngine, VariantSpec

__all__ = ["SweepResult", "value_sweep", "deviation_sweep"]


@dataclass(frozen=True)
class SweepResult:
    """Family of responses indexed by the swept parameter value."""

    component: str
    parameter_values: Tuple[float, ...]
    responses: Tuple[FrequencyResponse, ...]
    nominal: FrequencyResponse

    def __post_init__(self) -> None:
        # Exact value -> index map for O(1) lookups, plus a scale-aware
        # absolute tolerance for approximate queries: an rtol-only
        # comparison cannot match a swept value of 0.0, and numpy's
        # default atol (1e-8) would lump together every point of a
        # nano-scale sweep (e.g. capacitances).
        index: Dict[float, int] = {}
        for position, value in enumerate(self.parameter_values):
            index.setdefault(float(value), position)
        object.__setattr__(self, "_value_index", index)
        scale = max((abs(float(v)) for v in self.parameter_values),
                    default=0.0)
        object.__setattr__(self, "_value_atol", 1e-9 * scale)

    def __len__(self) -> int:
        return len(self.responses)

    def response_at(self, value: float) -> FrequencyResponse:
        position = self._value_index.get(float(value))
        if position is None:
            for candidate, parameter in enumerate(self.parameter_values):
                if np.isclose(parameter, value, rtol=1e-9,
                              atol=self._value_atol):
                    position = candidate
                    break
        if position is None:
            raise SimulationError(
                f"no sweep point at {value!r}; have "
                f"{self.parameter_values}")
        return self.responses[position]

    def spread_db(self) -> np.ndarray:
        """Per-frequency spread (max - min dB) across the family.

        Large spread means the swept component visibly moves the response
        there -- exactly what Fig. 1 of the paper illustrates.
        """
        stack = np.vstack([r.magnitude_db for r in self.responses])
        return stack.max(axis=0) - stack.min(axis=0)


def value_sweep(circuit: Circuit, output_node: str, component: str,
                values: Sequence[float], freqs_hz: np.ndarray,
                engine: Optional[SimulationEngine] = None) -> SweepResult:
    """Simulate the circuit once per component value (one engine block)."""
    if not values:
        raise SimulationError("value_sweep needs at least one value")
    target = circuit[component]
    if not isinstance(target, TwoTerminal):
        raise SimulationError(
            f"{circuit.name}: {component!r} has no scalar value "
            f"(it is a {type(target).__name__})")
    freqs = np.asarray(freqs_hz, dtype=float)
    if engine is None:
        engine = BatchedMnaEngine(circuit)
    variants = [VariantSpec(name=circuit.name)]
    variants.extend(
        VariantSpec((target.with_value(float(value)),))
        for value in values)
    block = engine.transfer_block(output_node, freqs, variants)
    return SweepResult(component, tuple(float(v) for v in values),
                       tuple(block.response(i + 1)
                             for i in range(len(values))),
                       block.response(0))


def deviation_sweep(circuit: Circuit, output_node: str, component: str,
                    deviations: Sequence[float], freqs_hz: np.ndarray,
                    engine: Optional[SimulationEngine] = None
                    ) -> SweepResult:
    """Sweep a component by relative deviations (e.g. -0.4 ... +0.4).

    A deviation of ``-0.4`` means 60 % of nominal -- the paper's fault
    grid is ``deviation_sweep(..., deviations=[-0.4, -0.3, ..., +0.4])``.
    """
    nominal_value = circuit[component].value  # type: ignore[attr-defined]
    values = [nominal_value * (1.0 + float(d)) for d in deviations]
    if any(value <= 0.0 for value in values):
        raise SimulationError(
            f"deviation sweep of {component} produces non-positive values; "
            "deviations must stay above -100%")
    result = value_sweep(circuit, output_node, component, values, freqs_hz,
                         engine=engine)
    return SweepResult(component, tuple(float(d) for d in deviations),
                       result.responses, result.nominal)
