"""Parameter sweeps: families of frequency responses.

The fault dictionary is conceptually a value sweep per component; this
module provides the generic machinery (used directly by Fig. 1 of the
paper: the "golden behaviour & fault dictionary items" response family).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..circuits.netlist import Circuit
from ..errors import SimulationError
from .ac import ACAnalysis, FrequencyResponse

__all__ = ["SweepResult", "value_sweep", "deviation_sweep"]


@dataclass(frozen=True)
class SweepResult:
    """Family of responses indexed by the swept parameter value."""

    component: str
    parameter_values: Tuple[float, ...]
    responses: Tuple[FrequencyResponse, ...]
    nominal: FrequencyResponse

    def __len__(self) -> int:
        return len(self.responses)

    def response_at(self, value: float) -> FrequencyResponse:
        for parameter, response in zip(self.parameter_values,
                                       self.responses):
            if np.isclose(parameter, value, rtol=1e-9):
                return response
        raise SimulationError(
            f"no sweep point at {value!r}; have {self.parameter_values}")

    def spread_db(self) -> np.ndarray:
        """Per-frequency spread (max - min dB) across the family.

        Large spread means the swept component visibly moves the response
        there -- exactly what Fig. 1 of the paper illustrates.
        """
        stack = np.vstack([r.magnitude_db for r in self.responses])
        return stack.max(axis=0) - stack.min(axis=0)


def value_sweep(circuit: Circuit, output_node: str, component: str,
                values: Sequence[float],
                freqs_hz: np.ndarray) -> SweepResult:
    """Simulate the circuit once per component value."""
    if not values:
        raise SimulationError("value_sweep needs at least one value")
    freqs = np.asarray(freqs_hz, dtype=float)
    nominal = ACAnalysis(circuit).transfer(output_node, freqs)
    responses = []
    for value in values:
        faulty = circuit.with_value(component, float(value))
        responses.append(ACAnalysis(faulty).transfer(output_node, freqs))
    return SweepResult(component, tuple(float(v) for v in values),
                       tuple(responses), nominal)


def deviation_sweep(circuit: Circuit, output_node: str, component: str,
                    deviations: Sequence[float],
                    freqs_hz: np.ndarray) -> SweepResult:
    """Sweep a component by relative deviations (e.g. -0.4 ... +0.4).

    A deviation of ``-0.4`` means 60 % of nominal -- the paper's fault
    grid is ``deviation_sweep(..., deviations=[-0.4, -0.3, ..., +0.4])``.
    """
    nominal_value = circuit[component].value  # type: ignore[attr-defined]
    values = [nominal_value * (1.0 + float(d)) for d in deviations]
    if any(value <= 0.0 for value in values):
        raise SimulationError(
            f"deviation sweep of {component} produces non-positive values; "
            "deviations must stay above -100%")
    result = value_sweep(circuit, output_node, component, values, freqs_hz)
    return SweepResult(component, tuple(float(d) for d in deviations),
                       result.responses, result.nominal)
