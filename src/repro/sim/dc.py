"""DC operating-point analysis.

Solves the MNA system at ``s = 0``: capacitors open, inductors short,
sources at their DC values. Linear circuits only, so a single solve
suffices (no Newton iteration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..circuits.netlist import Circuit
from ..errors import SingularCircuitError
from .mna import MnaSolution, MnaSystem

__all__ = ["OperatingPoint", "DCAnalysis"]


@dataclass(frozen=True)
class OperatingPoint:
    """DC node voltages and branch currents (real numbers)."""

    node_voltages: Dict[str, float]
    branch_currents: Dict[str, float]

    def voltage(self, node: str) -> float:
        return self.node_voltages[node]

    def current(self, branch: str) -> float:
        return self.branch_currents[branch]

    def summary(self) -> str:
        lines = ["DC operating point:"]
        for node, value in self.node_voltages.items():
            lines.append(f"  V({node}) = {value:+.6g} V")
        for branch, value in self.branch_currents.items():
            lines.append(f"  I({branch}) = {value:+.6g} A")
        return "\n".join(lines)


class DCAnalysis:
    """DC operating point of a linear circuit."""

    def __init__(self, circuit: Circuit, gmin: float = 0.0) -> None:
        self.circuit = circuit
        self.system = MnaSystem(circuit, gmin=gmin)

    def operating_point(self) -> OperatingPoint:
        """Solve at s=0 and return real node voltages / branch currents.

        A floating node connected only through capacitors makes the DC
        problem singular; retrying with ``gmin=1e-12`` is the standard fix
        and the error message says so.
        """
        try:
            solution: MnaSolution = self.system.solve_at(0.0,
                                                         excitation="dc")
        except SingularCircuitError as exc:
            raise SingularCircuitError(
                f"{self.circuit.name}: DC operating point is singular "
                "(floating capacitor node?); retry with "
                "DCAnalysis(circuit, gmin=1e-12)") from exc
        voltages = {name: value.real
                    for name, value in solution.node_voltages().items()}
        currents = {name: solution.branch_current(name).real
                    for name in self.system.branch_names}
        return OperatingPoint(voltages, currents)
