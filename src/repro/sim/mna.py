"""Modified Nodal Analysis (MNA) system assembly and solving.

For a linear circuit every stamp is affine in the complex frequency ``s``,
so the MNA matrix decomposes exactly as ``A(s) = G + s*B`` where

* ``G`` holds resistors, sources, controlled sources and op-amp constraints;
* ``B`` holds capacitor admittances (``+C``) and inductor branch terms
  (``-L``).

The builder assembles ``G``/``B`` once per circuit; AC sweeps then solve a
batched system per frequency block, and the transient integrator reuses the
same pair as the DAE coefficients ``G x + B x' = z(t)``.

Unknown ordering: node voltages (ground eliminated) first, then branch
currents (voltage sources, inductors, VCVS/CCVS outputs, ideal op-amp
outputs, op-amp-macro internal VCVS), in component insertion order.

Op-amp macromodels are expanded on the fly into primitive stamps (input
resistance, a transconductance into an internal RC pole node, a unity
buffer VCVS and an output resistance); the two internal nodes are
namespaced ``<name>::pole`` and ``<name>::buf``.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits.components import (
    CCCS,
    CCVS,
    Capacitor,
    CurrentSource,
    GROUND,
    IdealOpAmp,
    Inductor,
    OpAmpMacro,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)
from ..circuits.netlist import Circuit
from ..errors import SimulationError, SingularCircuitError
from ..units import TWO_PI

__all__ = ["MnaSystem", "MnaSolution", "ComponentOps", "OPAMP_MACRO_GM"]

# Transconductance used when expanding the op-amp macromodel; the pole
# resistor is scaled as a0/gm so the DC open-loop gain is exactly a0.
OPAMP_MACRO_GM = 1e-3

# Above this unknown count the batched dense solve is chunked to bound the
# memory of the (F, N, N) stack.
_BATCH_MEMORY_BUDGET = 64 * 1024 * 1024  # bytes


class _ApplySink:
    """Stamp sink that accumulates contributions into MNA arrays.

    Every stamp is an in-place ``+=`` on one entry, exactly as the
    original monolithic stamper performed it, so assembling through this
    sink is bitwise-identical to the historical behaviour.
    """

    __slots__ = ("g", "b", "z_dc", "z_ac")

    def __init__(self, g: np.ndarray, b: np.ndarray, z_dc: np.ndarray,
                 z_ac: np.ndarray) -> None:
        self.g = g
        self.b = b
        self.z_dc = z_dc
        self.z_ac = z_ac

    def add(self, target: str, row: int, col: int, value: complex) -> None:
        if row >= 0 and col >= 0:
            (self.g if target == "g" else self.b)[row, col] += value

    def add_rhs(self, target: str, row: int, value: complex) -> None:
        if row >= 0:
            (self.z_dc if target == "dc" else self.z_ac)[row] += value


class _RecordingSink:
    """Stamp sink that records the ordered contribution list instead.

    Used by :class:`repro.sim.engine.BatchedMnaEngine` to learn which
    matrix entries a component touches and with what values, preserving
    the exact accumulation order of the direct stamper.
    """

    __slots__ = ("matrix_ops", "rhs_ops")

    def __init__(self) -> None:
        self.matrix_ops: List[Tuple[str, int, int, complex]] = []
        self.rhs_ops: List[Tuple[str, int, complex]] = []

    def add(self, target: str, row: int, col: int, value: complex) -> None:
        if row >= 0 and col >= 0:
            self.matrix_ops.append((target, row, col, value))

    def add_rhs(self, target: str, row: int, value: complex) -> None:
        if row >= 0:
            self.rhs_ops.append((target, row, value))


@dataclass(frozen=True)
class ComponentOps:
    """Ordered stamp contributions of one component.

    ``matrix_ops`` entries are ``(target, row, col, value)`` with target
    ``"g"`` or ``"b"``; ``rhs_ops`` entries are ``(target, row, value)``
    with target ``"dc"`` or ``"ac"``. Replaying every component's ops in
    circuit order reproduces the assembled system bitwise.
    """

    matrix_ops: Tuple[Tuple[str, int, int, complex], ...]
    rhs_ops: Tuple[Tuple[str, int, complex], ...]


class MnaSystem:
    """Assembled MNA system for one circuit.

    Parameters
    ----------
    circuit:
        The circuit to assemble. It is validated first.
    gmin:
        Optional conductance from every node to ground. Zero by default;
        set to e.g. ``1e-12`` to regularise DC problems with floating
        capacitor nodes.
    """

    def __init__(self, circuit: Circuit, gmin: float = 0.0) -> None:
        circuit.validate()
        self.circuit = circuit
        self.gmin = float(gmin)

        self._node_index: Dict[str, int] = {}
        self._branch_index: Dict[str, int] = {}
        self._collect_unknowns()
        self.num_nodes = len(self._node_index)
        self.dim = self.num_nodes + len(self._branch_index)

        self._g = np.zeros((self.dim, self.dim), dtype=complex)
        self._b = np.zeros((self.dim, self.dim), dtype=complex)
        self._z_dc = np.zeros(self.dim, dtype=complex)
        self._z_ac = np.zeros(self.dim, dtype=complex)
        self._stamp_all()
        if self.gmin > 0.0:
            for index in range(self.num_nodes):
                self._g[index, index] += self.gmin

    # ------------------------------------------------------------------
    # Unknown bookkeeping
    # ------------------------------------------------------------------
    def _collect_unknowns(self) -> None:
        def node(name: str) -> None:
            if name != GROUND and name not in self._node_index:
                self._node_index[name] = len(self._node_index)

        branch_names: List[str] = []
        for component in self.circuit:
            if isinstance(component, OpAmpMacro):
                node(component.in_positive)
                node(component.in_negative)
                node(component.output)
                node(f"{component.name}::pole")
                node(f"{component.name}::buf")
                branch_names.append(f"{component.name}::buffer")
                continue
            for terminal in component.nodes:
                node(terminal)
            if isinstance(component, (VoltageSource, Inductor, VCVS, CCVS,
                                      IdealOpAmp)):
                branch_names.append(component.name)
        for offset, name in enumerate(branch_names):
            self._branch_index[name] = len(self._node_index) + offset

    def node_index(self, name: str) -> int:
        """Row/column of a node voltage unknown; ``-1`` for ground."""
        if name == GROUND:
            return -1
        try:
            return self._node_index[name]
        except KeyError:
            raise SimulationError(
                f"{self.circuit.name}: unknown node {name!r}; "
                f"nodes: {sorted(self._node_index)}") from None

    def branch_index(self, name: str) -> int:
        """Row/column of a branch-current unknown."""
        try:
            return self._branch_index[name]
        except KeyError:
            raise SimulationError(
                f"{self.circuit.name}: no branch current for {name!r} "
                "(only voltage sources, inductors, VCVS/CCVS and op-amps "
                "carry branch unknowns)") from None

    @property
    def node_names(self) -> Tuple[str, ...]:
        return tuple(self._node_index)

    @property
    def branch_names(self) -> Tuple[str, ...]:
        return tuple(self._branch_index)

    # ------------------------------------------------------------------
    # Stamping
    # ------------------------------------------------------------------
    def _stamp_conductance(self, sink, target: str, positive: int,
                           negative: int, value: complex) -> None:
        sink.add(target, positive, positive, value)
        sink.add(target, negative, negative, value)
        sink.add(target, positive, negative, -value)
        sink.add(target, negative, positive, -value)

    def _stamp_all(self) -> None:
        sink = _ApplySink(self._g, self._b, self._z_dc, self._z_ac)
        for component in self.circuit:
            self._stamp(component, sink)

    def component_ops(self, component) -> ComponentOps:
        """Ordered stamp contributions of ``component`` in this system.

        The component must be structurally compatible with this system's
        unknown indexing (same name, same terminals) -- e.g. the nominal
        component itself or a value-deviated replacement. The batched
        engine uses these ops to delta-stamp fault variants without
        re-assembling the circuit.
        """
        sink = _RecordingSink()
        self._stamp(component, sink)
        return ComponentOps(tuple(sink.matrix_ops), tuple(sink.rhs_ops))

    def _stamp(self, component, sink) -> None:
        if isinstance(component, Resistor):
            p = self.node_index(component.positive)
            n = self.node_index(component.negative)
            self._stamp_conductance(sink, "g", p, n, 1.0 / component.value)
        elif isinstance(component, Capacitor):
            p = self.node_index(component.positive)
            n = self.node_index(component.negative)
            self._stamp_conductance(sink, "b", p, n, component.value)
        elif isinstance(component, Inductor):
            p = self.node_index(component.positive)
            n = self.node_index(component.negative)
            k = self.branch_index(component.name)
            sink.add("g", p, k, 1.0)
            sink.add("g", n, k, -1.0)
            sink.add("g", k, p, 1.0)
            sink.add("g", k, n, -1.0)
            sink.add("b", k, k, -component.value)
        elif isinstance(component, VoltageSource):
            p = self.node_index(component.positive)
            n = self.node_index(component.negative)
            k = self.branch_index(component.name)
            sink.add("g", p, k, 1.0)
            sink.add("g", n, k, -1.0)
            sink.add("g", k, p, 1.0)
            sink.add("g", k, n, -1.0)
            sink.add_rhs("dc", k, component.value)
            sink.add_rhs("ac", k, (component.ac_magnitude *
                                   cmath.exp(1j * math.radians(
                                       component.ac_phase_deg))))
        elif isinstance(component, CurrentSource):
            p = self.node_index(component.positive)
            n = self.node_index(component.negative)
            phasor = (component.ac_magnitude *
                      cmath.exp(1j * math.radians(component.ac_phase_deg)))
            sink.add_rhs("dc", p, -component.value)
            sink.add_rhs("ac", p, -phasor)
            sink.add_rhs("dc", n, component.value)
            sink.add_rhs("ac", n, phasor)
        elif isinstance(component, VCVS):
            self._stamp_vcvs(sink, component.name, component.positive,
                             component.negative, component.ctrl_positive,
                             component.ctrl_negative, component.gain)
        elif isinstance(component, VCCS):
            self._stamp_vccs(sink, component.positive, component.negative,
                             component.ctrl_positive,
                             component.ctrl_negative,
                             component.transconductance)
        elif isinstance(component, CCVS):
            p = self.node_index(component.positive)
            n = self.node_index(component.negative)
            k = self.branch_index(component.name)
            j = self.branch_index(component.ctrl_source)
            sink.add("g", p, k, 1.0)
            sink.add("g", n, k, -1.0)
            sink.add("g", k, p, 1.0)
            sink.add("g", k, n, -1.0)
            sink.add("g", k, j, -component.transresistance)
        elif isinstance(component, CCCS):
            p = self.node_index(component.positive)
            n = self.node_index(component.negative)
            j = self.branch_index(component.ctrl_source)
            sink.add("g", p, j, component.gain)
            sink.add("g", n, j, -component.gain)
        elif isinstance(component, IdealOpAmp):
            inp = self.node_index(component.in_positive)
            inn = self.node_index(component.in_negative)
            out = self.node_index(component.output)
            k = self.branch_index(component.name)
            sink.add("g", out, k, 1.0)   # output supplies current
            sink.add("g", k, inp, 1.0)   # constraint V+ - V- = 0
            sink.add("g", k, inn, -1.0)
        elif isinstance(component, OpAmpMacro):
            self._stamp_opamp_macro(component, sink)
        else:
            raise SimulationError(
                f"no MNA stamp for component type "
                f"{type(component).__name__}")

    def _stamp_vcvs(self, sink, name: str, positive: str, negative: str,
                    ctrl_positive: str, ctrl_negative: str,
                    gain: float) -> None:
        p = self.node_index(positive)
        n = self.node_index(negative)
        cp = self.node_index(ctrl_positive)
        cn = self.node_index(ctrl_negative)
        k = self.branch_index(name)
        sink.add("g", p, k, 1.0)
        sink.add("g", n, k, -1.0)
        sink.add("g", k, p, 1.0)
        sink.add("g", k, n, -1.0)
        sink.add("g", k, cp, -gain)
        sink.add("g", k, cn, gain)

    def _stamp_vccs(self, sink, positive: str, negative: str,
                    ctrl_positive: str, ctrl_negative: str,
                    gm: float) -> None:
        p = self.node_index(positive)
        n = self.node_index(negative)
        cp = self.node_index(ctrl_positive)
        cn = self.node_index(ctrl_negative)
        sink.add("g", p, cp, gm)
        sink.add("g", p, cn, -gm)
        sink.add("g", n, cp, -gm)
        sink.add("g", n, cn, gm)

    def _stamp_opamp_macro(self, macro: OpAmpMacro, sink) -> None:
        """Expand the single-pole macromodel into primitive stamps.

        Rin across the inputs; gm*(V+ - V-) injected into the internal pole
        node loaded by Rp || Cp with ``Rp = a0/gm`` and
        ``Cp = 1/(2 pi pole_hz Rp)``; a unity VCVS buffers the pole node and
        Rout connects the buffer to the external output.
        """
        pole_node = f"{macro.name}::pole"
        buf_node = f"{macro.name}::buf"

        # Input resistance.
        inp = self.node_index(macro.in_positive)
        inn = self.node_index(macro.in_negative)
        self._stamp_conductance(sink, "g", inp, inn, 1.0 / macro.rin)
        # Transconductance into the pole node (current injected INTO the
        # node for positive differential input, hence output+ = ground).
        self._stamp_vccs(sink, GROUND, pole_node, macro.in_positive,
                         macro.in_negative, OPAMP_MACRO_GM)
        # Pole load.
        rp = macro.a0 / OPAMP_MACRO_GM
        cp = 1.0 / (TWO_PI * macro.pole_hz * rp)
        pole = self.node_index(pole_node)
        self._stamp_conductance(sink, "g", pole, -1, 1.0 / rp)
        self._stamp_conductance(sink, "b", pole, -1, cp)
        # Unity buffer and output resistance.
        self._stamp_vcvs(sink, f"{macro.name}::buffer", buf_node, GROUND,
                         pole_node, GROUND, 1.0)
        buf = self.node_index(buf_node)
        out = self.node_index(macro.output)
        self._stamp_conductance(sink, "g", buf, out, 1.0 / macro.rout)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    @property
    def g_matrix(self) -> np.ndarray:
        """The frequency-independent part of A(s) (copy)."""
        return self._g.copy()

    @property
    def b_matrix(self) -> np.ndarray:
        """The coefficient of s in A(s) (copy)."""
        return self._b.copy()

    def matrix_at(self, s: complex) -> np.ndarray:
        """Dense MNA matrix ``A(s) = G + s*B``."""
        return self._g + s * self._b

    def rhs(self, excitation: str = "ac") -> np.ndarray:
        """Excitation vector: ``"ac"`` phasors or ``"dc"`` values (copy)."""
        if excitation == "ac":
            return self._z_ac.copy()
        if excitation == "dc":
            return self._z_dc.copy()
        raise SimulationError(
            f"excitation must be 'ac' or 'dc', got {excitation!r}")

    def solve_at(self, s: complex,
                 excitation: str = "ac") -> "MnaSolution":
        """Solve the system at one complex frequency."""
        matrix = self.matrix_at(s)
        rhs = self.rhs(excitation)
        try:
            vector = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise SingularCircuitError(
                f"{self.circuit.name}: MNA matrix singular at s={s!r}; "
                "check for floating nodes, voltage-source loops or op-amps "
                "without feedback") from exc
        if not np.all(np.isfinite(vector)):
            raise SingularCircuitError(
                f"{self.circuit.name}: non-finite solution at s={s!r}")
        return MnaSolution(self, vector)

    def solve_frequencies(self, freqs_hz: np.ndarray,
                          excitation: str = "ac") -> np.ndarray:
        """Batched AC solve over a frequency grid.

        Returns an array of shape ``(len(freqs), dim)`` with the full
        unknown vector per frequency. Frequencies are batched into chunks
        so the dense ``(F, N, N)`` stack stays within a memory budget.
        """
        freqs = np.asarray(freqs_hz, dtype=float)
        if freqs.ndim != 1 or freqs.size == 0:
            raise SimulationError("frequency grid must be a non-empty 1-D "
                                  "array")
        if np.any(freqs <= 0.0):
            raise SimulationError("AC analysis frequencies must be positive")
        rhs = self.rhs(excitation)
        out = np.empty((freqs.size, self.dim), dtype=complex)
        bytes_per_matrix = 16 * self.dim * self.dim
        chunk = max(1, int(_BATCH_MEMORY_BUDGET // max(1, bytes_per_matrix)))
        for start in range(0, freqs.size, chunk):
            stop = min(start + chunk, freqs.size)
            s_values = 1j * TWO_PI * freqs[start:stop]
            stack = (self._g[None, :, :] +
                     s_values[:, None, None] * self._b[None, :, :])
            rhs_stack = np.broadcast_to(
                rhs[:, None], (stop - start, self.dim, 1))
            try:
                out[start:stop] = np.linalg.solve(stack, rhs_stack)[..., 0]
            except np.linalg.LinAlgError:
                # Fall back to per-frequency solving to report which
                # frequency is singular.
                for offset, s in enumerate(s_values):
                    out[start + offset] = self.solve_at(
                        s, excitation).vector
        if not np.all(np.isfinite(out)):
            raise SingularCircuitError(
                f"{self.circuit.name}: non-finite solution in AC sweep")
        return out


@dataclass
class MnaSolution:
    """Solved MNA unknown vector with named accessors."""

    system: MnaSystem
    vector: np.ndarray

    def node_voltage(self, name: str) -> complex:
        """Voltage of a node (0 for ground)."""
        index = self.system.node_index(name)
        if index < 0:
            return 0.0 + 0.0j
        return complex(self.vector[index])

    def voltage_between(self, positive: str, negative: str) -> complex:
        return self.node_voltage(positive) - self.node_voltage(negative)

    def branch_current(self, name: str) -> complex:
        """Branch current of a source/inductor/op-amp output."""
        return complex(self.vector[self.system.branch_index(name)])

    def node_voltages(self) -> Dict[str, complex]:
        """All node voltages, ground included."""
        result = {GROUND: 0.0 + 0.0j}
        for name in self.system.node_names:
            result[name] = self.node_voltage(name)
        return result
