"""Modified Nodal Analysis (MNA) system assembly and solving.

For a linear circuit every stamp is affine in the complex frequency ``s``,
so the MNA matrix decomposes exactly as ``A(s) = G + s*B`` where

* ``G`` holds resistors, sources, controlled sources and op-amp constraints;
* ``B`` holds capacitor admittances (``+C``) and inductor branch terms
  (``-L``).

The builder assembles ``G``/``B`` once per circuit; AC sweeps then solve a
batched system per frequency block, and the transient integrator reuses the
same pair as the DAE coefficients ``G x + B x' = z(t)``.

Unknown ordering: node voltages (ground eliminated) first, then branch
currents (voltage sources, inductors, VCVS/CCVS outputs, ideal op-amp
outputs, op-amp-macro internal VCVS), in component insertion order.

Op-amp macromodels are expanded on the fly into primitive stamps (input
resistance, a transconductance into an internal RC pole node, a unity
buffer VCVS and an output resistance); the two internal nodes are
namespaced ``<name>::pole`` and ``<name>::buf``.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits.components import (
    CCCS,
    CCVS,
    Capacitor,
    CurrentSource,
    GROUND,
    IdealOpAmp,
    Inductor,
    OpAmpMacro,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)
from ..circuits.netlist import Circuit
from ..errors import SimulationError, SingularCircuitError
from ..units import TWO_PI

__all__ = ["MnaSystem", "MnaSolution", "OPAMP_MACRO_GM"]

# Transconductance used when expanding the op-amp macromodel; the pole
# resistor is scaled as a0/gm so the DC open-loop gain is exactly a0.
OPAMP_MACRO_GM = 1e-3

# Above this unknown count the batched dense solve is chunked to bound the
# memory of the (F, N, N) stack.
_BATCH_MEMORY_BUDGET = 64 * 1024 * 1024  # bytes


class MnaSystem:
    """Assembled MNA system for one circuit.

    Parameters
    ----------
    circuit:
        The circuit to assemble. It is validated first.
    gmin:
        Optional conductance from every node to ground. Zero by default;
        set to e.g. ``1e-12`` to regularise DC problems with floating
        capacitor nodes.
    """

    def __init__(self, circuit: Circuit, gmin: float = 0.0) -> None:
        circuit.validate()
        self.circuit = circuit
        self.gmin = float(gmin)

        self._node_index: Dict[str, int] = {}
        self._branch_index: Dict[str, int] = {}
        self._collect_unknowns()
        self.num_nodes = len(self._node_index)
        self.dim = self.num_nodes + len(self._branch_index)

        self._g = np.zeros((self.dim, self.dim), dtype=complex)
        self._b = np.zeros((self.dim, self.dim), dtype=complex)
        self._z_dc = np.zeros(self.dim, dtype=complex)
        self._z_ac = np.zeros(self.dim, dtype=complex)
        self._stamp_all()
        if self.gmin > 0.0:
            for index in range(self.num_nodes):
                self._g[index, index] += self.gmin

    # ------------------------------------------------------------------
    # Unknown bookkeeping
    # ------------------------------------------------------------------
    def _collect_unknowns(self) -> None:
        def node(name: str) -> None:
            if name != GROUND and name not in self._node_index:
                self._node_index[name] = len(self._node_index)

        branch_names: List[str] = []
        for component in self.circuit:
            if isinstance(component, OpAmpMacro):
                node(component.in_positive)
                node(component.in_negative)
                node(component.output)
                node(f"{component.name}::pole")
                node(f"{component.name}::buf")
                branch_names.append(f"{component.name}::buffer")
                continue
            for terminal in component.nodes:
                node(terminal)
            if isinstance(component, (VoltageSource, Inductor, VCVS, CCVS,
                                      IdealOpAmp)):
                branch_names.append(component.name)
        for offset, name in enumerate(branch_names):
            self._branch_index[name] = len(self._node_index) + offset

    def node_index(self, name: str) -> int:
        """Row/column of a node voltage unknown; ``-1`` for ground."""
        if name == GROUND:
            return -1
        try:
            return self._node_index[name]
        except KeyError:
            raise SimulationError(
                f"{self.circuit.name}: unknown node {name!r}; "
                f"nodes: {sorted(self._node_index)}") from None

    def branch_index(self, name: str) -> int:
        """Row/column of a branch-current unknown."""
        try:
            return self._branch_index[name]
        except KeyError:
            raise SimulationError(
                f"{self.circuit.name}: no branch current for {name!r} "
                "(only voltage sources, inductors, VCVS/CCVS and op-amps "
                "carry branch unknowns)") from None

    @property
    def node_names(self) -> Tuple[str, ...]:
        return tuple(self._node_index)

    @property
    def branch_names(self) -> Tuple[str, ...]:
        return tuple(self._branch_index)

    # ------------------------------------------------------------------
    # Stamping
    # ------------------------------------------------------------------
    def _add(self, matrix: np.ndarray, row: int, col: int,
             value: complex) -> None:
        if row >= 0 and col >= 0:
            matrix[row, col] += value

    def _stamp_conductance(self, matrix: np.ndarray, positive: int,
                           negative: int, value: complex) -> None:
        self._add(matrix, positive, positive, value)
        self._add(matrix, negative, negative, value)
        self._add(matrix, positive, negative, -value)
        self._add(matrix, negative, positive, -value)

    def _stamp_all(self) -> None:
        for component in self.circuit:
            self._stamp(component)

    def _stamp(self, component) -> None:
        if isinstance(component, Resistor):
            p = self.node_index(component.positive)
            n = self.node_index(component.negative)
            self._stamp_conductance(self._g, p, n, 1.0 / component.value)
        elif isinstance(component, Capacitor):
            p = self.node_index(component.positive)
            n = self.node_index(component.negative)
            self._stamp_conductance(self._b, p, n, component.value)
        elif isinstance(component, Inductor):
            p = self.node_index(component.positive)
            n = self.node_index(component.negative)
            k = self.branch_index(component.name)
            self._add(self._g, p, k, 1.0)
            self._add(self._g, n, k, -1.0)
            self._add(self._g, k, p, 1.0)
            self._add(self._g, k, n, -1.0)
            self._b[k, k] += -component.value
        elif isinstance(component, VoltageSource):
            p = self.node_index(component.positive)
            n = self.node_index(component.negative)
            k = self.branch_index(component.name)
            self._add(self._g, p, k, 1.0)
            self._add(self._g, n, k, -1.0)
            self._add(self._g, k, p, 1.0)
            self._add(self._g, k, n, -1.0)
            self._z_dc[k] += component.value
            self._z_ac[k] += (component.ac_magnitude *
                              cmath.exp(1j * math.radians(
                                  component.ac_phase_deg)))
        elif isinstance(component, CurrentSource):
            p = self.node_index(component.positive)
            n = self.node_index(component.negative)
            phasor = (component.ac_magnitude *
                      cmath.exp(1j * math.radians(component.ac_phase_deg)))
            if p >= 0:
                self._z_dc[p] -= component.value
                self._z_ac[p] -= phasor
            if n >= 0:
                self._z_dc[n] += component.value
                self._z_ac[n] += phasor
        elif isinstance(component, VCVS):
            self._stamp_vcvs(component.name, component.positive,
                             component.negative, component.ctrl_positive,
                             component.ctrl_negative, component.gain)
        elif isinstance(component, VCCS):
            self._stamp_vccs(component.positive, component.negative,
                             component.ctrl_positive,
                             component.ctrl_negative,
                             component.transconductance)
        elif isinstance(component, CCVS):
            p = self.node_index(component.positive)
            n = self.node_index(component.negative)
            k = self.branch_index(component.name)
            j = self.branch_index(component.ctrl_source)
            self._add(self._g, p, k, 1.0)
            self._add(self._g, n, k, -1.0)
            self._add(self._g, k, p, 1.0)
            self._add(self._g, k, n, -1.0)
            self._g[k, j] += -component.transresistance
        elif isinstance(component, CCCS):
            p = self.node_index(component.positive)
            n = self.node_index(component.negative)
            j = self.branch_index(component.ctrl_source)
            self._add(self._g, p, j, component.gain)
            self._add(self._g, n, j, -component.gain)
        elif isinstance(component, IdealOpAmp):
            inp = self.node_index(component.in_positive)
            inn = self.node_index(component.in_negative)
            out = self.node_index(component.output)
            k = self.branch_index(component.name)
            self._add(self._g, out, k, 1.0)   # output supplies current
            self._add(self._g, k, inp, 1.0)   # constraint V+ - V- = 0
            self._add(self._g, k, inn, -1.0)
        elif isinstance(component, OpAmpMacro):
            self._stamp_opamp_macro(component)
        else:
            raise SimulationError(
                f"no MNA stamp for component type "
                f"{type(component).__name__}")

    def _stamp_vcvs(self, name: str, positive: str, negative: str,
                    ctrl_positive: str, ctrl_negative: str,
                    gain: float) -> None:
        p = self.node_index(positive)
        n = self.node_index(negative)
        cp = self.node_index(ctrl_positive)
        cn = self.node_index(ctrl_negative)
        k = self.branch_index(name)
        self._add(self._g, p, k, 1.0)
        self._add(self._g, n, k, -1.0)
        self._add(self._g, k, p, 1.0)
        self._add(self._g, k, n, -1.0)
        self._add(self._g, k, cp, -gain)
        self._add(self._g, k, cn, gain)

    def _stamp_vccs(self, positive: str, negative: str, ctrl_positive: str,
                    ctrl_negative: str, gm: float) -> None:
        p = self.node_index(positive)
        n = self.node_index(negative)
        cp = self.node_index(ctrl_positive)
        cn = self.node_index(ctrl_negative)
        self._add(self._g, p, cp, gm)
        self._add(self._g, p, cn, -gm)
        self._add(self._g, n, cp, -gm)
        self._add(self._g, n, cn, gm)

    def _stamp_opamp_macro(self, macro: OpAmpMacro) -> None:
        """Expand the single-pole macromodel into primitive stamps.

        Rin across the inputs; gm*(V+ - V-) injected into the internal pole
        node loaded by Rp || Cp with ``Rp = a0/gm`` and
        ``Cp = 1/(2 pi pole_hz Rp)``; a unity VCVS buffers the pole node and
        Rout connects the buffer to the external output.
        """
        pole_node = f"{macro.name}::pole"
        buf_node = f"{macro.name}::buf"

        # Input resistance.
        inp = self.node_index(macro.in_positive)
        inn = self.node_index(macro.in_negative)
        self._stamp_conductance(self._g, inp, inn, 1.0 / macro.rin)
        # Transconductance into the pole node (current injected INTO the
        # node for positive differential input, hence output+ = ground).
        self._stamp_vccs(GROUND, pole_node, macro.in_positive,
                         macro.in_negative, OPAMP_MACRO_GM)
        # Pole load.
        rp = macro.a0 / OPAMP_MACRO_GM
        cp = 1.0 / (TWO_PI * macro.pole_hz * rp)
        pole = self.node_index(pole_node)
        self._stamp_conductance(self._g, pole, -1, 1.0 / rp)
        self._stamp_conductance(self._b, pole, -1, cp)
        # Unity buffer and output resistance.
        self._stamp_vcvs(f"{macro.name}::buffer", buf_node, GROUND,
                         pole_node, GROUND, 1.0)
        buf = self.node_index(buf_node)
        out = self.node_index(macro.output)
        self._stamp_conductance(self._g, buf, out, 1.0 / macro.rout)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    @property
    def g_matrix(self) -> np.ndarray:
        """The frequency-independent part of A(s) (copy)."""
        return self._g.copy()

    @property
    def b_matrix(self) -> np.ndarray:
        """The coefficient of s in A(s) (copy)."""
        return self._b.copy()

    def matrix_at(self, s: complex) -> np.ndarray:
        """Dense MNA matrix ``A(s) = G + s*B``."""
        return self._g + s * self._b

    def rhs(self, excitation: str = "ac") -> np.ndarray:
        """Excitation vector: ``"ac"`` phasors or ``"dc"`` values (copy)."""
        if excitation == "ac":
            return self._z_ac.copy()
        if excitation == "dc":
            return self._z_dc.copy()
        raise SimulationError(
            f"excitation must be 'ac' or 'dc', got {excitation!r}")

    def solve_at(self, s: complex,
                 excitation: str = "ac") -> "MnaSolution":
        """Solve the system at one complex frequency."""
        matrix = self.matrix_at(s)
        rhs = self.rhs(excitation)
        try:
            vector = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise SingularCircuitError(
                f"{self.circuit.name}: MNA matrix singular at s={s!r}; "
                "check for floating nodes, voltage-source loops or op-amps "
                "without feedback") from exc
        if not np.all(np.isfinite(vector)):
            raise SingularCircuitError(
                f"{self.circuit.name}: non-finite solution at s={s!r}")
        return MnaSolution(self, vector)

    def solve_frequencies(self, freqs_hz: np.ndarray,
                          excitation: str = "ac") -> np.ndarray:
        """Batched AC solve over a frequency grid.

        Returns an array of shape ``(len(freqs), dim)`` with the full
        unknown vector per frequency. Frequencies are batched into chunks
        so the dense ``(F, N, N)`` stack stays within a memory budget.
        """
        freqs = np.asarray(freqs_hz, dtype=float)
        if freqs.ndim != 1 or freqs.size == 0:
            raise SimulationError("frequency grid must be a non-empty 1-D "
                                  "array")
        if np.any(freqs <= 0.0):
            raise SimulationError("AC analysis frequencies must be positive")
        rhs = self.rhs(excitation)
        out = np.empty((freqs.size, self.dim), dtype=complex)
        bytes_per_matrix = 16 * self.dim * self.dim
        chunk = max(1, int(_BATCH_MEMORY_BUDGET // max(1, bytes_per_matrix)))
        for start in range(0, freqs.size, chunk):
            stop = min(start + chunk, freqs.size)
            s_values = 1j * TWO_PI * freqs[start:stop]
            stack = (self._g[None, :, :] +
                     s_values[:, None, None] * self._b[None, :, :])
            rhs_stack = np.broadcast_to(
                rhs[:, None], (stop - start, self.dim, 1))
            try:
                out[start:stop] = np.linalg.solve(stack, rhs_stack)[..., 0]
            except np.linalg.LinAlgError:
                # Fall back to per-frequency solving to report which
                # frequency is singular.
                for offset, s in enumerate(s_values):
                    out[start + offset] = self.solve_at(
                        s, excitation).vector
        if not np.all(np.isfinite(out)):
            raise SingularCircuitError(
                f"{self.circuit.name}: non-finite solution in AC sweep")
        return out


@dataclass
class MnaSolution:
    """Solved MNA unknown vector with named accessors."""

    system: MnaSystem
    vector: np.ndarray

    def node_voltage(self, name: str) -> complex:
        """Voltage of a node (0 for ground)."""
        index = self.system.node_index(name)
        if index < 0:
            return 0.0 + 0.0j
        return complex(self.vector[index])

    def voltage_between(self, positive: str, negative: str) -> complex:
        return self.node_voltage(positive) - self.node_voltage(negative)

    def branch_current(self, name: str) -> complex:
        """Branch current of a source/inductor/op-amp output."""
        return complex(self.vector[self.system.branch_index(name)])

    def node_voltages(self) -> Dict[str, complex]:
        """All node voltages, ground included."""
        result = {GROUND: 0.0 + 0.0j}
        for name in self.system.node_names:
            result[name] = self.node_voltage(name)
        return result
