"""Linear transient analysis (trapezoidal integration).

The MNA pair assembled by :class:`~repro.sim.mna.MnaSystem` describes the
circuit DAE ``G x(t) + B x'(t) = z(t)``; the trapezoidal rule turns each
step into the linear solve::

    (G + 2B/h) x[n+1] = z[n+1] + z[n] - (G - 2B/h) x[n]

The left-hand matrix is constant for a fixed step, so it is LU-factorised
once. Sources may be driven by time-domain waveforms (step, sine, pulse);
undriven sources hold their DC value.

Transient analysis is not needed by the paper's flow (which is purely
AC-domain) but completes the simulator substrate and enables time-domain
test-stimulus extensions; see the multitone example.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

try:  # scipy is optional everywhere in repro (see repro.sim.lowrank)
    import scipy.linalg as _scipy_linalg
except ImportError:  # pragma: no cover - the scipy-free CI leg
    _scipy_linalg = None

from ..circuits.components import CurrentSource, VoltageSource
from ..circuits.netlist import Circuit
from ..errors import SimulationError, SingularCircuitError
from .mna import MnaSystem

__all__ = [
    "Waveform",
    "StepWaveform",
    "SineWaveform",
    "PulseWaveform",
    "MultitoneWaveform",
    "TransientResult",
    "TransientAnalysis",
]


class Waveform:
    """Base class: a scalar function of time driving one source."""

    def value(self, t: float) -> float:
        raise NotImplementedError

    def values(self, times: np.ndarray) -> np.ndarray:
        """Vectorised evaluation; subclasses may override for speed."""
        return np.array([self.value(float(t)) for t in times], dtype=float)


@dataclass(frozen=True)
class StepWaveform(Waveform):
    """Ideal step from ``initial`` to ``final`` at ``t_delay``."""

    initial: float = 0.0
    final: float = 1.0
    t_delay: float = 0.0

    def value(self, t: float) -> float:
        return self.final if t >= self.t_delay else self.initial

    def values(self, times: np.ndarray) -> np.ndarray:
        return np.where(times >= self.t_delay, self.final, self.initial)


@dataclass(frozen=True)
class SineWaveform(Waveform):
    """``offset + amplitude * sin(2 pi f t + phase)``."""

    amplitude: float = 1.0
    freq_hz: float = 1e3
    offset: float = 0.0
    phase_deg: float = 0.0

    def value(self, t: float) -> float:
        return self.offset + self.amplitude * math.sin(
            2.0 * math.pi * self.freq_hz * t +
            math.radians(self.phase_deg))

    def values(self, times: np.ndarray) -> np.ndarray:
        return self.offset + self.amplitude * np.sin(
            2.0 * np.pi * self.freq_hz * times +
            math.radians(self.phase_deg))


@dataclass(frozen=True)
class MultitoneWaveform(Waveform):
    """Sum of sinusoids -- the natural time-domain form of the paper's
    multi-frequency test vector."""

    freqs_hz: Tuple[float, ...]
    amplitudes: Tuple[float, ...] = ()
    offset: float = 0.0

    def _amps(self) -> Tuple[float, ...]:
        if self.amplitudes:
            if len(self.amplitudes) != len(self.freqs_hz):
                raise SimulationError(
                    "MultitoneWaveform: amplitudes/freqs length mismatch")
            return self.amplitudes
        return tuple(1.0 for _ in self.freqs_hz)

    def value(self, t: float) -> float:
        return self.offset + sum(
            amp * math.sin(2.0 * math.pi * freq * t)
            for freq, amp in zip(self.freqs_hz, self._amps()))

    def values(self, times: np.ndarray) -> np.ndarray:
        total = np.full_like(times, self.offset, dtype=float)
        for freq, amp in zip(self.freqs_hz, self._amps()):
            total += amp * np.sin(2.0 * np.pi * freq * times)
        return total


@dataclass(frozen=True)
class PulseWaveform(Waveform):
    """SPICE-style periodic trapezoidal pulse."""

    v1: float = 0.0
    v2: float = 1.0
    t_delay: float = 0.0
    t_rise: float = 1e-9
    t_fall: float = 1e-9
    t_width: float = 1e-3
    period: float = 2e-3

    def value(self, t: float) -> float:
        if t < self.t_delay:
            return self.v1
        local = (t - self.t_delay) % self.period
        if local < self.t_rise:
            return self.v1 + (self.v2 - self.v1) * local / self.t_rise
        local -= self.t_rise
        if local < self.t_width:
            return self.v2
        local -= self.t_width
        if local < self.t_fall:
            return self.v2 + (self.v1 - self.v2) * local / self.t_fall
        return self.v1


@dataclass
class TransientResult:
    """Sampled waveforms of every node voltage over the run."""

    times: np.ndarray
    node_voltages: Dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        try:
            return self.node_voltages[node]
        except KeyError:
            raise SimulationError(
                f"no transient data for node {node!r}; have "
                f"{sorted(self.node_voltages)}") from None

    def final_value(self, node: str) -> float:
        return float(self.voltage(node)[-1])

    def settling_time(self, node: str, tolerance: float = 0.01) -> float:
        """Time after which the node stays within ``tolerance`` (relative)
        of its final value."""
        signal = self.voltage(node)
        final = signal[-1]
        scale = max(abs(final), 1e-12)
        outside = np.nonzero(np.abs(signal - final) > tolerance * scale)[0]
        if outside.size == 0:
            return float(self.times[0])
        last = int(outside[-1])
        if last + 1 >= self.times.size:
            raise SimulationError(
                f"node {node!r} has not settled within the simulated window")
        return float(self.times[last + 1])


class TransientAnalysis:
    """Fixed-step trapezoidal transient of a linear circuit."""

    def __init__(self, circuit: Circuit, gmin: float = 0.0) -> None:
        self.circuit = circuit
        self.system = MnaSystem(circuit, gmin=gmin)
        self._drive_patterns = self._build_drive_patterns()

    def _build_drive_patterns(self) -> Dict[str, np.ndarray]:
        """Unit RHS pattern per independent source (value 1 applied)."""
        patterns: Dict[str, np.ndarray] = {}
        for component in self.circuit:
            if isinstance(component, VoltageSource):
                pattern = np.zeros(self.system.dim)
                pattern[self.system.branch_index(component.name)] = 1.0
                patterns[component.name] = pattern
            elif isinstance(component, CurrentSource):
                pattern = np.zeros(self.system.dim)
                p = self.system.node_index(component.positive)
                n = self.system.node_index(component.negative)
                if p >= 0:
                    pattern[p] -= 1.0
                if n >= 0:
                    pattern[n] += 1.0
                patterns[component.name] = pattern
        return patterns

    def _rhs_series(self, times: np.ndarray,
                    waveforms: Mapping[str, Waveform]) -> np.ndarray:
        """RHS vector per time point, shape (len(times), dim)."""
        rhs = np.zeros((times.size, self.system.dim))
        for component in self.circuit:
            name = component.name
            if name not in self._drive_patterns:
                continue
            if name in waveforms:
                series = waveforms[name].values(times)
            else:
                series = np.full(times.size, float(component.value))
            rhs += series[:, None] * self._drive_patterns[name][None, :]
        unknown = set(waveforms) - set(self._drive_patterns)
        if unknown:
            raise SimulationError(
                f"waveforms reference non-source components: "
                f"{sorted(unknown)}")
        return rhs

    def run(self, t_stop: float, dt: float,
            waveforms: Optional[Mapping[str, Waveform]] = None,
            initial: str = "dc") -> TransientResult:
        """Integrate from 0 to ``t_stop`` with fixed step ``dt``.

        ``initial='dc'`` starts from the operating point implied by the
        waveform values at t=0; ``initial='zero'`` starts from all-zero
        state (useful when the DC problem is singular).
        """
        if dt <= 0.0 or t_stop <= dt:
            raise SimulationError("need t_stop > dt > 0")
        waveforms = dict(waveforms or {})
        steps = int(round(t_stop / dt))
        times = np.arange(steps + 1) * dt
        rhs = self._rhs_series(times, waveforms)

        g = self.system.g_matrix.real
        b = self.system.b_matrix.real
        left = g + (2.0 / dt) * b
        right = (2.0 / dt) * b - g
        # Factor the constant step matrix once: scipy's LU when
        # available, an explicit inverse otherwise (`left` is the
        # well-conditioned trapezoidal matrix G + (2/dt)B, so the
        # inverse-based fallback loses nothing measurable).
        try:
            if _scipy_linalg is not None:
                lu = _scipy_linalg.lu_factor(left)

                def step_solve(vector):
                    return _scipy_linalg.lu_solve(lu, vector)
            else:
                inv_left = np.linalg.inv(left)

                def step_solve(vector):
                    return inv_left @ vector
        except (ValueError, np.linalg.LinAlgError) as exc:
            raise SingularCircuitError(
                f"{self.circuit.name}: transient system matrix is "
                "singular") from exc

        states = np.zeros((times.size, self.system.dim))
        if initial == "dc":
            try:
                states[0] = np.linalg.solve(g, rhs[0])
            except np.linalg.LinAlgError as exc:
                raise SingularCircuitError(
                    f"{self.circuit.name}: DC initial condition singular; "
                    "use initial='zero' or add gmin") from exc
        elif initial != "zero":
            raise SimulationError("initial must be 'dc' or 'zero'")

        for n in range(steps):
            vector = rhs[n + 1] + rhs[n] + right @ states[n]
            states[n + 1] = step_solve(vector)
        if not np.all(np.isfinite(states)):
            raise SimulationError(
                f"{self.circuit.name}: transient diverged (non-finite "
                "state); reduce dt")

        node_voltages = {"0": np.zeros(times.size)}
        for name in self.system.node_names:
            node_voltages[name] = states[:, self.system.node_index(name)]
        return TransientResult(times, node_voltages)
