"""Simulation engines: stamp-once / solve-many AC analysis.

The scalar flow re-assembles an :class:`~repro.sim.mna.MnaSystem` per
faulty circuit: parse, validate, stamp, then solve a frequency sweep.
For a fault universe that repeats the assembly work hundreds of times on
circuits that differ from the nominal one in a single component value.

This module factors the "solve a family of single-deviation variants"
operation behind a :class:`SimulationEngine` protocol with three
implementations:

* :class:`ScalarMnaEngine` -- the reference: one circuit clone + one
  ``ACAnalysis`` per variant, exactly the historical code path;
* :class:`BatchedMnaEngine` -- stamps the nominal circuit once, records
  every component's ordered stamp contributions, materialises each
  variant's ``G``/``B`` matrices by re-folding only the entries the
  deviated component touches (delta-stamps, no circuit re-parse), and
  solves all variants x all grid frequencies with chunked batched
  ``np.linalg.solve``;
* :class:`FactoredMnaEngine` -- factors the *nominal* system once per
  frequency and solves every variant through batched
  Sherman-Morrison-Woodbury low-rank updates (each single-component
  fault only perturbs a handful of MNA entries), falling back to the
  batched dense path per variant when an update is ill-conditioned.
  Optionally assembles the nominal system with ``scipy.sparse`` on
  large circuits (graceful numpy-dense fallback when scipy is absent).

Equivalence contract: the scalar and batched engines produce *bitwise
identical* response blocks. The batched engine re-folds affected matrix
entries in the exact accumulation order of the direct stamper and feeds
the same per-matrix ``A(s) = G + s B`` systems to the same LAPACK
routine, so no tolerance is needed anywhere -- the test suite asserts
exact equality across the whole circuit library. The factored engine
computes the same transfers through an algebraically different route,
so its contract is *tight-tolerance* agreement with the scalar
reference (asserted across the registry and backstopped by the golden
suite), with the conditioning guard routing numerically risky updates
back onto the bitwise dense path.

Both engines return a :class:`ResponseBlock`, a ``(n_variants, n_freqs)``
complex transfer matrix that lazily slices into the familiar
:class:`~repro.sim.ac.FrequencyResponse` objects.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Protocol, Sequence, \
    Tuple, runtime_checkable

import numpy as np

from .. import profiling
from ..circuits.components import Component
from ..circuits.netlist import Circuit
from ..errors import SimulationError, SingularCircuitError
from ..units import TWO_PI, db
from . import lowrank
from .ac import ACAnalysis, FrequencyResponse, source_phasor
from .lowrank import LowRankDelta, NominalFactorSolver
from .mna import ComponentOps, MnaSystem

__all__ = [
    "VariantSpec",
    "ResponseBlock",
    "SimulationEngine",
    "ScalarMnaEngine",
    "BatchedMnaEngine",
    "FactoredMnaEngine",
    "EngineSpec",
    "make_engine",
    "engine_kind",
    "engine_spec",
    "ENGINE_KINDS",
]

ENGINE_KINDS = ("batched", "scalar", "factored")

#: Knobs only the factored engine understands (EngineSpec validation).
_FACTORED_KNOBS = ("cond_limit", "max_rank", "sparse", "sparse_min_dim")


@dataclass(frozen=True)
class EngineSpec:
    """One engine selection, uniformly spelled everywhere.

    Replaces the historical string-only engine spellings
    (``make_engine`` kind, ``PipelineConfig.engine``,
    ``repro-serve --engine``, ...) with a single value object carrying
    the engine *name* plus its knobs. A knob of ``None`` means "the
    engine's own default", so ``EngineSpec("factored")`` and the plain
    string ``"factored"`` are interchangeable.

    Accepted spellings (see :meth:`coerce`):

    * an :class:`EngineSpec` -- passed through;
    * a plain name string -- ``"batched"``, ``"scalar"``,
      ``"factored"``;
    * a compact knob string -- ``"factored:cond_limit=1e6,sparse=true"``
      (what ``repro-serve --engine`` and ``repro-corpus`` accept);
    * a JSON dict -- ``{"kind": "factored", "cond_limit": 1e6}``.

    :meth:`to_json_value` renders the spec back to the plain name
    string whenever every knob is default, so configs that never used
    knobs keep their historical JSON byte-for-byte.
    """

    kind: str = "batched"
    gmin: float = 0.0
    cond_limit: Optional[float] = None
    max_rank: Optional[int] = None
    sparse: Optional[object] = None
    sparse_min_dim: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ENGINE_KINDS:
            raise SimulationError(
                f"engine kind must be one of {ENGINE_KINDS}, "
                f"got {self.kind!r}")
        if self.gmin < 0.0:
            raise SimulationError("engine gmin must be >= 0")
        if self.kind != "factored":
            set_knobs = [name for name in _FACTORED_KNOBS
                         if getattr(self, name) is not None]
            if set_knobs:
                raise SimulationError(
                    f"engine knobs {set_knobs} only apply to the "
                    f"'factored' engine, not {self.kind!r}")
        if self.cond_limit is not None and not self.cond_limit > 0.0:
            raise SimulationError("cond_limit must be > 0")
        if self.max_rank is not None and self.max_rank < 1:
            raise SimulationError("max_rank must be >= 1")
        if self.sparse is not None and \
                self.sparse not in ("auto", True, False):
            raise SimulationError(
                f"sparse must be 'auto', True or False, "
                f"got {self.sparse!r}")
        if self.sparse_min_dim is not None and self.sparse_min_dim < 1:
            raise SimulationError("sparse_min_dim must be >= 1")

    # ------------------------------------------------------------------
    @classmethod
    def coerce(cls, value) -> "EngineSpec":
        """Normalise any accepted engine spelling to an EngineSpec."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, dict):
            try:
                return cls(**{str(key): val
                              for key, val in value.items()})
            except TypeError as exc:
                raise SimulationError(
                    f"bad engine spec dict: {exc}") from exc
        raise SimulationError(
            "engine must be an EngineSpec, a name string or a dict, "
            f"got {type(value).__name__}")

    @classmethod
    def parse(cls, text: str) -> "EngineSpec":
        """Parse ``"name"`` or ``"name:knob=value,knob=value"``."""
        name, _, tail = text.partition(":")
        knobs: Dict[str, object] = {}
        if tail:
            for item in tail.split(","):
                key, sep, raw = item.partition("=")
                key = key.strip()
                if not sep or not key:
                    raise SimulationError(
                        f"bad engine spec {text!r}: expected "
                        "knob=value, got " f"{item!r}")
                knobs[key] = cls._parse_knob_value(raw.strip())
        return cls.coerce({"kind": name.strip(), **knobs})

    @staticmethod
    def _parse_knob_value(raw: str) -> object:
        lowered = raw.lower()
        if lowered in ("true", "false"):
            return lowered == "true"
        if lowered == "auto":
            return "auto"
        try:
            return int(raw)
        except ValueError:
            pass
        try:
            return float(raw)
        except ValueError:
            raise SimulationError(
                f"bad engine knob value {raw!r}") from None

    # ------------------------------------------------------------------
    def to_json_value(self) -> object:
        """Plain name string when every knob is default, else a dict
        (both accepted back by :meth:`coerce` -- and by the historical
        string-only consumers when no knobs are set)."""
        knobs: Dict[str, object] = {}
        if self.gmin != 0.0:
            knobs["gmin"] = self.gmin
        for name in _FACTORED_KNOBS:
            value = getattr(self, name)
            if value is not None:
                knobs[name] = value
        if not knobs:
            return self.kind
        return {"kind": self.kind, **knobs}

    def make(self, circuit: Circuit) -> "SimulationEngine":
        """Instantiate this spec's engine for ``circuit``."""
        if self.kind == "scalar":
            return ScalarMnaEngine(circuit, gmin=self.gmin)
        if self.kind == "batched":
            return BatchedMnaEngine(circuit, gmin=self.gmin)
        knobs = {name: getattr(self, name)
                 for name in _FACTORED_KNOBS
                 if getattr(self, name) is not None}
        return FactoredMnaEngine(circuit, gmin=self.gmin, **knobs)

# The (K, N, N) stacks handed to np.linalg.solve are chunked to roughly
# this many bytes: big enough to amortise the gufunc dispatch, small
# enough that the stack stays resident in cache across construction and
# factorisation (4 MB measured fastest on the benchmark circuits).
_STACK_MEMORY_BUDGET = 4 * 1024 * 1024  # bytes


@dataclass(frozen=True)
class VariantSpec:
    """One circuit variant: a set of same-name component replacements.

    ``replacements`` is empty for the nominal circuit. ``name`` is the
    variant circuit's name (used for response labels and error
    messages); ``None`` keeps the nominal circuit's name -- matching how
    fault injection names faulty clones ``<circuit>#<fault label>``.
    """

    replacements: Tuple[Component, ...] = ()
    name: Optional[str] = None

    def __post_init__(self) -> None:
        seen = set()
        for component in self.replacements:
            if component.name in seen:
                raise SimulationError(
                    f"variant {self.name or '<nominal>'} replaces "
                    f"component {component.name!r} twice")
            seen.add(component.name)


class ResponseBlock:
    """Responses of a whole variant family on one shared grid.

    ``values[i, j]`` is the complex transfer of variant ``i`` at grid
    frequency ``j`` (already normalised by the stimulus phasor, SPICE
    ``.AC`` semantics). :meth:`response` slices a row into a
    :class:`FrequencyResponse` whose arrays are views of the block --
    bitwise-compatible with the per-circuit scalar result.
    """

    def __init__(self, freqs_hz: np.ndarray, values: np.ndarray,
                 labels: Sequence[str], output: str) -> None:
        self.freqs_hz = np.asarray(freqs_hz, dtype=float)
        self.values = np.asarray(values, dtype=complex)
        self.labels: Tuple[str, ...] = tuple(labels)
        self.output = output
        if self.values.ndim != 2 or \
                self.values.shape != (len(self.labels),
                                      self.freqs_hz.size):
            raise SimulationError(
                f"ResponseBlock needs a ({len(self.labels)}, "
                f"{self.freqs_hz.size}) value matrix, got "
                f"{self.values.shape}")
        # The FrequencyResponse grid contract, validated once for the
        # whole block; rows then use the trusted fast constructor.
        if self.freqs_hz.ndim != 1 or self.freqs_hz.size < 1:
            raise SimulationError(
                "ResponseBlock needs a non-empty 1-D frequency grid")
        if np.any(self.freqs_hz <= 0.0):
            raise SimulationError("frequencies must be positive")
        if np.any(np.diff(self.freqs_hz) <= 0.0):
            raise SimulationError("frequency grid must be strictly "
                                  "increasing")
        self._index: Dict[str, int] = {}
        for position, label in enumerate(self.labels):
            self._index.setdefault(label, position)
        self._responses: List[Optional[FrequencyResponse]] = \
            [None] * len(self.labels)

    def __len__(self) -> int:
        return len(self.labels)

    def __iter__(self) -> Iterator[FrequencyResponse]:
        for index in range(len(self.labels)):
            yield self.response(index)

    @property
    def num_freqs(self) -> int:
        return int(self.freqs_hz.size)

    def magnitude_db(self) -> np.ndarray:
        """(n_variants, n_freqs) dB magnitudes of the whole block."""
        return np.asarray(db(self.values), dtype=float)

    def response(self, key: int | str) -> FrequencyResponse:
        """Variant response by position or label (lazily built, cached)."""
        if isinstance(key, str):
            try:
                index = self._index[key]
            except KeyError:
                raise SimulationError(
                    f"no variant labelled {key!r} in response block; "
                    f"have {self.labels[:10]}...") from None
        else:
            index = int(key)
            if not -len(self.labels) <= index < len(self.labels):
                raise SimulationError(
                    f"variant index {index} out of range "
                    f"[0, {len(self.labels)})")
            index %= len(self.labels)
        cached = self._responses[index]
        if cached is None:
            cached = FrequencyResponse._trusted(
                self.freqs_hz, self.values[index], self.output,
                f"{self.labels[index]}:{self.output}")
            self._responses[index] = cached
        return cached

    def responses(self) -> Tuple[FrequencyResponse, ...]:
        """Every variant response, in block order."""
        return tuple(self.response(i) for i in range(len(self)))


@runtime_checkable
class SimulationEngine(Protocol):
    """Anything that can AC-solve a family of circuit variants."""

    @property
    def circuit(self) -> Circuit: ...

    def transfer_block(self, output_node: str, freqs_hz: np.ndarray,
                       variants: Sequence[VariantSpec],
                       input_source: Optional[str] = None
                       ) -> ResponseBlock: ...


class ScalarMnaEngine:
    """Reference engine: one full circuit assembly + sweep per variant.

    This is the historical code path (clone the netlist, build an
    :class:`ACAnalysis`, run ``solve_frequencies``) wrapped in the
    engine protocol. It exists as the equivalence baseline and as the
    conservative fallback (``PipelineConfig(engine="scalar")``).
    """

    def __init__(self, circuit: Circuit, gmin: float = 0.0) -> None:
        self._circuit = circuit
        self.gmin = float(gmin)

    @property
    def circuit(self) -> Circuit:
        return self._circuit

    def _variant_circuit(self, spec: VariantSpec) -> Circuit:
        if not spec.replacements and spec.name is None:
            return self._circuit
        replaced = {c.name: c for c in spec.replacements}
        missing = set(replaced) - set(self._circuit.component_names)
        if missing:
            raise SimulationError(
                f"{self._circuit.name}: variant replaces unknown "
                f"component(s) {sorted(missing)}")
        return Circuit(spec.name or self._circuit.name,
                       [replaced.get(c.name, c) for c in self._circuit])

    def transfer_block(self, output_node: str, freqs_hz: np.ndarray,
                       variants: Sequence[VariantSpec],
                       input_source: Optional[str] = None
                       ) -> ResponseBlock:
        freqs = np.asarray(freqs_hz, dtype=float)
        if not variants:
            raise SimulationError("transfer_block needs >= 1 variant")
        profiled = profiling.enabled()
        start = time.perf_counter() if profiled else 0.0
        values = np.empty((len(variants), freqs.size), dtype=complex)
        labels = []
        for index, spec in enumerate(variants):
            circuit = self._variant_circuit(spec)
            response = ACAnalysis(circuit, gmin=self.gmin).transfer(
                output_node, freqs, input_source)
            values[index] = response.values
            labels.append(circuit.name)
        if profiled:
            profiling.profile_event(
                "engine.solve", time.perf_counter() - start,
                engine="scalar", variants=len(variants),
                freqs=int(freqs.size), chunks=len(variants))
        return ResponseBlock(freqs, values, labels, output_node)


class BatchedMnaEngine:
    """Stamp-once / solve-many engine over a fixed nominal circuit.

    Construction assembles the nominal MNA system and records every
    component's ordered stamp contributions. Each variant's matrices are
    the nominal arrays with only the replaced components' entries
    re-folded -- in the exact accumulation order of a fresh assembly, so
    the variant matrices are bitwise-identical to re-stamping the faulty
    circuit. All variant x frequency systems are then solved through
    chunked batched ``np.linalg.solve`` calls (the same per-matrix
    LAPACK operation the scalar sweep performs).
    """

    #: Profiling label for engine construction (``engine.stamp``).
    _kind = "batched"
    #: Profiling label for the dense ``transfer_block`` solve
    #: (``engine.solve``); the factored subclass relabels its fallback
    #: calls so dashboards can tell main-path from fallback work.
    _dense_solve_kind = "batched"

    def __init__(self, circuit: Circuit, gmin: float = 0.0) -> None:
        stamp_start = time.perf_counter() if profiling.enabled() else None
        self._circuit = circuit
        self.gmin = float(gmin)
        self.system = MnaSystem(circuit, gmin=gmin)
        # The assembled arrays (gmin already applied to _g's diagonal).
        self._base_g = self.system.g_matrix
        self._base_b = self.system.b_matrix
        self._base_z_ac = self.system.rhs("ac")
        # Per-component ordered stamp ops + per-entry contribution
        # streams: entry -> [(component, op position), ...] in stamp
        # order. Re-folding a stream with one component's values swapped
        # reproduces a fresh assembly of that entry bitwise.
        self._ops: Dict[str, ComponentOps] = {}
        self._matrix_streams: Dict[Tuple[str, int, int],
                                   List[Tuple[str, int]]] = {}
        self._rhs_streams: Dict[Tuple[str, int],
                                List[Tuple[str, int]]] = {}
        # Per component: the distinct entries it touches and its stamp
        # structure (entry sequence without values) for replacement
        # validation -- both precomputed so per-variant patching only
        # re-stamps and re-folds.
        self._touched_matrix: Dict[str, Tuple[Tuple[str, int, int],
                                              ...]] = {}
        self._touched_rhs: Dict[str, Tuple[Tuple[str, int], ...]] = {}
        self._structure: Dict[str, Tuple[tuple, tuple]] = {}
        for component in circuit:
            ops = self.system.component_ops(component)
            self._ops[component.name] = ops
            for position, (target, row, col, _) in \
                    enumerate(ops.matrix_ops):
                self._matrix_streams.setdefault(
                    (target, row, col), []).append(
                        (component.name, position))
            for position, (target, row, _) in enumerate(ops.rhs_ops):
                self._rhs_streams.setdefault((target, row), []).append(
                    (component.name, position))
            matrix_structure = tuple(op[:3] for op in ops.matrix_ops)
            rhs_structure = tuple(op[:2] for op in ops.rhs_ops)
            self._structure[component.name] = (matrix_structure,
                                               rhs_structure)
            self._touched_matrix[component.name] = tuple(
                dict.fromkeys(matrix_structure))
            self._touched_rhs[component.name] = tuple(
                dict.fromkeys(rhs_structure))
        if stamp_start is not None:
            profiling.profile_event(
                "engine.stamp", time.perf_counter() - stamp_start,
                engine=self._kind, circuit=circuit.name,
                dim=self.system.dim)

    @property
    def circuit(self) -> Circuit:
        return self._circuit

    # ------------------------------------------------------------------
    # Delta-stamping
    # ------------------------------------------------------------------
    def _replacement_ops(self, spec: VariantSpec
                         ) -> Dict[str, ComponentOps]:
        """Stamp ops of every replaced component, structure-checked."""
        replaced: Dict[str, ComponentOps] = {}
        for component in spec.replacements:
            structure = self._structure.get(component.name)
            if structure is None:
                raise SimulationError(
                    f"{self._circuit.name}: variant "
                    f"{spec.name or '<nominal>'} replaces unknown "
                    f"component {component.name!r}")
            ops = self.system.component_ops(component)
            if tuple(op[:3] for op in ops.matrix_ops) != structure[0] \
                    or tuple(op[:2] for op in ops.rhs_ops) != \
                    structure[1]:
                raise SimulationError(
                    f"{self._circuit.name}: replacement for "
                    f"{component.name!r} changes the stamp structure; "
                    "delta-stamping needs same-name, same-terminal "
                    "replacements")
            replaced[component.name] = ops
        return replaced

    def _fold_matrix_entry(self, key: Tuple[str, int, int],
                           replaced: Dict[str, ComponentOps]) -> complex:
        """Re-accumulate one matrix entry in fresh-assembly order."""
        total = 0.0 + 0.0j
        for name, position in self._matrix_streams[key]:
            ops = replaced.get(name) or self._ops[name]
            total = total + ops.matrix_ops[position][3]
        if self.gmin > 0.0 and key[0] == "g" and key[1] == key[2] and \
                key[1] < self.system.num_nodes:
            total = total + self.gmin
        return total

    def _fold_rhs_entry(self, key: Tuple[str, int],
                        replaced: Dict[str, ComponentOps]) -> complex:
        total = 0.0 + 0.0j
        for name, position in self._rhs_streams[key]:
            ops = replaced.get(name) or self._ops[name]
            total = total + ops.rhs_ops[position][2]
        return total

    def _variant_arrays(self, spec: VariantSpec,
                        g: np.ndarray, b: np.ndarray,
                        z_ac: np.ndarray) -> None:
        """Patch preallocated nominal copies into the variant's arrays."""
        replaced = self._replacement_ops(spec)
        touched_matrix: Dict[Tuple[str, int, int], None] = {}
        touched_rhs: Dict[Tuple[str, int], None] = {}
        for name in replaced:
            for key in self._touched_matrix[name]:
                touched_matrix.setdefault(key)
            for key in self._touched_rhs[name]:
                touched_rhs.setdefault(key)
        for key in touched_matrix:
            value = self._fold_matrix_entry(key, replaced)
            (g if key[0] == "g" else b)[key[1], key[2]] = value
        for key in touched_rhs:
            if key[0] == "ac":
                z_ac[key[1]] = self._fold_rhs_entry(key, replaced)

    # ------------------------------------------------------------------
    # Batched solving
    # ------------------------------------------------------------------
    def _solve_stack(self, stack: np.ndarray, rhs: np.ndarray,
                     labels: Sequence[str],
                     s_values: np.ndarray) -> np.ndarray:
        """Solve a (K, N, N) stack, falling back per matrix on failure."""
        try:
            return np.linalg.solve(stack, rhs)[..., 0]
        except np.linalg.LinAlgError:
            out = np.empty((stack.shape[0], stack.shape[1]),
                           dtype=complex)
            for index in range(stack.shape[0]):
                try:
                    out[index] = np.linalg.solve(
                        stack[index], rhs[index][:, 0])
                except np.linalg.LinAlgError as exc:
                    raise SingularCircuitError(
                        f"{labels[index]}: MNA matrix singular at "
                        f"s={s_values[index]!r}; check for floating "
                        "nodes, voltage-source loops or op-amps without "
                        "feedback") from exc
            return out

    def _check_block_args(self, freqs: np.ndarray,
                          variants: Sequence[VariantSpec],
                          input_source: Optional[str]) -> str:
        """Shared ``transfer_block`` validation; returns the source name."""
        if freqs.ndim != 1 or freqs.size == 0:
            raise SimulationError("frequency grid must be a non-empty "
                                  "1-D array")
        if np.any(freqs <= 0.0):
            raise SimulationError("AC analysis frequencies must be "
                                  "positive")
        if not variants:
            raise SimulationError("transfer_block needs >= 1 variant")
        source_name = input_source or self._circuit.ac_source_name()
        if source_name not in self._circuit:
            raise SimulationError(
                f"{self._circuit.name}: no component named "
                f"{source_name!r}")
        return source_name

    def transfer_block(self, output_node: str, freqs_hz: np.ndarray,
                       variants: Sequence[VariantSpec],
                       input_source: Optional[str] = None
                       ) -> ResponseBlock:
        freqs = np.asarray(freqs_hz, dtype=float)
        source_name = self._check_block_args(freqs, variants,
                                             input_source)

        num_variants = len(variants)
        num_freqs = freqs.size
        dim = self.system.dim
        labels: List[str] = []
        phasors = np.empty(num_variants, dtype=complex)

        # Materialise the variant matrix stacks: nominal copies with
        # only the replaced components' entries re-folded.
        g_stack = np.repeat(self._base_g[None, :, :], num_variants, axis=0)
        b_stack = np.repeat(self._base_b[None, :, :], num_variants, axis=0)
        z_stack = np.repeat(self._base_z_ac[None, :], num_variants, axis=0)
        for index, spec in enumerate(variants):
            labels.append(spec.name or self._circuit.name)
            if spec.replacements:
                self._variant_arrays(spec, g_stack[index], b_stack[index],
                                     z_stack[index])
            source = next((c for c in spec.replacements
                           if c.name == source_name),
                          self._circuit[source_name])
            phasors[index] = source_phasor(source, source_name)

        solve_start = time.perf_counter() if profiling.enabled() else None
        chunks_solved = 0
        s_all = 1j * TWO_PI * freqs
        solutions = np.empty((num_variants, num_freqs, dim),
                             dtype=complex)
        bytes_per_matrix = 16 * dim * dim
        chunk = max(1, int(_STACK_MEMORY_BUDGET // max(1,
                                                       bytes_per_matrix)))
        variants_per_chunk = max(1, chunk // num_freqs)
        if variants_per_chunk > 1:
            # Fused path: several whole variants per stacked solve.
            for lo in range(0, num_variants, variants_per_chunk):
                hi = min(lo + variants_per_chunk, num_variants)
                count = (hi - lo) * num_freqs
                stack = (g_stack[lo:hi, None, :, :] +
                         s_all[None, :, None, None] *
                         b_stack[lo:hi, None, :, :]).reshape(count, dim,
                                                             dim)
                rhs = np.ascontiguousarray(
                    np.broadcast_to(z_stack[lo:hi, None, :, None],
                                    (hi - lo, num_freqs, dim, 1))
                ).reshape(count, dim, 1)
                chunk_labels = [labels[lo + k // num_freqs]
                                for k in range(count)]
                chunk_s = np.tile(s_all, hi - lo)
                solved = self._solve_stack(stack, rhs, chunk_labels,
                                           chunk_s)
                solutions[lo:hi] = solved.reshape(hi - lo, num_freqs,
                                                  dim)
                chunks_solved += 1
        else:
            # One variant at a time, frequencies chunked (the scalar
            # sweep's own shape) -- for grids too large to fuse.
            for index in range(num_variants):
                rhs_row = z_stack[index]
                for start in range(0, num_freqs, chunk):
                    stop = min(start + chunk, num_freqs)
                    s_values = s_all[start:stop]
                    stack = (g_stack[index][None, :, :] +
                             s_values[:, None, None] *
                             b_stack[index][None, :, :])
                    rhs = np.ascontiguousarray(np.broadcast_to(
                        rhs_row[None, :, None],
                        (stop - start, dim, 1)))
                    solved = self._solve_stack(
                        stack, rhs, [labels[index]] * (stop - start),
                        s_values)
                    solutions[index, start:stop] = solved
                    chunks_solved += 1

        for index in range(num_variants):
            if not np.all(np.isfinite(solutions[index])):
                raise SingularCircuitError(
                    f"{labels[index]}: non-finite solution in AC sweep")

        out_index = self.system.node_index(output_node)
        if out_index < 0:
            values = np.zeros((num_variants, num_freqs), dtype=complex)
        else:
            values = solutions[:, :, out_index] / phasors[:, None]
        if solve_start is not None:
            profiling.profile_event(
                "engine.solve", time.perf_counter() - solve_start,
                engine=self._dense_solve_kind, variants=num_variants,
                freqs=num_freqs, chunks=chunks_solved)
        return ResponseBlock(freqs, values, labels, output_node)


class FactoredMnaEngine(BatchedMnaEngine):
    """Factor-once / low-rank-update engine (Sherman-Morrison-Woodbury).

    Every fault variant only perturbs the handful of MNA entries its
    replaced component stamps, so ``A_v(s) = A(s) + U M(s) V.T`` with a
    tiny ``(r, c)`` block ``M(s) = delta_g + s * delta_b`` (``r``, ``c``
    <= ``max_rank``). Instead of one dense LU per variant per frequency
    (the batched path), this engine:

    1. solves the *nominal* system once per frequency against a shared
       multi-column RHS -- the stimulus vector plus one identity column
       per touched row (one LU amortised over all columns; optionally
       ``scipy.sparse`` ``splu`` on large circuits);
    2. forms each variant's ``r x r`` capacitance matrix
       ``C = I + M(s) * V.T A(s)^{-1} U`` and solves it **batched over
       same-support variant groups and frequencies**;
    3. combines ``x_v[out] = y0[out] - (A^{-1}U)[out] C^{-1} M y0[V]``
       -- the Woodbury identity evaluated only at the observed output.

    Numerics are guarded per variant: a capacitance matrix that is
    non-finite, near-singular or worse-conditioned than ``cond_limit``
    routes that variant to the inherited batched dense path (bitwise
    the historical result), as do updates wider than ``max_rank``.
    Stimulus-source replacements (RHS deltas) stay on the low-rank path
    via extra nominal columns at the touched RHS rows.

    Counters (``lowrank_updates``, ``lowrank_fallbacks``) accumulate
    across calls and are mirrored to :mod:`repro.profiling` events
    (``engine.factor``, ``engine.lowrank``, ``engine.solve``) for the
    telemetry layer.
    """

    _kind = "factored"
    _dense_solve_kind = "factored_fallback"

    def __init__(self, circuit: Circuit, gmin: float = 0.0, *,
                 cond_limit: float = 1e8, max_rank: int = 8,
                 sparse: object = "auto",
                 sparse_min_dim: int = 50) -> None:
        super().__init__(circuit, gmin=gmin)
        if not cond_limit > 0.0:
            raise SimulationError("cond_limit must be positive")
        if max_rank < 1:
            raise SimulationError("max_rank must be >= 1")
        if sparse not in ("auto", True, False):
            raise SimulationError(
                f"sparse must be 'auto', True or False, got {sparse!r}")
        if sparse is True and lowrank.scipy_sparse() is None:
            raise SimulationError(
                f"{circuit.name}: sparse=True requires scipy; install "
                "it or use sparse='auto' for the numpy fallback")
        self.cond_limit = float(cond_limit)
        self.max_rank = int(max_rank)
        self.sparse_min_dim = int(sparse_min_dim)
        self._sparse_mode = sparse
        self._solver: Optional[NominalFactorSolver] = None
        #: Variants solved via low-rank updates, across all calls.
        self.lowrank_updates = 0
        #: Dense-fallback counts by reason, across all calls.
        self.lowrank_fallbacks: Dict[str, int] = {
            "conditioning": 0, "rank": 0, "nonfinite": 0}

    @property
    def uses_sparse(self) -> bool:
        """Whether nominal factorisation runs through scipy.sparse."""
        if self._sparse_mode == "auto":
            return lowrank.scipy_sparse() is not None and \
                self.system.dim >= self.sparse_min_dim
        return bool(self._sparse_mode)

    def _nominal_solver(self) -> NominalFactorSolver:
        if self._solver is None:
            self._solver = NominalFactorSolver(
                self._base_g, self._base_b, sparse=self.uses_sparse,
                label=self._circuit.name)
        return self._solver

    def transfer_block(self, output_node: str, freqs_hz: np.ndarray,
                       variants: Sequence[VariantSpec],
                       input_source: Optional[str] = None
                       ) -> ResponseBlock:
        freqs = np.asarray(freqs_hz, dtype=float)
        source_name = self._check_block_args(freqs, variants,
                                             input_source)
        num_variants = len(variants)
        num_freqs = freqs.size
        dim = self.system.dim

        labels: List[str] = []
        phasors = np.empty(num_variants, dtype=complex)
        deltas: List[Optional[LowRankDelta]] = [None] * num_variants
        fallback: Dict[int, str] = {}
        for index, spec in enumerate(variants):
            labels.append(spec.name or self._circuit.name)
            source = next((c for c in spec.replacements
                           if c.name == source_name),
                          self._circuit[source_name])
            phasors[index] = source_phasor(source, source_name)
            if not spec.replacements:
                continue
            delta = lowrank.variant_delta(
                self._ops, self._replacement_ops(spec))
            if delta.rank > self.max_rank:
                fallback[index] = "rank"
            else:
                deltas[index] = delta

        out_index = self.system.node_index(output_node)
        if out_index < 0:
            # Observing ground: every transfer is identically zero, no
            # solves needed (matches the batched result).
            return ResponseBlock(
                freqs, np.zeros((num_variants, num_freqs),
                                dtype=complex), labels, output_node)

        profiled = profiling.enabled()
        total_start = time.perf_counter() if profiled else 0.0
        factor_seconds = 0.0
        update_seconds = 0.0
        chunks_solved = 0

        # Group low-rank variants by support signature so capacitance
        # solves batch over (variants in group) x (frequency chunk);
        # all deviations of one component share a signature.
        identity_indices: List[int] = []
        grouped: Dict[tuple, List[int]] = {}
        for index in range(num_variants):
            if index in fallback:
                continue
            delta = deltas[index]
            if delta is None or delta.is_identity:
                identity_indices.append(index)
            else:
                grouped.setdefault(delta.signature, []).append(index)

        union_rows: List[int] = sorted(
            {row for signature in grouped for row in signature[0]} |
            {row for signature in grouped for row in signature[2]})
        cols_union: List[int] = sorted(
            {col for signature in grouped for col in signature[1]})
        union_pos = {row: i for i, row in enumerate(union_rows)}
        cols_pos = {col: i for i, col in enumerate(cols_union)}
        num_cols = len(union_rows)

        prepared = []
        for (rows, cols, rhs_rows), indices in grouped.items():
            group_deltas = [deltas[i] for i in indices]
            prepared.append((
                np.asarray(indices, dtype=int),
                np.asarray([union_pos[r] for r in rows], dtype=int),
                np.asarray([cols_pos[c] for c in cols], dtype=int),
                np.asarray([union_pos[r] for r in rhs_rows], dtype=int),
                np.stack([d.delta_g for d in group_deltas]),
                np.stack([d.delta_b for d in group_deltas]),
                np.stack([d.rhs_delta for d in group_deltas])
                if rhs_rows else None,
                len(rows)))

        x_out = np.empty((num_variants, num_freqs), dtype=complex)
        if prepared or identity_indices:
            # Shared RHS: the stimulus vector plus one identity column
            # per touched (matrix or RHS) row.
            rhs_mat = np.zeros((dim, 1 + num_cols), dtype=complex)
            rhs_mat[:, 0] = self._base_z_ac
            for position, row in enumerate(union_rows):
                rhs_mat[row, 1 + position] = 1.0
            solver = self._nominal_solver()
            s_all = 1j * TWO_PI * freqs
            bytes_per_freq = 16 * dim * \
                (dim if not solver.sparse else 4 * (1 + num_cols))
            chunk = max(1, int(_STACK_MEMORY_BUDGET //
                               max(1, bytes_per_freq)))
            for start in range(0, num_freqs, chunk):
                stop = min(start + chunk, num_freqs)
                s_chunk = s_all[start:stop]
                tick = time.perf_counter() if profiled else 0.0
                solution = solver.solve(s_chunk, rhs_mat)
                if profiled:
                    now = time.perf_counter()
                    factor_seconds += now - tick
                    tick = now
                chunks_solved += 1
                y0_out = solution[:, out_index, 0]
                w_out = solution[:, out_index, 1:]
                y0_cols = solution[:, cols_union, 0]
                w_cols = solution[:, cols_union, 1:]
                if identity_indices:
                    x_out[identity_indices, start:stop] = y0_out
                for indices, rowsel, colsel, rhssel, mg, mb, dz, \
                        rank in prepared:
                    if dz is not None:
                        y0v_out = y0_out[None, :] + np.einsum(
                            "vR,fR->vf", dz, w_out[:, rhssel])
                        y0v_cols = y0_cols[None, :, colsel] + np.einsum(
                            "vR,fcR->vfc", dz,
                            w_cols[:, colsel][:, :, rhssel])
                    else:
                        y0v_out = y0_out[None, :]
                        y0v_cols = y0_cols[None, :, colsel]
                    if rank == 0:
                        # Pure RHS update (stimulus replacement): the
                        # matrix is nominal, no capacitance solve.
                        x_out[indices, start:stop] = y0v_out
                        continue
                    m_block = mg[:, None, :, :] + \
                        s_chunk[None, :, None, None] * mb[:, None, :, :]
                    s_block = w_cols[:, colsel][:, :, rowsel]
                    cap = np.eye(rank) + m_block @ s_block[None]
                    finite = np.isfinite(cap).all(axis=(-2, -1))
                    if not finite.all():
                        cap[~finite] = np.eye(rank)
                    smax, smin = lowrank.singular_bounds(cap)
                    bad = ~finite | (smin * self.cond_limit <=
                                     np.maximum(smax, 1.0))
                    if bad.any():
                        cap[bad] = np.eye(rank)
                        for local in np.nonzero(bad.any(axis=1))[0]:
                            fallback.setdefault(int(indices[local]),
                                                "conditioning")
                    rhs_small = m_block @ y0v_cols[..., None]
                    t_small = lowrank.solve_capacitance(cap, rhs_small)
                    corr = np.einsum("fr,vfr->vf", w_out[:, rowsel],
                                     t_small)
                    x_out[indices, start:stop] = y0v_out - corr
                if profiled:
                    update_seconds += time.perf_counter() - tick

        # A finite capacitance matrix can still overflow downstream;
        # route any non-finite low-rank row to the dense path too.
        for indices, *_ in prepared:
            for index in indices:
                index = int(index)
                if index not in fallback and \
                        not np.all(np.isfinite(x_out[index])):
                    fallback[index] = "nonfinite"

        values = x_out / phasors[:, None]
        fallback_indices = sorted(fallback)
        if fallback_indices:
            dense_block = BatchedMnaEngine.transfer_block(
                self, output_node, freqs,
                [variants[i] for i in fallback_indices], input_source)
            values[fallback_indices] = dense_block.values

        updates = sum(
            1 for indices, *_ in prepared for index in indices
            if int(index) not in fallback)
        self.lowrank_updates += updates
        reason_counts = {"conditioning": 0, "rank": 0, "nonfinite": 0}
        for reason in fallback.values():
            reason_counts[reason] += 1
        for reason, count in reason_counts.items():
            self.lowrank_fallbacks[reason] += count

        if profiled:
            solver = self._solver
            profiling.profile_event(
                "engine.factor", factor_seconds, engine="factored",
                mode="sparse" if solver is not None and solver.sparse
                else "dense",
                freqs=num_freqs, rhs_columns=1 + num_cols)
            profiling.profile_event(
                "engine.lowrank", update_seconds, engine="factored",
                updates=updates, fallbacks=len(fallback),
                fallback_conditioning=reason_counts["conditioning"],
                fallback_rank=reason_counts["rank"],
                fallback_nonfinite=reason_counts["nonfinite"])
            profiling.profile_event(
                "engine.solve", time.perf_counter() - total_start,
                engine="factored", variants=num_variants,
                freqs=num_freqs, chunks=chunks_solved)
        return ResponseBlock(freqs, values, labels, output_node)


def make_engine(circuit: Circuit, kind: object = "batched",
                gmin: float = 0.0) -> SimulationEngine:
    """Engine factory keyed by :class:`PipelineConfig`'s ``engine`` knob.

    ``kind`` accepts any :meth:`EngineSpec.coerce` spelling: a plain
    name string (the historical API), a compact knob string, a dict or
    an :class:`EngineSpec`. A non-zero ``gmin`` argument overrides the
    spec's own ``gmin``.
    """
    spec = EngineSpec.coerce(kind)
    if gmin:
        spec = dataclasses.replace(spec, gmin=float(gmin))
    return spec.make(circuit)


def engine_kind(engine: SimulationEngine) -> Optional[str]:
    """The :func:`make_engine` kind string that reconstructs
    ``engine``'s type, or None for foreign engine implementations
    (pool workers need the kind to rebuild an equivalent engine)."""
    kind = getattr(engine, "_kind", None)
    if kind in ENGINE_KINDS:
        return str(kind)
    if isinstance(engine, ScalarMnaEngine):
        return "scalar"
    return None


def engine_spec(engine: SimulationEngine) -> Optional[EngineSpec]:
    """The :class:`EngineSpec` that rebuilds an equivalent engine.

    Unlike :func:`engine_kind` this preserves the knobs (``gmin``, the
    factored engine's conditioning/sparsity settings), so pool workers
    reconstructing an engine from the spec match the parent's numerics
    exactly. None for foreign engine implementations.
    """
    kind = engine_kind(engine)
    if kind is None:
        return None
    gmin = float(getattr(engine, "gmin", 0.0))
    if kind != "factored":
        return EngineSpec(kind=kind, gmin=gmin)
    return EngineSpec(
        kind="factored", gmin=gmin,
        cond_limit=float(engine.cond_limit),
        max_rank=int(engine.max_rank),
        sparse=engine._sparse_mode,
        sparse_min_dim=int(engine.sparse_min_dim))
