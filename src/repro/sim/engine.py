"""Simulation engines: stamp-once / solve-many AC analysis.

The scalar flow re-assembles an :class:`~repro.sim.mna.MnaSystem` per
faulty circuit: parse, validate, stamp, then solve a frequency sweep.
For a fault universe that repeats the assembly work hundreds of times on
circuits that differ from the nominal one in a single component value.

This module factors the "solve a family of single-deviation variants"
operation behind a :class:`SimulationEngine` protocol with two
implementations:

* :class:`ScalarMnaEngine` -- the reference: one circuit clone + one
  ``ACAnalysis`` per variant, exactly the historical code path;
* :class:`BatchedMnaEngine` -- stamps the nominal circuit once, records
  every component's ordered stamp contributions, materialises each
  variant's ``G``/``B`` matrices by re-folding only the entries the
  deviated component touches (delta-stamps, no circuit re-parse), and
  solves all variants x all grid frequencies with chunked batched
  ``np.linalg.solve``.

Equivalence contract: both engines produce *bitwise identical* response
blocks. The batched engine re-folds affected matrix entries in the exact
accumulation order of the direct stamper and feeds the same per-matrix
``A(s) = G + s B`` systems to the same LAPACK routine, so no tolerance
is needed anywhere -- the test suite asserts exact equality across the
whole circuit library.

Both engines return a :class:`ResponseBlock`, a ``(n_variants, n_freqs)``
complex transfer matrix that lazily slices into the familiar
:class:`~repro.sim.ac.FrequencyResponse` objects.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Protocol, Sequence, \
    Tuple, runtime_checkable

import numpy as np

from .. import profiling
from ..circuits.components import Component
from ..circuits.netlist import Circuit
from ..errors import SimulationError, SingularCircuitError
from ..units import TWO_PI, db
from .ac import ACAnalysis, FrequencyResponse, source_phasor
from .mna import ComponentOps, MnaSystem

__all__ = [
    "VariantSpec",
    "ResponseBlock",
    "SimulationEngine",
    "ScalarMnaEngine",
    "BatchedMnaEngine",
    "make_engine",
    "ENGINE_KINDS",
]

ENGINE_KINDS = ("batched", "scalar")

# The (K, N, N) stacks handed to np.linalg.solve are chunked to roughly
# this many bytes: big enough to amortise the gufunc dispatch, small
# enough that the stack stays resident in cache across construction and
# factorisation (4 MB measured fastest on the benchmark circuits).
_STACK_MEMORY_BUDGET = 4 * 1024 * 1024  # bytes


@dataclass(frozen=True)
class VariantSpec:
    """One circuit variant: a set of same-name component replacements.

    ``replacements`` is empty for the nominal circuit. ``name`` is the
    variant circuit's name (used for response labels and error
    messages); ``None`` keeps the nominal circuit's name -- matching how
    fault injection names faulty clones ``<circuit>#<fault label>``.
    """

    replacements: Tuple[Component, ...] = ()
    name: Optional[str] = None

    def __post_init__(self) -> None:
        seen = set()
        for component in self.replacements:
            if component.name in seen:
                raise SimulationError(
                    f"variant {self.name or '<nominal>'} replaces "
                    f"component {component.name!r} twice")
            seen.add(component.name)


class ResponseBlock:
    """Responses of a whole variant family on one shared grid.

    ``values[i, j]`` is the complex transfer of variant ``i`` at grid
    frequency ``j`` (already normalised by the stimulus phasor, SPICE
    ``.AC`` semantics). :meth:`response` slices a row into a
    :class:`FrequencyResponse` whose arrays are views of the block --
    bitwise-compatible with the per-circuit scalar result.
    """

    def __init__(self, freqs_hz: np.ndarray, values: np.ndarray,
                 labels: Sequence[str], output: str) -> None:
        self.freqs_hz = np.asarray(freqs_hz, dtype=float)
        self.values = np.asarray(values, dtype=complex)
        self.labels: Tuple[str, ...] = tuple(labels)
        self.output = output
        if self.values.ndim != 2 or \
                self.values.shape != (len(self.labels),
                                      self.freqs_hz.size):
            raise SimulationError(
                f"ResponseBlock needs a ({len(self.labels)}, "
                f"{self.freqs_hz.size}) value matrix, got "
                f"{self.values.shape}")
        # The FrequencyResponse grid contract, validated once for the
        # whole block; rows then use the trusted fast constructor.
        if self.freqs_hz.ndim != 1 or self.freqs_hz.size < 1:
            raise SimulationError(
                "ResponseBlock needs a non-empty 1-D frequency grid")
        if np.any(self.freqs_hz <= 0.0):
            raise SimulationError("frequencies must be positive")
        if np.any(np.diff(self.freqs_hz) <= 0.0):
            raise SimulationError("frequency grid must be strictly "
                                  "increasing")
        self._index: Dict[str, int] = {}
        for position, label in enumerate(self.labels):
            self._index.setdefault(label, position)
        self._responses: List[Optional[FrequencyResponse]] = \
            [None] * len(self.labels)

    def __len__(self) -> int:
        return len(self.labels)

    def __iter__(self) -> Iterator[FrequencyResponse]:
        for index in range(len(self.labels)):
            yield self.response(index)

    @property
    def num_freqs(self) -> int:
        return int(self.freqs_hz.size)

    def magnitude_db(self) -> np.ndarray:
        """(n_variants, n_freqs) dB magnitudes of the whole block."""
        return np.asarray(db(self.values), dtype=float)

    def response(self, key: int | str) -> FrequencyResponse:
        """Variant response by position or label (lazily built, cached)."""
        if isinstance(key, str):
            try:
                index = self._index[key]
            except KeyError:
                raise SimulationError(
                    f"no variant labelled {key!r} in response block; "
                    f"have {self.labels[:10]}...") from None
        else:
            index = int(key)
            if not -len(self.labels) <= index < len(self.labels):
                raise SimulationError(
                    f"variant index {index} out of range "
                    f"[0, {len(self.labels)})")
            index %= len(self.labels)
        cached = self._responses[index]
        if cached is None:
            cached = FrequencyResponse._trusted(
                self.freqs_hz, self.values[index], self.output,
                f"{self.labels[index]}:{self.output}")
            self._responses[index] = cached
        return cached

    def responses(self) -> Tuple[FrequencyResponse, ...]:
        """Every variant response, in block order."""
        return tuple(self.response(i) for i in range(len(self)))


@runtime_checkable
class SimulationEngine(Protocol):
    """Anything that can AC-solve a family of circuit variants."""

    @property
    def circuit(self) -> Circuit: ...

    def transfer_block(self, output_node: str, freqs_hz: np.ndarray,
                       variants: Sequence[VariantSpec],
                       input_source: Optional[str] = None
                       ) -> ResponseBlock: ...


class ScalarMnaEngine:
    """Reference engine: one full circuit assembly + sweep per variant.

    This is the historical code path (clone the netlist, build an
    :class:`ACAnalysis`, run ``solve_frequencies``) wrapped in the
    engine protocol. It exists as the equivalence baseline and as the
    conservative fallback (``PipelineConfig(engine="scalar")``).
    """

    def __init__(self, circuit: Circuit, gmin: float = 0.0) -> None:
        self._circuit = circuit
        self.gmin = float(gmin)

    @property
    def circuit(self) -> Circuit:
        return self._circuit

    def _variant_circuit(self, spec: VariantSpec) -> Circuit:
        if not spec.replacements and spec.name is None:
            return self._circuit
        replaced = {c.name: c for c in spec.replacements}
        missing = set(replaced) - set(self._circuit.component_names)
        if missing:
            raise SimulationError(
                f"{self._circuit.name}: variant replaces unknown "
                f"component(s) {sorted(missing)}")
        return Circuit(spec.name or self._circuit.name,
                       [replaced.get(c.name, c) for c in self._circuit])

    def transfer_block(self, output_node: str, freqs_hz: np.ndarray,
                       variants: Sequence[VariantSpec],
                       input_source: Optional[str] = None
                       ) -> ResponseBlock:
        freqs = np.asarray(freqs_hz, dtype=float)
        if not variants:
            raise SimulationError("transfer_block needs >= 1 variant")
        profiled = profiling.enabled()
        start = time.perf_counter() if profiled else 0.0
        values = np.empty((len(variants), freqs.size), dtype=complex)
        labels = []
        for index, spec in enumerate(variants):
            circuit = self._variant_circuit(spec)
            response = ACAnalysis(circuit, gmin=self.gmin).transfer(
                output_node, freqs, input_source)
            values[index] = response.values
            labels.append(circuit.name)
        if profiled:
            profiling.profile_event(
                "engine.solve", time.perf_counter() - start,
                engine="scalar", variants=len(variants),
                freqs=int(freqs.size), chunks=len(variants))
        return ResponseBlock(freqs, values, labels, output_node)


class BatchedMnaEngine:
    """Stamp-once / solve-many engine over a fixed nominal circuit.

    Construction assembles the nominal MNA system and records every
    component's ordered stamp contributions. Each variant's matrices are
    the nominal arrays with only the replaced components' entries
    re-folded -- in the exact accumulation order of a fresh assembly, so
    the variant matrices are bitwise-identical to re-stamping the faulty
    circuit. All variant x frequency systems are then solved through
    chunked batched ``np.linalg.solve`` calls (the same per-matrix
    LAPACK operation the scalar sweep performs).
    """

    def __init__(self, circuit: Circuit, gmin: float = 0.0) -> None:
        stamp_start = time.perf_counter() if profiling.enabled() else None
        self._circuit = circuit
        self.gmin = float(gmin)
        self.system = MnaSystem(circuit, gmin=gmin)
        # The assembled arrays (gmin already applied to _g's diagonal).
        self._base_g = self.system.g_matrix
        self._base_b = self.system.b_matrix
        self._base_z_ac = self.system.rhs("ac")
        # Per-component ordered stamp ops + per-entry contribution
        # streams: entry -> [(component, op position), ...] in stamp
        # order. Re-folding a stream with one component's values swapped
        # reproduces a fresh assembly of that entry bitwise.
        self._ops: Dict[str, ComponentOps] = {}
        self._matrix_streams: Dict[Tuple[str, int, int],
                                   List[Tuple[str, int]]] = {}
        self._rhs_streams: Dict[Tuple[str, int],
                                List[Tuple[str, int]]] = {}
        # Per component: the distinct entries it touches and its stamp
        # structure (entry sequence without values) for replacement
        # validation -- both precomputed so per-variant patching only
        # re-stamps and re-folds.
        self._touched_matrix: Dict[str, Tuple[Tuple[str, int, int],
                                              ...]] = {}
        self._touched_rhs: Dict[str, Tuple[Tuple[str, int], ...]] = {}
        self._structure: Dict[str, Tuple[tuple, tuple]] = {}
        for component in circuit:
            ops = self.system.component_ops(component)
            self._ops[component.name] = ops
            for position, (target, row, col, _) in \
                    enumerate(ops.matrix_ops):
                self._matrix_streams.setdefault(
                    (target, row, col), []).append(
                        (component.name, position))
            for position, (target, row, _) in enumerate(ops.rhs_ops):
                self._rhs_streams.setdefault((target, row), []).append(
                    (component.name, position))
            matrix_structure = tuple(op[:3] for op in ops.matrix_ops)
            rhs_structure = tuple(op[:2] for op in ops.rhs_ops)
            self._structure[component.name] = (matrix_structure,
                                               rhs_structure)
            self._touched_matrix[component.name] = tuple(
                dict.fromkeys(matrix_structure))
            self._touched_rhs[component.name] = tuple(
                dict.fromkeys(rhs_structure))
        if stamp_start is not None:
            profiling.profile_event(
                "engine.stamp", time.perf_counter() - stamp_start,
                engine="batched", circuit=circuit.name,
                dim=self.system.dim)

    @property
    def circuit(self) -> Circuit:
        return self._circuit

    # ------------------------------------------------------------------
    # Delta-stamping
    # ------------------------------------------------------------------
    def _replacement_ops(self, spec: VariantSpec
                         ) -> Dict[str, ComponentOps]:
        """Stamp ops of every replaced component, structure-checked."""
        replaced: Dict[str, ComponentOps] = {}
        for component in spec.replacements:
            structure = self._structure.get(component.name)
            if structure is None:
                raise SimulationError(
                    f"{self._circuit.name}: variant "
                    f"{spec.name or '<nominal>'} replaces unknown "
                    f"component {component.name!r}")
            ops = self.system.component_ops(component)
            if tuple(op[:3] for op in ops.matrix_ops) != structure[0] \
                    or tuple(op[:2] for op in ops.rhs_ops) != \
                    structure[1]:
                raise SimulationError(
                    f"{self._circuit.name}: replacement for "
                    f"{component.name!r} changes the stamp structure; "
                    "delta-stamping needs same-name, same-terminal "
                    "replacements")
            replaced[component.name] = ops
        return replaced

    def _fold_matrix_entry(self, key: Tuple[str, int, int],
                           replaced: Dict[str, ComponentOps]) -> complex:
        """Re-accumulate one matrix entry in fresh-assembly order."""
        total = 0.0 + 0.0j
        for name, position in self._matrix_streams[key]:
            ops = replaced.get(name) or self._ops[name]
            total = total + ops.matrix_ops[position][3]
        if self.gmin > 0.0 and key[0] == "g" and key[1] == key[2] and \
                key[1] < self.system.num_nodes:
            total = total + self.gmin
        return total

    def _fold_rhs_entry(self, key: Tuple[str, int],
                        replaced: Dict[str, ComponentOps]) -> complex:
        total = 0.0 + 0.0j
        for name, position in self._rhs_streams[key]:
            ops = replaced.get(name) or self._ops[name]
            total = total + ops.rhs_ops[position][2]
        return total

    def _variant_arrays(self, spec: VariantSpec,
                        g: np.ndarray, b: np.ndarray,
                        z_ac: np.ndarray) -> None:
        """Patch preallocated nominal copies into the variant's arrays."""
        replaced = self._replacement_ops(spec)
        touched_matrix: Dict[Tuple[str, int, int], None] = {}
        touched_rhs: Dict[Tuple[str, int], None] = {}
        for name in replaced:
            for key in self._touched_matrix[name]:
                touched_matrix.setdefault(key)
            for key in self._touched_rhs[name]:
                touched_rhs.setdefault(key)
        for key in touched_matrix:
            value = self._fold_matrix_entry(key, replaced)
            (g if key[0] == "g" else b)[key[1], key[2]] = value
        for key in touched_rhs:
            if key[0] == "ac":
                z_ac[key[1]] = self._fold_rhs_entry(key, replaced)

    # ------------------------------------------------------------------
    # Batched solving
    # ------------------------------------------------------------------
    def _solve_stack(self, stack: np.ndarray, rhs: np.ndarray,
                     labels: Sequence[str],
                     s_values: np.ndarray) -> np.ndarray:
        """Solve a (K, N, N) stack, falling back per matrix on failure."""
        try:
            return np.linalg.solve(stack, rhs)[..., 0]
        except np.linalg.LinAlgError:
            out = np.empty((stack.shape[0], stack.shape[1]),
                           dtype=complex)
            for index in range(stack.shape[0]):
                try:
                    out[index] = np.linalg.solve(
                        stack[index], rhs[index][:, 0])
                except np.linalg.LinAlgError as exc:
                    raise SingularCircuitError(
                        f"{labels[index]}: MNA matrix singular at "
                        f"s={s_values[index]!r}; check for floating "
                        "nodes, voltage-source loops or op-amps without "
                        "feedback") from exc
            return out

    def transfer_block(self, output_node: str, freqs_hz: np.ndarray,
                       variants: Sequence[VariantSpec],
                       input_source: Optional[str] = None
                       ) -> ResponseBlock:
        freqs = np.asarray(freqs_hz, dtype=float)
        if freqs.ndim != 1 or freqs.size == 0:
            raise SimulationError("frequency grid must be a non-empty "
                                  "1-D array")
        if np.any(freqs <= 0.0):
            raise SimulationError("AC analysis frequencies must be "
                                  "positive")
        if not variants:
            raise SimulationError("transfer_block needs >= 1 variant")
        source_name = input_source or self._circuit.ac_source_name()
        if source_name not in self._circuit:
            raise SimulationError(
                f"{self._circuit.name}: no component named "
                f"{source_name!r}")

        num_variants = len(variants)
        num_freqs = freqs.size
        dim = self.system.dim
        labels: List[str] = []
        phasors = np.empty(num_variants, dtype=complex)

        # Materialise the variant matrix stacks: nominal copies with
        # only the replaced components' entries re-folded.
        g_stack = np.repeat(self._base_g[None, :, :], num_variants, axis=0)
        b_stack = np.repeat(self._base_b[None, :, :], num_variants, axis=0)
        z_stack = np.repeat(self._base_z_ac[None, :], num_variants, axis=0)
        for index, spec in enumerate(variants):
            labels.append(spec.name or self._circuit.name)
            if spec.replacements:
                self._variant_arrays(spec, g_stack[index], b_stack[index],
                                     z_stack[index])
            source = next((c for c in spec.replacements
                           if c.name == source_name),
                          self._circuit[source_name])
            phasors[index] = source_phasor(source, source_name)

        solve_start = time.perf_counter() if profiling.enabled() else None
        chunks_solved = 0
        s_all = 1j * TWO_PI * freqs
        solutions = np.empty((num_variants, num_freqs, dim),
                             dtype=complex)
        bytes_per_matrix = 16 * dim * dim
        chunk = max(1, int(_STACK_MEMORY_BUDGET // max(1,
                                                       bytes_per_matrix)))
        variants_per_chunk = max(1, chunk // num_freqs)
        if variants_per_chunk > 1:
            # Fused path: several whole variants per stacked solve.
            for lo in range(0, num_variants, variants_per_chunk):
                hi = min(lo + variants_per_chunk, num_variants)
                count = (hi - lo) * num_freqs
                stack = (g_stack[lo:hi, None, :, :] +
                         s_all[None, :, None, None] *
                         b_stack[lo:hi, None, :, :]).reshape(count, dim,
                                                             dim)
                rhs = np.ascontiguousarray(
                    np.broadcast_to(z_stack[lo:hi, None, :, None],
                                    (hi - lo, num_freqs, dim, 1))
                ).reshape(count, dim, 1)
                chunk_labels = [labels[lo + k // num_freqs]
                                for k in range(count)]
                chunk_s = np.tile(s_all, hi - lo)
                solved = self._solve_stack(stack, rhs, chunk_labels,
                                           chunk_s)
                solutions[lo:hi] = solved.reshape(hi - lo, num_freqs,
                                                  dim)
                chunks_solved += 1
        else:
            # One variant at a time, frequencies chunked (the scalar
            # sweep's own shape) -- for grids too large to fuse.
            for index in range(num_variants):
                rhs_row = z_stack[index]
                for start in range(0, num_freqs, chunk):
                    stop = min(start + chunk, num_freqs)
                    s_values = s_all[start:stop]
                    stack = (g_stack[index][None, :, :] +
                             s_values[:, None, None] *
                             b_stack[index][None, :, :])
                    rhs = np.ascontiguousarray(np.broadcast_to(
                        rhs_row[None, :, None],
                        (stop - start, dim, 1)))
                    solved = self._solve_stack(
                        stack, rhs, [labels[index]] * (stop - start),
                        s_values)
                    solutions[index, start:stop] = solved
                    chunks_solved += 1

        for index in range(num_variants):
            if not np.all(np.isfinite(solutions[index])):
                raise SingularCircuitError(
                    f"{labels[index]}: non-finite solution in AC sweep")

        out_index = self.system.node_index(output_node)
        if out_index < 0:
            values = np.zeros((num_variants, num_freqs), dtype=complex)
        else:
            values = solutions[:, :, out_index] / phasors[:, None]
        if solve_start is not None:
            profiling.profile_event(
                "engine.solve", time.perf_counter() - solve_start,
                engine="batched", variants=num_variants,
                freqs=num_freqs, chunks=chunks_solved)
        return ResponseBlock(freqs, values, labels, output_node)


def make_engine(circuit: Circuit, kind: str = "batched",
                gmin: float = 0.0) -> SimulationEngine:
    """Engine factory keyed by :class:`PipelineConfig`'s ``engine`` knob."""
    if kind == "batched":
        return BatchedMnaEngine(circuit, gmin=gmin)
    if kind == "scalar":
        return ScalarMnaEngine(circuit, gmin=gmin)
    raise SimulationError(
        f"engine kind must be one of {ENGINE_KINDS}, got {kind!r}")
