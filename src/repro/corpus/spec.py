"""Declarative corpus specification: what to run, under which settings.

A :class:`CorpusSpec` is the single object a corpus run needs -- the
family matrix (which generators, how many seeds each, at what size and
fault-target cap) plus the full :class:`~repro.core.config.
PipelineConfig` and :class:`~repro.diagnosis.posterior.PosteriorConfig`
every circuit runs under. Like those configs it round-trips through
JSON, so a corpus is reproducible from its artifact's embedded spec
alone.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from ..circuits.families import CIRCUIT_FAMILIES, FAMILY_DEFAULT_SIZES
from ..core.config import PipelineConfig
from ..diagnosis.evaluate import HELD_OUT_DEVIATIONS
from ..diagnosis.posterior import PosteriorConfig
from ..errors import CorpusError
from ..ga.config import GAConfig

__all__ = ["FamilySpec", "CorpusSpec"]


@dataclass(frozen=True)
class FamilySpec:
    """One row of the corpus matrix: ``count`` seeds of one family.

    ``size`` defaults to the family's registry default;
    ``max_targets`` caps fault-target components per circuit (see
    :func:`~repro.faults.universe.synthesize_universe`) so dictionary
    cost stays bounded as generated circuits grow; seeds enumerate
    ``seed0 .. seed0 + count - 1``.
    """

    family: str
    count: int = 5
    size: Optional[int] = None
    seed0: int = 0
    max_targets: Optional[int] = None

    def __post_init__(self) -> None:
        if self.family not in CIRCUIT_FAMILIES:
            raise CorpusError(
                f"unknown circuit family {self.family!r}; "
                f"available: {sorted(CIRCUIT_FAMILIES)}")
        if self.count < 1:
            raise CorpusError(f"family {self.family}: count must be >= 1")
        if self.size is not None and self.size < 1:
            raise CorpusError(f"family {self.family}: size must be >= 1")
        if self.max_targets is not None and self.max_targets < 1:
            raise CorpusError(
                f"family {self.family}: max_targets must be >= 1")

    @property
    def effective_size(self) -> int:
        return self.size if self.size is not None \
            else FAMILY_DEFAULT_SIZES[self.family]

    @property
    def seeds(self) -> Tuple[int, ...]:
        return tuple(range(self.seed0, self.seed0 + self.count))

    def to_json_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "FamilySpec":
        try:
            return cls(**dict(data))
        except TypeError as exc:
            raise CorpusError(f"bad family-spec dict: {exc}") from exc


@dataclass(frozen=True)
class CorpusSpec:
    """A full corpus declaration.

    Attributes
    ----------
    name:
        Artifact stem: the runner writes ``CORPUS_<name>.json``.
    families:
        The family matrix (see :class:`FamilySpec`); circuits enumerate
        in declaration order, seeds ascending within each family.
    pipeline:
        Per-circuit ATPG settings (engine, GA budget, worker pools --
        everything :class:`~repro.core.config.PipelineConfig` holds).
    posterior:
        Probabilistic-tier settings for the posterior diagnosis pass.
    held_out_deviations:
        Fault deviations the accuracy evaluation injects -- off the
        dictionary grid by construction of the default.
    ga_seed:
        Root seed for each circuit's GA search (offset by the circuit
        index so runs are deterministic yet seeds never collide).
    """

    families: Tuple[FamilySpec, ...]
    name: str = "corpus"
    pipeline: PipelineConfig = field(default_factory=PipelineConfig.quick)
    posterior: PosteriorConfig = field(default_factory=PosteriorConfig)
    held_out_deviations: Tuple[float, ...] = HELD_OUT_DEVIATIONS
    ga_seed: int = 2005

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").replace(
                "-", "").isalnum():
            raise CorpusError(
                f"corpus name must be a file-name-safe slug, "
                f"got {self.name!r}")
        families = tuple(
            spec if isinstance(spec, FamilySpec)
            else FamilySpec.from_json_dict(spec)
            for spec in self.families)
        if not families:
            raise CorpusError("corpus declares no families")
        object.__setattr__(self, "families", families)
        object.__setattr__(self, "held_out_deviations",
                           tuple(float(d) for d in self.held_out_deviations))
        if not self.held_out_deviations:
            raise CorpusError("held_out_deviations is empty")
        if not isinstance(self.pipeline, PipelineConfig):
            raise CorpusError("pipeline must be a PipelineConfig")
        if not isinstance(self.posterior, PosteriorConfig):
            raise CorpusError("posterior must be a PosteriorConfig")

    # ------------------------------------------------------------------
    @property
    def total_circuits(self) -> int:
        return sum(spec.count for spec in self.families)

    def circuits(self) -> Iterator[Tuple[int, FamilySpec, int]]:
        """Enumerate ``(index, family_spec, seed)`` in run order."""
        index = 0
        for spec in self.families:
            for seed in spec.seeds:
                yield index, spec, seed
                index += 1

    # ------------------------------------------------------------------
    # JSON round-trip (the artifact embeds the spec; repro-corpus
    # --spec reads one back).
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "families": [spec.to_json_dict() for spec in self.families],
            "pipeline": self.pipeline.to_json_dict(),
            "posterior": self.posterior.to_json_dict(),
            "held_out_deviations": list(self.held_out_deviations),
            "ga_seed": self.ga_seed,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "CorpusSpec":
        payload = dict(data)
        try:
            if "families" in payload:
                payload["families"] = tuple(
                    FamilySpec.from_json_dict(item)
                    for item in payload["families"])
            if isinstance(payload.get("pipeline"), dict):
                payload["pipeline"] = PipelineConfig.from_json_dict(
                    payload["pipeline"])
            if isinstance(payload.get("posterior"), dict):
                payload["posterior"] = PosteriorConfig.from_json_dict(
                    payload["posterior"])
            if "held_out_deviations" in payload:
                payload["held_out_deviations"] = tuple(
                    payload["held_out_deviations"])
            return cls(**payload)
        except TypeError as exc:
            raise CorpusError(f"bad corpus-spec dict: {exc}") from exc

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def baseline(cls) -> "CorpusSpec":
        """The committed 110-circuit baseline matrix.

        Budgets are tuned so the full corpus (dictionary build + GA +
        hard and posterior diagnosis per circuit) finishes in minutes
        on a laptop while still spanning four families and dozens of
        seeds per family.
        """
        return cls(
            name="baseline",
            families=(
                FamilySpec("rc_ladder", count=30, max_targets=6),
                FamilySpec("lc_ladder", count=25, max_targets=6),
                FamilySpec("biquad_chain", count=25, max_targets=6),
                FamilySpec("random_topology", count=30, max_targets=6),
            ),
            pipeline=PipelineConfig(
                dictionary_points=96,
                ga=GAConfig.quick(seeded_generations=4,
                                  population_size=24)),
            posterior=PosteriorConfig(n_samples=16, tolerance=0.03,
                                      samples_per_block=16),
        )

    @classmethod
    def quick(cls) -> "CorpusSpec":
        """~20-circuit smoke matrix for CI (``repro-corpus --quick``)."""
        return cls(
            name="quick",
            families=(
                FamilySpec("rc_ladder", count=6, size=4, max_targets=4),
                FamilySpec("lc_ladder", count=5, size=4, max_targets=4),
                FamilySpec("biquad_chain", count=4, size=1,
                           max_targets=4),
                FamilySpec("random_topology", count=5, size=4,
                           max_targets=4),
            ),
            pipeline=PipelineConfig(
                dictionary_points=64,
                ga=GAConfig.quick(seeded_generations=3,
                                  population_size=16)),
            posterior=PosteriorConfig(n_samples=8, tolerance=0.03,
                                      samples_per_block=8),
        )
