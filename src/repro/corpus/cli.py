"""``repro-corpus``: run a circuit-family corpus end-to-end.

Examples
--------
::

    repro-corpus                          # 110-circuit baseline matrix
    repro-corpus --quick --check          # ~20-circuit CI smoke run
    repro-corpus --spec my_corpus.json --store .repro-store
    repro-corpus --engine factored:sparse=true --out artifacts/

Writes ``CORPUS_<name>.json`` into ``--out``; ``--check`` validates
the artifact immediately after writing (exit code 1 on violation).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..errors import ReproError
from ..sim.engine import EngineSpec
from .runner import check_report, run_corpus
from .spec import CorpusSpec

__all__ = ["main", "build_parser"]


def _engine_arg(text: str) -> EngineSpec:
    try:
        return EngineSpec.parse(text)
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-corpus",
        description="Run a generated-circuit corpus: dictionary build, "
                    "GA test selection, hard + posterior diagnosis per "
                    "circuit; emit a CORPUS_<name>.json matrix.")
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--quick", action="store_true",
        help="run the ~20-circuit smoke matrix instead of the "
             "110-circuit baseline")
    source.add_argument(
        "--spec", type=Path, metavar="FILE",
        help="load a CorpusSpec JSON file instead of a preset")
    parser.add_argument(
        "--out", type=Path, default=Path("."), metavar="DIR",
        help="directory the CORPUS_<name>.json artifact is written to "
             "(default: current directory)")
    parser.add_argument(
        "--store", type=Path, default=None, metavar="DIR",
        help="artifact-store root enabling resume: completed circuits "
             "(and their dictionary/GA artifacts) are reused on re-run")
    parser.add_argument(
        "--engine", type=_engine_arg, default=None, metavar="SPEC",
        help="override the spec's simulation engine (kind or "
             "kind:knob=value,... spec, e.g. factored:sparse=true)")
    parser.add_argument(
        "--check", action="store_true",
        help="validate the written artifact and exit non-zero on any "
             "violation")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-circuit progress lines")
    return parser


def _load_spec(args: argparse.Namespace) -> CorpusSpec:
    if args.spec is not None:
        try:
            payload = json.loads(args.spec.read_text())
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read spec {args.spec}: {exc}")
        return CorpusSpec.from_json_dict(payload)
    return CorpusSpec.quick() if args.quick else CorpusSpec.baseline()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        spec = _load_spec(args)
    except ReproError as exc:
        raise SystemExit(f"bad corpus spec: {exc}")
    if args.engine is not None:
        spec = dataclasses.replace(
            spec, pipeline=dataclasses.replace(spec.pipeline,
                                               engine=args.engine))

    log = None if args.quiet else \
        (lambda message: print(message, file=sys.stderr, flush=True))
    report = run_corpus(spec, store=args.store, log=log)

    args.out.mkdir(parents=True, exist_ok=True)
    artifact = args.out / f"CORPUS_{spec.name}.json"
    artifact.write_text(json.dumps(report, indent=2) + "\n")

    results = report["results"]
    print(f"{artifact}: {results['completed']}/"
          f"{results['total_circuits']} circuits, "
          f"{len(results['failures'])} failures, "
          f"{report['timings']['total_seconds']:.1f}s "
          f"({report['timings']['from_cache']} from cache)")
    for family, aggregate in results["per_family"].items():
        print(f"  {family:16s} n={aggregate['n_circuits']:<3d} "
              f"acc={aggregate['accuracy_mean']:.3f} "
              f"group={aggregate['group_accuracy_mean']:.3f} "
              f"posterior={aggregate['posterior_accuracy_mean']:.3f} "
              f"entropy={aggregate['mean_entropy_bits']:.3f}b")

    if args.check:
        check_report(report, artefact=str(artifact))
        print(f"{artifact}: check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
