"""Declarative scenario corpus: circuit families x fault universes x
pipeline settings, run end-to-end at fleet scale.

``CorpusSpec`` (see :mod:`repro.corpus.spec`) declares which generated
circuit families to enumerate and the full pipeline / posterior
configuration every circuit runs under; :func:`repro.corpus.runner.
run_corpus` executes the matrix (dictionary build, GA test selection,
hard classification and posterior diagnosis per circuit) and emits the
machine-readable ``CORPUS_*.json`` accuracy/latency/ambiguity artifact
the ``repro-corpus`` CLI writes and ``--check`` validates.
"""

from .spec import CorpusSpec, FamilySpec
from .runner import (check_report, environment_info, check_environment,
                     run_corpus)

__all__ = [
    "CorpusSpec",
    "FamilySpec",
    "run_corpus",
    "check_report",
    "environment_info",
    "check_environment",
]
