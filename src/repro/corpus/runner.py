"""Corpus execution: enumerate, pipeline, diagnose, aggregate.

:func:`run_corpus` drives a :class:`~repro.corpus.spec.CorpusSpec`
end-to-end -- for every ``(family, seed)`` circuit: generate, build the
fault dictionary, run the GA test search, score hard classification on
held-out deviations and run the posterior tier over the same cases --
and returns the machine-readable report the ``repro-corpus`` CLI
writes as ``CORPUS_<name>.json``.

The report splits into a **deterministic** ``results`` section
(bitwise-reproducible for a given spec: every random draw is seeded
from the spec) and an environment-dependent ``timings`` section
(latency percentiles, cache hits). ``--check`` validates the former's
invariants and the artifact's environment stamp via
:func:`check_report`.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..circuits.families import generate
from ..core.atpg import FaultTrajectoryATPG
from ..diagnosis.posterior import PosteriorDiagnoser
from ..errors import CorpusError
from ..faults.universe import synthesize_universe
from ..runtime.telemetry import REGISTRY
from .spec import CorpusSpec, FamilySpec

__all__ = ["run_corpus", "check_report", "environment_info",
           "check_environment"]

_circuits_total = REGISTRY.counter(
    "repro_corpus_circuits_total",
    "Corpus circuits completed end-to-end.", ("family",))
_failures_total = REGISTRY.counter(
    "repro_corpus_failures_total",
    "Corpus circuits that raised instead of completing.", ("family",))
_build_seconds = REGISTRY.histogram(
    "repro_corpus_build_seconds",
    "Per-circuit pipeline (dictionary+GA) wall seconds.", ("family",))


# ----------------------------------------------------------------------
# Environment stamp (single implementation; benchmarks/_helpers.py
# re-exports these so every BENCH_*/CORPUS_* artifact shares it).
# ----------------------------------------------------------------------
def environment_info() -> dict:
    """Hardware/runtime facts every corpus/bench artifact records.

    Latency claims are only auditable next to the core count they were
    measured on; platform and python version pin the rest of the
    variance.
    """
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
    }


def check_environment(report: dict, artefact: str) -> None:
    """``--check`` validator for the shared ``environment`` section."""
    env = report.get("environment")
    if not isinstance(env, dict) or \
            not isinstance(env.get("cpu_count"), int) or \
            env["cpu_count"] < 1:
        raise SystemExit(f"{artefact} missing a valid "
                         "environment.cpu_count")
    for key in ("platform", "python"):
        if not env.get(key):
            raise SystemExit(f"{artefact} missing environment.{key}")


# ----------------------------------------------------------------------
# Per-circuit execution
# ----------------------------------------------------------------------
def _round(value: float) -> float:
    """9-significant-digit float for the deterministic section.

    Quantising keeps the JSON repr short and shields the
    bitwise-reproducibility contract from last-ulp noise without
    hiding any real accuracy movement.
    """
    return float(f"{float(value):.9g}")


def _circuit_key(spec: CorpusSpec, family: FamilySpec,
                 content_hash: str) -> str:
    """Content-addressed resume key for one circuit's corpus record.

    Everything that shapes the *deterministic* record participates:
    the circuit itself plus the settings the run applies to it. A spec
    edit that changes outcomes changes the key; a pure rename (corpus
    ``name``) or timing-only context does not.
    """
    settings = {
        "circuit": content_hash,
        "max_targets": family.max_targets,
        "pipeline": spec.pipeline.to_json_dict(),
        "posterior": spec.posterior.to_json_dict(),
        "held_out": list(spec.held_out_deviations),
        "ga_seed": spec.ga_seed,
    }
    # Full SHA-256 hex: the artifact-store key grammar requires it.
    return hashlib.sha256(
        json.dumps(settings, sort_keys=True).encode()).hexdigest()


def _run_circuit(spec: CorpusSpec, family: FamilySpec, seed: int,
                 index: int, store=None) -> Tuple[dict, dict]:
    """One circuit end-to-end: ``(deterministic record, timing)``."""
    info = generate(family.family, seed, size=family.effective_size)
    universe = synthesize_universe(
        info, deviations=spec.pipeline.deviations,
        max_targets=family.max_targets, seed=seed)

    started = time.perf_counter()
    atpg = FaultTrajectoryATPG(info, spec.pipeline,
                               components=universe.components)
    result = atpg.run(seed=spec.ga_seed + index, store=store)
    build_seconds = time.perf_counter() - started

    evaluation = result.evaluate(deviations=spec.held_out_deviations)
    cases = [case_result.case for case_result in evaluation.results]

    posterior_started = time.perf_counter()
    diagnoser = PosteriorDiagnoser.from_atpg(result,
                                             config=spec.posterior)
    points = np.stack([case.point for case in cases])
    posteriors = diagnoser.diagnose_points(points)
    posterior_seconds = time.perf_counter() - posterior_started

    posterior_correct = [
        diag.component == case.true_component
        for diag, case in zip(posteriors, cases)]
    record = {
        "family": family.family,
        "seed": seed,
        "size": family.effective_size,
        "circuit": info.circuit.name,
        "content_hash": info.circuit.content_hash(),
        "n_components": len(result.universe.components),
        "n_faults": len(result.universe),
        "test_vector_hz": [_round(f) for f in result.test_vector_hz],
        "ga_fitness": _round(result.ga_result.best_fitness),
        "min_separation": _round(result.metrics.min_separation),
        "ambiguity_groups": sum(
            1 for group in result.groups if len(group) > 1),
        "accuracy": _round(evaluation.accuracy),
        "group_accuracy": _round(evaluation.group_accuracy),
        "posterior": {
            "accuracy": _round(np.mean(posterior_correct)),
            "mean_entropy_bits": _round(np.mean(
                [diag.entropy_bits for diag in posteriors])),
            "mean_probability": _round(np.mean(
                [diag.probability for diag in posteriors])),
        },
    }
    timing = {
        "build_seconds": build_seconds,
        "posterior_seconds": posterior_seconds,
        "cache_hits": list(result.cache_hits),
    }
    return record, timing


def _percentiles(samples: List[float]) -> dict:
    values = np.asarray(samples, dtype=float)
    return {f"p{q}": round(float(np.percentile(values, q)), 6)
            for q in (50, 90, 99)}


def _aggregate_family(records: List[dict]) -> dict:
    def mean(key: str) -> float:
        return _round(np.mean([record[key] for record in records]))

    return {
        "n_circuits": len(records),
        "n_faults_mean": mean("n_faults"),
        "accuracy_mean": mean("accuracy"),
        "group_accuracy_mean": mean("group_accuracy"),
        "posterior_accuracy_mean": _round(np.mean(
            [record["posterior"]["accuracy"] for record in records])),
        "mean_entropy_bits": _round(np.mean(
            [record["posterior"]["mean_entropy_bits"]
             for record in records])),
        "ambiguity_groups_mean": mean("ambiguity_groups"),
    }


# ----------------------------------------------------------------------
# The corpus loop
# ----------------------------------------------------------------------
def run_corpus(spec: CorpusSpec, store=None,
               log: Optional[Callable[[str], None]] = None) -> dict:
    """Run the whole corpus matrix and return the report dict.

    ``store`` (an :class:`~repro.runtime.store.ArtifactStore`, backend
    or path -- anything :func:`~repro.runtime.store.as_store` accepts)
    enables resume: each circuit's deterministic record is persisted
    under a content key covering the circuit and every setting that
    shapes its outcome, so an interrupted corpus re-run recomputes only
    what is missing (and the pipeline additionally reuses its own
    dictionary/GA artifacts through the same store). A circuit that
    raises is recorded under ``results.failures`` without aborting the
    run.
    """
    if store is not None:
        from ..runtime.store import as_store
        store = as_store(store)
    say = log or (lambda message: None)

    circuit_records: List[dict] = []
    failures: List[dict] = []
    timings_by_family: Dict[str, Dict[str, List[float]]] = {}
    from_cache = 0
    total_started = time.perf_counter()

    for index, family, seed in spec.circuits():
        label = f"{family.family}[seed={seed}]"
        say(f"[{index + 1}/{spec.total_circuits}] {label}")
        key = None
        if store is not None:
            try:
                info = generate(family.family, seed,
                                size=family.effective_size)
            except Exception as exc:
                _failures_total.labels(family=family.family).inc()
                failures.append({"family": family.family, "seed": seed,
                                 "error": str(exc)})
                continue
            key = _circuit_key(spec, family, info.circuit.content_hash())
            cached = store.load_json("corpus", key)
            if cached is not None:
                circuit_records.append(cached)
                from_cache += 1
                _circuits_total.labels(family=family.family).inc()
                continue
        try:
            record, timing = _run_circuit(spec, family, seed, index,
                                          store=store)
        except Exception as exc:
            _failures_total.labels(family=family.family).inc()
            failures.append({"family": family.family, "seed": seed,
                             "error": str(exc)})
            say(f"  FAILED: {exc}")
            continue
        circuit_records.append(record)
        if store is not None and key is not None:
            store.save_json("corpus", key, record)
        _circuits_total.labels(family=family.family).inc()
        _build_seconds.labels(family=family.family).observe(
            timing["build_seconds"])
        bucket = timings_by_family.setdefault(
            family.family, {"build_seconds": [], "posterior_seconds": []})
        bucket["build_seconds"].append(timing["build_seconds"])
        bucket["posterior_seconds"].append(timing["posterior_seconds"])

    per_family: Dict[str, dict] = {}
    for family_name in sorted({record["family"]
                               for record in circuit_records}):
        per_family[family_name] = _aggregate_family(
            [record for record in circuit_records
             if record["family"] == family_name])

    report = {
        "artifact": f"CORPUS_{spec.name}",
        "spec": spec.to_json_dict(),
        "environment": environment_info(),
        "results": {
            "total_circuits": spec.total_circuits,
            "completed": len(circuit_records),
            "failures": failures,
            "per_family": per_family,
            "circuits": circuit_records,
        },
        "timings": {
            "total_seconds": round(
                time.perf_counter() - total_started, 3),
            "from_cache": from_cache,
            "per_family": {
                family_name: {metric: _percentiles(samples)
                              for metric, samples in buckets.items()
                              if samples}
                for family_name, buckets in
                sorted(timings_by_family.items())},
        },
    }
    return report


# ----------------------------------------------------------------------
# --check validation
# ----------------------------------------------------------------------
def check_report(report: dict, artefact: str = "corpus report") -> None:
    """Validate a ``CORPUS_*.json`` report; raises ``SystemExit``.

    Checks the environment stamp, that the embedded spec round-trips,
    and the internal consistency of the deterministic results section
    (counts add up, every metric is a valid probability, every circuit
    record carries its content hash).
    """
    check_environment(report, artefact)
    spec_dict = report.get("spec")
    if not isinstance(spec_dict, dict):
        raise SystemExit(f"{artefact} missing an embedded spec")
    try:
        spec = CorpusSpec.from_json_dict(spec_dict)
    except CorpusError as exc:
        raise SystemExit(
            f"{artefact} embedded spec does not round-trip: {exc}")
    results = report.get("results")
    if not isinstance(results, dict):
        raise SystemExit(f"{artefact} missing results")
    circuits = results.get("circuits")
    failures = results.get("failures")
    if not isinstance(circuits, list) or not isinstance(failures, list):
        raise SystemExit(f"{artefact} results.circuits/failures malformed")
    if results.get("total_circuits") != spec.total_circuits:
        raise SystemExit(
            f"{artefact} total_circuits disagrees with the spec")
    if results.get("completed") != len(circuits):
        raise SystemExit(f"{artefact} completed count disagrees with "
                         "the circuit list")
    if len(circuits) + len(failures) != spec.total_circuits:
        raise SystemExit(
            f"{artefact} circuits+failures != total_circuits")
    if not circuits:
        raise SystemExit(f"{artefact} completed no circuits")
    for record in circuits:
        where = (f"{artefact} circuit "
                 f"{record.get('family')}[seed={record.get('seed')}]")
        if not record.get("content_hash"):
            raise SystemExit(f"{where} missing content_hash")
        metrics = [record.get("accuracy"), record.get("group_accuracy"),
                   (record.get("posterior") or {}).get("accuracy")]
        for value in metrics:
            if not isinstance(value, (int, float)) or \
                    not 0.0 <= value <= 1.0:
                raise SystemExit(f"{where} has an invalid accuracy")
        if not record.get("test_vector_hz"):
            raise SystemExit(f"{where} missing its test vector")
    per_family = results.get("per_family")
    if not isinstance(per_family, dict) or not per_family:
        raise SystemExit(f"{artefact} missing per_family aggregates")
    timings = report.get("timings")
    if not isinstance(timings, dict) or \
            not isinstance(timings.get("total_seconds"), (int, float)):
        raise SystemExit(f"{artefact} missing timings.total_seconds")
