"""Chromosome encoding: a test vector as log-frequency genes.

A test vector of n frequencies is encoded as n real genes in log10(Hz).
Frequencies of interest span decades, so log-space makes Gaussian
mutation and blend crossover scale-free: a 0.1-decade step means the same
relative move at 100 Hz and at 100 kHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import GAError

__all__ = ["FrequencySpace"]

# Two genes closer than this (in decades) are considered degenerate and
# nudged apart on decode; exactly coincident axes would collapse the
# signature space dimension.
_MIN_GENE_GAP_DECADES = 1e-6


@dataclass(frozen=True)
class FrequencySpace:
    """Search space: ``num_frequencies`` genes in [f_min, f_max] (log)."""

    f_min_hz: float
    f_max_hz: float
    num_frequencies: int = 2

    def __post_init__(self) -> None:
        if self.f_min_hz <= 0.0 or self.f_max_hz <= self.f_min_hz:
            raise GAError(
                f"need 0 < f_min < f_max, got [{self.f_min_hz}, "
                f"{self.f_max_hz}]")
        if self.num_frequencies < 1:
            raise GAError("num_frequencies must be >= 1")

    @property
    def log_bounds(self) -> Tuple[float, float]:
        return (float(np.log10(self.f_min_hz)),
                float(np.log10(self.f_max_hz)))

    # ------------------------------------------------------------------
    # Genome operations
    # ------------------------------------------------------------------
    def random_genome(self, rng: np.random.Generator) -> np.ndarray:
        """Uniform random genome in log-frequency space."""
        low, high = self.log_bounds
        return rng.uniform(low, high, size=self.num_frequencies)

    def random_population(self, rng: np.random.Generator,
                          size: int) -> np.ndarray:
        """(size, num_frequencies) random genomes."""
        if size < 1:
            raise GAError("population size must be >= 1")
        low, high = self.log_bounds
        return rng.uniform(low, high, size=(size, self.num_frequencies))

    def clip(self, genome: np.ndarray) -> np.ndarray:
        """Clamp genes into the search bounds."""
        low, high = self.log_bounds
        return np.clip(np.asarray(genome, dtype=float), low, high)

    def decode(self, genome: np.ndarray) -> Tuple[float, ...]:
        """Genome -> sorted, distinct test frequencies in Hz.

        Genes are sorted ascending (a test vector is a *set* of
        frequencies; sorting canonicalises it) and near-coincident genes
        are nudged apart by a tiny log-step so the signature space never
        degenerates.
        """
        genome = self.clip(genome)
        if genome.shape != (self.num_frequencies,):
            raise GAError(
                f"genome shape {genome.shape} does not match space "
                f"({self.num_frequencies} genes)")
        ordered = np.sort(genome)
        for index in range(1, ordered.size):
            if ordered[index] - ordered[index - 1] < _MIN_GENE_GAP_DECADES:
                ordered[index] = ordered[index - 1] + _MIN_GENE_GAP_DECADES
        low, high = self.log_bounds
        overflow = ordered[-1] - high
        if overflow > 0.0:
            ordered -= overflow  # shift back inside the band
        return tuple(float(f) for f in np.power(10.0, ordered))

    def encode(self, freqs_hz: Tuple[float, ...]) -> np.ndarray:
        """Frequencies in Hz -> genome (log10)."""
        freqs = np.asarray(freqs_hz, dtype=float)
        if freqs.shape != (self.num_frequencies,):
            raise GAError(
                f"expected {self.num_frequencies} frequencies, got "
                f"{freqs.shape}")
        if np.any(freqs <= 0.0):
            raise GAError("frequencies must be positive")
        return self.clip(np.log10(freqs))

    def contains(self, freqs_hz: Tuple[float, ...]) -> bool:
        """Whether every frequency lies within the search band."""
        freqs = np.asarray(freqs_hz, dtype=float)
        return bool(np.all((freqs >= self.f_min_hz) &
                           (freqs <= self.f_max_hz)))
