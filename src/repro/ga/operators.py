"""Genetic operators: selection, crossover, mutation.

Selection returns *indices* into the population so it composes with any
genome representation. All operators take an explicit
``numpy.random.Generator``; nothing touches global random state, keeping
every run reproducible from a seed.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from ..errors import GAError
from .encoding import FrequencySpace

__all__ = [
    "roulette_wheel_select",
    "tournament_select",
    "rank_select",
    "blend_crossover",
    "one_point_crossover",
    "uniform_crossover",
    "gaussian_mutation",
    "reset_mutation",
    "get_selection",
    "get_crossover",
]


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
def roulette_wheel_select(fitness: np.ndarray, count: int,
                          rng: np.random.Generator) -> np.ndarray:
    """Fitness-proportionate ("roulette wheel") selection -- the paper's
    mining method.

    Fitness values must be non-negative (the paper's 1/(1+I) always is).
    If every individual has zero fitness the draw degrades gracefully to
    uniform.
    """
    fitness = np.asarray(fitness, dtype=float)
    if fitness.ndim != 1 or fitness.size == 0:
        raise GAError("fitness must be a non-empty 1-D array")
    if np.any(fitness < 0.0):
        raise GAError("roulette selection needs non-negative fitness")
    total = float(fitness.sum())
    if total <= 0.0:
        probabilities = np.full(fitness.size, 1.0 / fitness.size)
    else:
        probabilities = fitness / total
    return rng.choice(fitness.size, size=count, p=probabilities)


def tournament_select(fitness: np.ndarray, count: int,
                      rng: np.random.Generator,
                      tournament_size: int = 3) -> np.ndarray:
    """k-way tournament: sample k, keep the fittest. Repeated ``count``
    times."""
    fitness = np.asarray(fitness, dtype=float)
    if fitness.size == 0:
        raise GAError("fitness must be non-empty")
    k = min(tournament_size, fitness.size)
    entrants = rng.integers(0, fitness.size, size=(count, k))
    winners_in_row = np.argmax(fitness[entrants], axis=1)
    return entrants[np.arange(count), winners_in_row]


def rank_select(fitness: np.ndarray, count: int,
                rng: np.random.Generator) -> np.ndarray:
    """Linear rank selection: probability proportional to fitness rank.

    Insensitive to the fitness *scale* -- useful when 1/(1+I) saturates
    and most of the population sits at the same value.
    """
    fitness = np.asarray(fitness, dtype=float)
    if fitness.size == 0:
        raise GAError("fitness must be non-empty")
    order = np.argsort(np.argsort(fitness))  # rank of each individual
    weights = (order + 1).astype(float)
    return rng.choice(fitness.size, size=count, p=weights / weights.sum())


# ----------------------------------------------------------------------
# Crossover
# ----------------------------------------------------------------------
def blend_crossover(parent_a: np.ndarray, parent_b: np.ndarray,
                    rng: np.random.Generator,
                    alpha: float = 0.5) -> np.ndarray:
    """BLX-alpha: child genes sampled uniformly from the parent interval
    extended by ``alpha`` on each side. The workhorse for real genes."""
    parent_a = np.asarray(parent_a, dtype=float)
    parent_b = np.asarray(parent_b, dtype=float)
    low = np.minimum(parent_a, parent_b)
    high = np.maximum(parent_a, parent_b)
    span = high - low
    return rng.uniform(low - alpha * span, high + alpha * span)


def one_point_crossover(parent_a: np.ndarray, parent_b: np.ndarray,
                        rng: np.random.Generator) -> np.ndarray:
    """Classic one-point crossover (for 2 genes: swap the tail gene)."""
    parent_a = np.asarray(parent_a, dtype=float)
    parent_b = np.asarray(parent_b, dtype=float)
    if parent_a.size < 2:
        return parent_a.copy()
    point = int(rng.integers(1, parent_a.size))
    return np.concatenate([parent_a[:point], parent_b[point:]])


def uniform_crossover(parent_a: np.ndarray, parent_b: np.ndarray,
                      rng: np.random.Generator) -> np.ndarray:
    """Each gene taken from either parent with probability 1/2."""
    parent_a = np.asarray(parent_a, dtype=float)
    parent_b = np.asarray(parent_b, dtype=float)
    mask = rng.random(parent_a.shape) < 0.5
    return np.where(mask, parent_a, parent_b)


# ----------------------------------------------------------------------
# Mutation
# ----------------------------------------------------------------------
def gaussian_mutation(genome: np.ndarray, space: FrequencySpace,
                      rng: np.random.Generator,
                      sigma_decades: float = 0.15,
                      per_gene_rate: float = 1.0) -> np.ndarray:
    """Gaussian step in log-frequency space, clipped to bounds."""
    genome = np.asarray(genome, dtype=float).copy()
    mask = rng.random(genome.shape) < per_gene_rate
    steps = rng.normal(0.0, sigma_decades, size=genome.shape)
    genome[mask] += steps[mask]
    return space.clip(genome)


def reset_mutation(genome: np.ndarray, space: FrequencySpace,
                   rng: np.random.Generator,
                   per_gene_rate: float = 0.5) -> np.ndarray:
    """Re-draw selected genes uniformly (escapes local basins)."""
    genome = np.asarray(genome, dtype=float).copy()
    mask = rng.random(genome.shape) < per_gene_rate
    fresh = space.random_genome(rng)
    genome[mask] = fresh[mask]
    return genome


# ----------------------------------------------------------------------
# Registries (used by the engine to honour GAConfig strings)
# ----------------------------------------------------------------------
def get_selection(name: str, tournament_size: int = 3
                  ) -> Callable[[np.ndarray, int, np.random.Generator],
                                np.ndarray]:
    if name == "roulette":
        return roulette_wheel_select
    if name == "tournament":
        def tournament(fitness, count, rng):
            return tournament_select(fitness, count, rng, tournament_size)
        return tournament
    if name == "rank":
        return rank_select
    raise GAError(f"unknown selection method {name!r}")


def get_crossover(name: str
                  ) -> Callable[[np.ndarray, np.ndarray,
                                 np.random.Generator], np.ndarray]:
    if name == "blend":
        return blend_crossover
    if name == "one_point":
        return one_point_crossover
    if name == "uniform":
        return uniform_crossover
    raise GAError(f"unknown crossover method {name!r}")
