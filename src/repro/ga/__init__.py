"""Evolutionary test-vector search (the paper's GA plus extensions)."""

from .config import GAConfig
from .encoding import FrequencySpace
from .engine import GAResult, GenerationStats, GeneticAlgorithm
from .fitness import (
    CombinedFitness,
    MarginFitness,
    PaperFitness,
    TrajectoryFitness,
)
from .operators import (
    blend_crossover,
    gaussian_mutation,
    get_crossover,
    get_selection,
    one_point_crossover,
    rank_select,
    reset_mutation,
    roulette_wheel_select,
    tournament_select,
    uniform_crossover,
)

__all__ = [
    "GAConfig",
    "FrequencySpace",
    "GeneticAlgorithm",
    "GAResult",
    "GenerationStats",
    "TrajectoryFitness",
    "PaperFitness",
    "MarginFitness",
    "CombinedFitness",
    "roulette_wheel_select",
    "tournament_select",
    "rank_select",
    "blend_crossover",
    "one_point_crossover",
    "uniform_crossover",
    "gaussian_mutation",
    "reset_mutation",
    "get_selection",
    "get_crossover",
]
