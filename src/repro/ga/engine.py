"""The genetic algorithm engine.

Generation loop (paper Sec. 2.4): evaluate the population, keep the
elite, select parents with the configured method (roulette wheel by
default), recombine with probability ``crossover_rate``, mutate with
probability ``mutation_rate``, repeat for a fixed number of generations.

Everything is driven by an explicit seed/Generator: the same seed always
reproduces the same search trajectory.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from .. import profiling
from ..errors import GAError
from .config import GAConfig
from .encoding import FrequencySpace
from .operators import gaussian_mutation, get_crossover, get_selection

__all__ = ["GenerationStats", "GAResult", "GeneticAlgorithm"]

FitnessFunction = Callable[[Tuple[float, ...]], float]


@dataclass(frozen=True)
class GenerationStats:
    """Per-generation summary recorded in the run history."""

    generation: int
    best_fitness: float
    mean_fitness: float
    std_fitness: float
    best_freqs_hz: Tuple[float, ...]


@dataclass
class GAResult:
    """Outcome of one GA run."""

    best_freqs_hz: Tuple[float, ...]
    best_fitness: float
    history: List[GenerationStats]
    generations_run: int
    evaluations: int
    elapsed_seconds: float
    final_population: np.ndarray
    final_fitness: np.ndarray

    @property
    def converged(self) -> bool:
        """Whether the best fitness reached the 1.0 plateau (I = 0)."""
        return self.best_fitness >= 1.0

    def best_fitness_curve(self) -> np.ndarray:
        return np.array([stats.best_fitness for stats in self.history])

    def mean_fitness_curve(self) -> np.ndarray:
        return np.array([stats.mean_fitness for stats in self.history])

    def summary(self) -> str:
        freqs = ", ".join(f"{f:.4g} Hz" for f in self.best_freqs_hz)
        return (f"GA: best fitness {self.best_fitness:.4f} with test "
                f"vector [{freqs}] after {self.generations_run} "
                f"generations ({self.evaluations} evaluations, "
                f"{self.elapsed_seconds:.2f}s)")


class GeneticAlgorithm:
    """Evolutionary search for an optimal test vector.

    Populations are evaluated at population level when the fitness
    supports it (``score_population``, as every
    :class:`~repro.ga.fitness.TrajectoryFitness` does): the whole
    generation becomes one call that samples the shared response surface
    once and optionally fans the uncached individuals out over a thread
    pool of ``n_workers`` (threads, not processes, so the fitness memo
    cache stays shared). Scores -- and therefore the whole search
    trajectory for a given seed -- are identical to per-individual
    evaluation.
    """

    def __init__(self, space: FrequencySpace, fitness: FitnessFunction,
                 config: Optional[GAConfig] = None,
                 n_workers: int = 0) -> None:
        self.space = space
        self.fitness = fitness
        self.config = config or GAConfig.paper()
        if n_workers < 0:
            raise GAError("n_workers must be >= 0")
        self.n_workers = int(n_workers)

    # ------------------------------------------------------------------
    def _evaluate(self, population: np.ndarray,
                  pool: Optional[Executor] = None) -> np.ndarray:
        decoded = [self.space.decode(genome) for genome in population]
        score_population = getattr(self.fitness, "score_population", None)
        if score_population is not None:
            scores = np.asarray(score_population(decoded, executor=pool),
                                dtype=float)
            if scores.shape != (population.shape[0],):
                raise GAError(
                    f"score_population returned shape {scores.shape} "
                    f"for a population of {population.shape[0]}")
        else:
            scores = np.empty(population.shape[0])
            for index, freqs in enumerate(decoded):
                scores[index] = self.fitness(freqs)
        if np.any(scores < 0.0) or not np.all(np.isfinite(scores)):
            raise GAError("fitness must return finite non-negative values")
        return scores

    def run(self, seed: Optional[int] = None,
            rng: Optional[np.random.Generator] = None,
            initial_population: Optional[np.ndarray] = None) -> GAResult:
        """Execute the configured number of generations.

        ``initial_population`` optionally seeds the search (e.g. with
        sensitivity-ranked frequencies); missing rows are filled with
        random genomes.
        """
        if rng is None:
            rng = np.random.default_rng(seed)
        config = self.config
        select = get_selection(config.selection, config.tournament_size)
        crossover = get_crossover(config.crossover)

        population = self.space.random_population(
            rng, config.population_size)
        if initial_population is not None:
            seeded = np.asarray(initial_population, dtype=float)
            if seeded.ndim != 2 or \
                    seeded.shape[1] != self.space.num_frequencies:
                raise GAError(
                    f"initial_population must be (k, "
                    f"{self.space.num_frequencies})")
            count = min(seeded.shape[0], config.population_size)
            population[:count] = self.space.clip(seeded[:count])

        history: List[GenerationStats] = []
        evaluations = 0
        started = time.perf_counter()

        pool: Optional[Executor] = None
        if self.n_workers > 1 and \
                hasattr(self.fitness, "score_population"):
            pool = ThreadPoolExecutor(max_workers=self.n_workers,
                                      thread_name_prefix="ga-eval")
        try:
            return self._run_generations(rng, config, select, crossover,
                                         population, history, evaluations,
                                         started, pool)
        finally:
            if pool is not None:
                pool.shutdown()

    def _run_generations(self, rng, config, select, crossover, population,
                         history, evaluations, started,
                         pool: Optional[Executor]) -> GAResult:
        scores = self._evaluate(population, pool)
        evaluations += population.shape[0]

        best_index = int(np.argmax(scores))
        best_genome = population[best_index].copy()
        best_fitness = float(scores[best_index])

        generations_run = 0
        for generation in range(config.generations):
            gen_start = time.perf_counter() if profiling.enabled() \
                else None
            generations_run = generation + 1
            history.append(GenerationStats(
                generation=generation,
                best_fitness=float(scores.max()),
                mean_fitness=float(scores.mean()),
                std_fitness=float(scores.std()),
                best_freqs_hz=self.space.decode(
                    population[int(np.argmax(scores))]),
            ))
            if config.early_stop_fitness is not None and \
                    best_fitness >= config.early_stop_fitness:
                break
            if generation == config.generations - 1:
                break  # last generation is evaluated, not reproduced

            # --- Reproduction -------------------------------------------
            next_population = np.empty_like(population)
            cursor = 0
            if config.elitism > 0:
                elite = np.argsort(scores)[::-1][:config.elitism]
                next_population[:config.elitism] = population[elite]
                cursor = config.elitism
            needed = config.population_size - cursor
            parent_indices = select(scores, 2 * needed, rng)
            parents_a = population[parent_indices[:needed]]
            parents_b = population[parent_indices[needed:]]
            for row in range(needed):
                if rng.random() < config.crossover_rate:
                    child = crossover(parents_a[row], parents_b[row], rng)
                else:
                    child = parents_a[row].copy()
                if rng.random() < config.mutation_rate:
                    child = gaussian_mutation(
                        child, self.space, rng,
                        sigma_decades=config.mutation_sigma_decades)
                next_population[cursor + row] = self.space.clip(child)
            population = next_population

            scores = self._evaluate(population, pool)
            evaluations += population.shape[0]
            generation_best = int(np.argmax(scores))
            if scores[generation_best] > best_fitness:
                best_fitness = float(scores[generation_best])
                best_genome = population[generation_best].copy()
            if gen_start is not None:
                profiling.profile_event(
                    "ga.generation", time.perf_counter() - gen_start,
                    generation=generation,
                    population=int(population.shape[0]))

        elapsed = time.perf_counter() - started
        return GAResult(
            best_freqs_hz=self.space.decode(best_genome),
            best_fitness=best_fitness,
            history=history,
            generations_run=generations_run,
            evaluations=evaluations,
            elapsed_seconds=elapsed,
            final_population=population,
            final_fitness=scores,
        )
