"""The genetic algorithm engine.

Generation loop (paper Sec. 2.4): evaluate the population, keep the
elite, select parents with the configured method (roulette wheel by
default), recombine with probability ``crossover_rate``, mutate with
probability ``mutation_rate``, repeat for a fixed number of generations.

Everything is driven by an explicit seed/Generator: the same seed always
reproduces the same search trajectory.
"""

from __future__ import annotations

import time
from concurrent.futures import (Executor, ProcessPoolExecutor,
                                ThreadPoolExecutor)
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from .. import profiling
from ..errors import GAError
from .config import GAConfig
from .encoding import FrequencySpace
from .operators import gaussian_mutation, get_crossover, get_selection

__all__ = ["GenerationStats", "GAResult", "GeneticAlgorithm"]

FitnessFunction = Callable[[Tuple[float, ...]], float]


@dataclass(frozen=True)
class GenerationStats:
    """Per-generation summary recorded in the run history."""

    generation: int
    best_fitness: float
    mean_fitness: float
    std_fitness: float
    best_freqs_hz: Tuple[float, ...]


@dataclass
class GAResult:
    """Outcome of one GA run."""

    best_freqs_hz: Tuple[float, ...]
    best_fitness: float
    history: List[GenerationStats]
    generations_run: int
    evaluations: int
    elapsed_seconds: float
    final_population: np.ndarray
    final_fitness: np.ndarray

    @property
    def converged(self) -> bool:
        """Whether the best fitness reached the 1.0 plateau (I = 0)."""
        return self.best_fitness >= 1.0

    def best_fitness_curve(self) -> np.ndarray:
        return np.array([stats.best_fitness for stats in self.history])

    def mean_fitness_curve(self) -> np.ndarray:
        return np.array([stats.mean_fitness for stats in self.history])

    def summary(self) -> str:
        freqs = ", ".join(f"{f:.4g} Hz" for f in self.best_freqs_hz)
        return (f"GA: best fitness {self.best_fitness:.4f} with test "
                f"vector [{freqs}] after {self.generations_run} "
                f"generations ({self.evaluations} evaluations, "
                f"{self.elapsed_seconds:.2f}s)")


class GeneticAlgorithm:
    """Evolutionary search for an optimal test vector.

    Populations are evaluated at population level when the fitness
    supports it (``score_population``, as every
    :class:`~repro.ga.fitness.TrajectoryFitness` does): the whole
    generation becomes one call that samples the shared response surface
    once and fans the uncached individuals out over ``n_workers``.

    ``executor`` picks the pool kind. ``"thread"`` (default) shares the
    fitness and its memo cache directly -- it only wins where BLAS
    drops the GIL. ``"process"`` publishes the response surface into
    shared memory once (``repro.runtime.shm``), ships each worker a
    fitness clone that attaches zero-copy, and scores contiguous
    population shards in worker processes, reassembled in submission
    order -- true multi-core scaling. Either way, scores -- and
    therefore the whole search trajectory for a given seed -- are
    bitwise-identical to serial per-individual evaluation. When shared
    memory is unavailable the process request falls back to threads.
    """

    def __init__(self, space: FrequencySpace, fitness: FitnessFunction,
                 config: Optional[GAConfig] = None,
                 n_workers: int = 0, executor: str = "thread") -> None:
        self.space = space
        self.fitness = fitness
        self.config = config or GAConfig.paper()
        if n_workers < 0:
            raise GAError("n_workers must be >= 0")
        if executor not in ("thread", "process"):
            raise GAError(
                f"executor must be 'thread' or 'process', "
                f"got {executor!r}")
        self.n_workers = int(n_workers)
        self.executor = executor

    # ------------------------------------------------------------------
    def _evaluate(self, population: np.ndarray,
                  pool: Optional[Executor] = None) -> np.ndarray:
        decoded = [self.space.decode(genome) for genome in population]
        score_population = getattr(self.fitness, "score_population", None)
        if score_population is not None:
            scores = np.asarray(score_population(decoded, executor=pool),
                                dtype=float)
            if scores.shape != (population.shape[0],):
                raise GAError(
                    f"score_population returned shape {scores.shape} "
                    f"for a population of {population.shape[0]}")
        else:
            scores = np.empty(population.shape[0])
            for index, freqs in enumerate(decoded):
                scores[index] = self.fitness(freqs)
        if np.any(scores < 0.0) or not np.all(np.isfinite(scores)):
            raise GAError("fitness must return finite non-negative values")
        return scores

    def run(self, seed: Optional[int] = None,
            rng: Optional[np.random.Generator] = None,
            initial_population: Optional[np.ndarray] = None) -> GAResult:
        """Execute the configured number of generations.

        ``initial_population`` optionally seeds the search (e.g. with
        sensitivity-ranked frequencies); missing rows are filled with
        random genomes.
        """
        if rng is None:
            rng = np.random.default_rng(seed)
        config = self.config
        select = get_selection(config.selection, config.tournament_size)
        crossover = get_crossover(config.crossover)

        population = self.space.random_population(
            rng, config.population_size)
        if initial_population is not None:
            seeded = np.asarray(initial_population, dtype=float)
            if seeded.ndim != 2 or \
                    seeded.shape[1] != self.space.num_frequencies:
                raise GAError(
                    f"initial_population must be (k, "
                    f"{self.space.num_frequencies})")
            count = min(seeded.shape[0], config.population_size)
            population[:count] = self.space.clip(seeded[:count])

        history: List[GenerationStats] = []
        evaluations = 0
        started = time.perf_counter()

        pool: Optional[Executor] = None
        shared_surface = None
        if self.n_workers > 1 and \
                hasattr(self.fitness, "score_population"):
            if self.executor == "process":
                pool, shared_surface = self._start_process_pool()
            if pool is None:
                pool = ThreadPoolExecutor(max_workers=self.n_workers,
                                          thread_name_prefix="ga-eval")
        try:
            return self._run_generations(rng, config, select, crossover,
                                         population, history, evaluations,
                                         started, pool)
        finally:
            if pool is not None:
                if shared_surface is not None:
                    from ..runtime import shm
                    stopping = time.perf_counter()
                    pool.shutdown()
                    shm.observe_worker_shutdown(
                        "ga", time.perf_counter() - stopping)
                else:
                    pool.shutdown()
            if shared_surface is not None:
                shared_surface.unlink()

    def _start_process_pool(self):
        """Publish the surface into shared memory and fork the scoring
        pool, or ``(None, None)`` to fall back to threads (no shm, or a
        fitness without process-clone support)."""
        if not hasattr(self.fitness, "process_clone"):
            return None, None
        from ..runtime import shm
        if not shm.shm_available():
            return None, None
        shared_surface = shm.SharedSurface.publish(self.fitness.surface)
        try:
            from .fitness import _pool_worker_init
            clone = self.fitness.process_clone(shared_surface)
            started = time.perf_counter()
            pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_pool_worker_init, initargs=(clone,))
            # Warm-up barrier: force the first fork so startup latency
            # lands in the startup histogram, not the first generation.
            pool.submit(shm._noop).result()
            shm.observe_worker_start(
                "ga", time.perf_counter() - started)
        except Exception:
            shared_surface.unlink()
            raise
        return pool, shared_surface

    def _run_generations(self, rng, config, select, crossover, population,
                         history, evaluations, started,
                         pool: Optional[Executor]) -> GAResult:
        scores = self._evaluate(population, pool)
        evaluations += population.shape[0]

        best_index = int(np.argmax(scores))
        best_genome = population[best_index].copy()
        best_fitness = float(scores[best_index])

        generations_run = 0
        for generation in range(config.generations):
            gen_start = time.perf_counter() if profiling.enabled() \
                else None
            generations_run = generation + 1
            history.append(GenerationStats(
                generation=generation,
                best_fitness=float(scores.max()),
                mean_fitness=float(scores.mean()),
                std_fitness=float(scores.std()),
                best_freqs_hz=self.space.decode(
                    population[int(np.argmax(scores))]),
            ))
            if config.early_stop_fitness is not None and \
                    best_fitness >= config.early_stop_fitness:
                break
            if generation == config.generations - 1:
                break  # last generation is evaluated, not reproduced

            # --- Reproduction -------------------------------------------
            next_population = np.empty_like(population)
            cursor = 0
            if config.elitism > 0:
                elite = np.argsort(scores)[::-1][:config.elitism]
                next_population[:config.elitism] = population[elite]
                cursor = config.elitism
            needed = config.population_size - cursor
            parent_indices = select(scores, 2 * needed, rng)
            parents_a = population[parent_indices[:needed]]
            parents_b = population[parent_indices[needed:]]
            for row in range(needed):
                if rng.random() < config.crossover_rate:
                    child = crossover(parents_a[row], parents_b[row], rng)
                else:
                    child = parents_a[row].copy()
                if rng.random() < config.mutation_rate:
                    child = gaussian_mutation(
                        child, self.space, rng,
                        sigma_decades=config.mutation_sigma_decades)
                next_population[cursor + row] = self.space.clip(child)
            population = next_population

            scores = self._evaluate(population, pool)
            evaluations += population.shape[0]
            generation_best = int(np.argmax(scores))
            if scores[generation_best] > best_fitness:
                best_fitness = float(scores[generation_best])
                best_genome = population[generation_best].copy()
            if gen_start is not None:
                profiling.profile_event(
                    "ga.generation", time.perf_counter() - gen_start,
                    generation=generation,
                    population=int(population.shape[0]))

        elapsed = time.perf_counter() - started
        return GAResult(
            best_freqs_hz=self.space.decode(best_genome),
            best_fitness=best_fitness,
            history=history,
            generations_run=generations_run,
            evaluations=evaluations,
            elapsed_seconds=elapsed,
            final_population=population,
            final_fitness=scores,
        )
