"""Fitness functions for test-vector quality.

The paper's fitness (Sec. 2.4)::

    fitness(fm, fn) = 1 / (1 + I)

where I is the number of trajectory intersections; the selection criteria
also penalise "common pathways", so I here is crossings + collinear
overlaps (the weight is configurable and ablated in T-ABL).

Two extensions address the paper fitness's plateau (every intersection-
free vector scores exactly 1.0, leaving the GA no gradient between them):

* :class:`MarginFitness` -- rewards the minimum inter-trajectory distance;
* :class:`CombinedFitness` -- the paper term plus a bounded margin bonus,
  which keeps the paper's ordering but breaks ties.

Every fitness memoises on the (rounded) test vector: the GA revisits the
same region constantly and trajectory construction is the dominant cost.
"""

from __future__ import annotations

import copy
from concurrent.futures import Executor
from concurrent.futures.process import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GAError
from ..faults.models import ParametricFault
from ..faults.surface import ResponseSurface
from ..trajectory.mapping import SignatureMapper
from ..trajectory.metrics import (
    TrajectoryMetrics,
    conflict_counts_batch,
    evaluate_metrics,
)
from ..trajectory.trajectory import TrajectorySet

__all__ = [
    "TrajectoryFitness",
    "PaperFitness",
    "MarginFitness",
    "CombinedFitness",
]

# Cache keys round log-frequencies to this many digits; two vectors that
# agree to 1e-9 decades are physically identical.
_CACHE_DIGITS = 9

#: Per-process fitness clone installed by the pool initializer; worker
#: processes score population shards through it against the shared
#: (zero-copy) response surface.
_WORKER_FITNESS: Optional["TrajectoryFitness"] = None


def _pool_worker_init(fitness: "TrajectoryFitness") -> None:
    """Process-pool initializer: adopt the pickled fitness clone.

    The clone arrives once per worker (its surface attaches to shared
    memory by handle) and persists across generations, so the worker's
    memo cache warms exactly like the serial fitness's would.
    """
    global _WORKER_FITNESS
    _WORKER_FITNESS = fitness


def _pool_score_shard(vectors: Sequence[Tuple[float, ...]]
                      ) -> List[float]:
    """Score one population shard in a worker process."""
    if _WORKER_FITNESS is None:
        raise GAError("GA pool worker used without its initializer")
    return [float(value)
            for value in _WORKER_FITNESS.score_population(vectors)]


@dataclass(frozen=True)
class _ConflictPlan:
    """Precomputed trajectory layout for population conflict counting.

    The trajectory *structure* (which dictionary rows form which
    trajectory, where the golden vertex sits, how vertices chain into
    segments) is a pure function of the dictionary and the component
    filter -- only the vertex coordinates change per candidate test
    vector. Precomputing it turns a whole population's conflict counts
    into two fancy-index gathers plus one batched orientation pass.
    """

    row_order: np.ndarray      # dictionary entry row per fault vertex
    fault_slots: np.ndarray    # vertex slot of each fault vertex
    golden_slots: np.ndarray   # vertex slot of each golden insertion
    seg_start: np.ndarray      # vertex slot of each segment start
    seg_end: np.ndarray        # vertex slot of each segment end
    owners: np.ndarray         # trajectory index per segment
    num_vertices: int


class TrajectoryFitness:
    """Base class: builds trajectories for a test vector and scores them.

    Subclasses implement :meth:`score` on the resulting metrics. Higher
    is better; values must be non-negative for roulette selection.
    Subclasses that never read the separation fields set
    ``needs_separations = False`` to skip the distance computation (the
    conflict counts alone are noticeably cheaper).
    """

    needs_separations = True

    def __init__(self, surface: ResponseSurface,
                 mapper: Optional[SignatureMapper] = None,
                 components: Optional[Tuple[str, ...]] = None) -> None:
        self.surface = surface
        # The mapper argument carries the mapping *options*; its test
        # vector is replaced per evaluation.
        self._mapper_template = mapper if mapper is not None else \
            SignatureMapper((1.0, 2.0))
        self.components = components
        self._cache: Dict[Tuple[float, ...], float] = {}
        self.evaluations = 0
        self._plan: Optional[_ConflictPlan] = None
        self._plan_built = False

    # ------------------------------------------------------------------
    def trajectories_for(self, freqs_hz: Tuple[float, ...]) -> TrajectorySet:
        mapper = self._mapper_template.with_freqs(freqs_hz)
        return TrajectorySet.from_source(self.surface, mapper,
                                         components=self.components)

    def metrics_for(self, freqs_hz: Tuple[float, ...],
                    include_separations: bool = True) -> TrajectoryMetrics:
        return evaluate_metrics(self.trajectories_for(freqs_hz),
                                include_separations=include_separations)

    def score(self, metrics: TrajectoryMetrics) -> float:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Evaluation: single vector and whole populations
    # ------------------------------------------------------------------
    @staticmethod
    def _cache_key(freqs_hz: Tuple[float, ...]) -> Tuple[float, ...]:
        return tuple(round(float(np.log10(f)), _CACHE_DIGITS)
                     for f in freqs_hz)

    def _score_vector(self, freqs_hz: Tuple[float, ...],
                      sampled_db: Optional[np.ndarray] = None) -> float:
        """Uncached evaluation of one test vector.

        ``sampled_db`` optionally injects this candidate's presampled
        surface magnitudes (golden row first); the resulting score is
        bitwise-identical to sampling inside -- the sampling operations
        are per-query-column independent.
        """
        if sampled_db is None:
            metrics = self.metrics_for(
                freqs_hz, include_separations=self.needs_separations)
        else:
            mapper = self._mapper_template.with_freqs(freqs_hz)
            trajectories = TrajectorySet.from_source(
                self.surface, mapper, components=self.components,
                signature_matrix=mapper.signature_matrix_from_db(
                    sampled_db),
                golden_point=mapper.golden_signature_from_db(
                    sampled_db[0]))
            metrics = evaluate_metrics(
                trajectories,
                include_separations=self.needs_separations)
        value = float(self.score(metrics))
        if value < 0.0:
            raise GAError(
                f"{type(self).__name__} returned negative fitness "
                f"{value}; roulette selection requires >= 0")
        return value

    def __call__(self, freqs_hz: Tuple[float, ...]) -> float:
        key = self._cache_key(freqs_hz)
        if key in self._cache:
            return self._cache[key]
        value = self._score_vector(freqs_hz)
        self._cache[key] = value
        self.evaluations += 1
        return value

    def score_population(self, vectors: Sequence[Tuple[float, ...]],
                         executor: Optional[Executor] = None
                         ) -> np.ndarray:
        """Fitness of a whole candidate population at once.

        Deduplicates against the memo cache, samples the shared response
        surface *once* for every uncached candidate (one vectorised
        interpolation over the concatenated test vectors), then scores
        the uncached candidates. Conflict-count fitnesses over 2-D
        signatures (the paper configuration) are scored as a single
        tensor pass over the whole batch; otherwise candidates are
        scored individually -- serially or fanned out over ``executor``.
        A thread pool shares this fitness (and its memo cache) directly;
        a process pool (workers initialised with :func:`_pool_worker_init`
        on a :meth:`process_clone`) receives contiguous shards and each
        worker samples the *shared* surface itself -- sampling is
        per-query-column independent and shards are reassembled in
        submission order, so scores are identical to calling the fitness
        per individual in any order.
        """
        vectors = [tuple(float(f) for f in vector) for vector in vectors]
        keys = [self._cache_key(vector) for vector in vectors]
        pending: Dict[Tuple[float, ...], Tuple[float, ...]] = {}
        for key, vector in zip(keys, vectors):
            if key not in self._cache:
                pending.setdefault(key, vector)
        if pending:
            candidates: List[Tuple[float, ...]] = list(pending.values())
            if isinstance(executor, ProcessPoolExecutor):
                values = self._score_pooled(executor, candidates)
            else:
                values = self._score_candidates(candidates, executor)
            for key, value in zip(pending, values):
                self._cache[key] = value
                self.evaluations += 1
        return np.array([self._cache[key] for key in keys], dtype=float)

    def _score_candidates(self, candidates: List[Tuple[float, ...]],
                          executor: Optional[Executor]) -> List[float]:
        """Score uncached candidates in this process (one vectorised
        surface sample, then the batched or per-candidate path)."""
        lengths = [len(vector) for vector in candidates]
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        sampled = self.surface.sample_db(
            np.concatenate([np.asarray(vector, dtype=float)
                            for vector in candidates]))

        plan = self._conflict_plan() if not self.needs_separations \
            else None
        if plan is not None and \
                all(length == 2 for length in lengths):
            return self._score_batch_conflicts(
                candidates, sampled, offsets, plan)

        def job(index: int) -> float:
            lo, hi = offsets[index], offsets[index + 1]
            return self._score_vector(candidates[index],
                                      sampled[:, lo:hi])

        if executor is not None:
            return list(executor.map(job, range(len(candidates))))
        return [job(index) for index in range(len(candidates))]

    def _score_pooled(self, executor: ProcessPoolExecutor,
                      candidates: List[Tuple[float, ...]]) -> List[float]:
        """Fan contiguous candidate shards out over worker processes.

        Shards are collected in submission order, so concatenated
        results line up with ``candidates`` exactly; each worker scores
        its shard through its own clone (shared surface, warm local
        cache), which is bitwise-equal to scoring here.
        """
        workers = max(1, int(getattr(executor, "_max_workers", 1)))
        size = max(1, -(-len(candidates) // workers))
        shards = [candidates[index:index + size]
                  for index in range(0, len(candidates), size)]
        futures = [executor.submit(_pool_score_shard, shard)
                   for shard in shards]
        from ..runtime import shm
        shm.record_pool_tasks("ga", len(shards))
        values: List[float] = []
        for future in futures:
            values.extend(future.result())
        return values

    def process_clone(self, shared_surface: ResponseSurface
                      ) -> "TrajectoryFitness":
        """A pool-shippable copy of this fitness over a shared surface.

        The conflict plan is built once here (it is a pure function of
        the dictionary metadata, identical for every worker) and rides
        the pickle; the memo cache starts empty per worker.
        """
        self._conflict_plan()
        clone = copy.copy(self)
        clone.surface = shared_surface
        clone._cache = {}
        clone.evaluations = 0
        return clone

    # ------------------------------------------------------------------
    # Population-level conflict counting (the paper-fitness fast path)
    # ------------------------------------------------------------------
    def _conflict_plan(self) -> Optional[_ConflictPlan]:
        """The precomputed trajectory layout, or None to fall back.

        Falling back (non-parametric-only sources, fewer than two
        trajectories, degenerate deviation grids) routes through the
        per-candidate path, which raises the exact errors the scalar
        evaluation would.
        """
        if self._plan_built:
            return self._plan
        self._plan_built = True
        dictionary = getattr(self.surface, "dictionary", None)
        if dictionary is None:
            return None
        groups: Dict[str, List[Tuple[float, int]]] = {}
        for row, entry in enumerate(dictionary.entries):
            if isinstance(entry.fault, ParametricFault):
                groups.setdefault(entry.fault.component, []).append(
                    (entry.fault.deviation, row))
        if self.components is not None:
            if set(self.components) - set(groups):
                return None
            groups = {name: groups[name] for name in self.components}
        if len(groups) < 2:
            return None
        row_order: List[int] = []
        fault_slots: List[int] = []
        golden_slots: List[int] = []
        seg_start: List[int] = []
        seg_end: List[int] = []
        owners: List[int] = []
        cursor = 0
        for index, pairs in enumerate(groups.values()):
            pairs = sorted(pairs, key=lambda item: item[0])
            deviations = [pair[0] for pair in pairs]
            if any(abs(d) < 1e-12 for d in deviations) or \
                    any(b <= a for a, b in
                        zip(deviations, deviations[1:])):
                return None
            insert_at = int(np.searchsorted(np.asarray(deviations), 0.0))
            count = len(pairs) + 1
            slots = list(range(cursor, cursor + count))
            golden_slots.append(slots[insert_at])
            fault_slots.extend(slots[:insert_at] + slots[insert_at + 1:])
            row_order.extend(pair[1] for pair in pairs)
            seg_start.extend(slots[:-1])
            seg_end.extend(slots[1:])
            owners.extend([index] * (count - 1))
            cursor += count
        self._plan = _ConflictPlan(
            row_order=np.array(row_order, dtype=int),
            fault_slots=np.array(fault_slots, dtype=int),
            golden_slots=np.array(golden_slots, dtype=int),
            seg_start=np.array(seg_start, dtype=int),
            seg_end=np.array(seg_end, dtype=int),
            owners=np.array(owners, dtype=int),
            num_vertices=cursor)
        return self._plan

    def _score_batch_conflicts(self, candidates: List[Tuple[float, ...]],
                               sampled: np.ndarray, offsets: np.ndarray,
                               plan: _ConflictPlan) -> List[float]:
        """Score a 2-D candidate batch with one conflict-tensor pass."""
        matrices = []
        goldens = []
        for index, vector in enumerate(candidates):
            mapper = self._mapper_template.with_freqs(vector)
            columns = sampled[:, offsets[index]:offsets[index + 1]]
            matrices.append(mapper.signature_matrix_from_db(columns))
            goldens.append(mapper.golden_signature_from_db(columns[0]))
        stacked = np.stack(matrices)                  # (K, n_faults, 2)
        golden = np.stack(goldens)                    # (K, 2)
        vertices = np.empty((len(candidates), plan.num_vertices, 2))
        vertices[:, plan.fault_slots] = stacked[:, plan.row_order]
        vertices[:, plan.golden_slots] = golden[:, None, :]
        intersections, overlaps = conflict_counts_batch(
            vertices[:, plan.seg_start], vertices[:, plan.seg_end],
            plan.owners)
        values = []
        for crossings, pathways in zip(intersections, overlaps):
            metrics = TrajectoryMetrics(
                intersections=int(crossings),
                common_pathways=int(pathways),
                min_separation=float("nan"),
                mean_separation=float("nan"),
                per_pair_separation={},
            )
            value = float(self.score(metrics))
            if value < 0.0:
                raise GAError(
                    f"{type(self).__name__} returned negative fitness "
                    f"{value}; roulette selection requires >= 0")
            values.append(value)
        return values

    def cache_clear(self) -> None:
        self._cache.clear()


class PaperFitness(TrajectoryFitness):
    """The paper's fitness: ``1 / (1 + I)``.

    ``I = intersections + overlap_weight * common_pathways``; with the
    default weight 1 every conflict counts once, matching the paper's
    "minimise common pathways and intersections" criterion.
    """

    needs_separations = False

    def __init__(self, surface: ResponseSurface,
                 mapper: Optional[SignatureMapper] = None,
                 components: Optional[Tuple[str, ...]] = None,
                 overlap_weight: float = 1.0) -> None:
        super().__init__(surface, mapper, components)
        if overlap_weight < 0.0:
            raise GAError("overlap_weight must be >= 0")
        self.overlap_weight = float(overlap_weight)

    def score(self, metrics: TrajectoryMetrics) -> float:
        conflicts = (metrics.intersections +
                     self.overlap_weight * metrics.common_pathways)
        return 1.0 / (1.0 + conflicts)


class MarginFitness(TrajectoryFitness):
    """Extension: reward the minimum inter-trajectory separation.

    Bounded to [0, 1) as ``margin / (margin + margin_scale)`` so roulette
    probabilities stay sane. ``margin_scale`` is the separation (in
    signature units, dB by default) that earns fitness 0.5.
    """

    def __init__(self, surface: ResponseSurface,
                 mapper: Optional[SignatureMapper] = None,
                 components: Optional[Tuple[str, ...]] = None,
                 margin_scale: float = 1.0) -> None:
        super().__init__(surface, mapper, components)
        if margin_scale <= 0.0:
            raise GAError("margin_scale must be positive")
        self.margin_scale = float(margin_scale)

    def score(self, metrics: TrajectoryMetrics) -> float:
        margin = max(metrics.min_separation, 0.0)
        if not np.isfinite(margin):
            return 1.0
        return margin / (margin + self.margin_scale)


class CombinedFitness(PaperFitness):
    """Paper fitness with a bounded margin tie-break.

    ``fitness = 1/(1+I) + margin_weight * margin/(margin + scale)``.
    In 2-D the margin is zero whenever any pair of trajectories conflicts
    (crossing or overlap), so the bonus only differentiates conflict-free
    vectors: the paper's primary objective is preserved exactly and the
    margin breaks the tie on its 1.0 plateau.
    """

    needs_separations = True

    def __init__(self, surface: ResponseSurface,
                 mapper: Optional[SignatureMapper] = None,
                 components: Optional[Tuple[str, ...]] = None,
                 overlap_weight: float = 1.0,
                 margin_weight: float = 0.45,
                 margin_scale: float = 1.0) -> None:
        super().__init__(surface, mapper, components, overlap_weight)
        if not 0.0 < margin_weight < 1.0:
            raise GAError("margin_weight must be in (0, 1) so conflict "
                          "count stays the primary objective")
        if margin_scale <= 0.0:
            raise GAError("margin_scale must be positive")
        self.margin_weight = float(margin_weight)
        self.margin_scale = float(margin_scale)

    def score(self, metrics: TrajectoryMetrics) -> float:
        base = super().score(metrics)
        margin = max(metrics.min_separation, 0.0)
        if not np.isfinite(margin):
            bonus = 1.0
        else:
            bonus = margin / (margin + self.margin_scale)
        return base + self.margin_weight * bonus
