"""Fitness functions for test-vector quality.

The paper's fitness (Sec. 2.4)::

    fitness(fm, fn) = 1 / (1 + I)

where I is the number of trajectory intersections; the selection criteria
also penalise "common pathways", so I here is crossings + collinear
overlaps (the weight is configurable and ablated in T-ABL).

Two extensions address the paper fitness's plateau (every intersection-
free vector scores exactly 1.0, leaving the GA no gradient between them):

* :class:`MarginFitness` -- rewards the minimum inter-trajectory distance;
* :class:`CombinedFitness` -- the paper term plus a bounded margin bonus,
  which keeps the paper's ordering but breaks ties.

Every fitness memoises on the (rounded) test vector: the GA revisits the
same region constantly and trajectory construction is the dominant cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import GAError
from ..faults.surface import ResponseSurface
from ..trajectory.mapping import SignatureMapper
from ..trajectory.metrics import TrajectoryMetrics, evaluate_metrics
from ..trajectory.trajectory import TrajectorySet

__all__ = [
    "TrajectoryFitness",
    "PaperFitness",
    "MarginFitness",
    "CombinedFitness",
]

# Cache keys round log-frequencies to this many digits; two vectors that
# agree to 1e-9 decades are physically identical.
_CACHE_DIGITS = 9


class TrajectoryFitness:
    """Base class: builds trajectories for a test vector and scores them.

    Subclasses implement :meth:`score` on the resulting metrics. Higher
    is better; values must be non-negative for roulette selection.
    Subclasses that never read the separation fields set
    ``needs_separations = False`` to skip the distance computation (the
    conflict counts alone are noticeably cheaper).
    """

    needs_separations = True

    def __init__(self, surface: ResponseSurface,
                 mapper: Optional[SignatureMapper] = None,
                 components: Optional[Tuple[str, ...]] = None) -> None:
        self.surface = surface
        # The mapper argument carries the mapping *options*; its test
        # vector is replaced per evaluation.
        self._mapper_template = mapper if mapper is not None else \
            SignatureMapper((1.0, 2.0))
        self.components = components
        self._cache: Dict[Tuple[float, ...], float] = {}
        self.evaluations = 0

    # ------------------------------------------------------------------
    def trajectories_for(self, freqs_hz: Tuple[float, ...]) -> TrajectorySet:
        mapper = self._mapper_template.with_freqs(freqs_hz)
        return TrajectorySet.from_source(self.surface, mapper,
                                         components=self.components)

    def metrics_for(self, freqs_hz: Tuple[float, ...],
                    include_separations: bool = True) -> TrajectoryMetrics:
        return evaluate_metrics(self.trajectories_for(freqs_hz),
                                include_separations=include_separations)

    def score(self, metrics: TrajectoryMetrics) -> float:
        raise NotImplementedError

    def __call__(self, freqs_hz: Tuple[float, ...]) -> float:
        key = tuple(round(float(np.log10(f)), _CACHE_DIGITS)
                    for f in freqs_hz)
        if key in self._cache:
            return self._cache[key]
        metrics = self.metrics_for(
            freqs_hz, include_separations=self.needs_separations)
        value = float(self.score(metrics))
        if value < 0.0:
            raise GAError(
                f"{type(self).__name__} returned negative fitness "
                f"{value}; roulette selection requires >= 0")
        self._cache[key] = value
        self.evaluations += 1
        return value

    def cache_clear(self) -> None:
        self._cache.clear()


class PaperFitness(TrajectoryFitness):
    """The paper's fitness: ``1 / (1 + I)``.

    ``I = intersections + overlap_weight * common_pathways``; with the
    default weight 1 every conflict counts once, matching the paper's
    "minimise common pathways and intersections" criterion.
    """

    needs_separations = False

    def __init__(self, surface: ResponseSurface,
                 mapper: Optional[SignatureMapper] = None,
                 components: Optional[Tuple[str, ...]] = None,
                 overlap_weight: float = 1.0) -> None:
        super().__init__(surface, mapper, components)
        if overlap_weight < 0.0:
            raise GAError("overlap_weight must be >= 0")
        self.overlap_weight = float(overlap_weight)

    def score(self, metrics: TrajectoryMetrics) -> float:
        conflicts = (metrics.intersections +
                     self.overlap_weight * metrics.common_pathways)
        return 1.0 / (1.0 + conflicts)


class MarginFitness(TrajectoryFitness):
    """Extension: reward the minimum inter-trajectory separation.

    Bounded to [0, 1) as ``margin / (margin + margin_scale)`` so roulette
    probabilities stay sane. ``margin_scale`` is the separation (in
    signature units, dB by default) that earns fitness 0.5.
    """

    def __init__(self, surface: ResponseSurface,
                 mapper: Optional[SignatureMapper] = None,
                 components: Optional[Tuple[str, ...]] = None,
                 margin_scale: float = 1.0) -> None:
        super().__init__(surface, mapper, components)
        if margin_scale <= 0.0:
            raise GAError("margin_scale must be positive")
        self.margin_scale = float(margin_scale)

    def score(self, metrics: TrajectoryMetrics) -> float:
        margin = max(metrics.min_separation, 0.0)
        if not np.isfinite(margin):
            return 1.0
        return margin / (margin + self.margin_scale)


class CombinedFitness(PaperFitness):
    """Paper fitness with a bounded margin tie-break.

    ``fitness = 1/(1+I) + margin_weight * margin/(margin + scale)``.
    In 2-D the margin is zero whenever any pair of trajectories conflicts
    (crossing or overlap), so the bonus only differentiates conflict-free
    vectors: the paper's primary objective is preserved exactly and the
    margin breaks the tie on its 1.0 plateau.
    """

    needs_separations = True

    def __init__(self, surface: ResponseSurface,
                 mapper: Optional[SignatureMapper] = None,
                 components: Optional[Tuple[str, ...]] = None,
                 overlap_weight: float = 1.0,
                 margin_weight: float = 0.45,
                 margin_scale: float = 1.0) -> None:
        super().__init__(surface, mapper, components, overlap_weight)
        if not 0.0 < margin_weight < 1.0:
            raise GAError("margin_weight must be in (0, 1) so conflict "
                          "count stays the primary objective")
        if margin_scale <= 0.0:
            raise GAError("margin_scale must be positive")
        self.margin_weight = float(margin_weight)
        self.margin_scale = float(margin_scale)

    def score(self, metrics: TrajectoryMetrics) -> float:
        base = super().score(metrics)
        margin = max(metrics.min_separation, 0.0)
        if not np.isfinite(margin):
            bonus = 1.0
        else:
            bonus = margin / (margin + self.margin_scale)
        return base + self.margin_weight * bonus
