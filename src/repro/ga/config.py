"""GA configuration with the paper's settings as defaults.

Section 2.4: *"Its main features are: 128 individuals, 15 generations,
reproduction rate of 50%, mutation rate of 40%, the 'roulette wheel' as
the mining method, and the number of generations as the stop criteria."*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import GAError

__all__ = ["GAConfig"]

_SELECTION_METHODS = ("roulette", "tournament", "rank")
_CROSSOVER_METHODS = ("blend", "one_point", "uniform")


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the evolutionary search.

    Defaults reproduce the paper's GA exactly; the alternative operators
    are extensions exercised by the ablation benchmark (T-ABL).

    Attributes
    ----------
    population_size / generations:
        Paper: 128 individuals, 15 generations (generation count is the
        stop criterion).
    crossover_rate:
        The paper's "reproduction rate of 50%": probability that a child
        is produced by recombining two parents rather than cloning one.
    mutation_rate:
        Probability that a (non-elite) child is mutated. Paper: 40 %.
    selection:
        ``"roulette"`` (paper), ``"tournament"`` or ``"rank"``.
    elitism:
        Number of best individuals copied unchanged into the next
        generation. The paper does not state elitism; 1 keeps the best
        fitness monotone without distorting the search, and 0 restores
        the strict paper configuration.
    mutation_sigma_decades:
        Standard deviation of the Gaussian gene mutation, in decades of
        frequency (genes live in log10-space).
    crossover:
        ``"blend"`` (BLX-style arithmetic mix, default for real genes),
        ``"one_point"`` or ``"uniform"``.
    tournament_size:
        Only used by tournament selection.
    early_stop_fitness:
        Optional fitness threshold that ends the run before the
        generation budget (extension; ``None`` = paper behaviour).
    """

    population_size: int = 128
    generations: int = 15
    crossover_rate: float = 0.5
    mutation_rate: float = 0.4
    selection: str = "roulette"
    elitism: int = 1
    mutation_sigma_decades: float = 0.15
    crossover: str = "blend"
    tournament_size: int = 3
    early_stop_fitness: Optional[float] = None

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise GAError("population_size must be >= 2")
        if self.generations < 1:
            raise GAError("generations must be >= 1")
        for name in ("crossover_rate", "mutation_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise GAError(f"{name} must be in [0, 1], got {value}")
        if self.selection not in _SELECTION_METHODS:
            raise GAError(
                f"selection must be one of {_SELECTION_METHODS}, "
                f"got {self.selection!r}")
        if self.crossover not in _CROSSOVER_METHODS:
            raise GAError(
                f"crossover must be one of {_CROSSOVER_METHODS}, "
                f"got {self.crossover!r}")
        if not 0 <= self.elitism < self.population_size:
            raise GAError(
                "elitism must be in [0, population_size)")
        if self.mutation_sigma_decades <= 0.0:
            raise GAError("mutation_sigma_decades must be positive")
        if self.tournament_size < 2:
            raise GAError("tournament_size must be >= 2")
        if self.early_stop_fitness is not None and \
                self.early_stop_fitness <= 0.0:
            raise GAError("early_stop_fitness must be positive or None")

    @classmethod
    def paper(cls) -> "GAConfig":
        """The configuration stated in the paper, verbatim."""
        return cls(population_size=128, generations=15,
                   crossover_rate=0.5, mutation_rate=0.4,
                   selection="roulette")

    @classmethod
    def quick(cls, seeded_generations: int = 6,
              population_size: int = 32) -> "GAConfig":
        """A small budget for tests and examples."""
        return cls(population_size=population_size,
                   generations=seeded_generations)
