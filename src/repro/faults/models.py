"""Fault models: the functional parametric fault paradigm of the paper.

Section 2.1: *"a fault in a circuit will be the result of a parametric
deviation in a component value. This way, faults in R & C are represented
as % deviations on their values, and faults on active devices will be
represented as % deviation on the values of their macro model."*

Three fault kinds are provided:

* :class:`ParametricFault` -- relative deviation of a passive value (the
  paper's model);
* :class:`OpAmpParamFault` -- relative deviation of one op-amp macromodel
  parameter (the paper's active-device model);
* :class:`CatastrophicFault` -- open/short extremes (extension; classical
  hard faults, approximated by extreme value substitution).

A fault knows how to *apply* itself to a circuit, returning a new faulty
circuit; circuits are immutable so injection is pure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..circuits.components import (
    Capacitor,
    Inductor,
    OpAmpMacro,
    Resistor,
    TwoTerminal,
)
from ..circuits.netlist import Circuit
from ..errors import FaultError

__all__ = [
    "Fault",
    "ParametricFault",
    "CatastrophicFault",
    "OpAmpParamFault",
    "GOLDEN_LABEL",
    "paper_deviation_grid",
]

GOLDEN_LABEL = "golden"

# Extreme substitution values for catastrophic faults. AC analyses see an
# open resistor as a near-zero admittance and a shorted capacitor as a
# near-infinite one; exact zeros/infinities would make the MNA singular.
_OPEN_RESISTANCE = 1e12
_SHORT_RESISTANCE = 1e-3
_OPEN_CAPACITANCE = 1e-18
_SHORT_CAPACITANCE = 1.0
_OPEN_INDUCTANCE = 1e6
_SHORT_INDUCTANCE = 1e-12


def paper_deviation_grid(max_deviation: float = 0.4,
                         step: float = 0.1) -> Tuple[float, ...]:
    """The paper's fault grid: +/-step ... +/-max, zero excluded.

    Defaults give (-0.4, -0.3, -0.2, -0.1, +0.1, +0.2, +0.3, +0.4) --
    component values from 60 % to 140 % of nominal in 10 % steps.
    """
    if not 0.0 < step <= max_deviation:
        raise FaultError("need 0 < step <= max_deviation")
    count = int(round(max_deviation / step))
    if abs(count * step - max_deviation) > 1e-9:
        raise FaultError(
            f"max_deviation {max_deviation} is not a multiple of "
            f"step {step}")
    positive = [round(step * k, 10) for k in range(1, count + 1)]
    negative = [-d for d in reversed(positive)]
    return tuple(negative + positive)


@dataclass(frozen=True)
class Fault:
    """Base class: something wrong with one named component."""

    component: str

    @property
    def label(self) -> str:
        """Unique human-readable identifier, used as dictionary key."""
        raise NotImplementedError

    def replacement_component(self, circuit: Circuit):
        """The faulted component that replaces the nominal one.

        This is the single-component delta every fault reduces to; the
        batched simulation engine stamps it directly instead of cloning
        the circuit, and :meth:`apply` wraps it into a faulty copy.

        Subclasses that only override :meth:`apply` (the historical
        extension contract) are still supported: the base
        implementation applies the fault and diffs the faulty circuit
        against the nominal one. Faults that add, remove or rewire
        components cannot be expressed as a replacement and raise
        :class:`FaultError`.
        """
        if type(self).apply is Fault.apply:
            raise NotImplementedError(
                f"{type(self).__name__} must implement "
                "replacement_component() or apply()")
        faulty = self.apply(circuit)
        if faulty.component_names != circuit.component_names:
            raise FaultError(
                f"{self.label}: apply() changes the component set; such "
                "faults cannot be delta-stamped by the simulation "
                "engine -- implement replacement_component() or keep "
                "the topology fixed")
        changed = [component for component in faulty
                   if component != circuit[component.name]]
        if len(changed) != 1:
            raise FaultError(
                f"{self.label}: apply() changed {len(changed)} "
                "components; replacement_component() expects exactly "
                "one -- override it for multi-component faults")
        return changed[0]

    def apply(self, circuit: Circuit) -> Circuit:
        """Return a faulty copy of ``circuit``."""
        return circuit.with_component(
            self.replacement_component(circuit),
            name=f"{circuit.name}#{self.label}")

    def _require(self, circuit: Circuit):
        if self.component not in circuit:
            raise FaultError(
                f"fault target {self.component!r} not in circuit "
                f"{circuit.name!r}")
        return circuit[self.component]


@dataclass(frozen=True)
class ParametricFault(Fault):
    """Relative deviation of a passive component value.

    ``deviation`` is relative: ``+0.2`` means 120 % of nominal, ``-0.4``
    means 60 % of nominal. Must stay above -1 (values stay positive).
    """

    deviation: float = 0.0

    def __post_init__(self) -> None:
        if self.deviation <= -1.0:
            raise FaultError(
                f"{self.component}: deviation {self.deviation} would make "
                "the value non-positive")

    @property
    def label(self) -> str:
        return f"{self.component}{self.deviation * 100.0:+.6g}%"

    def replacement_component(self, circuit: Circuit) -> TwoTerminal:
        target = self._require(circuit)
        if not isinstance(target, TwoTerminal):
            raise FaultError(
                f"{self.component!r} is a {type(target).__name__}; "
                "parametric faults target two-terminal passives "
                "(use OpAmpParamFault for active devices)")
        return target.with_value(target.value * (1.0 + self.deviation))


@dataclass(frozen=True)
class CatastrophicFault(Fault):
    """Open or short of a passive component (extension to the paper).

    Approximated by extreme value substitution so the network stays
    solvable; the substituted values are component-type aware.
    """

    kind: str = "open"

    _VALUES = {
        (Resistor, "open"): _OPEN_RESISTANCE,
        (Resistor, "short"): _SHORT_RESISTANCE,
        (Capacitor, "open"): _OPEN_CAPACITANCE,
        (Capacitor, "short"): _SHORT_CAPACITANCE,
        (Inductor, "open"): _OPEN_INDUCTANCE,
        (Inductor, "short"): _SHORT_INDUCTANCE,
    }

    def __post_init__(self) -> None:
        if self.kind not in ("open", "short"):
            raise FaultError(
                f"{self.component}: catastrophic kind must be 'open' or "
                f"'short', got {self.kind!r}")

    @property
    def label(self) -> str:
        return f"{self.component}:{self.kind}"

    def replacement_component(self, circuit: Circuit) -> TwoTerminal:
        target = self._require(circuit)
        for component_type in (Resistor, Capacitor, Inductor):
            if isinstance(target, component_type):
                return target.with_value(
                    self._VALUES[(component_type, self.kind)])
        raise FaultError(
            f"{self.component!r} is a {type(target).__name__}; "
            "catastrophic faults target R, C or L")


@dataclass(frozen=True)
class OpAmpParamFault(Fault):
    """Relative deviation of one op-amp macromodel parameter.

    This is the paper's active-device fault: a % deviation on a macromodel
    value (a0, pole_hz, rin or rout).
    """

    param: str = "a0"
    deviation: float = 0.0

    def __post_init__(self) -> None:
        if self.deviation <= -1.0:
            raise FaultError(
                f"{self.component}.{self.param}: deviation "
                f"{self.deviation} would make the parameter non-positive")

    @property
    def label(self) -> str:
        return (f"{self.component}.{self.param}"
                f"{self.deviation * 100.0:+.6g}%")

    def replacement_component(self, circuit: Circuit) -> OpAmpMacro:
        target = self._require(circuit)
        if not isinstance(target, OpAmpMacro):
            raise FaultError(
                f"{self.component!r} is a {type(target).__name__}; "
                "OpAmpParamFault targets OpAmpMacro devices (build the "
                "circuit with ideal_opamps=False)")
        nominal = target.params[self.param] if self.param in target.params \
            else None
        if nominal is None:
            raise FaultError(
                f"{self.component}: macromodel has no parameter "
                f"{self.param!r}")
        return target.with_param(self.param,
                                 nominal * (1.0 + self.deviation))
