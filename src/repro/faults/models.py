"""Fault models: the functional parametric fault paradigm of the paper.

Section 2.1: *"a fault in a circuit will be the result of a parametric
deviation in a component value. This way, faults in R & C are represented
as % deviations on their values, and faults on active devices will be
represented as % deviation on the values of their macro model."*

Three fault kinds are provided:

* :class:`ParametricFault` -- relative deviation of a passive value (the
  paper's model);
* :class:`OpAmpParamFault` -- relative deviation of one op-amp macromodel
  parameter (the paper's active-device model);
* :class:`CatastrophicFault` -- open/short extremes (extension; classical
  hard faults, approximated by extreme value substitution).

A fault knows how to *apply* itself to a circuit, returning a new faulty
circuit; circuits are immutable so injection is pure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..circuits.components import (
    Capacitor,
    Inductor,
    OpAmpMacro,
    Resistor,
    TwoTerminal,
)
from ..circuits.netlist import Circuit
from ..errors import FaultError

__all__ = [
    "Fault",
    "ParametricFault",
    "CatastrophicFault",
    "OpAmpParamFault",
    "GOLDEN_LABEL",
    "paper_deviation_grid",
]

GOLDEN_LABEL = "golden"

# Extreme substitution values for catastrophic faults. AC analyses see an
# open resistor as a near-zero admittance and a shorted capacitor as a
# near-infinite one; exact zeros/infinities would make the MNA singular.
_OPEN_RESISTANCE = 1e12
_SHORT_RESISTANCE = 1e-3
_OPEN_CAPACITANCE = 1e-18
_SHORT_CAPACITANCE = 1.0
_OPEN_INDUCTANCE = 1e6
_SHORT_INDUCTANCE = 1e-12


def paper_deviation_grid(max_deviation: float = 0.4,
                         step: float = 0.1) -> Tuple[float, ...]:
    """The paper's fault grid: +/-step ... +/-max, zero excluded.

    Defaults give (-0.4, -0.3, -0.2, -0.1, +0.1, +0.2, +0.3, +0.4) --
    component values from 60 % to 140 % of nominal in 10 % steps.
    """
    if not 0.0 < step <= max_deviation:
        raise FaultError("need 0 < step <= max_deviation")
    count = int(round(max_deviation / step))
    if abs(count * step - max_deviation) > 1e-9:
        raise FaultError(
            f"max_deviation {max_deviation} is not a multiple of "
            f"step {step}")
    positive = [round(step * k, 10) for k in range(1, count + 1)]
    negative = [-d for d in reversed(positive)]
    return tuple(negative + positive)


@dataclass(frozen=True)
class Fault:
    """Base class: something wrong with one named component."""

    component: str

    @property
    def label(self) -> str:
        """Unique human-readable identifier, used as dictionary key."""
        raise NotImplementedError

    def apply(self, circuit: Circuit) -> Circuit:
        """Return a faulty copy of ``circuit``."""
        raise NotImplementedError

    def _require(self, circuit: Circuit):
        if self.component not in circuit:
            raise FaultError(
                f"fault target {self.component!r} not in circuit "
                f"{circuit.name!r}")
        return circuit[self.component]


@dataclass(frozen=True)
class ParametricFault(Fault):
    """Relative deviation of a passive component value.

    ``deviation`` is relative: ``+0.2`` means 120 % of nominal, ``-0.4``
    means 60 % of nominal. Must stay above -1 (values stay positive).
    """

    deviation: float = 0.0

    def __post_init__(self) -> None:
        if self.deviation <= -1.0:
            raise FaultError(
                f"{self.component}: deviation {self.deviation} would make "
                "the value non-positive")

    @property
    def label(self) -> str:
        return f"{self.component}{self.deviation * 100.0:+.6g}%"

    def apply(self, circuit: Circuit) -> Circuit:
        target = self._require(circuit)
        if not isinstance(target, TwoTerminal):
            raise FaultError(
                f"{self.component!r} is a {type(target).__name__}; "
                "parametric faults target two-terminal passives "
                "(use OpAmpParamFault for active devices)")
        return circuit.scaled_value(
            self.component, 1.0 + self.deviation,
            name=f"{circuit.name}#{self.label}")


@dataclass(frozen=True)
class CatastrophicFault(Fault):
    """Open or short of a passive component (extension to the paper).

    Approximated by extreme value substitution so the network stays
    solvable; the substituted values are component-type aware.
    """

    kind: str = "open"

    _VALUES = {
        (Resistor, "open"): _OPEN_RESISTANCE,
        (Resistor, "short"): _SHORT_RESISTANCE,
        (Capacitor, "open"): _OPEN_CAPACITANCE,
        (Capacitor, "short"): _SHORT_CAPACITANCE,
        (Inductor, "open"): _OPEN_INDUCTANCE,
        (Inductor, "short"): _SHORT_INDUCTANCE,
    }

    def __post_init__(self) -> None:
        if self.kind not in ("open", "short"):
            raise FaultError(
                f"{self.component}: catastrophic kind must be 'open' or "
                f"'short', got {self.kind!r}")

    @property
    def label(self) -> str:
        return f"{self.component}:{self.kind}"

    def apply(self, circuit: Circuit) -> Circuit:
        target = self._require(circuit)
        for component_type in (Resistor, Capacitor, Inductor):
            if isinstance(target, component_type):
                value = self._VALUES[(component_type, self.kind)]
                return circuit.with_value(
                    self.component, value,
                    name=f"{circuit.name}#{self.label}")
        raise FaultError(
            f"{self.component!r} is a {type(target).__name__}; "
            "catastrophic faults target R, C or L")


@dataclass(frozen=True)
class OpAmpParamFault(Fault):
    """Relative deviation of one op-amp macromodel parameter.

    This is the paper's active-device fault: a % deviation on a macromodel
    value (a0, pole_hz, rin or rout).
    """

    param: str = "a0"
    deviation: float = 0.0

    def __post_init__(self) -> None:
        if self.deviation <= -1.0:
            raise FaultError(
                f"{self.component}.{self.param}: deviation "
                f"{self.deviation} would make the parameter non-positive")

    @property
    def label(self) -> str:
        return (f"{self.component}.{self.param}"
                f"{self.deviation * 100.0:+.6g}%")

    def apply(self, circuit: Circuit) -> Circuit:
        target = self._require(circuit)
        if not isinstance(target, OpAmpMacro):
            raise FaultError(
                f"{self.component!r} is a {type(target).__name__}; "
                "OpAmpParamFault targets OpAmpMacro devices (build the "
                "circuit with ideal_opamps=False)")
        nominal = target.params[self.param] if self.param in target.params \
            else None
        if nominal is None:
            raise FaultError(
                f"{self.component}: macromodel has no parameter "
                f"{self.param!r}")
        faulty = target.with_param(self.param,
                                   nominal * (1.0 + self.deviation))
        return circuit.with_component(
            faulty, name=f"{circuit.name}#{self.label}")
