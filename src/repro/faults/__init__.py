"""Fault models, fault universes, fault dictionaries and response surfaces."""

from .dictionary import DictionaryEntry, FaultDictionary
from .models import (
    CatastrophicFault,
    Fault,
    GOLDEN_LABEL,
    OpAmpParamFault,
    ParametricFault,
    paper_deviation_grid,
)
from .surface import ResponseSurface
from .universe import (
    FaultUniverse,
    catastrophic_universe,
    parametric_universe,
    synthesize_universe,
)

__all__ = [
    "Fault",
    "ParametricFault",
    "CatastrophicFault",
    "OpAmpParamFault",
    "GOLDEN_LABEL",
    "paper_deviation_grid",
    "FaultUniverse",
    "parametric_universe",
    "catastrophic_universe",
    "synthesize_universe",
    "FaultDictionary",
    "DictionaryEntry",
    "ResponseSurface",
]
