"""Fault universe construction: the set of faults a test must diagnose.

Section 2.1: the fault-simulation process builds, from the original
circuit, a set of faulty circuits *"inserting faults on all its components
(systematic % deviation on its values) within a given range"*. A
:class:`FaultUniverse` is that enumerated set plus iteration helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..circuits.components import OpAmpMacro, TwoTerminal
from ..circuits.netlist import Circuit
from ..errors import FaultError
from .models import (
    CatastrophicFault,
    Fault,
    OpAmpParamFault,
    ParametricFault,
    paper_deviation_grid,
)

__all__ = ["FaultUniverse", "parametric_universe",
           "catastrophic_universe", "synthesize_universe"]


@dataclass(frozen=True)
class FaultUniverse:
    """An ordered, label-unique collection of faults for one circuit."""

    circuit: Circuit
    faults: Tuple[Fault, ...]

    def __post_init__(self) -> None:
        labels = [fault.label for fault in self.faults]
        duplicates = {label for label in labels if labels.count(label) > 1}
        if duplicates:
            raise FaultError(
                f"duplicate fault labels in universe: {sorted(duplicates)}")
        for fault in self.faults:
            if fault.component not in self.circuit:
                raise FaultError(
                    f"fault {fault.label} targets missing component "
                    f"{fault.component!r}")

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(fault.label for fault in self.faults)

    @property
    def components(self) -> Tuple[str, ...]:
        """Distinct fault-target components, in first-appearance order."""
        seen: Dict[str, None] = {}
        for fault in self.faults:
            seen.setdefault(fault.component, None)
        return tuple(seen)

    def by_component(self) -> Dict[str, Tuple[Fault, ...]]:
        """Faults grouped per target component (insertion order kept)."""
        groups: Dict[str, List[Fault]] = {}
        for fault in self.faults:
            groups.setdefault(fault.component, []).append(fault)
        return {name: tuple(faults) for name, faults in groups.items()}

    def faulty_circuits(self) -> Iterator[Tuple[Fault, Circuit]]:
        """Yield ``(fault, faulty_circuit)`` pairs -- fault simulation."""
        for fault in self.faults:
            yield fault, fault.apply(self.circuit)

    def variants(self) -> Tuple["VariantSpec", ...]:
        """The universe as simulation-engine variant specs.

        One :class:`~repro.sim.engine.VariantSpec` per fault, named like
        the faulty circuit clones ``fault.apply`` produces, so engine
        responses carry the same labels as the scalar fault simulation.
        Memoised: the universe is immutable, and a pipeline run builds
        several dictionaries (dense grid, exact test vector) from the
        same universe.
        """
        cached = getattr(self, "_variants_cache", None)
        if cached is None:
            from ..sim.engine import VariantSpec
            cached = tuple(
                VariantSpec((fault.replacement_component(self.circuit),),
                            name=f"{self.circuit.name}#{fault.label}")
                for fault in self.faults)
            object.__setattr__(self, "_variants_cache", cached)
        return cached

    def restricted_to(self, components: Sequence[str]) -> "FaultUniverse":
        """Sub-universe containing only faults on the given components."""
        wanted = set(components)
        missing = wanted - set(self.components)
        if missing:
            raise FaultError(
                f"universe has no faults on {sorted(missing)}")
        return FaultUniverse(
            self.circuit,
            tuple(f for f in self.faults if f.component in wanted))


def parametric_universe(circuit: Circuit,
                        components: Optional[Sequence[str]] = None,
                        deviations: Optional[Sequence[float]] = None,
                        include_opamp_params: bool = False
                        ) -> FaultUniverse:
    """The paper's universe: every component deviated over the grid.

    ``components`` defaults to all passives; ``deviations`` defaults to the
    paper grid (+/-10 % ... +/-40 %). With ``include_opamp_params`` the
    macromodel parameters of every :class:`OpAmpMacro` get the same grid
    (the paper's active-device model).
    """
    targets = tuple(components) if components else circuit.passive_names
    if not targets:
        raise FaultError(f"{circuit.name}: no fault targets")
    grid = tuple(deviations) if deviations is not None \
        else paper_deviation_grid()
    if not grid:
        raise FaultError("deviation grid is empty")
    if any(abs(d) < 1e-12 for d in grid):
        raise FaultError(
            "deviation grid must not contain 0 (that is the golden "
            "circuit, stored separately)")

    faults: List[Fault] = []
    for name in targets:
        component = circuit[name]
        if not isinstance(component, TwoTerminal):
            raise FaultError(
                f"{name!r} is not a two-terminal passive; pass "
                "include_opamp_params=True for active devices instead")
        for deviation in grid:
            faults.append(ParametricFault(name, float(deviation)))
    if include_opamp_params:
        for component in circuit.components_of_type(OpAmpMacro):
            for param in sorted(component.params):
                for deviation in grid:
                    faults.append(OpAmpParamFault(component.name, param,
                                                  float(deviation)))
    return FaultUniverse(circuit, tuple(faults))


def catastrophic_universe(circuit: Circuit,
                          components: Optional[Sequence[str]] = None
                          ) -> FaultUniverse:
    """Open + short fault per component (hard-fault extension)."""
    targets = tuple(components) if components else circuit.passive_names
    if not targets:
        raise FaultError(f"{circuit.name}: no fault targets")
    faults: List[Fault] = []
    for name in targets:
        faults.append(CatastrophicFault(name, "open"))
        faults.append(CatastrophicFault(name, "short"))
    return FaultUniverse(circuit, tuple(faults))


def synthesize_universe(info, deviations: Optional[Sequence[float]] = None,
                        include_catastrophic: bool = False,
                        max_targets: Optional[int] = None,
                        seed: int = 0) -> FaultUniverse:
    """Fault universe for a generated circuit (corpus runner path).

    Builds the paper's parametric universe over the circuit's
    ``faultable`` components (a :class:`~repro.circuits.library.
    CircuitInfo` is expected), optionally appending open/short
    catastrophic faults per target. ``max_targets`` deterministically
    caps the number of fault-target components -- large generated
    ladders would otherwise blow the dictionary up quadratically with
    circuit size. The cap picks an evenly-spread, seed-shuffled subset
    via ``numpy.random.default_rng((seed, ...))``, so the same
    ``(circuit, seed)`` always yields the same universe.
    """
    targets = tuple(info.faultable)
    if not targets:
        raise FaultError(f"{info.circuit.name}: no faultable components")
    if max_targets is not None:
        if max_targets < 1:
            raise FaultError("max_targets must be >= 1")
        if len(targets) > max_targets:
            import numpy as np
            rng = np.random.default_rng((int(seed), 0xFA17))
            chosen = sorted(rng.choice(len(targets), size=max_targets,
                                       replace=False).tolist())
            targets = tuple(targets[index] for index in chosen)
    universe = parametric_universe(info.circuit, components=targets,
                                   deviations=deviations)
    if include_catastrophic:
        hard = catastrophic_universe(info.circuit, components=targets)
        universe = FaultUniverse(info.circuit,
                                 universe.faults + hard.faults)
    return universe
