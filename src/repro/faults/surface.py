"""Fast response surface: vectorised signature sampling for the GA.

GA fitness evaluation needs ``|H|`` of *every* dictionary entry at a few
candidate frequencies, thousands of times per run. Re-solving MNA each
time would dominate the runtime, so the surface precomputes the dense
dB-magnitude matrix once and answers queries by vectorised log-frequency
linear interpolation -- the same interpolation
:class:`~repro.sim.ac.FrequencyResponse` uses, but batched over all
entries and all query frequencies in one shot.

The interpolation error against an exact MNA solve is bounded in the test
suite (the responses are smooth rational functions; a 400-point grid over
five decades keeps the error far below the separations that matter).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from .. import profiling
from ..errors import DictionaryError
from .dictionary import FaultDictionary
from .models import GOLDEN_LABEL

__all__ = ["ResponseSurface"]


class ResponseSurface:
    """Precomputed dB-magnitude matrix over the dictionary grid.

    Row 0 is the golden response; row ``1 + i`` is dictionary entry ``i``.
    """

    def __init__(self, dictionary: FaultDictionary) -> None:
        self.dictionary = dictionary
        self._log_f = np.log10(dictionary.freqs_hz)
        if self._log_f.size < 2:
            raise DictionaryError(
                "response surface needs a grid of at least 2 points")
        self._matrix_db = dictionary.response_matrix_db()
        self._labels: Tuple[str, ...] = (GOLDEN_LABEL,) + dictionary.labels

    @property
    def labels(self) -> Tuple[str, ...]:
        """Row labels: golden first, then fault labels in entry order."""
        return self._labels

    @property
    def f_min_hz(self) -> float:
        return float(self.dictionary.freqs_hz[0])

    @property
    def f_max_hz(self) -> float:
        return float(self.dictionary.freqs_hz[-1])

    @property
    def num_rows(self) -> int:
        return self._matrix_db.shape[0]

    @property
    def log_freqs(self) -> np.ndarray:
        """The log10 frequency grid the interpolation brackets against
        (publishable into shared memory; see ``repro.runtime.shm``)."""
        return self._log_f

    @property
    def matrix_db(self) -> np.ndarray:
        """The dense dB-magnitude matrix, golden row first."""
        return self._matrix_db

    def sample_db(self, freqs_hz: Sequence[float] | np.ndarray,
                  rows: Optional[np.ndarray] = None) -> np.ndarray:
        """dB magnitudes at the query frequencies.

        Returns shape ``(n_rows, n_freqs)``. Queries are clamped to the
        grid ends (consistent with FrequencyResponse interpolation).
        ``rows`` optionally restricts to a subset of row indices.
        """
        sample_start = time.perf_counter() if profiling.enabled() else None
        query = np.atleast_1d(np.asarray(freqs_hz, dtype=float))
        if query.ndim != 1 or query.size == 0:
            raise DictionaryError("need a non-empty 1-D frequency query")
        if np.any(query <= 0.0):
            raise DictionaryError("query frequencies must be positive")
        log_q = np.clip(np.log10(query), self._log_f[0], self._log_f[-1])
        # Bracketing indices + interpolation weights, shared by all rows.
        upper = np.searchsorted(self._log_f, log_q, side="left")
        upper = np.clip(upper, 1, self._log_f.size - 1)
        lower = upper - 1
        span = self._log_f[upper] - self._log_f[lower]
        weight = np.where(span > 0.0,
                          (log_q - self._log_f[lower]) / np.where(
                              span > 0.0, span, 1.0),
                          0.0)
        matrix = self._matrix_db if rows is None else self._matrix_db[rows]
        sampled = (matrix[:, lower] * (1.0 - weight) +
                   matrix[:, upper] * weight)
        if sample_start is not None:
            profiling.profile_event(
                "surface.sample", time.perf_counter() - sample_start,
                rows=int(sampled.shape[0]), freqs=int(query.size))
        return sampled

    def golden_db(self, freqs_hz: Sequence[float] | np.ndarray
                  ) -> np.ndarray:
        """Golden dB magnitude at the query frequencies, shape (n_freqs,)."""
        return self.sample_db(freqs_hz, rows=np.array([0]))[0]

    def signatures(self, freqs_hz: Sequence[float] | np.ndarray,
                   relative_to_golden: bool = True) -> np.ndarray:
        """Signature vectors of every fault entry at the test frequencies.

        Shape ``(n_faults, n_freqs)``. With ``relative_to_golden`` the
        golden signature is subtracted, implementing the paper's
        "golden behaviour as the origin" translation.
        """
        sampled = self.sample_db(freqs_hz)
        fault_rows = sampled[1:]
        if relative_to_golden:
            return fault_rows - sampled[0][None, :]
        return fault_rows
