"""Fault dictionary: simulated responses of golden + every faulty circuit.

Section 2.1's fault-simulation product: one AC magnitude response per
fault, plus the golden response, all on a shared dense log-frequency grid.
The dictionary is the single simulation artefact the rest of the flow
consumes -- trajectory construction, GA fitness and diagnosis all sample
it (directly or through the fast :class:`~repro.faults.surface.
ResponseSurface` interpolator) instead of re-running MNA.

Dictionaries persist to an ``.npz`` file (grid + complex response matrix)
paired with the metadata needed to rebuild fault objects.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..errors import DictionaryError
from ..sim.ac import FrequencyResponse
from ..sim.engine import BatchedMnaEngine, SimulationEngine, VariantSpec
from .models import (
    CatastrophicFault,
    Fault,
    GOLDEN_LABEL,
    OpAmpParamFault,
    ParametricFault,
)
from .universe import FaultUniverse

__all__ = ["DictionaryEntry", "FaultDictionary", "fault_to_json",
           "fault_from_json"]


@dataclass(frozen=True)
class DictionaryEntry:
    """One fault and its simulated response."""

    fault: Fault
    response: FrequencyResponse

    @property
    def label(self) -> str:
        return self.fault.label


class FaultDictionary:
    """Golden response + one entry per fault of a universe.

    Build with :meth:`build`; query entries by label, component or index.
    The entry order follows the universe order (deterministic).
    """

    #: Process-wide count of fault-simulation builds (incremented by
    #: :meth:`build` and by the parallel builder in ``repro.runtime``).
    #: Lets tests and the artifact store assert that a store-warmed
    #: pipeline run skipped fault simulation entirely.
    simulations_run = 0

    def __init__(self, circuit_name: str, output_node: str,
                 freqs_hz: np.ndarray, golden: FrequencyResponse,
                 entries: Sequence[DictionaryEntry]) -> None:
        self.circuit_name = circuit_name
        self.output_node = output_node
        self.freqs_hz = np.asarray(freqs_hz, dtype=float)
        self.golden = golden
        self.entries: Tuple[DictionaryEntry, ...] = tuple(entries)
        self._by_label: Dict[str, DictionaryEntry] = {}
        for entry in self.entries:
            if entry.label in self._by_label:
                raise DictionaryError(
                    f"duplicate dictionary label {entry.label!r}")
            # Entries sliced from one ResponseBlock share the grid array
            # itself; the identity check skips a per-entry allclose scan.
            if entry.response.freqs_hz is not self.freqs_hz and (
                    entry.response.freqs_hz.shape != self.freqs_hz.shape
                    or not np.allclose(entry.response.freqs_hz,
                                       self.freqs_hz)):
                raise DictionaryError(
                    f"entry {entry.label!r} simulated on a different grid")
            self._by_label[entry.label] = entry

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, universe: FaultUniverse, output_node: str,
              freqs_hz: np.ndarray,
              input_source: Optional[str] = None,
              engine: Optional[SimulationEngine] = None
              ) -> "FaultDictionary":
        """Fault-simulate the whole universe over a frequency grid.

        The build requests one :class:`~repro.sim.engine.ResponseBlock`
        covering golden + every fault from a simulation engine. By
        default a fresh :class:`~repro.sim.engine.BatchedMnaEngine` is
        constructed (stamp once, solve the whole universe batched);
        pass ``engine=`` to reuse an already-stamped engine across
        builds or to force the scalar reference path. The responses are
        bitwise-identical either way.
        """
        FaultDictionary.simulations_run += 1
        freqs = np.asarray(freqs_hz, dtype=float)
        circuit = universe.circuit
        if engine is None:
            engine = BatchedMnaEngine(circuit)
        elif engine.circuit is not circuit:
            raise DictionaryError(
                f"engine was built for circuit "
                f"{engine.circuit.name!r}, universe targets "
                f"{circuit.name!r}")
        variants = (VariantSpec(name=circuit.name),) + universe.variants()
        block = engine.transfer_block(output_node, freqs, variants,
                                      input_source)
        golden = block.response(0)
        entries = [DictionaryEntry(fault, block.response(index + 1))
                   for index, fault in enumerate(universe.faults)]
        return cls(circuit.name, output_node, freqs, golden, entries)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[DictionaryEntry]:
        return iter(self.entries)

    def __contains__(self, label: str) -> bool:
        return label in self._by_label

    def entry(self, label: str) -> DictionaryEntry:
        try:
            return self._by_label[label]
        except KeyError:
            raise DictionaryError(
                f"no dictionary entry {label!r}; have "
                f"{sorted(self._by_label)[:10]}...") from None

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(entry.label for entry in self.entries)

    @property
    def components(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for entry in self.entries:
            seen.setdefault(entry.fault.component, None)
        return tuple(seen)

    def entries_for(self, component: str) -> Tuple[DictionaryEntry, ...]:
        """All entries whose fault targets ``component``."""
        found = tuple(e for e in self.entries
                      if e.fault.component == component)
        if not found:
            raise DictionaryError(
                f"no entries for component {component!r}; have "
                f"{self.components}")
        return found

    def response_matrix_db(self) -> np.ndarray:
        """(1 + n_faults, n_grid) dB magnitudes; row 0 is golden.

        Entries are immutable after construction, so the matrix is
        computed once and memoised; the cached array is returned
        read-only (invalidation-by-construction -- there is nothing
        that could invalidate it).
        """
        cached = getattr(self, "_matrix_db_cache", None)
        if cached is None:
            rows = [self.golden.magnitude_db]
            rows.extend(entry.response.magnitude_db
                        for entry in self.entries)
            cached = np.vstack(rows)
            cached.setflags(write=False)
            self._matrix_db_cache = cached
        return cached

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Persist to ``<path>.npz`` (arrays) + ``<path>.json`` (metadata).

        ``path`` is used as a stem; both files are written next to each
        other and :meth:`load` expects the same layout.
        """
        stem = Path(path)
        stem.parent.mkdir(parents=True, exist_ok=True)
        matrix = np.vstack(
            [self.golden.values] +
            [entry.response.values for entry in self.entries])
        np.savez_compressed(stem.with_suffix(".npz"),
                            freqs_hz=self.freqs_hz, responses=matrix)
        metadata = {
            "circuit_name": self.circuit_name,
            "output_node": self.output_node,
            "faults": [_fault_to_json(entry.fault)
                       for entry in self.entries],
        }
        stem.with_suffix(".json").write_text(
            json.dumps(metadata, indent=2))
        return stem

    @classmethod
    def load(cls, path: str | Path) -> "FaultDictionary":
        """Load a dictionary saved by :meth:`save`."""
        stem = Path(path)
        npz_path = stem.with_suffix(".npz")
        json_path = stem.with_suffix(".json")
        if not npz_path.exists() or not json_path.exists():
            raise DictionaryError(
                f"missing dictionary files {npz_path} / {json_path}")
        arrays = np.load(npz_path)
        metadata = json.loads(json_path.read_text())
        freqs = arrays["freqs_hz"]
        matrix = arrays["responses"]
        if matrix.shape[0] != len(metadata["faults"]) + 1:
            raise DictionaryError(
                "dictionary npz/json mismatch: "
                f"{matrix.shape[0]} responses vs "
                f"{len(metadata['faults'])} faults + golden")
        output_node = metadata["output_node"]
        golden = FrequencyResponse(freqs, matrix[0], output=output_node,
                                   label=GOLDEN_LABEL)
        entries = []
        for row, fault_json in zip(matrix[1:], metadata["faults"]):
            fault = _fault_from_json(fault_json)
            entries.append(DictionaryEntry(
                fault,
                FrequencyResponse(freqs, row, output=output_node,
                                  label=fault.label)))
        return cls(metadata["circuit_name"], output_node, freqs, golden,
                   entries)


def fault_to_json(fault: Fault) -> dict:
    """JSON-serialisable description of one fault (stable field order)."""
    return _fault_to_json(fault)


def fault_from_json(data: dict) -> Fault:
    """Inverse of :func:`fault_to_json`."""
    return _fault_from_json(data)


def _fault_to_json(fault: Fault) -> dict:
    if isinstance(fault, ParametricFault):
        return {"kind": "parametric", "component": fault.component,
                "deviation": fault.deviation}
    if isinstance(fault, CatastrophicFault):
        return {"kind": "catastrophic", "component": fault.component,
                "mode": fault.kind}
    if isinstance(fault, OpAmpParamFault):
        return {"kind": "opamp_param", "component": fault.component,
                "param": fault.param, "deviation": fault.deviation}
    raise DictionaryError(
        f"cannot serialise fault type {type(fault).__name__}")


def _fault_from_json(data: dict) -> Fault:
    kind = data.get("kind")
    if kind == "parametric":
        return ParametricFault(data["component"], data["deviation"])
    if kind == "catastrophic":
        return CatastrophicFault(data["component"], data["mode"])
    if kind == "opamp_param":
        return OpAmpParamFault(data["component"], data["param"],
                               data["deviation"])
    raise DictionaryError(f"unknown fault kind in metadata: {kind!r}")
