"""repro: fault-trajectory fault diagnosis for analog circuits.

A full reproduction of *"Fault-Trajectory Approach for Fault Diagnosis on
Analog Circuits"* (Savioli, Szendrodi, Calvano, Mesquita -- DATE 2005),
including the analog simulation substrate it depends on:

* :mod:`repro.circuits` -- netlists, components, SPICE-like parser and a
  benchmark circuit library (the paper's biquad CUT among them);
* :mod:`repro.sim` -- MNA-based AC/DC/transient simulation, sensitivity;
* :mod:`repro.faults` -- parametric/catastrophic fault models, fault
  dictionaries, fast response surfaces;
* :mod:`repro.trajectory` -- signature mapping, fault trajectories,
  intersection/separation geometry;
* :mod:`repro.ga` -- the paper's genetic test-vector search (roulette
  wheel, fitness 1/(1+I)) plus margin-based extensions;
* :mod:`repro.diagnosis` -- the perpendicular nearest-segment classifier,
  baselines, an evaluation harness and a Monte-Carlo posterior tier
  with expected-information-gain test selection;
* :mod:`repro.core` -- the end-to-end ATPG pipeline;
* :mod:`repro.runtime` -- the serving layer: batched diagnosis, parallel
  dictionary builds, a content-addressed artifact store, the
  multi-circuit :class:`DiagnosisService` and its asyncio front
  (:class:`AsyncDiagnosisService`: request coalescing, backpressure,
  a stdlib JSON-over-HTTP server);
* :mod:`repro.viz` -- ASCII figures and CSV export.

Quickstart::

    from repro import FaultTrajectoryATPG, PipelineConfig, tow_thomas_biquad

    info = tow_thomas_biquad(ideal_opamps=False)
    result = FaultTrajectoryATPG(info, PipelineConfig.quick()).run(seed=1)
    print(result.report())
    faulty = info.circuit.scaled_value("R3", 1.25)   # R3 +25%
    from repro.sim import ACAnalysis
    import numpy as np
    response = ACAnalysis(faulty).transfer(
        info.output_node, np.array(sorted(result.test_vector_hz)))
    print(result.diagnose_response(response).summary())
"""

from .circuits import (
    BENCHMARK_CIRCUITS,
    CIRCUIT_FAMILIES,
    Circuit,
    CircuitInfo,
    generate,
    get_benchmark,
    khn_state_variable,
    lc_ladder_lowpass5,
    mfb_bandpass,
    parse_netlist,
    parse_netlist_file,
    rc_ladder,
    rc_lowpass,
    sallen_key_lowpass,
    tow_thomas_biquad,
    twin_t_notch,
    voltage_divider,
)
from .core import ATPGResult, FaultTrajectoryATPG, PipelineConfig
from .corpus import CorpusSpec, FamilySpec, run_corpus
from .diagnosis import (
    FAULT_FREE_LABEL,
    Diagnosis,
    NearestNeighborClassifier,
    PosteriorConfig,
    PosteriorDiagnoser,
    PosteriorDiagnosis,
    TrajectoryClassifier,
    ambiguity_groups,
    evaluate_classifier,
    make_test_cases,
)
from . import errors
from .errors import (
    CorpusError,
    FamilyError,
    ReproDeprecationWarning,
    ReproError,
)
from .faults import (
    CatastrophicFault,
    FaultDictionary,
    FaultUniverse,
    OpAmpParamFault,
    ParametricFault,
    ResponseSurface,
    catastrophic_universe,
    paper_deviation_grid,
    parametric_universe,
    synthesize_universe,
)
from .parallelism import ParallelismConfig
from .runtime import (
    ArtifactStore,
    AsyncDiagnosisService,
    BatchDiagnoser,
    CircuitRouter,
    ClusterService,
    DiagnosisHTTPServer,
    DiagnosisService,
    InMemoryBackend,
    LocalDirBackend,
    ServiceStats,
    ShardedBackend,
    StorageBackend,
    build_dictionary_parallel,
    serve,
)
from .ga import (
    CombinedFitness,
    FrequencySpace,
    GAConfig,
    GAResult,
    GeneticAlgorithm,
    MarginFitness,
    PaperFitness,
)
from .sim import (
    ACAnalysis,
    BatchedMnaEngine,
    EngineSpec,
    FactoredMnaEngine,
    DCAnalysis,
    FrequencyResponse,
    MnaSystem,
    ResponseBlock,
    ScalarMnaEngine,
    SimulationEngine,
    TransientAnalysis,
    VariantSpec,
    make_engine,
    sensitivity_analysis,
)
from .trajectory import (
    FaultTrajectory,
    SignatureMapper,
    TrajectorySet,
    evaluate_metrics,
)
from .units import db, format_frequency, log_frequency_grid, parse_value

__version__ = "1.8.0"


def run(info, config=None, seed=None, store=None) -> ATPGResult:
    """One-call pipeline: build the dictionary, search the test vector,
    return a diagnosis-ready :class:`ATPGResult`.

    ``info`` is a :class:`CircuitInfo` -- or a benchmark name
    (``repro.run("tow_thomas_biquad")``) or a ``(family, seed)`` pair
    naming a generated circuit. ``config``/``seed``/``store`` forward
    to :class:`FaultTrajectoryATPG` and its :meth:`~repro.core.atpg.
    FaultTrajectoryATPG.run`.
    """
    if isinstance(info, str):
        info = get_benchmark(info)
    elif isinstance(info, tuple) and len(info) == 2 \
            and isinstance(info[0], str):
        info = generate(info[0], info[1])
    return FaultTrajectoryATPG(info, config).run(seed=seed, store=store)

__all__ = [
    "__version__",
    "run",
    # circuits
    "Circuit",
    "CircuitInfo",
    "BENCHMARK_CIRCUITS",
    "CIRCUIT_FAMILIES",
    "generate",
    "get_benchmark",
    "tow_thomas_biquad",
    "sallen_key_lowpass",
    "khn_state_variable",
    "mfb_bandpass",
    "twin_t_notch",
    "lc_ladder_lowpass5",
    "rc_ladder",
    "rc_lowpass",
    "voltage_divider",
    "parse_netlist",
    "parse_netlist_file",
    # sim
    "MnaSystem",
    "ACAnalysis",
    "DCAnalysis",
    "TransientAnalysis",
    "FrequencyResponse",
    "sensitivity_analysis",
    "SimulationEngine",
    "BatchedMnaEngine",
    "FactoredMnaEngine",
    "ScalarMnaEngine",
    "ResponseBlock",
    "VariantSpec",
    "EngineSpec",
    "make_engine",
    # faults
    "ParametricFault",
    "CatastrophicFault",
    "OpAmpParamFault",
    "paper_deviation_grid",
    "FaultUniverse",
    "parametric_universe",
    "catastrophic_universe",
    "synthesize_universe",
    "FaultDictionary",
    "ResponseSurface",
    # trajectory
    "SignatureMapper",
    "FaultTrajectory",
    "TrajectorySet",
    "evaluate_metrics",
    # ga
    "GAConfig",
    "FrequencySpace",
    "GeneticAlgorithm",
    "GAResult",
    "PaperFitness",
    "MarginFitness",
    "CombinedFitness",
    # diagnosis
    "Diagnosis",
    "TrajectoryClassifier",
    "FAULT_FREE_LABEL",
    "PosteriorConfig",
    "PosteriorDiagnoser",
    "PosteriorDiagnosis",
    "NearestNeighborClassifier",
    "make_test_cases",
    "evaluate_classifier",
    "ambiguity_groups",
    # core
    "FaultTrajectoryATPG",
    "ATPGResult",
    "PipelineConfig",
    "ParallelismConfig",
    # corpus
    "CorpusSpec",
    "FamilySpec",
    "run_corpus",
    # runtime
    "BatchDiagnoser",
    "ArtifactStore",
    "StorageBackend",
    "LocalDirBackend",
    "InMemoryBackend",
    "ShardedBackend",
    "DiagnosisService",
    "ServiceStats",
    "AsyncDiagnosisService",
    "DiagnosisHTTPServer",
    "serve",
    "CircuitRouter",
    "ClusterService",
    "build_dictionary_parallel",
    # misc
    "errors",
    "ReproError",
    "ReproDeprecationWarning",
    "FamilyError",
    "CorpusError",
    "parse_value",
    "format_frequency",
    "log_frequency_grid",
    "db",
]
