"""Leaf profiling-hook registry for the hot paths.

The simulation engine, the ATPG pipeline stages and the GA loop emit
timing events through this module; the serving layer (or a test, or a
benchmark) subscribes a *sink* to turn those events into metrics.  The
module deliberately imports nothing from the rest of :mod:`repro` so
that low-level code (``repro.sim.engine``) can depend on it without
creating an import cycle with :mod:`repro.runtime`.

Design constraints:

* **Near-zero cost when nobody listens.**  Call sites guard on
  :func:`enabled` (a truthiness check on a module-level list) before
  taking any timestamps, so un-instrumented runs pay one attribute
  lookup per hook.
* **Sinks must not break the caller.**  A sink that raises is dropped
  for the offending event and the exception is swallowed; simulation
  results never depend on observability plumbing.

Event vocabulary (``stage`` strings emitted by the instrumented code):

=========================  ====================================================
``engine.stamp``           One engine construction (MNA stamping + op record).
``engine.solve``           One ``transfer_block`` call (batched, scalar or
                           factored; the factored engine's per-variant dense
                           fallbacks book their own ``engine.solve`` events
                           under ``engine="factored_fallback"``).
``engine.factor``          Factored engine: nominal factorisation + shared
                           multi-RHS solves (meta: ``mode`` dense/sparse,
                           ``rhs_columns``).
``engine.lowrank``         Factored engine: batched Sherman-Morrison-Woodbury
                           update stage (meta: ``updates``, ``fallbacks``,
                           ``fallback_conditioning``/``_rank``/``_nonfinite``).
``pipeline.dictionary``    Fault-dictionary build stage of the ATPG pipeline.
``pipeline.ga_search``     GA frequency search stage.
``pipeline.exact``         Exact dictionary rebuild at the found test vector.
``pipeline.trajectories``  Trajectory construction stage.
``ga.generation``          One GA generation (evaluate + breed).
``surface.sample``         One vectorised response-surface sampling call.
=========================  ====================================================

Metadata keys are event-specific (``engine``, ``circuit``, ``variants``,
``freqs``, ``chunks``, ``rows``, ...); sinks must tolerate missing keys.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator, List

__all__ = [
    "ProfileSink",
    "add_profile_sink",
    "remove_profile_sink",
    "profile_event",
    "profiled",
    "enabled",
    "suspended",
]

# A sink receives (stage, seconds, metadata).
ProfileSink = Callable[..., None]

_SINKS: List[ProfileSink] = []


def enabled() -> bool:
    """True when at least one sink is subscribed.

    Hot paths call this before taking timestamps so the disabled case
    costs a single list truthiness check.
    """
    return bool(_SINKS)


def add_profile_sink(sink: ProfileSink) -> ProfileSink:
    """Subscribe ``sink`` to profiling events; returns it for symmetry."""
    if sink not in _SINKS:
        _SINKS.append(sink)
    return sink


def remove_profile_sink(sink: ProfileSink) -> None:
    """Unsubscribe ``sink``; unknown sinks are ignored."""
    try:
        _SINKS.remove(sink)
    except ValueError:
        pass


def profile_event(stage: str, seconds: float, **meta: object) -> None:
    """Deliver one timing event to every subscribed sink.

    Sink exceptions are swallowed: observability must never change the
    outcome of the computation it observes.
    """
    for sink in tuple(_SINKS):
        try:
            sink(stage, seconds, meta)
        except Exception:
            pass


@contextmanager
def suspended() -> Iterator[None]:
    """Temporarily detach every sink (overhead measurements).

    Inside the block :func:`enabled` is False, so the hot paths skip
    their timestamps entirely -- the baseline an instrumented run is
    compared against.
    """
    saved = _SINKS[:]
    del _SINKS[:]
    try:
        yield
    finally:
        _SINKS[:] = saved


@contextmanager
def profiled(stage: str, **meta: object) -> Iterator[None]:
    """Context manager timing its body with a monotonic clock.

    No-ops (no clock reads) when no sink is subscribed at entry.
    """
    if not _SINKS:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        profile_event(stage, time.perf_counter() - start, **meta)
