"""Tolerance-aware probabilistic diagnosis + adaptive test selection.

The paper's classifier is a *hard* nearest-trajectory decision, but real
analog components live inside tolerance bands: a measured point near a
trajectory may be produced by several faults once every healthy
component is allowed to wander a few percent. This module turns each
fault component's trajectory (plus the fault-free "golden" hypothesis)
into a *sampled response-surface distribution*:

1. **Monte-Carlo tolerance sampling through the engine.** Each of
   ``n_samples`` draws perturbs every faultable component by a random
   relative ``eps`` from the tolerance model -- one "world". Within a
   world, every fault hypothesis additionally applies its deviation on
   top, so each component's trajectory is re-simulated under that
   world's tolerances. All hypotheses share the draw (common random
   numbers), and each sample batch rides one
   :meth:`~repro.sim.engine.SimulationEngine.transfer_block` call as a
   family of multi-replacement :class:`~repro.sim.engine.VariantSpec`
   variants -- the batched/factored engine does the solving,
   NumPy-native, no external inference framework.
2. **Posterior via importance weighting over the sampled surface.** A
   measured signature point is scored, per world, against every
   hypothesis's perturbed trajectory polyline using the paper's own
   interior-preferred segment distance (exactly the hard classifier's
   candidate rule); each world contributes an importance weight
   ``exp(-d^2 / 2 h^2)`` with kernel bandwidth ``h`` equal to the
   configured measurement noise. The normalised per-hypothesis weight
   sums are the posterior fault probabilities -- aggregated per
   component plus a fault-free outcome, summing to one, instead of a
   single label. With ``tolerance -> 0`` every world collapses onto the
   nominal trajectories and the posterior argmax reproduces the hard
   classifier's winner (same masked distances, same stable
   tie-breaking).
3. **Adaptive test selection.** Candidate measurement frequencies (a
   log grid over the circuit's band plus the existing test vector) are
   ranked by *expected information gain*: the expected drop in
   posterior entropy from observing the response there, computed from
   moment-matched per-hypothesis Gaussians with fixed Gauss--Hermite
   quadrature. Everything after the build is deterministic -- no
   request-time randomness -- so results are bitwise-reproducible under
   a fixed seed.

All sampling happens once at build time; a diagnosis request is pure
(and cheap) NumPy against the cached sample tensors.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from types import SimpleNamespace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits.library import CircuitInfo
from ..errors import DiagnosisError, ReproError
from ..faults.models import ParametricFault
from ..faults.universe import FaultUniverse
from ..parallelism import ParallelismConfig, install_legacy_kwargs
from ..sim.engine import (EngineSpec, SimulationEngine, VariantSpec,
                          engine_spec, make_engine)
from ..trajectory.geometry import _EPS
from ..trajectory.mapping import SignatureMapper
from ..units import db_to_linear

__all__ = [
    "FAULT_FREE_LABEL",
    "PosteriorConfig",
    "PosteriorDiagnosis",
    "PosteriorDiagnoser",
]

#: Label of the fault-free outcome in posterior probability lists.
FAULT_FREE_LABEL = "golden"

#: Distributions the tolerance model understands.
TOLERANCE_DISTRIBUTIONS = ("uniform", "normal")

#: Gauss--Hermite order for the expected-information-gain quadrature.
_GH_ORDER = 7

#: Bandwidth / standard-deviation floor: keeps the kernels proper even
#: in the zero-tolerance, zero-noise limit (where the posterior must
#: collapse onto the hard classifier's decision).
_SIGMA_FLOOR = 1e-9


@dataclass(frozen=True)
class PosteriorConfig:
    """Tolerance model + sampling knobs for the probabilistic tier.

    ``tolerance`` is the relative component tolerance (0.05 = 5 %);
    ``distribution`` draws perturbations ``uniform`` on ``[-tol, +tol]``
    or ``normal`` with sigma ``tol`` (clipped to keep values positive).
    ``noise_db`` is the measurement noise a signature coordinate
    carries, in the mapper's signature units -- it sets the importance
    kernel bandwidth. ``n_candidates`` log-spaced frequencies over the
    circuit's band are ranked (together with the test vector itself) by
    expected information gain. ``samples_per_block`` bounds how many
    Monte-Carlo worlds share one engine ``transfer_block`` call.

    ``parallelism`` (a :class:`~repro.parallelism.ParallelismConfig`)
    sizes the build pool: ``n_workers`` >= 2 fans the sample blocks out
    over a worker pool, ``executor`` picks ``"process"`` (workers write
    disjoint slices of a shared-memory result tensor -- true
    multi-core; degrades to threads when shared memory is unavailable)
    or ``"thread"``. The old flat ``n_workers=``/``executor=`` keywords
    still work as deprecation shims. Every tolerance draw comes from
    the root seed up front, so pooled builds stay bitwise-identical to
    serial ones.

    ``engine`` optionally pins the simulation engine
    (:class:`~repro.sim.engine.EngineSpec`, or a spec string such as
    ``"factored:cond_limit=1e6"``); ``None`` inherits the engine the
    diagnoser was handed (the pipeline's warm engine via
    :meth:`PosteriorDiagnoser.from_atpg`, else batched).
    """

    n_samples: int = 64
    tolerance: float = 0.05
    distribution: str = "uniform"
    noise_db: float = 0.05
    n_candidates: int = 12
    samples_per_block: int = 32
    seed: int = 0
    parallelism: ParallelismConfig = dataclasses.field(
        default_factory=ParallelismConfig)
    engine: Optional[EngineSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "parallelism", ParallelismConfig.coerce(self.parallelism))
        if self.engine is not None:
            object.__setattr__(self, "engine",
                               EngineSpec.coerce(self.engine))
        if self.n_samples < 1:
            raise DiagnosisError(
                f"n_samples must be >= 1, got {self.n_samples}")
        if not 0.0 <= self.tolerance < 1.0:
            raise DiagnosisError(
                f"tolerance must be in [0, 1), got {self.tolerance}")
        if self.distribution not in TOLERANCE_DISTRIBUTIONS:
            raise DiagnosisError(
                f"distribution must be one of {TOLERANCE_DISTRIBUTIONS}, "
                f"got {self.distribution!r}")
        if self.noise_db < 0.0:
            raise DiagnosisError(
                f"noise_db must be >= 0, got {self.noise_db}")
        if self.n_candidates < 1:
            raise DiagnosisError(
                f"n_candidates must be >= 1, got {self.n_candidates}")
        if self.samples_per_block < 1:
            raise DiagnosisError(
                f"samples_per_block must be >= 1, "
                f"got {self.samples_per_block}")

    # Stable flat views of the parallelism object (the deprecated
    # *constructor* spellings warn; these accessors do not).
    @property
    def n_workers(self) -> int:
        return self.parallelism.n_workers

    @property
    def executor(self) -> str:
        return self.parallelism.executor

    # ------------------------------------------------------------------
    # JSON round-trip (the flat worker keys are the wire format, like
    # PipelineConfig's).
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        out = dataclasses.asdict(self)
        parallel = out.pop("parallelism")
        out.pop("engine")
        out["n_workers"] = parallel["n_workers"]
        out["executor"] = parallel["executor"]
        if self.engine is not None:
            out["engine"] = self.engine.to_json_value()
        return out

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "PosteriorConfig":
        payload = dict(data)
        try:
            flat = {key: payload.pop(key)
                    for key in ("n_workers", "executor") if key in payload}
            if flat:
                base = ParallelismConfig.coerce(payload.get("parallelism"))
                payload["parallelism"] = dataclasses.replace(base, **flat)
            return cls(**payload)
        except TypeError as exc:
            raise ReproError(
                f"bad posterior-config dict: {exc}") from exc


install_legacy_kwargs(PosteriorConfig, ("n_workers", "executor"))


@dataclass(frozen=True)
class PosteriorDiagnosis:
    """Probabilistic outcome for one measured signature point.

    ``probabilities`` maps the fault-free label plus every fault-target
    component to its posterior probability, descending (exact ties
    break by nearest sampled surface, then label order); they sum to
    one. ``component`` is the argmax.
    ``expected_deviation`` is the posterior-mean fault deviation of the
    winning component (0.0 when the winner is fault-free).
    ``test_ranking`` lists candidate measurement frequencies with their
    expected information gain in bits, most informative first.
    """

    component: str
    probabilities: Tuple[Tuple[str, float], ...]
    entropy_bits: float
    expected_deviation: float
    test_ranking: Tuple[Tuple[float, float], ...]
    n_samples: int

    @property
    def probability(self) -> float:
        """Posterior probability of the winning component."""
        return self.probabilities[0][1]

    def summary(self) -> str:
        top = ", ".join(f"{name} {prob:.1%}"
                        for name, prob in self.probabilities[:3])
        best_freq, best_gain = self.test_ranking[0]
        return (f"posterior [{top}] entropy {self.entropy_bits:.3f} b, "
                f"next measure {best_freq:.4g} Hz "
                f"(+{best_gain:.3f} b expected)")


@dataclass
class _WorldSpec:
    """Everything a build worker needs to simulate sample blocks.

    Shipped once per worker via the pool initializer (the heavy part,
    ``out``, is a shared-memory handle); per-task payloads are just the
    ``(start, stop)`` sample range. The same spec drives the serial
    path so pooled and serial builds run literally the same code.
    """

    circuit: object
    output_node: str
    input_source: Optional[str]
    grid: np.ndarray
    engine: EngineSpec
    targets: Tuple[str, ...]
    nominal: Dict[str, object]
    fault_repl: Tuple[object, ...]
    fault_labels: Tuple[str, ...]
    eps: np.ndarray
    out: object = None  # SharedArray or a .array namespace


def _world_variant(spec: _WorldSpec, fault_index: Optional[int],
                   sample: int) -> VariantSpec:
    """World ``sample`` with fault ``fault_index`` applied
    (``None`` = the world's fault-free circuit)."""
    base = dict(spec.nominal)
    extra = None
    if fault_index is not None:
        faulty = spec.fault_repl[fault_index]
        if faulty.name in base:
            base[faulty.name] = faulty
        else:
            extra = faulty
    parts = [base[name].with_value(
                 base[name].value * (1.0 + spec.eps[sample, j]))
             for j, name in enumerate(spec.targets)]
    if extra is not None:
        parts.append(extra)
    label = FAULT_FREE_LABEL if fault_index is None else \
        spec.fault_labels[fault_index]
    return VariantSpec(
        tuple(parts),
        name=f"{spec.circuit.name}#posterior:{label}:s{sample}")


def _run_world_block(spec: _WorldSpec, engine: SimulationEngine,
                     start: int, stop: int) -> Optional[np.ndarray]:
    """Simulate samples ``[start, stop)`` into ``spec.out``.

    One ``transfer_block`` call per block; per world, the fault-free
    circuit plus every fault. The nominal (tolerance-free) reference
    rides the first block and is returned as the golden row.
    """
    samples = range(start, stop)
    include_nominal = start == 0
    n_faults = len(spec.fault_repl)
    variants: List[VariantSpec] = []
    if include_nominal:
        variants.append(VariantSpec(name=spec.circuit.name))
    for sample in samples:
        variants.append(_world_variant(spec, None, sample))
        variants.extend(_world_variant(spec, index, sample)
                        for index in range(n_faults))
    block = engine.transfer_block(spec.output_node, spec.grid, variants,
                                  spec.input_source)
    values = block.magnitude_db()
    rows_per_sample = 1 + n_faults
    out = spec.out.array
    offset = 1 if include_nominal else 0
    for position, sample in enumerate(samples):
        out[:, sample, :] = values[
            offset + position * rows_per_sample:
            offset + (position + 1) * rows_per_sample]
    return values[0].copy() if include_nominal else None


#: Per-process worker state installed by the pool initializer.
_POOL_WORKER: Dict[str, object] = {}


def _init_posterior_worker(spec: _WorldSpec) -> None:
    """Process-pool initializer: adopt the spec (attaching its shared
    output tensor) and stamp this worker's engine once."""
    _POOL_WORKER["spec"] = spec
    _POOL_WORKER["engine"] = make_engine(spec.circuit, spec.engine)


def _posterior_pool_block(start: int, stop: int) -> Optional[np.ndarray]:
    """Per-task entry point in a worker process."""
    spec = _POOL_WORKER.get("spec")
    if spec is None:
        raise DiagnosisError(
            "posterior pool worker used without its initializer")
    return _run_world_block(spec, _POOL_WORKER["engine"], start, stop)


class _ThreadWorldRunner:
    """Thread-pool fallback: same block body, one engine per thread."""

    def __init__(self, spec: _WorldSpec) -> None:
        self.spec = spec
        self._local = threading.local()

    def __call__(self, start: int, stop: int) -> Optional[np.ndarray]:
        engine = getattr(self._local, "engine", None)
        if engine is None:
            engine = make_engine(self.spec.circuit, self.spec.engine)
            self._local.engine = engine
        return _run_world_block(self.spec, engine, start, stop)


class PosteriorDiagnoser:
    """Sampled-response-surface posterior over a fault universe.

    Build cost: one Monte-Carlo sweep of
    ``(1 + n_faults) * n_samples + 1`` engine variants (chunked into
    sample batches). Request cost: pure NumPy segment projection +
    quadrature against the cached tensors, deterministic given the
    build.
    """

    def __init__(self, info: CircuitInfo, universe: FaultUniverse,
                 mapper: SignatureMapper,
                 config: Optional[PosteriorConfig] = None,
                 engine: Optional[SimulationEngine] = None) -> None:
        self.info = info
        self.config = config or PosteriorConfig()
        self.mapper = mapper
        if self.config.engine is not None:
            # An explicit engine pin on the config beats the inherited
            # (warm) engine: the caller asked for these numerics.
            self._engine = make_engine(info.circuit, self.config.engine)
        elif engine is not None:
            self._engine = engine
        else:
            self._engine = make_engine(info.circuit, "batched")

        faults = [fault for fault in universe.faults
                  if isinstance(fault, ParametricFault)]
        if not faults:
            raise DiagnosisError(
                f"{info.circuit.name}: posterior diagnosis needs a "
                "parametric fault universe (no parametric faults found)")
        components: List[str] = []
        for fault in faults:
            if fault.component not in components:
                components.append(fault.component)
        if FAULT_FREE_LABEL in components:
            raise DiagnosisError(
                f"component name {FAULT_FREE_LABEL!r} collides with the "
                "fault-free hypothesis label")
        self._faults: Tuple[ParametricFault, ...] = tuple(faults)
        #: Posterior outcome labels: fault-free first, then every fault
        #: component in trajectory (first-appearance) order.
        self.component_labels: Tuple[str, ...] = \
            (FAULT_FREE_LABEL,) + tuple(components)
        self.n_samples = self.config.n_samples

        self._build()

    @classmethod
    def from_atpg(cls, result, config: Optional[PosteriorConfig] = None
                  ) -> "PosteriorDiagnoser":
        """Build from a pipeline :class:`~repro.core.atpg.ATPGResult`,
        reusing its fault universe, mapper and (warm) engine."""
        return cls(result.info, result.universe, result.mapper,
                   config=config, engine=result.engine)

    # ------------------------------------------------------------------
    # Build: Monte-Carlo sample the response surface through the engine
    # ------------------------------------------------------------------
    def _build(self) -> None:
        info, config = self.info, self.config
        mapper = self.mapper
        test_freqs = np.asarray(mapper.test_freqs_hz, dtype=float)
        candidates = np.geomspace(info.f_min_hz, info.f_max_hz,
                                  config.n_candidates)
        grid = np.unique(np.concatenate([test_freqs, candidates]))
        test_idx = np.searchsorted(grid, test_freqs)
        self._cand_freqs = grid

        # Tolerance draws: one eps row per Monte-Carlo world, one
        # column per faultable component -- shared by every hypothesis
        # (common random numbers), drawn up front so results do not
        # depend on the block chunking.
        rng = np.random.default_rng(config.seed)
        targets = tuple(info.faultable)
        if config.distribution == "uniform":
            eps = rng.uniform(-config.tolerance, config.tolerance,
                              size=(config.n_samples, len(targets)))
        else:
            eps = np.clip(
                rng.normal(0.0, config.tolerance,
                           size=(config.n_samples, len(targets))),
                -0.95, 0.95)

        circuit = info.circuit
        nominal = {name: circuit[name] for name in targets}
        fault_repl = [fault.replacement_component(circuit)
                      for fault in self._faults]
        n_faults = len(self._faults)

        rows_per_sample = 1 + n_faults
        # Ship the full spec (kind + knobs), so pooled workers rebuild
        # engines numerically identical to the parent's.
        engine_full_spec = engine_spec(self._engine)
        spec = _WorldSpec(
            circuit=circuit, output_node=info.output_node,
            input_source=info.input_source, grid=grid,
            engine=engine_full_spec or EngineSpec(), targets=targets,
            nominal=nominal, fault_repl=tuple(fault_repl),
            fault_labels=tuple(fault.label for fault in self._faults),
            eps=eps)
        blocks = [(start, min(start + config.samples_per_block,
                              config.n_samples))
                  for start in range(0, config.n_samples,
                                     config.samples_per_block)]
        if config.n_workers > 1 and len(blocks) > 1 \
                and engine_full_spec is not None:
            mag_db, golden_db = self._sample_worlds_pooled(
                spec, blocks, rows_per_sample, grid.size)
        else:
            spec.out = SimpleNamespace(array=np.empty(
                (rows_per_sample, config.n_samples, grid.size)))
            golden_db = None
            for start, stop in blocks:
                row = _run_world_block(spec, self._engine, start, stop)
                if row is not None:
                    golden_db = row
            mag_db = spec.out.array
        assert golden_db is not None
        #: Engine variants simulated during the build (telemetry).
        self.samples_simulated = rows_per_sample * config.n_samples + 1

        # Signature-space anchors at the test vector (the same scale /
        # golden-relative transform the hard classifier uses), per
        # world: row 0 is the world's fault-free anchor, rows 1.. its
        # fault anchors.
        anchors = self._to_signature(mag_db[:, :, test_idx],
                                     golden_db[test_idx])
        self._golden_points = anchors[0]                   # (M, D)
        self._assemble_segments(anchors)

        # Moment-matched per-hypothesis Gaussians at every candidate
        # frequency, for the information-gain quadrature: the fault-free
        # hypothesis pools its per-world responses, each component pools
        # its faults' responses across worlds.
        cand = self._to_signature(mag_db, golden_db)       # (R, M, G)
        floor = max(config.noise_db, _SIGMA_FLOOR)
        n_outcomes = len(self.component_labels)
        self._cand_mean = np.empty((n_outcomes, grid.size))
        self._cand_sigma = np.empty((n_outcomes, grid.size))
        fault_outcome = np.array(
            [self.component_labels.index(f.component)
             for f in self._faults])
        for outcome in range(n_outcomes):
            if outcome == 0:
                pool = cand[0]
            else:
                rows = 1 + np.flatnonzero(fault_outcome == outcome)
                pool = cand[rows].reshape(-1, grid.size)
            self._cand_mean[outcome] = pool.mean(axis=0)
            self._cand_sigma[outcome] = np.maximum(pool.std(axis=0),
                                                   floor)

        nodes, weights = np.polynomial.hermite.hermgauss(_GH_ORDER)
        self._gh_nodes = math.sqrt(2.0) * nodes
        self._gh_weights = weights / math.sqrt(math.pi)
        self._bandwidth = floor

    def _sample_worlds_pooled(self, spec: _WorldSpec,
                              blocks: List[Tuple[int, int]],
                              rows_per_sample: int, grid_size: int
                              ) -> Tuple[np.ndarray, np.ndarray]:
        """Fan the sample blocks out over a worker pool.

        Process pools write disjoint ``[start, stop)`` sample slices of
        a shared-memory tensor (zero-copy reassembly); the thread
        fallback writes a local tensor directly. Both reuse the serial
        block body, and every tolerance draw was made up front from the
        root seed, so the result is bitwise-identical to the serial
        build regardless of executor or worker count.
        """
        from ..runtime import shm
        config = self.config
        executor = shm.resolve_executor(config.executor)
        n_workers = min(config.n_workers, len(blocks))
        shm.record_pool_tasks("posterior", len(blocks))
        shape = (rows_per_sample, config.n_samples, grid_size)
        if executor == "process":
            out = shm.SharedArray.zeros(shape)
            spec.out = out
            try:
                with shm.timed_pool(
                        "posterior",
                        lambda: ProcessPoolExecutor(
                            max_workers=n_workers,
                            initializer=_init_posterior_worker,
                            initargs=(spec,))) as pool:
                    futures = [pool.submit(_posterior_pool_block,
                                           start, stop)
                               for start, stop in blocks]
                    # Submission order: the first future carries the
                    # golden row; sample slices are disjoint by range.
                    results = [future.result() for future in futures]
                mag_db = np.array(out.array, copy=True)
            finally:
                out.unlink()
        else:
            spec.out = SimpleNamespace(array=np.empty(shape))
            runner = _ThreadWorldRunner(spec)
            with shm.timed_pool(
                    "posterior",
                    lambda: ThreadPoolExecutor(
                        max_workers=n_workers,
                        thread_name_prefix="posterior")) as pool:
                futures = [pool.submit(runner, start, stop)
                           for start, stop in blocks]
                results = [future.result() for future in futures]
            mag_db = spec.out.array
        return mag_db, results[0]

    def _assemble_segments(self, anchors: np.ndarray) -> None:
        """Per-world trajectory polylines as flat segment tensors.

        Mirrors :meth:`TrajectorySet.all_segments`: each component's
        anchors ordered by ascending deviation (its world's fault-free
        anchor standing in for deviation 0), consecutive pairs forming
        segments, components stacked in trajectory order.
        """
        by_component: Dict[str, List[Tuple[float, int]]] = {}
        for index, fault in enumerate(self._faults):
            by_component.setdefault(fault.component, []).append(
                (fault.deviation, 1 + index))
        starts: List[np.ndarray] = []
        ends: List[np.ndarray] = []
        dev0: List[float] = []
        dev1: List[float] = []
        offsets: List[int] = []
        for component in self.component_labels[1:]:
            pairs = sorted(by_component[component],
                           key=lambda item: item[0])
            deviations = [dev for dev, _ in pairs]
            rows = [row for _, row in pairs]
            if 0.0 not in deviations:
                position = int(np.searchsorted(deviations, 0.0))
                deviations.insert(position, 0.0)
                rows.insert(position, 0)
            offsets.append(len(dev0))
            for left in range(len(rows) - 1):
                starts.append(anchors[rows[left]])
                ends.append(anchors[rows[left + 1]])
                dev0.append(deviations[left])
                dev1.append(deviations[left + 1])
        # (S, M, D) stacked -> (M, S, D) worlds-major for projection.
        self._seg_starts = np.stack(starts, axis=1)        # (M, S, D)
        self._seg_ends = np.stack(ends, axis=1)
        self._seg_dev0 = np.array(dev0)                    # (S,)
        self._seg_dev1 = np.array(dev1)
        self._group_offsets = np.array(offsets, dtype=int)
        direction = self._seg_ends - self._seg_starts
        self._seg_direction = direction
        self._seg_length_sq = np.sum(direction * direction, axis=2)
        self._seg_safe = np.where(self._seg_length_sq > _EPS,
                                  self._seg_length_sq, 1.0)

    def _to_signature(self, db_values: np.ndarray,
                      golden_db: np.ndarray) -> np.ndarray:
        """Apply the mapper's scale / golden-relative transform."""
        values = np.asarray(db_values, dtype=float)
        golden = np.asarray(golden_db, dtype=float)
        if self.mapper.scale != "db":
            values = np.asarray(db_to_linear(values), dtype=float)
            golden = np.asarray(db_to_linear(golden), dtype=float)
        if self.mapper.relative_to_golden:
            values = values - golden
        return values

    # ------------------------------------------------------------------
    # Request path: deterministic NumPy against the cached tensors
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return len(self.mapper.test_freqs_hz)

    def diagnose_point(self, point: np.ndarray) -> PosteriorDiagnosis:
        """Posterior for a single signature-space point."""
        return self.diagnose_points(
            np.asarray(point, dtype=float)[None, :])[0]

    def diagnose_points(self, points: np.ndarray
                        ) -> List[PosteriorDiagnosis]:
        """Posteriors for an (N, D) batch of signature-space points.

        Every operation is row-independent, so coalesced batches are
        bitwise-identical to sequential single-row calls.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[None, :]
        if points.ndim != 2 or points.shape[1] != self.dimension:
            raise DiagnosisError(
                f"expected an (N, {self.dimension}) point batch, got "
                f"shape {points.shape}")

        distances, deviations = self._surface_distances(points)
        # Importance weights: per world, a Gaussian noise kernel of the
        # point's interior-preferred distance to each hypothesis's
        # perturbed surface, log-sum-exp'd over worlds and normalised
        # across hypotheses.
        log_w = -(distances * distances) / \
            (2.0 * self._bandwidth * self._bandwidth)      # (N, M, H)
        peak = log_w.max(axis=1)                           # (N, H)
        with np.errstate(invalid="ignore"):
            log_lik = peak + np.log(
                np.exp(log_w - peak[:, None, :]).sum(axis=1))
        log_lik = np.where(np.isfinite(peak), log_lik, -np.inf)
        log_post = log_lik - log_lik.max(axis=1, keepdims=True)
        weights = np.exp(log_post)
        posterior = weights / weights.sum(axis=1, keepdims=True)

        results: List[PosteriorDiagnosis] = []
        for row in range(points.shape[0]):
            results.append(self._finish_row(
                posterior[row], log_w[row], peak[row], deviations[row]))
        return results

    def _surface_distances(self, points: np.ndarray
                           ) -> Tuple[np.ndarray, np.ndarray]:
        """Interior-preferred distances to every sampled surface.

        Returns ``(distances, deviations)`` of shape (N, M, H) with
        ``H = 1 + n_components``: column 0 is the distance to the
        world's fault-free anchor; column ``c`` the masked candidate
        distance to component ``c``'s perturbed polyline (``inf`` when
        the world's perpendicular-foot rule excludes it) and the
        interpolated deviation of its nearest candidate segment. The
        reductions mirror the hard classifier's batched projection, so
        the zero-tolerance limit reproduces its decisions bitwise.
        """
        # (N, M, S, D) projection onto every world's segments.
        diff = points[:, None, None, :] - self._seg_starts[None, :, :, :]
        t_raw = np.sum(diff * self._seg_direction[None, :, :, :],
                       axis=3) / self._seg_safe[None, :, :]
        t_raw = np.where(self._seg_length_sq[None, :, :] > _EPS,
                         t_raw, 0.0)
        interior = (t_raw > 0.0) & (t_raw < 1.0) & \
            (self._seg_length_sq[None, :, :] > _EPS)
        t_clamped = np.clip(t_raw, 0.0, 1.0)
        closest = self._seg_starts[None, :, :, :] + \
            t_clamped[:, :, :, None] * self._seg_direction[None, :, :, :]
        delta = points[:, None, None, :] - closest
        seg_dist = np.sqrt(
            np.einsum("nmsd,nmsd->nms", delta, delta))     # (N, M, S)

        # The paper rule per world: worlds with any interior foot
        # restrict candidates to interior segments.
        has_perpendicular = np.any(interior, axis=2)       # (N, M)
        masked = np.where(interior, seg_dist, np.inf)
        candidates = np.where(has_perpendicular[:, :, None], masked,
                              seg_dist)

        seg_dev = self._seg_dev0[None, None, :] + t_clamped * \
            (self._seg_dev1 - self._seg_dev0)[None, None, :]

        n_points, n_worlds = points.shape[0], self._seg_starts.shape[0]
        n_outcomes = len(self.component_labels)
        distances = np.empty((n_points, n_worlds, n_outcomes))
        deviations = np.zeros((n_points, n_worlds, n_outcomes))
        anchor = points[:, None, :] - self._golden_points[None, :, :]
        distances[:, :, 0] = np.sqrt(
            np.einsum("nmd,nmd->nm", anchor, anchor))
        bounds = list(self._group_offsets) + [self._seg_dev0.size]
        # Open-grid fancy indexing: ~4x cheaper than take_along_axis on
        # the request path, where this gather loop is the hot spot.
        grid_n = np.arange(n_points)[:, None]
        grid_m = np.arange(n_worlds)[None, :]
        for outcome in range(1, n_outcomes):
            group = slice(bounds[outcome - 1], bounds[outcome])
            local = candidates[:, :, group]
            best = np.argmin(local, axis=2)                # (N, M)
            distances[:, :, outcome] = local[grid_n, grid_m, best]
            deviations[:, :, outcome] = \
                seg_dev[:, :, group][grid_n, grid_m, best]
        return distances, deviations

    def _finish_row(self, posterior: np.ndarray, log_w: np.ndarray,
                    peak: np.ndarray, deviations: np.ndarray
                    ) -> PosteriorDiagnosis:
        # Exact posterior ties happen on perfect ambiguity groups (a
        # divider's R1/R2 trajectories coincide); break them by best
        # single-world distance -- ``peak`` is monotone decreasing in
        # it -- so the zero-tolerance argmax reproduces the hard
        # classifier's nearest-trajectory pick, then by label order.
        order = np.lexsort((-peak, -posterior))
        probabilities = tuple(
            (self.component_labels[index], float(posterior[index]))
            for index in order)
        winner_index = int(order[0])
        winner = self.component_labels[winner_index]
        entropy = float(_entropy_bits(posterior))

        if winner_index == 0 or not np.isfinite(peak[winner_index]):
            expected_deviation = 0.0
        else:
            # Posterior-mean deviation across worlds, weighted by each
            # world's importance weight for the winning component.
            world_w = np.exp(log_w[:, winner_index] - peak[winner_index])
            denom = float(world_w.sum())
            expected_deviation = 0.0 if denom <= 0.0 else float(
                np.dot(world_w, deviations[:, winner_index]) / denom)

        gains = self._information_gain(posterior, entropy)
        gain_order = np.argsort(-gains, kind="stable")
        test_ranking = tuple(
            (float(self._cand_freqs[index]), float(gains[index]))
            for index in gain_order)
        return PosteriorDiagnosis(
            component=winner,
            probabilities=probabilities,
            entropy_bits=entropy,
            expected_deviation=expected_deviation,
            test_ranking=test_ranking,
            n_samples=self.n_samples,
        )

    def _information_gain(self, posterior: np.ndarray,
                          entropy_bits: float) -> np.ndarray:
        """Expected posterior-entropy drop per candidate frequency.

        The predictive response at a candidate frequency is modelled as
        a mixture of the moment-matched per-hypothesis Gaussians; the
        expectation over outcomes uses fixed Gauss--Hermite nodes, so
        the ranking is deterministic for a given posterior.
        """
        mu = self._cand_mean.T                             # (C, H)
        sigma = self._cand_sigma.T                         # (C, H)
        # Candidate outcomes: GH nodes of each mixture component.
        y = mu[:, :, None] + sigma[:, :, None] * \
            self._gh_nodes[None, None, :]                  # (C, H, K)
        z = (y[:, :, :, None] - mu[:, None, None, :]) / \
            sigma[:, None, None, :]                        # (C, H, K, H)
        log_lik = -0.5 * z * z - np.log(sigma)[:, None, None, :]
        with np.errstate(divide="ignore"):
            log_prior = np.log(posterior)                  # -inf at 0
        log_q = log_prior[None, None, None, :] + log_lik
        log_q -= log_q.max(axis=3, keepdims=True)
        q = np.exp(log_q)
        q /= q.sum(axis=3, keepdims=True)
        post_entropy = _entropy_bits(q)                    # (C, H, K)
        expected = np.einsum("h,chk,k->c", posterior, post_entropy,
                             self._gh_weights)
        return np.maximum(entropy_bits - expected, 0.0)

    # ------------------------------------------------------------------
    def diagnose_db(self, magnitudes_db: np.ndarray
                    ) -> List[PosteriorDiagnosis]:
        """Posteriors for an (N, F) matrix of measured dB magnitudes at
        the mapper's test frequencies (standalone convenience; the
        serving layer converts through its batch diagnoser instead so
        hard and probabilistic tiers share one signature transform)."""
        matrix = np.asarray(magnitudes_db, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != self.dimension:
            raise DiagnosisError(
                f"expected an (N, {self.dimension}) magnitude matrix, "
                f"got shape {matrix.shape}")
        points = self._to_signature(matrix, self._golden_test_db)
        return self.diagnose_points(points)

    @property
    def _golden_test_db(self) -> np.ndarray:
        cached = getattr(self, "_golden_test_cache", None)
        if cached is None:
            freqs = np.asarray(self.mapper.test_freqs_hz, dtype=float)
            order = np.argsort(freqs, kind="stable")
            block = self._engine.transfer_block(
                self.info.output_node, freqs[order],
                [VariantSpec(name=self.info.circuit.name)],
                self.info.input_source)
            db_row = block.magnitude_db()[0]
            cached = np.empty_like(db_row)
            cached[order] = db_row
            self._golden_test_cache = cached
        return cached


def _entropy_bits(probabilities: np.ndarray) -> np.ndarray:
    """Shannon entropy in bits along the last axis (0 log 0 = 0)."""
    p = np.asarray(probabilities, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(p > 0.0, p * np.log2(np.maximum(p, 1e-300)),
                         0.0)
    return -terms.sum(axis=-1)
