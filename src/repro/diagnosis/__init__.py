"""Fault diagnosis: trajectory classifier, baselines, evaluation."""

from .baselines import (
    NearestNeighborClassifier,
    exhaustive_search,
    random_test_vectors,
)
from .catastrophic import (
    CatastrophicDiagnosis,
    CatastrophicScreen,
    HybridClassifier,
)
from .classifier import Diagnosis, TrajectoryClassifier
from .posterior import (
    FAULT_FREE_LABEL,
    PosteriorConfig,
    PosteriorDiagnoser,
    PosteriorDiagnosis,
)
from .evaluate import (
    CaseResult,
    EvaluationResult,
    HELD_OUT_DEVIATIONS,
    DiagnosisCase,
    ambiguity_groups,
    evaluate_classifier,
    make_test_cases,
)

__all__ = [
    "Diagnosis",
    "TrajectoryClassifier",
    "FAULT_FREE_LABEL",
    "PosteriorConfig",
    "PosteriorDiagnoser",
    "PosteriorDiagnosis",
    "CatastrophicDiagnosis",
    "CatastrophicScreen",
    "HybridClassifier",
    "NearestNeighborClassifier",
    "random_test_vectors",
    "exhaustive_search",
    "DiagnosisCase",
    "CaseResult",
    "EvaluationResult",
    "HELD_OUT_DEVIATIONS",
    "make_test_cases",
    "evaluate_classifier",
    "ambiguity_groups",
]
