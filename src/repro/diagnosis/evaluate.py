"""Diagnosis evaluation harness.

Measures how well a classifier identifies *held-out* faults: deviations
that are not in the dictionary grid (the paper's dictionary stores +/-10,
20, 30, 40 %; realistic unknown faults fall between those points, which is
precisely what trajectories interpolate). Optional measurement noise and
component-tolerance Monte Carlo stress the method the way a bench
measurement would.

Also provides :func:`ambiguity_groups`: components whose trajectories stay
within a distance threshold of each other form an equivalence class that
no diagnosis using this signature can split -- the honest unit of
accuracy accounting for circuits with structural degeneracies (the
Tow-Thomas CUT has two such pairs, see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Protocol, Sequence, \
    TYPE_CHECKING, Tuple

import numpy as np

from ..circuits.library import CircuitInfo
from ..errors import DiagnosisError
from ..faults.models import ParametricFault
from ..sim.engine import BatchedMnaEngine, SimulationEngine, VariantSpec
from ..trajectory.mapping import SignatureMapper
from ..trajectory.metrics import pairwise_separations
from ..trajectory.trajectory import TrajectorySet
from .classifier import Diagnosis, TrajectoryClassifier

if TYPE_CHECKING:  # avoid a diagnosis <-> runtime import cycle
    from ..runtime.batch import BatchDiagnoser

__all__ = [
    "DiagnosisCase",
    "CaseResult",
    "EvaluationResult",
    "PointClassifier",
    "make_test_cases",
    "evaluate_classifier",
    "ambiguity_groups",
    "HELD_OUT_DEVIATIONS",
]

# Default held-out deviations: between the dictionary's 10%-grid points.
HELD_OUT_DEVIATIONS = (-0.35, -0.25, -0.15, 0.15, 0.25, 0.35)


class PointClassifier(Protocol):
    """Anything that can diagnose a signature point."""

    def classify_point(self, point: np.ndarray) -> Diagnosis: ...


@dataclass(frozen=True)
class DiagnosisCase:
    """One unknown fault presented to a classifier."""

    true_component: str
    true_deviation: float
    point: np.ndarray


@dataclass(frozen=True)
class CaseResult:
    """A test case together with the classifier's verdict."""

    case: DiagnosisCase
    diagnosis: Diagnosis

    @property
    def correct(self) -> bool:
        return self.diagnosis.component == self.case.true_component

    @property
    def deviation_error(self) -> float:
        return (self.diagnosis.estimated_deviation -
                self.case.true_deviation)


@dataclass
class EvaluationResult:
    """Aggregated diagnosis quality over a case set."""

    results: List[CaseResult]
    groups: Tuple[FrozenSet[str], ...] = ()

    # ------------------------------------------------------------------
    @property
    def num_cases(self) -> int:
        return len(self.results)

    @property
    def accuracy(self) -> float:
        """Fraction of cases whose exact component was identified."""
        if not self.results:
            raise DiagnosisError("no cases evaluated")
        return sum(r.correct for r in self.results) / len(self.results)

    @property
    def group_accuracy(self) -> float:
        """Accuracy at ambiguity-group granularity.

        A prediction inside the true component's ambiguity group counts
        as correct -- the finest resolution the signature permits.
        """
        if not self.results:
            raise DiagnosisError("no cases evaluated")
        lookup: Dict[str, FrozenSet[str]] = {}
        for group in self.groups:
            for member in group:
                lookup[member] = group
        correct = 0
        for result in self.results:
            true = result.case.true_component
            predicted = result.diagnosis.component
            group = lookup.get(true, frozenset((true,)))
            correct += predicted in group
        return correct / len(self.results)

    def per_component_accuracy(self) -> Dict[str, float]:
        totals: Dict[str, int] = {}
        hits: Dict[str, int] = {}
        for result in self.results:
            name = result.case.true_component
            totals[name] = totals.get(name, 0) + 1
            hits[name] = hits.get(name, 0) + int(result.correct)
        return {name: hits[name] / totals[name] for name in totals}

    def confusion(self) -> Dict[Tuple[str, str], int]:
        """(true, predicted) -> count."""
        table: Dict[Tuple[str, str], int] = {}
        for result in self.results:
            key = (result.case.true_component,
                   result.diagnosis.component)
            table[key] = table.get(key, 0) + 1
        return table

    def deviation_mae(self) -> float:
        """Mean absolute deviation-estimation error on correct cases."""
        errors = [abs(r.deviation_error) for r in self.results
                  if r.correct]
        if not errors:
            return float("nan")
        return float(np.mean(errors))

    def deviation_rmse(self) -> float:
        errors = [r.deviation_error for r in self.results if r.correct]
        if not errors:
            return float("nan")
        return float(np.sqrt(np.mean(np.square(errors))))

    def summary(self) -> str:
        lines = [
            f"cases: {self.num_cases}",
            f"component accuracy: {self.accuracy * 100.0:.1f}%",
        ]
        if self.groups:
            groups = ", ".join("{" + ",".join(sorted(g)) + "}"
                               for g in self.groups if len(g) > 1)
            lines.append(
                f"group accuracy:     {self.group_accuracy * 100.0:.1f}% "
                f"(ambiguity groups: {groups or 'none'})")
        lines.append(
            f"deviation MAE (correct cases): "
            f"{self.deviation_mae() * 100.0:.2f} pp")
        for name, value in sorted(self.per_component_accuracy().items()):
            lines.append(f"  {name:<6} {value * 100.0:6.1f}%")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Case generation
# ----------------------------------------------------------------------
def make_test_cases(info: CircuitInfo, mapper: SignatureMapper,
                    components: Optional[Sequence[str]] = None,
                    deviations: Sequence[float] = HELD_OUT_DEVIATIONS,
                    noise_db: float = 0.0,
                    tolerance: float = 0.0,
                    repeats: int = 1,
                    rng: Optional[np.random.Generator] = None,
                    seed: Optional[int] = None,
                    engine: Optional[SimulationEngine] = None
                    ) -> List[DiagnosisCase]:
    """Simulate unknown-fault measurements for a circuit.

    For every (component, held-out deviation) pair the faulty circuit is
    solved exactly at the mapper's test frequencies. ``noise_db`` adds
    Gaussian measurement noise to each signature coordinate (dB scale);
    ``tolerance`` perturbs every *other* passive uniformly within
    +/-tolerance (manufacturing spread); ``repeats`` draws that many
    noisy/toleranced instances per pair.

    The whole case set is one simulation-engine variant block (golden
    first), so the circuit is stamped once and every case solved
    batched; ``engine`` optionally injects an already-stamped engine
    (the pipeline result's). Random draws happen per case in the same
    order the scalar loop used, so results for a given seed are
    unchanged.
    """
    if noise_db < 0.0 or tolerance < 0.0:
        raise DiagnosisError("noise_db and tolerance must be >= 0")
    if repeats < 1:
        raise DiagnosisError("repeats must be >= 1")
    if (noise_db > 0.0 or tolerance > 0.0) and rng is None:
        rng = np.random.default_rng(seed)
    if engine is None:
        engine = BatchedMnaEngine(info.circuit)
    elif engine.circuit is not info.circuit:
        raise DiagnosisError(
            f"engine was built for circuit {engine.circuit.name!r}, "
            f"cases target {info.circuit.name!r}")

    targets = tuple(components) if components else info.faultable
    freqs = np.array(sorted(mapper.test_freqs_hz))

    variants: List[VariantSpec] = [VariantSpec(name=info.circuit.name)]
    case_meta: List[Tuple[str, float, Optional[np.ndarray]]] = []
    for name in targets:
        for deviation in deviations:
            fault = ParametricFault(name, float(deviation))
            for _ in range(repeats):
                replacements = [fault.replacement_component(info.circuit)]
                if tolerance > 0.0:
                    for other in info.faultable:
                        if other == name:
                            continue
                        spread = float(rng.uniform(-tolerance, tolerance))
                        component = info.circuit[other]
                        replacements.append(component.with_value(
                            component.value * (1.0 + spread)))
                noise = rng.normal(0.0, noise_db,
                                   size=mapper.dimension) \
                    if noise_db > 0.0 else None
                variants.append(VariantSpec(
                    tuple(replacements),
                    name=f"{info.circuit.name}#{fault.label}"))
                case_meta.append((name, float(deviation), noise))
    if not case_meta:
        raise DiagnosisError("no test cases generated")

    block = engine.transfer_block(info.output_node, freqs, variants,
                                  info.input_source)
    golden_response = block.response(0)
    cases: List[DiagnosisCase] = []
    for index, (name, deviation, noise) in enumerate(case_meta):
        point = mapper.signature(block.response(index + 1),
                                 golden_response)
        if noise is not None:
            point = point + noise
        cases.append(DiagnosisCase(name, deviation, point))
    return cases


def evaluate_classifier(classifier: PointClassifier,
                        cases: Sequence[DiagnosisCase],
                        groups: Tuple[FrozenSet[str], ...] = (),
                        diagnoser: Optional["BatchDiagnoser"] = None
                        ) -> EvaluationResult:
    """Run every case through the classifier and aggregate.

    A :class:`~repro.diagnosis.classifier.TrajectoryClassifier` is
    automatically upgraded to a vectorised
    :class:`~repro.runtime.batch.BatchDiagnoser`: the whole case suite
    becomes one (N, D) classification call with identical diagnoses.
    Pass ``diagnoser=`` to reuse a prebuilt one (e.g.
    ``ATPGResult.batch_diagnoser()``); other classifiers fall back to
    the per-point protocol.
    """
    if not cases:
        raise DiagnosisError("no cases to evaluate")
    if diagnoser is None and type(classifier) is TrajectoryClassifier:
        # Exact-type check: a subclass overriding classify_point must
        # keep its per-point behaviour, not be silently vectorised.
        from ..runtime.batch import BatchDiagnoser
        diagnoser = BatchDiagnoser(classifier.trajectories,
                                   golden=classifier.golden)
    if diagnoser is not None:
        points = np.vstack([case.point for case in cases])
        diagnoses = diagnoser.classify_points(points)
        results = [CaseResult(case, diagnosis)
                   for case, diagnosis in zip(cases, diagnoses)]
    else:
        results = [CaseResult(case, classifier.classify_point(case.point))
                   for case in cases]
    return EvaluationResult(results, groups)


# ----------------------------------------------------------------------
# Ambiguity analysis
# ----------------------------------------------------------------------
def ambiguity_groups(trajectories: TrajectorySet,
                     threshold: float) -> Tuple[FrozenSet[str], ...]:
    """Partition components into indistinguishability classes.

    Components whose trajectories approach within ``threshold`` (in
    signature units) are merged transitively. The result covers *all*
    components; singleton groups mean "distinguishable".
    """
    if threshold < 0.0:
        raise DiagnosisError("threshold must be >= 0")
    names = list(trajectories.components)
    parent = {name: name for name in names}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    if len(names) >= 2:
        for (a, b), separation in pairwise_separations(
                trajectories).items():
            if separation <= threshold:
                parent[find(a)] = find(b)
    groups: Dict[str, set] = {}
    for name in names:
        groups.setdefault(find(name), set()).add(name)
    return tuple(sorted((frozenset(members) for members in
                         groups.values()),
                        key=lambda g: sorted(g)[0]))
