"""Catastrophic-fault screening and the hybrid diagnoser (extension).

The paper's flow targets parametric faults; real boards also fail hard
(opens/shorts). A hard fault throws the signature point far outside the
parametric trajectory cloud, so matching against a small dictionary of
catastrophic signatures *before* trajectory projection both catches hard
faults and protects the parametric diagnosis from nonsense extrapolation.

:class:`HybridClassifier` composes the two stages with a simple,
defensible rule: the catastrophic verdict wins when a stored hard-fault
point is closer to the observation than the best trajectory segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from ..errors import DiagnosisError
from ..faults.dictionary import FaultDictionary
from ..faults.models import CatastrophicFault
from ..sim.ac import FrequencyResponse
from ..trajectory.mapping import SignatureMapper
from .classifier import Diagnosis, TrajectoryClassifier

__all__ = ["CatastrophicDiagnosis", "CatastrophicScreen",
           "HybridClassifier"]


@dataclass(frozen=True)
class CatastrophicDiagnosis:
    """Verdict of the hard-fault screen."""

    component: str
    kind: str               # "open" or "short"
    distance: float
    margin: float
    point: Tuple[float, ...]

    @property
    def is_catastrophic(self) -> bool:
        return True

    def summary(self) -> str:
        return (f"catastrophic fault: {self.component} {self.kind} "
                f"(distance {self.distance:.4g}, "
                f"margin {self.margin:.4g})")


class CatastrophicScreen:
    """Nearest-point matcher over a catastrophic fault dictionary.

    The dictionary must be built from a catastrophic universe (see
    :func:`repro.faults.catastrophic_universe`) on a grid containing the
    mapper's test frequencies (an exact mini-dictionary is ideal).
    """

    def __init__(self, dictionary: FaultDictionary,
                 mapper: SignatureMapper) -> None:
        entries = [entry for entry in dictionary.entries
                   if isinstance(entry.fault, CatastrophicFault)]
        if not entries:
            raise DiagnosisError(
                "catastrophic screen needs a dictionary with "
                "catastrophic entries")
        self.mapper = mapper
        self.dictionary = dictionary
        self._faults = [entry.fault for entry in entries]
        golden = dictionary.golden if mapper.relative_to_golden else None
        self._points = np.vstack([
            mapper.signature(entry.response, golden)
            for entry in entries])

    def classify_point(self, point: np.ndarray) -> CatastrophicDiagnosis:
        """Nearest stored hard-fault signature (no thresholding here --
        the hybrid rule decides whether the match is credible)."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.mapper.dimension,):
            raise DiagnosisError(
                f"point has dimension {point.shape}, mapper has "
                f"{self.mapper.dimension}")
        distances = np.linalg.norm(self._points - point[None, :], axis=1)
        order = np.argsort(distances)
        winner = int(order[0])
        runner_up = float(distances[order[1]]) if distances.size > 1 \
            else float("inf")
        fault = self._faults[winner]
        return CatastrophicDiagnosis(
            component=fault.component,
            kind=fault.kind,
            distance=float(distances[winner]),
            margin=runner_up - float(distances[winner]),
            point=tuple(float(x) for x in point),
        )

    def distance_to_nearest(self, point: np.ndarray) -> float:
        return self.classify_point(point).distance


class HybridClassifier:
    """Hard-fault screen in front of the trajectory diagnoser.

    Classification rule: compute the nearest catastrophic signature and
    the nearest trajectory segment; whichever is closer wins. ``bias``
    scales the catastrophic distance before the comparison (> 1 makes
    the screen more conservative).
    """

    def __init__(self, screen: CatastrophicScreen,
                 trajectory_classifier: TrajectoryClassifier,
                 bias: float = 1.0) -> None:
        if bias <= 0.0:
            raise DiagnosisError("bias must be positive")
        if screen.mapper.dimension != \
                trajectory_classifier.trajectories.dimension:
            raise DiagnosisError(
                "screen and trajectory classifier use different "
                "signature dimensions")
        self.screen = screen
        self.trajectory_classifier = trajectory_classifier
        self.bias = float(bias)

    def classify_point(self, point: np.ndarray
                       ) -> Union[CatastrophicDiagnosis, Diagnosis]:
        hard = self.screen.classify_point(point)
        soft = self.trajectory_classifier.classify_point(point)
        if self.bias * hard.distance < soft.distance:
            return hard
        return soft

    def classify_response(self, response: FrequencyResponse
                          ) -> Union[CatastrophicDiagnosis, Diagnosis]:
        mapper = self.trajectory_classifier.trajectories.mapper
        golden = self.trajectory_classifier.golden
        if mapper.relative_to_golden and golden is None:
            raise DiagnosisError(
                "hybrid classifier needs the golden response for "
                "relative mappers")
        point = mapper.signature(
            response, golden if mapper.relative_to_golden else None)
        return self.classify_point(point)
