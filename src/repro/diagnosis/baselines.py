"""Baseline diagnosers and test-vector selectors.

The paper positions the trajectory method against two implicit
alternatives, both implemented here so the T-ACC benchmark can compare:

* :class:`NearestNeighborClassifier` -- the classical fault-dictionary
  approach: match the unknown point to the nearest *stored dictionary
  point* instead of the nearest trajectory segment. It cannot
  interpolate between grid deviations, which is exactly the weakness
  trajectories fix.
* :func:`random_test_vectors` -- test frequencies drawn at random (no
  GA), the paper's "first set of random test patterns".
* :func:`exhaustive_search` -- brute-force scan of a frequency-pair
  grid, the "frequency sweep generator" approach the paper calls
  unfeasible in practice; it bounds the achievable fitness and shows
  the GA's cost advantage.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DiagnosisError
from ..faults.dictionary import FaultDictionary
from ..faults.models import CatastrophicFault, OpAmpParamFault, \
    ParametricFault
from ..ga.encoding import FrequencySpace
from ..trajectory.mapping import SignatureMapper
from .classifier import Diagnosis

__all__ = [
    "NearestNeighborClassifier",
    "random_test_vectors",
    "exhaustive_search",
]


class NearestNeighborClassifier:
    """Classical fault-dictionary diagnosis: nearest stored point wins.

    Uses the same signature mapper as the trajectory classifier so the
    two methods see identical measurements.
    """

    def __init__(self, dictionary: FaultDictionary,
                 mapper: SignatureMapper) -> None:
        self.dictionary = dictionary
        self.mapper = mapper
        self._points = mapper.signature_matrix(dictionary)
        self._components: List[str] = []
        self._deviations: List[float] = []
        for entry in dictionary.entries:
            self._components.append(entry.fault.component)
            self._deviations.append(_fault_deviation(entry.fault))

    def classify_point(self, point: np.ndarray) -> Diagnosis:
        point = np.asarray(point, dtype=float)
        if point.shape != (self.mapper.dimension,):
            raise DiagnosisError(
                f"point has dimension {point.shape}, mapper has "
                f"{self.mapper.dimension}")
        distances = np.linalg.norm(self._points - point[None, :], axis=1)
        winner = int(np.argmin(distances))
        ranking = self._component_ranking(distances)
        winner_component = self._components[winner]
        others = [d for c, d in ranking if c != winner_component]
        margin = float(min(others) - distances[winner]) if others \
            else float("inf")
        return Diagnosis(
            component=winner_component,
            estimated_deviation=self._deviations[winner],
            distance=float(distances[winner]),
            perpendicular=False,
            margin=margin,
            point=tuple(float(x) for x in point),
            ranking=ranking,
        )

    def _component_ranking(self, distances: np.ndarray
                           ) -> Tuple[Tuple[str, float], ...]:
        best = {}
        for component, distance in zip(self._components, distances):
            stored = best.get(component)
            if stored is None or distance < stored:
                best[component] = float(distance)
        return tuple(sorted(best.items(), key=lambda item: item[1]))


def _fault_deviation(fault) -> float:
    if isinstance(fault, (ParametricFault, OpAmpParamFault)):
        return fault.deviation
    if isinstance(fault, CatastrophicFault):
        return float("inf") if fault.kind == "open" else float("-inf")
    return float("nan")


def random_test_vectors(space: FrequencySpace, count: int,
                        rng: Optional[np.random.Generator] = None,
                        seed: Optional[int] = None
                        ) -> List[Tuple[float, ...]]:
    """Draw ``count`` random test vectors from the search space."""
    if count < 1:
        raise DiagnosisError("count must be >= 1")
    if rng is None:
        rng = np.random.default_rng(seed)
    return [space.decode(space.random_genome(rng)) for _ in range(count)]


def exhaustive_search(space: FrequencySpace,
                      fitness: Callable[[Tuple[float, ...]], float],
                      points_per_decade: int = 10
                      ) -> Tuple[Tuple[float, ...], float, int]:
    """Brute-force the fitness over a log grid of frequency tuples.

    Returns ``(best_vector, best_fitness, evaluations)``. The number of
    combinations grows as C(grid, n): this is the cost the GA avoids.
    """
    low = np.log10(space.f_min_hz)
    high = np.log10(space.f_max_hz)
    count = max(2, int(round((high - low) * points_per_decade)) + 1)
    grid = np.logspace(low, high, count)
    best_vector: Optional[Tuple[float, ...]] = None
    best_fitness = -np.inf
    evaluations = 0
    for combo in combinations(grid, space.num_frequencies):
        value = fitness(tuple(float(f) for f in combo))
        evaluations += 1
        if value > best_fitness:
            best_fitness = value
            best_vector = tuple(float(f) for f in combo)
    if best_vector is None:
        raise DiagnosisError("exhaustive search evaluated nothing; "
                             "grid too small for the vector length")
    return best_vector, float(best_fitness), evaluations
