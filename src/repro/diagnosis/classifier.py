"""The fault-trajectory diagnoser.

Section 2.3 / Fig. 3 (right): *"Given a point in the Cartesian plane due
to an unknown fault, it can be assigned to a PW segment, which would be
the segment with the highest probability to be the right one. Such
operation is done drawing perpendiculars from known fault trajectories to
the point where the unknown fault is."*

:class:`TrajectoryClassifier` implements exactly that rule:

1. project the unknown point onto every trajectory segment;
2. prefer segments onto which a perpendicular *foot* exists (the
   unclamped projection falls inside the segment) -- the paper's
   "segments from which perpendiculars exist";
3. among the preferred set, pick the smallest distance; fall back to
   endpoint distance when no perpendicular exists anywhere;
4. the winning segment's trajectory names the faulty component, and the
   foot parameter interpolates the estimated deviation.

The classifier works in any signature dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import DiagnosisError
from ..sim.ac import FrequencyResponse
from ..trajectory.geometry import project_point_onto_segments
from ..trajectory.trajectory import TrajectorySet

__all__ = ["Diagnosis", "TrajectoryClassifier"]


@dataclass(frozen=True)
class Diagnosis:
    """Outcome of classifying one unknown fault point."""

    component: str
    estimated_deviation: float
    distance: float
    perpendicular: bool
    margin: float
    point: Tuple[float, ...]
    ranking: Tuple[Tuple[str, float], ...]

    @property
    def ambiguous(self) -> bool:
        """True when the runner-up component is almost as close.

        The margin threshold is relative: a runner-up within 10 % of the
        winning distance (or within 1e-9 absolute for on-trajectory
        points) cannot be ruled out.
        """
        if len(self.ranking) < 2:
            return False
        runner_up = self.ranking[1][1]
        if not np.isfinite(runner_up):
            # The runner-up component has no candidate segment under the
            # perpendicular-foot rule: it cannot be confused with the
            # winner, however large the winning distance.
            return False
        return runner_up - self.distance <= max(0.1 * runner_up, 1e-9)

    def summary(self) -> str:
        kind = "perpendicular" if self.perpendicular else "endpoint"
        return (f"fault on {self.component} "
                f"(estimated {self.estimated_deviation * 100.0:+.1f}%), "
                f"{kind} distance {self.distance:.4g}, "
                f"margin {self.margin:.4g}")


class TrajectoryClassifier:
    """Nearest-segment classifier over a trajectory set."""

    def __init__(self, trajectories: TrajectorySet,
                 golden: Optional[FrequencyResponse] = None) -> None:
        self.trajectories = trajectories
        self.golden = golden
        starts, ends, owners = trajectories.all_segments()
        self._starts = starts
        self._ends = ends
        self._owners = owners
        # Local segment index within the owning trajectory, per flat
        # segment (deviation estimation needs the local index).
        locals_: List[int] = []
        for trajectory in trajectories:
            locals_.extend(range(trajectory.num_segments))
        self._local_index = np.array(locals_, dtype=int)

    # ------------------------------------------------------------------
    def classify_point(self, point: np.ndarray) -> Diagnosis:
        """Diagnose a signature-space point (the paper's (*) point)."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.trajectories.dimension,):
            raise DiagnosisError(
                f"point has dimension {point.shape}, trajectories have "
                f"{self.trajectories.dimension}")
        distances, t_values, interior = project_point_onto_segments(
            point, self._starts, self._ends)

        # Paper rule: segments with an interior perpendicular foot are
        # preferred; endpoint-only proximity is the fallback.
        if np.any(interior):
            candidate_mask = interior
            perpendicular = True
        else:
            candidate_mask = np.ones_like(interior, dtype=bool)
            perpendicular = False
        masked = np.where(candidate_mask, distances, np.inf)
        winner = int(np.argmin(masked))

        owner = int(self._owners[winner])
        trajectory = self.trajectories.trajectories[owner]
        deviation = trajectory.interpolate_deviation(
            int(self._local_index[winner]), float(t_values[winner]))

        # Rank components over the *same* masked distances the winner
        # was chosen from (in the endpoint fallback the mask is all-ones
        # and ``masked == distances``). Ranking the raw distances
        # instead let a non-candidate segment outrank the winner and
        # drove the reported margin negative.
        ranking = self._component_ranking(masked)
        margin = self._margin(ranking, trajectory.component)
        return Diagnosis(
            component=trajectory.component,
            estimated_deviation=deviation,
            distance=float(distances[winner]),
            perpendicular=perpendicular,
            margin=margin,
            point=tuple(float(x) for x in point),
            ranking=ranking,
        )

    def classify_response(self, response: FrequencyResponse) -> Diagnosis:
        """Diagnose a measured/simulated response.

        Requires the classifier to have been built with the golden
        response when the mapper is golden-relative.
        """
        mapper = self.trajectories.mapper
        golden = self.golden if mapper.relative_to_golden else None
        if mapper.relative_to_golden and golden is None:
            raise DiagnosisError(
                "classifier needs the golden response to map measured "
                "responses; pass golden= at construction")
        point = mapper.signature(response, golden)
        return self.classify_point(point)

    # ------------------------------------------------------------------
    def _component_ranking(self, distances: np.ndarray
                           ) -> Tuple[Tuple[str, float], ...]:
        """Best candidate distance per component, ascending.

        ``distances`` must be the candidate-masked array the winner was
        picked from; components whose every segment is masked out rank
        at ``inf``.
        """
        best: Dict[str, float] = {}
        for index, trajectory in enumerate(self.trajectories.trajectories):
            mask = self._owners == index
            best[trajectory.component] = float(distances[mask].min())
        ordered = sorted(best.items(), key=lambda item: item[1])
        return tuple(ordered)

    @staticmethod
    def _margin(ranking: Tuple[Tuple[str, float], ...],
                winner: str) -> float:
        """Distance gap between the winner and the closest other
        component (infinite for a single-trajectory set)."""
        others = [distance for component, distance in ranking
                  if component != winner]
        if not others:
            return float("inf")
        winner_distance = dict(ranking)[winner]
        margin = float(min(others) - winner_distance)
        if not margin >= 0.0:
            raise DiagnosisError(
                f"negative margin {margin!r} for winner {winner!r}: "
                "ranking was not computed over the winner's candidate "
                "distances")
        return margin

    def is_fault_free(self, point: np.ndarray,
                      threshold: float) -> bool:
        """Go/no-go test: the point is 'golden' if it sits within
        ``threshold`` of the origin (for golden-relative mappers)."""
        if not self.trajectories.mapper.relative_to_golden:
            raise DiagnosisError(
                "fault-free test requires a golden-relative mapper")
        point = np.asarray(point, dtype=float)
        return bool(np.linalg.norm(point) <= threshold)
