"""Circuit component definitions.

Components are plain dataclasses: they carry nominal values and terminal
node names but no simulation logic. The MNA builder in :mod:`repro.sim.mna`
knows how to stamp each type; keeping the two layers separate lets fault
injection clone and mutate components without touching the simulator.

Conventions
-----------
* Node names are strings; ``"0"`` (or the :data:`GROUND` constant) is ground.
* Every component has a unique ``name`` (its reference designator, e.g.
  ``"R3"``). Fault specifications address components by this name.
* Two-terminal passives expose a single ``value`` attribute; the op-amp
  macromodel exposes a parameter dictionary instead (its parameters are the
  fault targets for active devices, per the FFM fault model).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..errors import ComponentError

__all__ = [
    "GROUND",
    "Component",
    "TwoTerminal",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "VCVS",
    "VCCS",
    "CCVS",
    "CCCS",
    "IdealOpAmp",
    "OpAmpMacro",
    "OPAMP_MACRO_PARAMS",
]

GROUND = "0"


def _check_name(name: str) -> str:
    if not name or not isinstance(name, str):
        raise ComponentError("component name must be a non-empty string")
    if any(ch.isspace() for ch in name):
        raise ComponentError(f"component name may not contain spaces: {name!r}")
    return name


def _check_node(node: str, what: str) -> str:
    if not isinstance(node, str) or not node:
        raise ComponentError(f"{what} must be a non-empty string node name")
    if any(ch.isspace() for ch in node):
        raise ComponentError(f"node name may not contain spaces: {node!r}")
    return node


def _check_positive(value: float, what: str) -> float:
    value = float(value)
    if not value > 0.0:
        raise ComponentError(f"{what} must be positive, got {value}")
    if value != value or value in (float("inf"), float("-inf")):
        raise ComponentError(f"{what} must be finite, got {value}")
    return value


@dataclass(frozen=True)
class Component:
    """Base class for all circuit elements."""

    name: str

    def __post_init__(self) -> None:
        _check_name(self.name)

    @property
    def nodes(self) -> Tuple[str, ...]:
        """All node names this component touches (overridden by subclasses)."""
        raise NotImplementedError

    def renamed(self, name: str) -> "Component":
        """Copy of this component under a new reference designator."""
        return dataclasses.replace(self, name=name)


@dataclass(frozen=True)
class TwoTerminal(Component):
    """A two-terminal element with a scalar ``value``."""

    positive: str
    negative: str
    value: float

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_node(self.positive, "positive terminal")
        _check_node(self.negative, "negative terminal")
        if self.positive == self.negative:
            raise ComponentError(
                f"{self.name}: both terminals connect to node "
                f"{self.positive!r}; a two-terminal element may not be "
                "shorted onto a single node")

    @property
    def nodes(self) -> Tuple[str, ...]:
        return (self.positive, self.negative)

    def with_value(self, value: float) -> "TwoTerminal":
        """Copy of this element with a different value (fault injection)."""
        return dataclasses.replace(self, value=value)


@dataclass(frozen=True)
class Resistor(TwoTerminal):
    """Linear resistor; ``value`` in ohms."""

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.value, f"{self.name}: resistance")


@dataclass(frozen=True)
class Capacitor(TwoTerminal):
    """Linear capacitor; ``value`` in farads."""

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.value, f"{self.name}: capacitance")


@dataclass(frozen=True)
class Inductor(TwoTerminal):
    """Linear inductor; ``value`` in henries.

    Stamped with an explicit branch current so DC analysis (where the
    inductor is a short) stays well-posed.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.value, f"{self.name}: inductance")


@dataclass(frozen=True)
class VoltageSource(TwoTerminal):
    """Independent voltage source.

    ``value`` is the DC value; ``ac_magnitude``/``ac_phase_deg`` define the
    phasor used by AC analysis (SPICE ``AC`` specification). The branch
    current is an MNA unknown, so this source can also serve as an ammeter
    for current-controlled sources.
    """

    ac_magnitude: float = 0.0
    ac_phase_deg: float = 0.0

    def __post_init__(self) -> None:
        _check_name(self.name)
        _check_node(self.positive, "positive terminal")
        _check_node(self.negative, "negative terminal")
        if self.positive == self.negative:
            raise ComponentError(
                f"{self.name}: source terminals must differ")
        if self.ac_magnitude < 0:
            raise ComponentError(
                f"{self.name}: AC magnitude must be non-negative")


@dataclass(frozen=True)
class CurrentSource(TwoTerminal):
    """Independent current source (current flows positive -> negative)."""

    ac_magnitude: float = 0.0
    ac_phase_deg: float = 0.0

    def __post_init__(self) -> None:
        _check_name(self.name)
        _check_node(self.positive, "positive terminal")
        _check_node(self.negative, "negative terminal")
        if self.positive == self.negative:
            raise ComponentError(
                f"{self.name}: source terminals must differ")
        if self.ac_magnitude < 0:
            raise ComponentError(
                f"{self.name}: AC magnitude must be non-negative")


@dataclass(frozen=True)
class VCVS(Component):
    """Voltage-controlled voltage source (SPICE ``E``): Vout = gain * Vctrl."""

    positive: str
    negative: str
    ctrl_positive: str
    ctrl_negative: str
    gain: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        for node, what in ((self.positive, "output+"),
                           (self.negative, "output-"),
                           (self.ctrl_positive, "control+"),
                           (self.ctrl_negative, "control-")):
            _check_node(node, f"{self.name}: {what}")
        if self.positive == self.negative:
            raise ComponentError(f"{self.name}: output terminals must differ")

    @property
    def nodes(self) -> Tuple[str, ...]:
        return (self.positive, self.negative,
                self.ctrl_positive, self.ctrl_negative)


@dataclass(frozen=True)
class VCCS(Component):
    """Voltage-controlled current source (SPICE ``G``): I = gm * Vctrl."""

    positive: str
    negative: str
    ctrl_positive: str
    ctrl_negative: str
    transconductance: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        for node, what in ((self.positive, "output+"),
                           (self.negative, "output-"),
                           (self.ctrl_positive, "control+"),
                           (self.ctrl_negative, "control-")):
            _check_node(node, f"{self.name}: {what}")

    @property
    def nodes(self) -> Tuple[str, ...]:
        return (self.positive, self.negative,
                self.ctrl_positive, self.ctrl_negative)


@dataclass(frozen=True)
class CCVS(Component):
    """Current-controlled voltage source (SPICE ``H``).

    The controlling current is the branch current of the named voltage
    source ``ctrl_source`` (SPICE semantics: a 0 V source acts as ammeter).
    """

    positive: str
    negative: str
    ctrl_source: str
    transresistance: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_node(self.positive, f"{self.name}: output+")
        _check_node(self.negative, f"{self.name}: output-")
        _check_name(self.ctrl_source)
        if self.positive == self.negative:
            raise ComponentError(f"{self.name}: output terminals must differ")

    @property
    def nodes(self) -> Tuple[str, ...]:
        return (self.positive, self.negative)


@dataclass(frozen=True)
class CCCS(Component):
    """Current-controlled current source (SPICE ``F``)."""

    positive: str
    negative: str
    ctrl_source: str
    gain: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_node(self.positive, f"{self.name}: output+")
        _check_node(self.negative, f"{self.name}: output-")
        _check_name(self.ctrl_source)

    @property
    def nodes(self) -> Tuple[str, ...]:
        return (self.positive, self.negative)


@dataclass(frozen=True)
class IdealOpAmp(Component):
    """Ideal op-amp (nullor): infinite gain, zero input current.

    Stamped as the constraint ``V(in+) == V(in-)`` with the output free to
    supply whatever current satisfies it. Requires negative feedback to be
    well-posed, as in real life.
    """

    in_positive: str
    in_negative: str
    output: str

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_node(self.in_positive, f"{self.name}: in+")
        _check_node(self.in_negative, f"{self.name}: in-")
        _check_node(self.output, f"{self.name}: output")
        if self.in_positive == self.in_negative:
            raise ComponentError(
                f"{self.name}: differential inputs must be distinct nodes")

    @property
    def nodes(self) -> Tuple[str, ...]:
        return (self.in_positive, self.in_negative, self.output)


# Fault-targetable parameters of the op-amp macromodel (the FFM parameter
# set): DC gain, dominant pole frequency, input and output resistance.
OPAMP_MACRO_PARAMS = ("a0", "pole_hz", "rin", "rout")


@dataclass(frozen=True)
class OpAmpMacro(Component):
    """Single-pole finite-gain op-amp macromodel.

    Open-loop transfer: ``A(s) = a0 / (1 + s / (2*pi*pole_hz))`` with input
    resistance ``rin`` across the differential inputs and output resistance
    ``rout`` in series with the output. This is the functional macromodel
    whose parameters carry the active-device parametric faults (Sec. 2.1 of
    the paper / the FFM of Calvano et al.).

    The MNA builder expands the macro into primitive stamps (Rin, a VCCS
    into an internal RC pole node, a unity VCVS and Rout) on the fly; the
    internal nodes are namespaced by the component name.
    """

    in_positive: str
    in_negative: str
    output: str
    params: Dict[str, float] = field(default_factory=dict)

    DEFAULTS = {
        "a0": 2.0e5,        # DC open-loop gain (e.g. a uA741-class part)
        "pole_hz": 5.0,     # dominant pole -> GBW = a0 * pole_hz = 1 MHz
        "rin": 2.0e6,       # differential input resistance [ohm]
        "rout": 75.0,       # output resistance [ohm]
    }

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_node(self.in_positive, f"{self.name}: in+")
        _check_node(self.in_negative, f"{self.name}: in-")
        _check_node(self.output, f"{self.name}: output")
        if self.in_positive == self.in_negative:
            raise ComponentError(
                f"{self.name}: differential inputs must be distinct nodes")
        merged = dict(self.DEFAULTS)
        for key, value in self.params.items():
            if key not in OPAMP_MACRO_PARAMS:
                raise ComponentError(
                    f"{self.name}: unknown macro parameter {key!r}; "
                    f"expected one of {OPAMP_MACRO_PARAMS}")
            merged[key] = _check_positive(value, f"{self.name}: {key}")
        object.__setattr__(self, "params", merged)

    @property
    def nodes(self) -> Tuple[str, ...]:
        return (self.in_positive, self.in_negative, self.output)

    @property
    def a0(self) -> float:
        return self.params["a0"]

    @property
    def pole_hz(self) -> float:
        return self.params["pole_hz"]

    @property
    def rin(self) -> float:
        return self.params["rin"]

    @property
    def rout(self) -> float:
        return self.params["rout"]

    @property
    def gbw_hz(self) -> float:
        """Gain-bandwidth product in Hz."""
        return self.a0 * self.pole_hz

    def with_param(self, param: str, value: float) -> "OpAmpMacro":
        """Copy of this macro with one parameter replaced (fault injection)."""
        if param not in OPAMP_MACRO_PARAMS:
            raise ComponentError(
                f"{self.name}: unknown macro parameter {param!r}")
        new_params = dict(self.params)
        new_params[param] = value
        return dataclasses.replace(self, params=new_params)
