"""Parameterised circuit-family generators for fleet-scale corpora.

The paper validates on a handful of hand-built filters; the corpus
runner (``repro.corpus``) instead enumerates *families* of generated
circuits so every pipeline change is exercised across hundreds of
topologies and sizes. Four families are provided:

``rc_ladder``
    Order-N series-R / shunt-C ladders with per-seed element spreads.
``lc_ladder``
    Doubly-terminated order-N Butterworth LC ladders (exact
    ``g_k = 2 sin((2k-1) pi / 2N)`` prototype values), per-seed cutoff
    and impedance level.
``biquad_chain``
    N cascaded unity-gain Sallen-Key biquad sections with per-seed
    stage frequencies and Q factors.
``random_topology``
    Randomised R/C topologies emitted as SPICE netlist text and parsed
    back through :func:`~repro.circuits.parser.parse_netlist` -- the
    family that exercises the parser error paths. A guaranteed
    resistive spine keeps every node DC-connected; candidate circuits
    are validated by finite nominal solves at the band edges and
    redrawn (deterministically, bounded) if ill-posed.

Every generator is **deterministic per seed**: the same ``(family,
seed, size)`` triple produces a circuit with an identical
:meth:`~repro.circuits.netlist.Circuit.content_hash` in any process on
any platform (``numpy.random.default_rng`` has a stable stream, and
element values flow through the same repr-rendered canonical form).
Failures raise :class:`~repro.errors.FamilyError` carrying the family
name and seed.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

import numpy as np

from ..errors import FamilyError
from ..units import TWO_PI
from .library import CircuitInfo
from .netlist import Circuit

__all__ = [
    "CIRCUIT_FAMILIES",
    "FAMILY_DEFAULT_SIZES",
    "generate",
    "rc_ladder_family",
    "lc_ladder_family",
    "biquad_chain_family",
    "random_topology_family",
    "butterworth_g_values",
]

#: How many deterministic redraws ``random_topology`` attempts before
#: giving up on a seed. Redraw ``k`` uses the derived stream
#: ``default_rng((seed, k))``, so the accepted circuit depends only on
#: the seed, never on timing or draw order elsewhere.
_MAX_REDRAWS = 16


def _round_value(value: float) -> float:
    """Quantise a drawn element value to 6 significant digits.

    Keeps ``canonical_form()`` strings short and makes the per-seed
    value set robust to tiny libm differences across platforms.
    """
    if value <= 0.0 or not math.isfinite(value):
        raise FamilyError(f"drawn element value {value!r} is not usable")
    return float(f"{value:.6g}")


def butterworth_g_values(order: int) -> tuple:
    """Normalised Butterworth prototype g-parameters for 1-ohm
    terminations: ``g_k = 2 sin((2k - 1) pi / 2N)``."""
    if order < 1:
        raise FamilyError("butterworth order must be >= 1")
    return tuple(
        _round_value(2.0 * math.sin((2 * k - 1) * math.pi / (2 * order)))
        for k in range(1, order + 1))


def rc_ladder_family(seed: int, size: int = 5) -> CircuitInfo:
    """Order-``size`` RC ladder with per-seed element spreads.

    Each section's R is drawn log-uniform over half a decade around
    1 kOhm and its C around the value placing the section pole near a
    per-seed base frequency; distinct values keep the per-component
    fault signatures separable.
    """
    if size < 1:
        raise FamilyError("rc_ladder size must be >= 1",
                          family="rc_ladder", seed=seed)
    rng = np.random.default_rng((int(seed), 0x5C1A))
    f0 = _round_value(10.0 ** rng.uniform(2.0, 4.0))      # 100 Hz..10 kHz
    ckt = Circuit(f"rc_ladder_n{size}_s{seed}")
    ckt.add_voltage_source("VIN", "in", "0", dc=0.0, ac=1.0)
    previous = "in"
    for index in range(1, size + 1):
        node = f"n{index}"
        r = _round_value(1e3 * 10.0 ** rng.uniform(-0.25, 0.25))
        c = _round_value(10.0 ** rng.uniform(-0.25, 0.25)
                         / (TWO_PI * f0 * r))
        ckt.add_resistor(f"R{index}", previous, node, r)
        ckt.add_capacitor(f"C{index}", node, "0", c)
        previous = node
    ckt.validate()
    return CircuitInfo(
        circuit=ckt, input_source="VIN", output_node=previous,
        faultable=tuple(ckt.passive_names),
        f0_hz=f0, f_min_hz=f0 / 1000.0, f_max_hz=f0 * 100.0,
        description=(f"Generated RC ladder, {size} sections "
                     f"(family rc_ladder, seed {seed})."))


def lc_ladder_family(seed: int, size: int = 5) -> CircuitInfo:
    """Doubly-terminated order-``size`` Butterworth LC ladder.

    Exact prototype g-values denormalised to a per-seed cutoff
    frequency and impedance level; shunt-C first, matched source and
    load terminations (passband voltage gain 0.5).
    """
    if size < 1:
        raise FamilyError("lc_ladder size must be >= 1",
                          family="lc_ladder", seed=seed)
    rng = np.random.default_rng((int(seed), 0x1CAD))
    f0 = _round_value(10.0 ** rng.uniform(3.0, 5.0))      # 1 kHz..100 kHz
    r0 = _round_value(10.0 ** rng.uniform(2.0, 3.0))      # 100..1000 ohm
    w0 = TWO_PI * f0
    g_values = butterworth_g_values(size)
    ckt = Circuit(f"lc_ladder_n{size}_s{seed}")
    ckt.add_voltage_source("VIN", "in", "0", dc=0.0, ac=1.0)
    ckt.add_resistor("RS", "in", "n1", r0)
    node = "n1"
    faultable = []
    for index, g in enumerate(g_values, start=1):
        if index % 2 == 1:                          # shunt capacitor
            name = f"C{index}"
            ckt.add_capacitor(name, node, "0", _round_value(g / (w0 * r0)))
        else:                                       # series inductor
            name = f"L{index}"
            next_node = f"n{index // 2 + 1}"
            ckt.add_inductor(name, node, next_node,
                             _round_value(g * r0 / w0))
            node = next_node
        faultable.append(name)
    ckt.add_resistor("RL", node, "0", r0)
    ckt.validate()
    return CircuitInfo(
        circuit=ckt, input_source="VIN", output_node=node,
        faultable=tuple(faultable),
        f0_hz=f0, f_min_hz=f0 / 100.0, f_max_hz=f0 * 100.0,
        description=(f"Generated Butterworth LC ladder, order {size} "
                     f"(family lc_ladder, seed {seed})."))


def biquad_chain_family(seed: int, size: int = 2) -> CircuitInfo:
    """``size`` cascaded unity-gain Sallen-Key low-pass sections.

    Stage cutoffs spread geometrically over ~one octave around a
    per-seed centre; stage Qs are drawn in [0.55, 2.0]. The op-amp
    output of each stage drives the next section directly (ideal
    op-amps, zero output impedance), so the cascade transfer function
    is the product of the stages'.
    """
    if size < 1:
        raise FamilyError("biquad_chain size must be >= 1",
                          family="biquad_chain", seed=seed)
    rng = np.random.default_rng((int(seed), 0xB1AD))
    f_centre = 10.0 ** rng.uniform(2.5, 4.0)
    ckt = Circuit(f"biquad_chain_n{size}_s{seed}")
    ckt.add_voltage_source("VIN", "in", "0", dc=0.0, ac=1.0)
    previous = "in"
    faultable = []
    for stage in range(1, size + 1):
        f_stage = f_centre * 2.0 ** rng.uniform(-0.5, 0.5)
        q = rng.uniform(0.55, 2.0)
        r = _round_value(1e4 * 10.0 ** rng.uniform(-0.25, 0.25))
        c2 = _round_value(1.0 / (TWO_PI * f_stage * r * 2.0 * q))
        c1 = _round_value(4.0 * q * q * c2)
        a, b, out = f"a{stage}", f"b{stage}", f"o{stage}"
        ckt.add_resistor(f"R{stage}A", previous, a, r)
        ckt.add_resistor(f"R{stage}B", a, b, r)
        ckt.add_capacitor(f"C{stage}A", a, out, c1)
        ckt.add_capacitor(f"C{stage}B", b, "0", c2)
        ckt.add_ideal_opamp(f"OA{stage}", b, out, out)
        faultable += [f"R{stage}A", f"R{stage}B",
                      f"C{stage}A", f"C{stage}B"]
        previous = out
    ckt.validate()
    f0 = _round_value(f_centre)
    return CircuitInfo(
        circuit=ckt, input_source="VIN", output_node=previous,
        faultable=tuple(faultable),
        f0_hz=f0, f_min_hz=f0 / 100.0, f_max_hz=f0 * 100.0,
        description=(f"Generated Sallen-Key cascade, {size} stages "
                     f"(family biquad_chain, seed {seed})."))


def _random_topology_netlist(rng: np.random.Generator, size: int,
                             name: str) -> str:
    """Draw one candidate random-topology netlist (text form).

    A resistive spine ``in -> n1 -> ... -> n<size>`` guarantees every
    node a DC path to the driven input; random shunt (R or C to
    ground) and bridge (R or C across non-adjacent spine nodes)
    elements add topology variety on top.
    """
    lines = [f"* {name}", "VIN in 0 DC 0 AC 1"]
    nodes = ["in"] + [f"n{i}" for i in range(1, size + 1)]
    index = 0
    for a, b in zip(nodes, nodes[1:]):
        index += 1
        r = 10.0 ** rng.uniform(2.5, 4.0)
        lines.append(f"R{index} {a} {b} {r:.6g}")
    # Shunt elements: one per internal node, R or C.
    for position, node in enumerate(nodes[1:], start=1):
        if rng.uniform() < 0.5:
            index += 1
            r = 10.0 ** rng.uniform(3.0, 5.0)
            lines.append(f"RS{index} {node} 0 {r:.6g}")
        else:
            c = 10.0 ** rng.uniform(-9.0, -7.0)
            lines.append(f"CS{position} {node} 0 {c:.6g}")
    # Bridge elements across non-adjacent spine nodes.
    n_bridges = int(rng.integers(1, max(2, size // 2) + 1))
    for bridge in range(n_bridges):
        a, b = sorted(rng.choice(len(nodes), size=2, replace=False))
        if b - a < 2:
            continue                      # adjacent: spine already has R
        if rng.uniform() < 0.5:
            r = 10.0 ** rng.uniform(3.0, 5.0)
            lines.append(f"RB{bridge + 1} {nodes[a]} {nodes[b]} {r:.6g}")
        else:
            c = 10.0 ** rng.uniform(-9.0, -7.0)
            lines.append(f"CB{bridge + 1} {nodes[a]} {nodes[b]} {c:.6g}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _well_posed(info: CircuitInfo) -> bool:
    """Finite nominal solves at the band edges (and the centre)."""
    from ..sim.ac import ACAnalysis
    freqs = np.array([info.f_min_hz, info.f0_hz, info.f_max_hz])
    try:
        response = ACAnalysis(info.circuit).transfer(
            info.output_node, freqs, input_source=info.input_source)
    except Exception:
        return False
    return bool(np.all(np.isfinite(response.values)))


def random_topology_family(seed: int, size: int = 6) -> CircuitInfo:
    """Randomised R/C topology emitted through the netlist parser.

    The candidate is rendered as SPICE text and parsed back via
    :func:`~repro.circuits.parser.parse_netlist` -- the corpus-scale
    exerciser of the parser error paths. Candidates failing the
    well-posedness probe (finite nominal solves at the band edges) are
    redrawn deterministically, up to ``_MAX_REDRAWS`` times per seed.
    """
    from .parser import parse_netlist
    if size < 2:
        raise FamilyError("random_topology size must be >= 2",
                          family="random_topology", seed=seed)
    last_error: Optional[Exception] = None
    for redraw in range(_MAX_REDRAWS):
        rng = np.random.default_rng((int(seed), 0x7090, redraw))
        name = f"random_topology_n{size}_s{seed}"
        text = _random_topology_netlist(rng, size, name)
        try:
            circuit = parse_netlist(text, name=name)
        except Exception as exc:
            raise FamilyError(
                f"generated netlist failed to parse: {exc}",
                family="random_topology", seed=seed) from exc
        f0 = 1e3
        info = CircuitInfo(
            circuit=circuit, input_source="VIN",
            output_node=f"n{size}",
            faultable=tuple(circuit.passive_names),
            f0_hz=f0, f_min_hz=f0 / 100.0, f_max_hz=f0 * 1000.0,
            description=(f"Generated random R/C topology, {size} spine "
                         f"nodes (family random_topology, seed {seed}, "
                         f"redraw {redraw})."))
        if _well_posed(info):
            return info
        last_error = None
    raise FamilyError(
        f"no well-posed topology within {_MAX_REDRAWS} redraws",
        family="random_topology", seed=seed) from last_error


#: Family-name registry: every generator maps ``(seed, size)`` to a
#: :class:`CircuitInfo`, deterministically per seed.
CIRCUIT_FAMILIES: Dict[str, Callable[..., CircuitInfo]] = {
    "rc_ladder": rc_ladder_family,
    "lc_ladder": lc_ladder_family,
    "biquad_chain": biquad_chain_family,
    "random_topology": random_topology_family,
}

#: Default ``size`` per family (used when a corpus spec leaves it out).
FAMILY_DEFAULT_SIZES: Dict[str, int] = {
    "rc_ladder": 5,
    "lc_ladder": 5,
    "biquad_chain": 2,
    "random_topology": 6,
}


def generate(family: str, seed: int,
             size: Optional[int] = None) -> CircuitInfo:
    """Instantiate one generated circuit: ``(family, seed, size)``.

    Deterministic: the same triple always yields a circuit with the
    same :meth:`~repro.circuits.netlist.Circuit.content_hash`.
    """
    try:
        generator = CIRCUIT_FAMILIES[family]
    except KeyError:
        raise FamilyError(
            f"unknown circuit family {family!r}; "
            f"available: {sorted(CIRCUIT_FAMILIES)}",
            family=family, seed=seed) from None
    if size is None:
        size = FAMILY_DEFAULT_SIZES[family]
    try:
        return generator(seed, size=size)
    except FamilyError:
        raise
    except Exception as exc:
        raise FamilyError(f"generator failed: {exc}", family=family,
                          seed=seed) from exc
