"""The :class:`Circuit` container: an analog netlist.

A circuit is an ordered collection of named components plus convenience
constructors (``add_resistor`` and friends). It validates connectivity,
supports structural queries used by fault injection (lookup by name,
cloning with a replaced component), and exposes small-signal metadata
(which source is the input, which node is the output) through
:class:`CircuitInfo` in :mod:`repro.circuits.library`.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from ..errors import CircuitError
from ..units import parse_value
from .components import (
    CCCS,
    CCVS,
    GROUND,
    Capacitor,
    Component,
    CurrentSource,
    IdealOpAmp,
    Inductor,
    OpAmpMacro,
    Resistor,
    TwoTerminal,
    VCCS,
    VCVS,
    VoltageSource,
)

__all__ = ["Circuit"]


def _canonical_value(value) -> str:
    """Render one component field deterministically (dicts sorted)."""
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, dict):
        inner = ",".join(f"{key}:{_canonical_value(value[key])}"
                         for key in sorted(value))
        return "{" + inner + "}"
    return str(value)


class Circuit:
    """An analog circuit netlist.

    Components are kept in insertion order (deterministic MNA assembly and
    reproducible fault universes depend on this). Names must be unique.

    >>> ckt = Circuit("divider")
    >>> _ = ckt.add_voltage_source("VIN", "in", "0", dc=0.0, ac=1.0)
    >>> _ = ckt.add_resistor("R1", "in", "out", "10k")
    >>> _ = ckt.add_resistor("R2", "out", "0", "10k")
    >>> sorted(ckt.nodes)
    ['0', 'in', 'out']
    """

    def __init__(self, name: str = "circuit",
                 components: Iterable[Component] = ()) -> None:
        if not name or not isinstance(name, str):
            raise CircuitError("circuit name must be a non-empty string")
        self.name = name
        self._components: Dict[str, Component] = {}
        for component in components:
            self.add(component)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[Component]:
        return iter(self._components.values())

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def __getitem__(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise CircuitError(
                f"{self.name}: no component named {name!r}; "
                f"have {sorted(self._components)}") from None

    def __repr__(self) -> str:
        return (f"Circuit({self.name!r}, {len(self)} components, "
                f"{len(self.nodes)} nodes)")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        """Add a component; its name must be unique within the circuit."""
        if component.name in self._components:
            raise CircuitError(
                f"{self.name}: duplicate component name {component.name!r}")
        self._components[component.name] = component
        return component

    def add_resistor(self, name: str, positive: str, negative: str,
                     value: float | str) -> Resistor:
        return self.add(Resistor(name, positive, negative, parse_value(value)))

    def add_capacitor(self, name: str, positive: str, negative: str,
                      value: float | str) -> Capacitor:
        return self.add(Capacitor(name, positive, negative, parse_value(value)))

    def add_inductor(self, name: str, positive: str, negative: str,
                     value: float | str) -> Inductor:
        return self.add(Inductor(name, positive, negative, parse_value(value)))

    def add_voltage_source(self, name: str, positive: str, negative: str,
                           dc: float | str = 0.0, ac: float | str = 0.0,
                           ac_phase_deg: float = 0.0) -> VoltageSource:
        return self.add(VoltageSource(name, positive, negative,
                                      parse_value(dc), parse_value(ac),
                                      ac_phase_deg))

    def add_current_source(self, name: str, positive: str, negative: str,
                           dc: float | str = 0.0, ac: float | str = 0.0,
                           ac_phase_deg: float = 0.0) -> CurrentSource:
        return self.add(CurrentSource(name, positive, negative,
                                      parse_value(dc), parse_value(ac),
                                      ac_phase_deg))

    def add_vcvs(self, name: str, positive: str, negative: str,
                 ctrl_positive: str, ctrl_negative: str,
                 gain: float = 1.0) -> VCVS:
        return self.add(VCVS(name, positive, negative,
                             ctrl_positive, ctrl_negative, float(gain)))

    def add_vccs(self, name: str, positive: str, negative: str,
                 ctrl_positive: str, ctrl_negative: str,
                 transconductance: float = 1.0) -> VCCS:
        return self.add(VCCS(name, positive, negative,
                             ctrl_positive, ctrl_negative,
                             float(transconductance)))

    def add_ccvs(self, name: str, positive: str, negative: str,
                 ctrl_source: str, transresistance: float = 1.0) -> CCVS:
        return self.add(CCVS(name, positive, negative, ctrl_source,
                             float(transresistance)))

    def add_cccs(self, name: str, positive: str, negative: str,
                 ctrl_source: str, gain: float = 1.0) -> CCCS:
        return self.add(CCCS(name, positive, negative, ctrl_source,
                             float(gain)))

    def add_ideal_opamp(self, name: str, in_positive: str, in_negative: str,
                        output: str) -> IdealOpAmp:
        return self.add(IdealOpAmp(name, in_positive, in_negative, output))

    def add_opamp_macro(self, name: str, in_positive: str, in_negative: str,
                        output: str, **params: float) -> OpAmpMacro:
        return self.add(OpAmpMacro(name, in_positive, in_negative, output,
                                   params=params))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def components(self) -> Tuple[Component, ...]:
        """All components in insertion order."""
        return tuple(self._components.values())

    @property
    def component_names(self) -> Tuple[str, ...]:
        return tuple(self._components)

    @property
    def nodes(self) -> Tuple[str, ...]:
        """All node names, ground included, in first-appearance order."""
        seen: Dict[str, None] = {}
        for component in self:
            for node in component.nodes:
                seen.setdefault(node, None)
        return tuple(seen)

    def components_of_type(self, *types: type) -> Tuple[Component, ...]:
        """All components that are instances of any of ``types``."""
        return tuple(c for c in self if isinstance(c, types))

    @property
    def passive_names(self) -> Tuple[str, ...]:
        """Names of R, L and C elements -- the usual fault targets."""
        return tuple(c.name for c in
                     self.components_of_type(Resistor, Capacitor, Inductor))

    @property
    def source_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in
                     self.components_of_type(VoltageSource, CurrentSource))

    def ac_source_name(self) -> str:
        """Name of the unique source with a non-zero AC specification."""
        ac_sources = [c.name for c in
                      self.components_of_type(VoltageSource, CurrentSource)
                      if c.ac_magnitude > 0.0]
        if not ac_sources:
            raise CircuitError(
                f"{self.name}: no source has an AC magnitude; AC analysis "
                "needs exactly one stimulus")
        if len(ac_sources) > 1:
            raise CircuitError(
                f"{self.name}: multiple AC sources {ac_sources}; the "
                "transfer-function analyses expect exactly one stimulus")
        return ac_sources[0]

    # ------------------------------------------------------------------
    # Structural validation
    # ------------------------------------------------------------------
    def connectivity_graph(self) -> "nx.Graph":
        """Undirected node graph: an edge per component terminal pair.

        Controlled-source *sensing* terminals do not conduct, but they do
        constrain the solution, so they are included as edges here --
        this graph answers "is the netlist one electrical problem?".
        """
        graph = nx.Graph()
        for component in self:
            nodes = component.nodes
            graph.add_nodes_from(nodes)
            anchor = nodes[0]
            for other in nodes[1:]:
                graph.add_edge(anchor, other, component=component.name)
        return graph

    def validate(self) -> None:
        """Raise :class:`CircuitError` on structural problems.

        Checks: non-empty, ground reference present, single connected
        electrical problem, and current-controlled sources referencing an
        existing voltage source.
        """
        if len(self) == 0:
            raise CircuitError(f"{self.name}: circuit has no components")
        graph = self.connectivity_graph()
        if GROUND not in graph:
            raise CircuitError(
                f"{self.name}: no ground node {GROUND!r}; every circuit "
                "needs a reference node")
        pieces = list(nx.connected_components(graph))
        if len(pieces) > 1:
            floating = [sorted(piece) for piece in pieces
                        if GROUND not in piece]
            raise CircuitError(
                f"{self.name}: circuit is not connected; "
                f"floating island(s): {floating}")
        for component in self.components_of_type(CCVS, CCCS):
            source = self._components.get(component.ctrl_source)
            if source is None:
                raise CircuitError(
                    f"{self.name}: {component.name} references missing "
                    f"controlling source {component.ctrl_source!r}")
            if not isinstance(source, VoltageSource):
                raise CircuitError(
                    f"{self.name}: {component.name} control element "
                    f"{component.ctrl_source!r} must be a voltage source "
                    "(SPICE ammeter semantics)")

    # ------------------------------------------------------------------
    # Cloning / mutation (fault injection support)
    # ------------------------------------------------------------------
    def clone(self, name: Optional[str] = None) -> "Circuit":
        """Shallow copy (components are immutable, so sharing is safe)."""
        return Circuit(name or self.name, self.components)

    def with_component(self, replacement: Component,
                       name: Optional[str] = None) -> "Circuit":
        """Copy of the circuit with one component replaced (same name).

        The replacement occupies the original's position in insertion
        order, keeping MNA assembly deterministic across fault injection.
        """
        if replacement.name not in self._components:
            raise CircuitError(
                f"{self.name}: cannot replace unknown component "
                f"{replacement.name!r}")
        new_components = [replacement if c.name == replacement.name else c
                          for c in self]
        return Circuit(name or self.name, new_components)

    def with_value(self, component_name: str, value: float,
                   name: Optional[str] = None) -> "Circuit":
        """Copy with a two-terminal component's value replaced."""
        component = self[component_name]
        if not isinstance(component, TwoTerminal):
            raise CircuitError(
                f"{self.name}: {component_name!r} has no scalar value "
                f"(it is a {type(component).__name__})")
        return self.with_component(component.with_value(value), name)

    def scaled_value(self, component_name: str, factor: float,
                     name: Optional[str] = None) -> "Circuit":
        """Copy with a component's value multiplied by ``factor``."""
        component = self[component_name]
        if not isinstance(component, TwoTerminal):
            raise CircuitError(
                f"{self.name}: {component_name!r} has no scalar value")
        return self.with_value(component_name, component.value * factor, name)

    # ------------------------------------------------------------------
    # Canonical form / content hashing
    # ------------------------------------------------------------------
    def canonical_form(self) -> str:
        """Deterministic textual form of the netlist.

        One line per component, in insertion order, listing every
        dataclass field with floats rendered by ``repr`` (shortest
        round-trip form). Two circuits with identical topology and
        values always produce identical text, so the canonical form is
        a stable cache key for simulation artifacts.
        """
        lines = [f"circuit name={self.name}"]
        for component in self:
            parts = [type(component).__name__]
            for spec in dataclasses.fields(component):
                value = getattr(component, spec.name)
                parts.append(f"{spec.name}={_canonical_value(value)}")
            lines.append(" ".join(parts))
        return "\n".join(lines)

    def content_hash(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_form`."""
        return hashlib.sha256(
            self.canonical_form().encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable one-line-per-component description."""
        lines = [f"circuit {self.name}: {len(self)} components, "
                 f"{len(self.nodes)} nodes"]
        for component in self:
            lines.append(f"  {type(component).__name__:<14} {component.name:<8} "
                         f"nodes={','.join(component.nodes)}")
        return "\n".join(lines)
